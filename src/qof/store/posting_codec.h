#ifndef QOF_STORE_POSTING_CODEC_H_
#define QOF_STORE_POSTING_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region.h"
#include "qof/util/result.h"
#include "qof/util/status.h"
#include "qof/util/wire.h"

namespace qof {

/// Block-compressed posting streams (the paged store's payload encoding).
///
/// A stream holds one key's sorted values — word postings (strictly
/// increasing u64 positions) or a region instance (canonical order: start
/// ascending, end descending) — chopped into blocks of at most
/// kPostingBlockEntries records. Each block is delta+varint coded and
/// independently decodable; an eagerly-decoded skip table carries every
/// block's [first, last] key range so a galloping intersect can discard
/// whole blocks on their min/max before touching (or even paging in) the
/// compressed bytes.
///
/// Stream layout (all varints, see qof/util/wire.h):
///   varint total_count
///   varint num_blocks
///   skip table, one entry per block:
///     varint first_delta  (block.first - previous block's last; absolute
///                          for block 0)
///     varint span         (block.last - block.first)
///     varint end_excess   (block.max_end - block.last; 0 for posting
///                          streams, whose keys are points)
///     varint count        (records in the block)
///     varint byte_len     (encoded size of the block's bytes)
///   the blocks' bytes, concatenated.
///
/// Posting block bytes: count-1 varint deltas (values[i] - values[i-1]);
/// the first value is the skip entry's `first`.
/// Region block bytes: varint length of the first region (whose start is
/// the skip entry's `first`), then per remaining region varint start-delta
/// and varint length. For regions, `first`/`last` are the block's first
/// and last *starts* — the canonical order makes starts non-decreasing, so
/// they are exactly the skip bounds the intersect kernels need — and
/// `max_end` is the largest end, which lets the containment kernels
/// discard a block that cannot hold a region enclosing a probe.

inline constexpr uint32_t kPostingBlockEntries = 128;

/// One skip-table entry, decoded to absolute keys.
struct PostingBlockMeta {
  uint64_t first = 0;     // first key in the block
  uint64_t last = 0;      // last key in the block
  uint64_t max_end = 0;   // largest region end (== last for postings)
  uint32_t count = 0;     // records in the block
  uint64_t byte_off = 0;  // offset of the block's bytes within the
                          // stream's block area
  uint32_t byte_len = 0;  // encoded size of the block
};

struct PostingStreamHeader {
  uint64_t total_count = 0;
  /// Bytes consumed by total_count + num_blocks + the skip table; the
  /// block area starts at this offset within the stream.
  uint64_t header_bytes = 0;
  std::vector<PostingBlockMeta> blocks;
};

/// Encodes strictly increasing word-posting values as a stream. Returns
/// the header length (bytes before the block area) — the dictionary
/// persists it so a cursor can page in exactly the skip table.
uint64_t EncodePostingStream(const std::vector<uint64_t>& values,
                             std::string* out);

/// Encodes a region instance (canonical order, no duplicates) as a
/// stream. Returns the header length, as above.
uint64_t EncodeRegionStream(const std::vector<Region>& regions,
                            std::string* out);

/// Decodes a stream's header and skip table. `stream` need only cover the
/// header (callers that page the block area in lazily pass a prefix);
/// `what` names the key in error messages.
Result<PostingStreamHeader> DecodeStreamHeader(std::string_view stream,
                                               const std::string& what);

/// Decodes one posting block (bytes exactly `meta.byte_len` long),
/// appending `meta.count` values to `out`.
Status DecodePostingBlock(const PostingBlockMeta& meta,
                          std::string_view bytes, const std::string& what,
                          std::vector<uint64_t>* out);

/// Decodes one region block, appending `meta.count` regions to `out`.
Status DecodeRegionBlock(const PostingBlockMeta& meta, std::string_view bytes,
                         const std::string& what, std::vector<Region>* out);

}  // namespace qof

#endif  // QOF_STORE_POSTING_CODEC_H_
