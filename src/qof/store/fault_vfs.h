#ifndef QOF_STORE_FAULT_VFS_H_
#define QOF_STORE_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "qof/store/vfs.h"

namespace qof {

/// An in-memory Vfs that models what a real disk guarantees — and what
/// it does not. Every file keeps two images:
///
///   live     what the running process reads back (the page cache)
///   durable  what survives power loss (updated only by Sync)
///
/// and the *namespace* (which names map to which files) is likewise
/// double-entry: creations, renames, and removals are live immediately
/// but durable only once SyncDir runs on the parent directory — the
/// POSIX contract ALICE-style crash checkers enforce.
///
/// Failure knobs (all deterministic):
///   set_crash_at_op(k)   the k-th mutating I/O op (0-based: appends,
///                        syncs, renames, removals, truncates, creates,
///                        dir syncs) and everything after it fails with
///                        "power lost"; CutPower then reconstitutes the
///                        post-crash state.
///   CutPower(seed)       namespace reverts to the durable mapping; each
///                        file's content reverts to its durable image
///                        plus an adversarial, seed-deterministic
///                        selection of unsynced sectors that "happened to
///                        be written back" — torn tails and garbage
///                        sectors included.
///   set_fail_reads(n)    the next n ReadAt calls fail with an I/O error
///                        (transient EIO; use a large n for a dead disk).
///   set_space_limit(b)   appends beyond b total live bytes write the
///                        prefix that fits, then fail (disk full / short
///                        write).
///   set_skip_dir_sync()  SyncDir becomes a silent no-op — the planted
///                        `--inject skip-dir-sync` bug the crash-sweep
///                        fuzzer leg must catch.
class FaultVfs : public Vfs {
 public:
  FaultVfs() = default;

  // --- Vfs -------------------------------------------------------------
  Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWrite(const std::string& path,
                                                  bool truncate) override;
  bool Exists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;

  // --- failure knobs ---------------------------------------------------

  /// Mutating I/O ops performed so far (the sweep's crash-point domain).
  uint64_t op_count() const;

  /// Arms a power cut: the op with 0-based index `k` (and every mutating
  /// op after it) fails. Pass k >= the trace's total op count to disarm.
  void set_crash_at_op(uint64_t k);

  /// True once an armed crash point has fired.
  bool crashed() const;

  /// Simulates the machine coming back up after the armed crash (or an
  /// immediate cut if none fired): reverts the namespace to its durable
  /// mapping and each surviving file to its durable content merged with a
  /// seed-deterministic subset of unsynced sectors. Clears the crash
  /// trigger and resets op_count so recovery runs unimpeded.
  void CutPower(uint64_t seed);

  /// Sector granularity for torn-write modeling (default 512).
  void set_torn_sector_bytes(uint32_t bytes);

  /// The next `n` ReadAt calls fail with an I/O error.
  void set_fail_reads(uint64_t n);

  /// The next `n` ReadAt calls "succeed" without transferring a byte —
  /// the degenerate short read of a contract-violating driver: OK status,
  /// caller's buffer untouched (so it still holds whatever the previous
  /// read left there). The buffer-pool regression test uses this to prove
  /// a transient-EIO-then-short-read sequence cannot cache a stale frame.
  void set_short_reads(uint64_t n);

  /// Total live bytes across all files may not exceed `bytes`; further
  /// appends short-write then fail. ~0 (default) = unlimited.
  void set_space_limit(uint64_t bytes);

  /// Makes SyncDir a no-op that still reports success (planted bug).
  void set_skip_dir_sync(bool skip);

  /// Reads `path`'s live content without counting as an op (test oracle).
  Result<std::string> PeekFile(const std::string& path) const;

  /// Live file paths, sorted (test oracle / debugging).
  std::vector<std::string> LivePaths() const;

 private:
  friend class FaultVfsReader;
  friend class FaultVfsWriter;

  struct Inode {
    std::string live;
    std::string durable;
  };

  /// Charges one mutating op against the crash trigger; fails once armed
  /// crash point is reached. Callers hold mu_.
  Status ChargeOpLocked(const char* what);
  uint64_t LiveBytesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Inode>> live_;
  std::map<std::string, std::shared_ptr<Inode>> durable_;
  std::set<std::string> dirs_;
  uint64_t op_count_ = 0;
  uint64_t crash_at_op_ = ~uint64_t{0};
  bool crashed_ = false;
  uint32_t sector_bytes_ = 512;
  uint64_t fail_reads_ = 0;
  uint64_t short_reads_ = 0;
  uint64_t space_limit_ = ~uint64_t{0};
  bool skip_dir_sync_ = false;
};

}  // namespace qof

#endif  // QOF_STORE_FAULT_VFS_H_
