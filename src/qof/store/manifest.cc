#include "qof/store/manifest.h"

#include <cstring>

#include "qof/util/wire.h"

namespace qof {

std::string EncodeManifest(const Manifest& manifest) {
  std::string payload;
  PutU64(manifest.generation, &payload);
  PutString(manifest.blob_name, &payload);
  PutString(manifest.journal_name, &payload);
  PutU64(manifest.journal_offset, &payload);

  std::string out(kManifestMagic);
  out.append(payload);
  PutU64(Fnv1a(payload), &out);
  return out;
}

Result<Manifest> DecodeManifest(std::string_view bytes) {
  if (bytes.size() < kManifestMagic.size() ||
      std::memcmp(bytes.data(), kManifestMagic.data(),
                  kManifestMagic.size()) != 0) {
    return Status::InvalidArgument("not a qof manifest (bad magic)");
  }
  std::string_view rest = bytes.substr(kManifestMagic.size());
  if (rest.size() < 8) {
    return Status::DataLoss("manifest is truncated");
  }
  std::string_view payload = rest.substr(0, rest.size() - 8);
  WireReader tail(rest.substr(rest.size() - 8), "manifest checksum");
  auto checksum = tail.U64();
  if (!checksum.ok() || Fnv1a(payload) != *checksum) {
    return Status::DataLoss("manifest failed its checksum");
  }
  WireReader reader(payload, "manifest");
  Manifest manifest;
  auto ReadInto = [&]() -> Status {
    QOF_ASSIGN_OR_RETURN(manifest.generation, reader.U64());
    QOF_ASSIGN_OR_RETURN(manifest.blob_name, reader.String());
    QOF_ASSIGN_OR_RETURN(manifest.journal_name, reader.String());
    QOF_ASSIGN_OR_RETURN(manifest.journal_offset, reader.U64());
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes in manifest");
    }
    return Status::OK();
  };
  Status status = ReadInto();
  if (!status.ok()) {
    // The checksum verified, so a malformed payload is a producer bug,
    // not disk damage — keep the original code.
    return status;
  }
  return manifest;
}

Result<Manifest> ReadManifest(Vfs* vfs, const std::string& path) {
  QOF_ASSIGN_OR_RETURN(std::string bytes, VfsReadFile(vfs, path));
  auto manifest = DecodeManifest(bytes);
  if (!manifest.ok()) {
    return Status(manifest.status().code(),
                  path + ": " + manifest.status().message());
  }
  return manifest;
}

Status WriteManifest(Vfs* vfs, const std::string& path,
                     const Manifest& manifest) {
  return AtomicWriteFile(vfs, path, EncodeManifest(manifest));
}

}  // namespace qof
