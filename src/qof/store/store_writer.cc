#include "qof/store/store_writer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "qof/store/posting_codec.h"
#include "qof/util/wire.h"

namespace qof {
namespace {

/// One dictionary entry, already stream-encoded into the postings
/// section.
struct DictRecord {
  const std::string* key;
  uint64_t byte_off = 0;
  uint64_t byte_len = 0;
  uint64_t header_len = 0;
  uint64_t count = 0;
};

void EncodeDictRecord(const DictRecord& r, std::string* out) {
  PutString(*r.key, out);
  PutVarint(r.byte_off, out);
  PutVarint(r.byte_len, out);
  PutVarint(r.header_len, out);
  PutVarint(r.count, out);
}

/// Packs sorted dict records into self-contained page payloads (u32 count
/// prefix, whole entries only) and collects each page's fence key.
Status PackDict(const std::vector<DictRecord>& records, uint32_t capacity,
                std::vector<std::string>* pages,
                std::vector<const std::string*>* fences) {
  std::string page;
  uint32_t in_page = 0;
  auto flush = [&](const std::string* first_key) {
    std::string payload;
    PutU32(in_page, &payload);
    payload += page;
    pages->push_back(std::move(payload));
    fences->push_back(first_key);
    page.clear();
    in_page = 0;
  };
  const std::string* page_first = nullptr;
  for (const DictRecord& r : records) {
    std::string encoded;
    EncodeDictRecord(r, &encoded);
    if (encoded.size() + 4 > capacity) {
      return Status::InvalidArgument(
          "paged store: dictionary key '" + *r.key +
          "' does not fit a single page; use a larger page size");
    }
    if (4 + page.size() + encoded.size() > capacity) flush(page_first);
    if (in_page == 0) page_first = r.key;
    page += encoded;
    ++in_page;
  }
  if (in_page > 0) flush(page_first);
  return Status::OK();
}

/// Appends a byte stream as a section: chopped at the payload capacity so
/// stream offset → page is plain arithmetic.
SectionInfo AppendStreamSection(PageType type, std::string_view bytes,
                                uint32_t page_size, std::string* image) {
  SectionInfo info;
  info.first_page =
      static_cast<uint32_t>(image->size() / page_size);
  info.byte_len = bytes.size();
  uint32_t capacity = PagePayloadCapacity(page_size);
  size_t off = 0;
  do {
    size_t n = std::min<size_t>(capacity, bytes.size() - off);
    AppendPage(type, bytes.substr(off, n), page_size, image);
    off += n;
    ++info.num_pages;
  } while (off < bytes.size());
  return info;
}

/// Appends pre-packed dictionary page payloads, one per page.
SectionInfo AppendDictSection(PageType type,
                              const std::vector<std::string>& pages,
                              uint32_t page_size, std::string* image) {
  SectionInfo info;
  info.first_page = static_cast<uint32_t>(image->size() / page_size);
  for (const std::string& payload : pages) {
    AppendPage(type, payload, page_size, image);
    info.byte_len += payload.size();
    ++info.num_pages;
  }
  return info;
}

std::string EncodeFences(const std::vector<const std::string*>& fences) {
  std::string out;
  PutU32(static_cast<uint32_t>(fences.size()), &out);
  for (const std::string* key : fences) PutString(*key, &out);
  return out;
}

/// The shared back half of both image builders: packs the dictionaries,
/// lays the sections out in StoreSection order, and stamps the meta page.
Result<std::string> AssembleImage(StoreMeta meta,
                                  std::string_view spec_bytes,
                                  std::string_view doc_table_bytes,
                                  const std::vector<DictRecord>& region_records,
                                  const std::vector<DictRecord>& word_records,
                                  std::string_view postings,
                                  uint32_t page_size) {
  const uint32_t capacity = PagePayloadCapacity(page_size);
  std::vector<std::string> region_dict_pages, word_dict_pages;
  std::vector<const std::string*> region_fences, word_fences;
  QOF_RETURN_IF_ERROR(PackDict(region_records, capacity, &region_dict_pages,
                               &region_fences));
  QOF_RETURN_IF_ERROR(
      PackDict(word_records, capacity, &word_dict_pages, &word_fences));

  // Assemble: meta placeholder first (rewritten once section extents are
  // known), then the sections in StoreSection order.
  std::string image;
  AppendPage(PageType::kMeta, "", page_size, &image);
  auto set_section = [&meta](StoreSection s, SectionInfo info) {
    meta.sections[static_cast<int>(s)] = info;
  };
  set_section(StoreSection::kSpec,
              AppendStreamSection(PageType::kSpec, spec_bytes, page_size,
                                  &image));
  set_section(StoreSection::kDocTable,
              AppendStreamSection(PageType::kDocTable, doc_table_bytes,
                                  page_size, &image));
  set_section(StoreSection::kRegionFence,
              AppendStreamSection(PageType::kFence,
                                  EncodeFences(region_fences), page_size,
                                  &image));
  set_section(StoreSection::kRegionDict,
              AppendDictSection(PageType::kRegionDict, region_dict_pages,
                                page_size, &image));
  set_section(StoreSection::kWordFence,
              AppendStreamSection(PageType::kFence, EncodeFences(word_fences),
                                  page_size, &image));
  set_section(StoreSection::kWordDict,
              AppendDictSection(PageType::kWordDict, word_dict_pages,
                                page_size, &image));
  set_section(StoreSection::kPostings,
              AppendStreamSection(PageType::kPostings, postings, page_size,
                                  &image));

  std::string meta_payload;
  EncodeStoreMeta(meta, &meta_payload);
  if (meta_payload.size() > PagePayloadCapacity(kMinStorePageSize)) {
    return Status::Internal("paged store: meta payload overflows the "
                            "minimum page size");
  }
  std::string meta_page;
  AppendPage(PageType::kMeta, meta_payload, page_size, &meta_page);
  image.replace(0, page_size, meta_page);
  return image;
}

Status CheckPageSize(uint32_t page_size) {
  if (page_size < kMinStorePageSize || page_size % kMinStorePageSize != 0) {
    return Status::InvalidArgument(
        "paged store: page size must be a multiple of " +
        std::to_string(kMinStorePageSize) + " bytes (got " +
        std::to_string(page_size) + ")");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> BuildStoreImage(const StoreWriterInput& input,
                                    uint32_t page_size) {
  QOF_RETURN_IF_ERROR(CheckPageSize(page_size));

  StoreMeta meta;
  meta.page_size = page_size;
  meta.generation = input.generation;
  meta.doc_count = input.doc_count;
  meta.universe_size = input.regions->Universe().size();

  // Region instances, sorted by name, streams concatenated into the
  // postings payload.
  std::string postings;
  std::vector<std::string> region_names = input.regions->Names();
  std::vector<DictRecord> region_records;
  region_records.reserve(region_names.size());
  for (const std::string& name : region_names) {
    auto set = input.regions->Get(name);
    if (!set.ok()) return set.status();
    DictRecord r;
    r.key = &name;
    r.byte_off = postings.size();
    r.header_len = EncodeRegionStream((*set)->regions(), &postings);
    r.byte_len = postings.size() - r.byte_off;
    r.count = (*set)->size();
    region_records.push_back(r);
    meta.total_regions += r.count;
  }
  meta.region_names = region_names.size();
  meta.body_bytes += meta.total_regions * 16;

  // Word postings, sorted — the store is canonical for the same reason
  // the v3 blob is (byte comparison stands in for index equality).
  std::vector<std::pair<const std::string*, const std::vector<TextPos>*>>
      words;
  words.reserve(input.words->num_distinct_words());
  input.words->ForEachWord(
      [&words](const std::string& word, const std::vector<TextPos>& posts) {
        words.emplace_back(&word, &posts);
      });
  std::sort(words.begin(), words.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::vector<DictRecord> word_records;
  word_records.reserve(words.size());
  for (const auto& [word, posts] : words) {
    DictRecord r;
    r.key = word;
    r.byte_off = postings.size();
    r.header_len = EncodePostingStream(*posts, &postings);
    r.byte_len = postings.size() - r.byte_off;
    r.count = posts->size();
    word_records.push_back(r);
    meta.total_postings += r.count;
  }
  meta.distinct_words = words.size();
  meta.body_bytes += meta.total_postings * 8;

  return AssembleImage(std::move(meta), input.spec_bytes,
                       input.doc_table_bytes, region_records, word_records,
                       postings, page_size);
}

Result<std::string> BuildStoreImageFromRaw(
    const StoreMeta& meta_like, std::string_view spec_bytes,
    std::string_view doc_table_bytes,
    const std::vector<RawStreamEntry>& regions,
    const std::vector<RawStreamEntry>& words, uint32_t page_size) {
  QOF_RETURN_IF_ERROR(CheckPageSize(page_size));

  StoreMeta meta;
  meta.page_size = page_size;
  meta.generation = meta_like.generation;
  meta.doc_count = meta_like.doc_count;
  // Advisory planner statistic; the surviving streams cannot say which
  // universe regions the dropped ones contributed, so carry it over.
  meta.universe_size = meta_like.universe_size;

  std::string postings;
  std::vector<DictRecord> region_records, word_records;
  region_records.reserve(regions.size());
  for (const RawStreamEntry& e : regions) {
    DictRecord r;
    r.key = &e.key;
    r.byte_off = postings.size();
    r.byte_len = e.stream.size();
    r.header_len = e.header_len;
    r.count = e.count;
    postings += e.stream;
    region_records.push_back(r);
    meta.total_regions += e.count;
  }
  meta.region_names = regions.size();
  meta.body_bytes += meta.total_regions * 16;

  word_records.reserve(words.size());
  for (const RawStreamEntry& e : words) {
    DictRecord r;
    r.key = &e.key;
    r.byte_off = postings.size();
    r.byte_len = e.stream.size();
    r.header_len = e.header_len;
    r.count = e.count;
    postings += e.stream;
    word_records.push_back(r);
    meta.total_postings += e.count;
  }
  meta.distinct_words = words.size();
  meta.body_bytes += meta.total_postings * 8;

  return AssembleImage(std::move(meta), spec_bytes, doc_table_bytes,
                       region_records, word_records, postings, page_size);
}

}  // namespace qof
