#ifndef QOF_STORE_PAGED_FILE_H_
#define QOF_STORE_PAGED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "qof/store/page.h"
#include "qof/store/vfs.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Read-only random access to a page file, routed through the process
/// DefaultVfs() so tests and the crash-sweep fuzzer can substitute a
/// FaultVfs. Thread-safe: reads are positional (pread), so concurrent
/// ReadPage calls need no seek lock.
class PagedFile {
 public:
  /// Opens `path` and validates that its size is a whole number of
  /// `page_size`-byte pages.
  static Result<PagedFile> Open(const std::string& path, uint32_t page_size);

  PagedFile() = default;
  PagedFile(PagedFile&&) noexcept = default;
  PagedFile& operator=(PagedFile&&) noexcept = default;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return num_pages_; }
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(num_pages_) * page_size_;
  }
  const std::string& path() const { return path_; }

  /// Reads the raw image of one page into `buf` (resized to page_size).
  /// Does not parse or verify the header — that is the buffer pool's job.
  Status ReadPage(uint32_t page_no, std::string* buf) const;

  /// Reads `n` consecutive pages starting at `first` into `buf` (resized
  /// to n * page_size) with a single VFS read — the batched path prefetch
  /// admission uses so a 40-page posting run costs one round-trip, not 40.
  Status ReadPages(uint32_t first, uint32_t n, std::string* buf) const;

 private:
  std::string path_;
  std::shared_ptr<RandomAccessFile> file_;
  uint32_t page_size_ = 0;
  uint32_t num_pages_ = 0;
};

/// Writes `bytes` (an already page-aligned image) to `path` atomically:
/// temp file + fsync + rename + parent-directory fsync via the
/// DefaultVfs()'s AtomicWriteFile. A crash or short write (disk full)
/// never leaves a partial image visible at the final name.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

/// Reads a whole file (used for index blobs by the tools).
Result<std::string> ReadFileBytes(const std::string& path);

/// Reads the first `n` bytes of a file (fails if it is shorter) — the
/// store's meta page is bootstrapped this way before the true page size
/// is known.
Result<std::string> ReadFilePrefix(const std::string& path, size_t n);

}  // namespace qof

#endif  // QOF_STORE_PAGED_FILE_H_
