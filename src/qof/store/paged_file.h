#ifndef QOF_STORE_PAGED_FILE_H_
#define QOF_STORE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "qof/store/page.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Read-only random access to a page file on disk. Thread-safe: reads
/// seek under an internal mutex (the buffer pool serializes fetches
/// anyway, but the reader must also be safe for concurrent direct reads
/// by tools).
class PagedFile {
 public:
  /// Opens `path` and validates that its size is a whole number of
  /// `page_size`-byte pages.
  static Result<PagedFile> Open(const std::string& path, uint32_t page_size);

  PagedFile() = default;
  ~PagedFile();
  PagedFile(PagedFile&& other) noexcept;
  PagedFile& operator=(PagedFile&& other) noexcept;
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  uint32_t page_size() const { return page_size_; }
  uint32_t num_pages() const { return num_pages_; }
  uint64_t file_bytes() const {
    return static_cast<uint64_t>(num_pages_) * page_size_;
  }
  const std::string& path() const { return path_; }

  /// Reads the raw image of one page into `buf` (resized to page_size).
  /// Does not parse or verify the header — that is the buffer pool's job.
  Status ReadPage(uint32_t page_no, std::string* buf) const;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  uint32_t page_size_ = 0;
  uint32_t num_pages_ = 0;
  mutable std::mutex io_mu_;
};

/// Writes `bytes` (an already page-aligned image) to `path` atomically
/// enough for our purposes: written to the final name, flushed, closed.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

/// Reads a whole file (used for index blobs by the tools).
Result<std::string> ReadFileBytes(const std::string& path);

/// Reads the first `n` bytes of a file (fails if it is shorter) — the
/// store's meta page is bootstrapped this way before the true page size
/// is known.
Result<std::string> ReadFilePrefix(const std::string& path, size_t n);

}  // namespace qof

#endif  // QOF_STORE_PAGED_FILE_H_
