#ifndef QOF_STORE_PAGED_STORE_H_
#define QOF_STORE_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region_cursor.h"
#include "qof/store/buffer_pool.h"
#include "qof/store/paged_file.h"
#include "qof/store/posting_codec.h"
#include "qof/store/store_format.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

struct PagedStoreOptions {
  /// Buffer-pool frames (pool bytes = pool_pages * page_size).
  uint32_t pool_pages = 256;
  /// Fault injection for the fuzz harness only — see BufferPoolOptions.
  bool inject_evict_pinned = false;
  /// Let cursors turn skip-table dry runs into batched PrefetchHint
  /// admissions. Off = every page is a demand ReadPage (the PR 9
  /// behavior); results are identical either way.
  bool prefetch = true;
};

/// Read access to a "QOFSTOR1" file: meta, fence-guided dictionary
/// lookups, and posting-stream reads, all through the pinning buffer
/// pool (only the meta page and the fence keys are loaded eagerly at
/// open, so a selective query touches only the pages its keys live on).
/// Thread-safe; immovable (cursors and the pool point into it), so Open
/// returns shared_ptr — index sources and open cursors share ownership.
class PagedStore {
 public:
  static Result<std::shared_ptr<const PagedStore>> Open(
      const std::string& path, PagedStoreOptions options = {});

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  const StoreMeta& meta() const { return meta_; }
  const PagedFile& file() const { return file_; }
  uint32_t page_size() const { return file_.page_size(); }
  uint32_t num_pages() const { return file_.num_pages(); }

  BufferPoolStats pool_stats() const { return pool_.stats(); }
  void ResetPoolStats() const { pool_.ResetStats(); }

  /// One dictionary entry: where the key's posting stream lives inside
  /// the postings section.
  struct DictEntry {
    std::string key;
    uint64_t byte_off = 0;
    uint64_t byte_len = 0;
    uint64_t header_len = 0;
    uint64_t count = 0;
  };

  /// Whole-section reads (spec, doc table) — paged through the pool one
  /// page at a time.
  Result<std::string> ReadSection(StoreSection section) const;

  /// Dictionary probes: fence binary search picks the one dict page that
  /// can hold the key; nullopt when the key is not stored.
  Result<std::optional<DictEntry>> FindRegionEntry(
      std::string_view name) const;
  Result<std::optional<DictEntry>> FindWordEntry(std::string_view word) const;

  /// Full dictionary scans (conversion, EnsureResident, inspect).
  Result<std::vector<DictEntry>> AllRegionEntries() const;
  Result<std::vector<DictEntry>> AllWordEntries() const;

  /// Stored words beginning with `prefix`, sorted — reads only the dict
  /// pages the fence keys say can hold such words.
  Result<std::vector<std::string>> WordsWithPrefix(
      std::string_view prefix) const;

  /// Materializes a word's posting list from its entry.
  Result<std::vector<uint64_t>> LoadPostings(const DictEntry& entry) const;

  /// A block-skipping cursor over a region instance. The cursor pins
  /// pages only while decoding a block; `self` must be the shared_ptr
  /// this store was opened as (the cursor keeps the store alive).
  static Result<std::unique_ptr<RegionCursor>> OpenRegionCursor(
      std::shared_ptr<const PagedStore> self, const DictEntry& entry);

 private:
  PagedStore(PagedFile file, const StoreMeta& meta,
             const PagedStoreOptions& options)
      : file_(std::move(file)),
        meta_(meta),
        prefetch_(options.prefetch),
        pool_(&file_, BufferPoolOptions{options.pool_pages,
                                        options.inject_evict_pinned}) {}

  friend class StoreRegionCursorImpl;

  /// Copies `len` stream bytes of `section` starting at stream offset
  /// `off`, pinning one page at a time.
  Status ReadStreamRange(StoreSection section, uint64_t off, uint64_t len,
                         std::string* out) const;

  /// Pins every page covering the range at once and assembles the bytes —
  /// the block-read path (simultaneous pins are what make the injected
  /// evict-pinned bug observable, and what a real DB would decode from).
  /// `io` (optional) accumulates the fetches' I/O attribution.
  Status ReadStreamRangePinned(StoreSection section, uint64_t off,
                               uint64_t len, std::vector<PageRef>* pins,
                               std::string* scratch, std::string_view* bytes,
                               FetchIo* io = nullptr) const;

  /// Parses the entries of one dict page.
  Status ReadDictPage(StoreSection section, uint32_t index,
                      std::vector<DictEntry>* out) const;

  Result<std::optional<DictEntry>> FindEntry(
      StoreSection fence_section, StoreSection dict_section,
      const std::vector<std::string>& fences, std::string_view key) const;

  Result<PostingStreamHeader> ReadStreamHeader(const DictEntry& entry) const;

  PagedFile file_;
  StoreMeta meta_;
  bool prefetch_ = true;
  mutable BufferPool pool_;
  /// First key of every dict page, loaded eagerly at open.
  std::vector<std::string> region_fences_;
  std::vector<std::string> word_fences_;
};

}  // namespace qof

#endif  // QOF_STORE_PAGED_STORE_H_
