#include "qof/store/store_format.h"

#include <cstring>

#include "qof/util/wire.h"

namespace qof {

void EncodeStoreMeta(const StoreMeta& meta, std::string* out) {
  out->append(kStoreMagic, kStoreMagicLen);
  PutU32(meta.page_size, out);
  PutU64(meta.generation, out);
  PutU64(meta.doc_count, out);
  PutU64(meta.universe_size, out);
  PutU64(meta.region_names, out);
  PutU64(meta.total_regions, out);
  PutU64(meta.distinct_words, out);
  PutU64(meta.total_postings, out);
  PutU64(meta.body_bytes, out);
  PutU8(kNumStoreSections, out);
  for (int i = 0; i < kNumStoreSections; ++i) {
    PutU8(static_cast<uint8_t>(i), out);
    PutU32(meta.sections[i].first_page, out);
    PutU32(meta.sections[i].num_pages, out);
    PutU64(meta.sections[i].byte_len, out);
  }
}

Result<StoreMeta> DecodeStoreMeta(std::string_view payload) {
  if (payload.size() < kStoreMagicLen ||
      std::memcmp(payload.data(), kStoreMagic, kStoreMagicLen) != 0) {
    return Status::InvalidArgument(
        "not a qof paged store (bad magic on the meta page)");
  }
  WireReader reader(payload.substr(kStoreMagicLen), "store meta page");
  StoreMeta meta;
  QOF_ASSIGN_OR_RETURN(meta.page_size, reader.U32());
  if (meta.page_size < kMinStorePageSize ||
      meta.page_size % kMinStorePageSize != 0) {
    return Status::InvalidArgument(
        "paged store: meta page claims an invalid page size of " +
        std::to_string(meta.page_size) + " bytes");
  }
  QOF_ASSIGN_OR_RETURN(meta.generation, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.doc_count, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.universe_size, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.region_names, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.total_regions, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.distinct_words, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.total_postings, reader.U64());
  QOF_ASSIGN_OR_RETURN(meta.body_bytes, reader.U64());
  QOF_ASSIGN_OR_RETURN(uint8_t num_sections, reader.U8());
  if (num_sections != kNumStoreSections) {
    return Status::InvalidArgument(
        "paged store: meta page lists " + std::to_string(num_sections) +
        " sections, expected " + std::to_string(kNumStoreSections));
  }
  for (int i = 0; i < kNumStoreSections; ++i) {
    QOF_ASSIGN_OR_RETURN(uint8_t id, reader.U8());
    if (id != i) {
      return Status::InvalidArgument(
          "paged store: meta page sections out of order");
    }
    QOF_ASSIGN_OR_RETURN(meta.sections[i].first_page, reader.U32());
    QOF_ASSIGN_OR_RETURN(meta.sections[i].num_pages, reader.U32());
    QOF_ASSIGN_OR_RETURN(meta.sections[i].byte_len, reader.U64());
  }
  return meta;
}

}  // namespace qof
