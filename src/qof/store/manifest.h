#ifndef QOF_STORE_MANIFEST_H_
#define QOF_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/store/vfs.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// The durability superblock: one tiny checksummed record naming the
/// (blob generation, journal) pair recovery should trust. Written
/// atomically (tmp+fsync+rename+dirsync) *after* the artifacts it points
/// at are durable, so a reader that finds manifest generation G knows
/// blob-G and journal-G both exist and verify — the commit point of the
/// DurableIndexDir checkpoint protocol (see qof/maintain/durable_dir.h).
///
/// On-disk layout: 8-byte magic "QOFMANI1", then
///   u64 generation | string blob_name | string journal_name |
///   u64 journal_offset
/// followed by u64 fnv1a over that payload. A manifest that fails its
/// checksum is kDataLoss, never a silent fallback.

inline constexpr std::string_view kManifestMagic = "QOFMANI1";

struct Manifest {
  /// Generation of the blob the manifest points at.
  uint64_t generation = 0;
  /// File name (relative to the manifest's directory) of the index blob.
  std::string blob_name;
  /// File name of the journal that continues the blob, empty if none.
  std::string journal_name;
  /// Bytes of the journal known durable at the last sync acknowledgment
  /// (recovery may find more — unsynced appends that survived — or less
  /// after a torn tail; both are within the contract).
  uint64_t journal_offset = 0;

  friend bool operator==(const Manifest& a, const Manifest& b) {
    return a.generation == b.generation && a.blob_name == b.blob_name &&
           a.journal_name == b.journal_name &&
           a.journal_offset == b.journal_offset;
  }
};

/// Serializes a manifest (magic + payload + checksum).
std::string EncodeManifest(const Manifest& manifest);

/// Parses manifest bytes. Bad magic is kInvalidArgument (wrong file);
/// a checksum mismatch or truncation is kDataLoss (right file, damaged).
Result<Manifest> DecodeManifest(std::string_view bytes);

/// Reads and verifies the manifest at `path` through `vfs`.
Result<Manifest> ReadManifest(Vfs* vfs, const std::string& path);

/// Atomically publishes `manifest` at `path` (tmp+fsync+rename+dirsync).
Status WriteManifest(Vfs* vfs, const std::string& path,
                     const Manifest& manifest);

}  // namespace qof

#endif  // QOF_STORE_MANIFEST_H_
