#ifndef QOF_STORE_PAGE_H_
#define QOF_STORE_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/util/result.h"
#include "qof/util/status.h"
#include "qof/util/wire.h"

namespace qof {

/// The paged store's on-disk unit (ROADMAP's "redbase architecture":
/// fixed-size pages behind a pinning buffer manager). Every page carries a
/// 16-byte typed header; the payload that follows is checksummed with
/// FNV-1a so a bit flip at rest fails loudly at fetch time instead of
/// deserializing flipped postings.
///
///   offset 0  u8   page type (PageType)
///   offset 1  u8   reserved (0)
///   offset 2  u16  reserved (0)
///   offset 4  u32  payload length (bytes used; <= page_size - 16)
///   offset 8  u64  FNV-1a over the payload bytes
///
/// Pages are grouped into contiguous extents per section (dictionary,
/// postings, ...); byte streams larger than one payload span pages.

enum class PageType : uint8_t {
  kFree = 0,
  kMeta = 1,       // page 0: magic, geometry, section table, totals
  kSpec = 2,       // serialized IndexSpec
  kDocTable = 3,   // per-document (name, size, fingerprint) table
  kRegionDict = 4, // name -> region extent entries (page-packed)
  kWordDict = 5,   // word -> posting extent entries (page-packed)
  kFence = 6,      // first key of every dict page (eagerly loaded)
  kPostings = 7,   // block-compressed posting / region payload bytes
};

inline const char* PageTypeName(PageType t) {
  switch (t) {
    case PageType::kFree: return "free";
    case PageType::kMeta: return "meta";
    case PageType::kSpec: return "spec";
    case PageType::kDocTable: return "doc-table";
    case PageType::kRegionDict: return "region-dict";
    case PageType::kWordDict: return "word-dict";
    case PageType::kFence: return "fence";
    case PageType::kPostings: return "postings";
  }
  return "unknown";
}

inline constexpr size_t kPageHeaderSize = 16;
inline constexpr uint32_t kDefaultPageSize = 4096;
/// Small enough that tests and the fuzzer can force blocks to span pages
/// with a handful of postings; still room for a header and some payload.
inline constexpr uint32_t kMinPageSize = 64;

/// Payload capacity of a page.
inline constexpr uint32_t PagePayloadCapacity(uint32_t page_size) {
  return page_size - static_cast<uint32_t>(kPageHeaderSize);
}

/// Serializes one page (header + payload + zero padding to page_size).
/// `payload.size()` must fit the capacity.
inline void AppendPage(PageType type, std::string_view payload,
                       uint32_t page_size, std::string* out) {
  PutU8(static_cast<uint8_t>(type), out);
  PutU8(0, out);
  PutU8(0, out);
  PutU8(0, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU64(Fnv1a(payload), out);
  out->append(payload);
  out->append(page_size - kPageHeaderSize - payload.size(), '\0');
}

/// A decoded page header.
struct PageHeader {
  PageType type = PageType::kFree;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

/// Parses and verifies one raw page image. Rejects a payload length that
/// exceeds the page and any checksum mismatch (`what` and `page_no` name
/// the page in the error).
inline Result<PageHeader> ParsePage(std::string_view raw, uint32_t page_size,
                                    uint32_t page_no) {
  if (raw.size() != page_size) {
    return Status::InvalidArgument(
        "paged store: short read of page " + std::to_string(page_no));
  }
  PageHeader h;
  h.type = static_cast<PageType>(static_cast<uint8_t>(raw[0]));
  WireReader reader(raw.substr(4, 12), "page header");
  QOF_ASSIGN_OR_RETURN(h.payload_len, reader.U32());
  QOF_ASSIGN_OR_RETURN(h.checksum, reader.U64());
  if (h.payload_len > PagePayloadCapacity(page_size)) {
    return Status::DataLoss(
        "paged store: page " + std::to_string(page_no) +
        " claims a payload of " + std::to_string(h.payload_len) +
        " bytes, more than the page holds");
  }
  if (Fnv1a(raw.substr(kPageHeaderSize, h.payload_len)) != h.checksum) {
    return Status::DataLoss(
        "paged store: page " + std::to_string(page_no) + " (" +
        PageTypeName(h.type) +
        ") failed its checksum — the store file is damaged");
  }
  return h;
}

}  // namespace qof

#endif  // QOF_STORE_PAGE_H_
