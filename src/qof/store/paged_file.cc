#include "qof/store/paged_file.h"

#include <utility>

namespace qof {

Result<PagedFile> PagedFile::Open(const std::string& path,
                                  uint32_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("paged store: page size " +
                                   std::to_string(page_size) +
                                   " is below the minimum");
  }
  auto file = DefaultVfs()->OpenRead(path);
  if (!file.ok()) {
    return Status::NotFound("paged store: cannot open '" + path + "'");
  }
  uint64_t size = (*file)->size();
  if (size == 0 || size % page_size != 0) {
    return Status::InvalidArgument(
        "paged store: '" + path + "' is " + std::to_string(size) +
        " bytes, not a whole number of " + std::to_string(page_size) +
        "-byte pages");
  }
  PagedFile out;
  out.path_ = path;
  out.file_ = std::move(*file);
  out.page_size_ = page_size;
  out.num_pages_ = static_cast<uint32_t>(size / page_size);
  return out;
}

Status PagedFile::ReadPage(uint32_t page_no, std::string* buf) const {
  if (page_no >= num_pages_) {
    return Status::InvalidArgument(
        "paged store: page " + std::to_string(page_no) +
        " is out of range (file has " + std::to_string(num_pages_) +
        " pages)");
  }
  Status status = file_->ReadAt(
      static_cast<uint64_t>(page_no) * page_size_, page_size_, buf);
  if (!status.ok()) {
    return Status::Internal("paged store: I/O error reading page " +
                            std::to_string(page_no) + " of '" + path_ +
                            "': " + status.message());
  }
  return Status::OK();
}

Status PagedFile::ReadPages(uint32_t first, uint32_t n,
                            std::string* buf) const {
  if (n == 0) {
    buf->clear();
    return Status::OK();
  }
  if (first >= num_pages_ || n > num_pages_ - first) {
    return Status::InvalidArgument(
        "paged store: page run [" + std::to_string(first) + ", " +
        std::to_string(first) + "+" + std::to_string(n) +
        ") is out of range (file has " + std::to_string(num_pages_) +
        " pages)");
  }
  Status status =
      file_->ReadAt(static_cast<uint64_t>(first) * page_size_,
                    static_cast<size_t>(n) * page_size_, buf);
  if (!status.ok()) {
    return Status::Internal("paged store: I/O error reading pages [" +
                            std::to_string(first) + ", " +
                            std::to_string(first + n) + ") of '" + path_ +
                            "': " + status.message());
  }
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  return AtomicWriteFile(DefaultVfs(), path, bytes);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  auto bytes = VfsReadFile(DefaultVfs(), path);
  if (!bytes.ok() && bytes.status().IsNotFound()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  return bytes;
}

Result<std::string> ReadFilePrefix(const std::string& path, size_t n) {
  Vfs* vfs = DefaultVfs();
  auto file = vfs->OpenRead(path);
  if (!file.ok()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  if ((*file)->size() < n) {
    return Status::InvalidArgument("'" + path + "' is shorter than " +
                                   std::to_string(n) + " bytes");
  }
  std::string out;
  QOF_RETURN_IF_ERROR((*file)->ReadAt(0, n, &out));
  return out;
}

}  // namespace qof
