#include "qof/store/paged_file.h"

#include <utility>

namespace qof {

Result<PagedFile> PagedFile::Open(const std::string& path,
                                  uint32_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("paged store: page size " +
                                   std::to_string(page_size) +
                                   " is below the minimum");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("paged store: cannot open '" + path + "'");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal("paged store: cannot seek '" + path + "'");
  }
  long size = std::ftell(f);
  if (size < 0 || size % page_size != 0 || size == 0) {
    std::fclose(f);
    return Status::InvalidArgument(
        "paged store: '" + path + "' is " + std::to_string(size) +
        " bytes, not a whole number of " + std::to_string(page_size) +
        "-byte pages");
  }
  PagedFile out;
  out.path_ = path;
  out.file_ = f;
  out.page_size_ = page_size;
  out.num_pages_ = static_cast<uint32_t>(size / page_size);
  return out;
}

PagedFile::~PagedFile() {
  if (file_ != nullptr) std::fclose(file_);
}

PagedFile::PagedFile(PagedFile&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      page_size_(other.page_size_),
      num_pages_(other.num_pages_) {
  other.file_ = nullptr;
}

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    page_size_ = other.page_size_;
    num_pages_ = other.num_pages_;
    other.file_ = nullptr;
  }
  return *this;
}

Status PagedFile::ReadPage(uint32_t page_no, std::string* buf) const {
  if (page_no >= num_pages_) {
    return Status::InvalidArgument(
        "paged store: page " + std::to_string(page_no) +
        " is out of range (file has " + std::to_string(num_pages_) +
        " pages)");
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  buf->resize(page_size_);
  if (std::fseek(file_, static_cast<long>(page_no) *
                            static_cast<long>(page_size_),
                 SEEK_SET) != 0 ||
      std::fread(buf->data(), 1, page_size_, file_) != page_size_) {
    return Status::Internal("paged store: I/O error reading page " +
                            std::to_string(page_no) + " of '" + path_ +
                            "'");
  }
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for writing");
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string out;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long size = std::ftell(f);
    if (size > 0) out.reserve(static_cast<size_t>(size));
    std::fseek(f, 0, SEEK_SET);
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::Internal("I/O error reading '" + path + "'");
  return out;
}

Result<std::string> ReadFilePrefix(const std::string& path, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string out(n, '\0');
  size_t got = std::fread(out.data(), 1, n, f);
  std::fclose(f);
  if (got != n) {
    return Status::InvalidArgument("'" + path + "' is shorter than " +
                                   std::to_string(n) + " bytes");
  }
  return out;
}

}  // namespace qof
