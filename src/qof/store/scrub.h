#ifndef QOF_STORE_SCRUB_H_
#define QOF_STORE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Offline audit and salvage for "QOFSTOR1" paged stores (the qof_store
/// CLI's scrub|repair commands). Unlike PagedStore::Open — which refuses
/// a store whose structural pages fail verification — the scrubber reads
/// every page directly, maps each damaged page to its section, and (for
/// postings damage) names the index instances whose streams the damage
/// touches and the documents whose address spans the damaged blocks
/// cover, via the streams' intact skip tables.
///
/// Repairability: the spec, doc table, dictionaries, and meta page are
/// load-bearing (they describe everything else), so damage there is
/// fatal. Damage confined to postings pages (and/or fence pages, which
/// are derived from the dictionaries) is repairable: the store is
/// rebuilt from the surviving streams with the damaged instances
/// dropped, and the damaged original is kept as `<path>.quarantined`.

/// One page that failed its checksum (or could not be read at all).
struct PageDamage {
  uint32_t page_no = 0;
  /// Section name ("postings", "doc-table", ..., "meta", "unknown").
  std::string section;
  std::string error;
};

/// One index instance whose posting stream overlaps damaged bytes.
struct InstanceDamage {
  std::string key;
  bool is_word = false;  // word posting list vs region instance
  /// Documents whose spans the damaged blocks cover — exact when the
  /// stream's skip table survived, empty with `docs_known` false when
  /// the damage took the skip table itself.
  std::vector<std::string> docs;
  bool docs_known = false;
};

struct ScrubReport {
  std::string path;
  uint32_t pages_total = 0;
  std::vector<PageDamage> damaged_pages;
  /// Meta page (page 0) verified and decoded.
  bool meta_ok = false;
  /// Spec, doc table, and both dictionaries verified (fences excluded —
  /// they are derived data, rebuilt for free by repair).
  bool structural_ok = false;
  std::vector<InstanceDamage> damaged_instances;

  bool clean() const { return meta_ok && damaged_pages.empty(); }
  bool repairable() const {
    return !clean() && meta_ok && structural_ok;
  }
};

/// Audits every page of the store at `path` (through the DefaultVfs()).
/// Only fails when the file cannot be opened at all — damage, including
/// an unreadable meta page, is reported, not thrown.
Result<ScrubReport> ScrubStore(const std::string& path);

/// Human-readable report (the CLI's output).
std::string FormatScrubReport(const ScrubReport& report);

struct RepairResult {
  /// Index instances dropped because their streams were damaged.
  std::vector<std::string> dropped;
  /// Where the damaged original was preserved ("" when the store was
  /// clean and nothing was rewritten).
  std::string quarantine_path;
};

/// Rebuilds the store at `path` from its surviving streams: the damaged
/// original is renamed to `<path>.quarantined` and a fresh verified
/// image (same generation, damaged instances dropped) is written
/// atomically in its place. Fails with kDataLoss when the damage is
/// structural (see above); a clean store is a no-op.
Result<RepairResult> RepairStore(const std::string& path);

}  // namespace qof

#endif  // QOF_STORE_SCRUB_H_
