#include "qof/store/store_index_source.h"

#include <utility>

#include "qof/text/corpus.h"

namespace qof {

Result<std::vector<RegionSource::Entry>> StoreRegionSource::Entries() const {
  QOF_ASSIGN_OR_RETURN(auto dict, store_->AllRegionEntries());
  std::vector<Entry> out;
  out.reserve(dict.size());
  for (auto& e : dict) out.push_back({std::move(e.key), e.count});
  return out;
}

uint64_t StoreRegionSource::approx_bytes() const {
  // The postings section holds regions then words; apportion by the
  // uncompressed share (footprint reporting only).
  const StoreMeta& m = store_->meta();
  uint64_t total = m.total_regions * 16 + m.total_postings * 8;
  if (total == 0) return 0;
  return store_->meta().section(StoreSection::kPostings).byte_len *
         (m.total_regions * 16) / total;
}

Result<std::unique_ptr<RegionCursor>> StoreRegionSource::OpenCursor(
    std::string_view name) const {
  QOF_ASSIGN_OR_RETURN(auto entry, store_->FindRegionEntry(name));
  if (!entry.has_value()) {
    return Status::NotFound("region name '" + std::string(name) +
                            "' is not in the paged store");
  }
  // Budget accounting: materializing (or cursor-scanning) this instance
  // can decode up to count regions — charge the decompressed equivalent.
  Corpus::ChargeScanBytes(entry->count * 16);
  return PagedStore::OpenRegionCursor(store_, *entry);
}

uint64_t StorePostingSource::approx_bytes() const {
  const StoreMeta& m = store_->meta();
  uint64_t total = m.total_regions * 16 + m.total_postings * 8;
  if (total == 0) return 0;
  return store_->meta().section(StoreSection::kPostings).byte_len *
         (m.total_postings * 8) / total;
}

Result<std::optional<std::vector<TextPos>>> StorePostingSource::Load(
    std::string_view word) const {
  QOF_ASSIGN_OR_RETURN(auto entry, store_->FindWordEntry(word));
  if (!entry.has_value()) return std::optional<std::vector<TextPos>>();
  QOF_ASSIGN_OR_RETURN(std::vector<uint64_t> postings,
                       store_->LoadPostings(*entry));
  Corpus::ChargeScanBytes(postings.size() * 8);
  return std::optional<std::vector<TextPos>>(std::move(postings));
}

Result<std::vector<std::string>> StorePostingSource::WordsWithPrefix(
    std::string_view prefix) const {
  return store_->WordsWithPrefix(prefix);
}

Result<std::vector<PostingSource::Entry>> StorePostingSource::Entries()
    const {
  QOF_ASSIGN_OR_RETURN(auto dict, store_->AllWordEntries());
  std::vector<Entry> out;
  out.reserve(dict.size());
  for (auto& e : dict) out.push_back({std::move(e.key), e.count});
  return out;
}

}  // namespace qof
