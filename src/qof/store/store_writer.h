#ifndef QOF_STORE_STORE_WRITER_H_
#define QOF_STORE_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region_index.h"
#include "qof/store/store_format.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// Everything a paged store image is assembled from. The spec and the
/// per-document fingerprint table arrive pre-encoded (the engine's
/// index_io owns those encodings; the store treats them as opaque,
/// checksummed sections), the indexes are walked directly. Both indexes
/// must be fully resident (no lazy backing source still attached).
struct StoreWriterInput {
  const RegionIndex* regions = nullptr;
  const WordIndex* words = nullptr;
  std::string_view spec_bytes;
  std::string_view doc_table_bytes;
  uint64_t generation = 0;
  uint64_t doc_count = 0;
};

/// Builds the complete page-aligned store image in memory: meta page,
/// spec, doc table, fenced dictionaries, and block-compressed posting
/// streams. Fails when `page_size` is not a multiple of
/// kMinStorePageSize or a dictionary key cannot fit in one page.
Result<std::string> BuildStoreImage(const StoreWriterInput& input,
                                    uint32_t page_size = kDefaultPageSize);

/// One key's already-encoded posting/region stream — the raw currency of
/// scrub/repair (see qof/store/scrub.h), which rebuilds a store from the
/// surviving streams without decoding them.
struct RawStreamEntry {
  std::string key;
  std::string stream;  // encoded stream bytes (skip-table header + blocks)
  uint64_t header_len = 0;
  uint64_t count = 0;
};

/// Assembles a store image from pre-encoded pieces: opaque spec /
/// doc-table bytes and already stream-encoded region/word entries
/// (sorted by key). Generation, doc_count, and universe_size are carried
/// over from `meta_like`; section extents, fences, and stream offsets are
/// recomputed. The raw sibling of BuildStoreImage.
Result<std::string> BuildStoreImageFromRaw(
    const StoreMeta& meta_like, std::string_view spec_bytes,
    std::string_view doc_table_bytes,
    const std::vector<RawStreamEntry>& regions,
    const std::vector<RawStreamEntry>& words,
    uint32_t page_size = kDefaultPageSize);

}  // namespace qof

#endif  // QOF_STORE_STORE_WRITER_H_
