#ifndef QOF_STORE_STORE_WRITER_H_
#define QOF_STORE_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/region/region_index.h"
#include "qof/store/store_format.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// Everything a paged store image is assembled from. The spec and the
/// per-document fingerprint table arrive pre-encoded (the engine's
/// index_io owns those encodings; the store treats them as opaque,
/// checksummed sections), the indexes are walked directly. Both indexes
/// must be fully resident (no lazy backing source still attached).
struct StoreWriterInput {
  const RegionIndex* regions = nullptr;
  const WordIndex* words = nullptr;
  std::string_view spec_bytes;
  std::string_view doc_table_bytes;
  uint64_t generation = 0;
  uint64_t doc_count = 0;
};

/// Builds the complete page-aligned store image in memory: meta page,
/// spec, doc table, fenced dictionaries, and block-compressed posting
/// streams. Fails when `page_size` is not a multiple of
/// kMinStorePageSize or a dictionary key cannot fit in one page.
Result<std::string> BuildStoreImage(const StoreWriterInput& input,
                                    uint32_t page_size = kDefaultPageSize);

}  // namespace qof

#endif  // QOF_STORE_STORE_WRITER_H_
