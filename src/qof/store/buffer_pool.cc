#include "qof/store/buffer_pool.h"

#include <algorithm>

#include "qof/exec/exec_context.h"

namespace qof {

PageType PageRef::type() const { return pool_->frames_[frame_].header.type; }

uint32_t PageRef::page_no() const { return pool_->frames_[frame_].page_no; }

std::string_view PageRef::payload() const {
  const BufferPool::Frame& f = pool_->frames_[frame_];
  return std::string_view(f.data.data() + kPageHeaderSize,
                          f.header.payload_len);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(const PagedFile* file, BufferPoolOptions options)
    : file_(file), options_(options) {
  if (options_.capacity_pages == 0) options_.capacity_pages = 1;
  // Frames never relocate: PageRef readers dereference frames_[i] without
  // the mutex, which is only safe because this vector never reallocates.
  frames_.reserve(options_.capacity_pages);
  stats_.capacity_pages = options_.capacity_pages;
  touched_.resize(file_->num_pages(), false);
}

void BufferPool::Unpin(uint32_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  --frames_[frame].pins;
}

Result<uint32_t> BufferPool::PickVictimLocked() {
  if (frames_.size() < options_.capacity_pages) {
    frames_.emplace_back();
    return static_cast<uint32_t>(frames_.size() - 1);
  }
  // Clock second-chance: one lap forgives ref bits, the second finds any
  // unpinned frame; more laps cannot change the answer.
  for (size_t scanned = 0; scanned < 2 * frames_.size(); ++scanned) {
    uint32_t f = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    Frame& frame = frames_[f];
    if (frame.pins > 0 && !options_.inject_evict_pinned) continue;
    if (frame.ref_bit) {
      frame.ref_bit = false;
      continue;
    }
    return f;
  }
  return Status::Internal(
      "buffer pool: every frame is pinned (capacity " +
      std::to_string(options_.capacity_pages) +
      " pages); unpin cursors or open the store with a larger pool");
}

Result<PageRef> BufferPool::Fetch(uint32_t page_no, FetchIo* io) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetches;
  auto it = page_to_frame_.find(page_no);
  if (it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    frame.ref_bit = true;
    ++frame.pins;
    ++stats_.hits;
    if (frame.prefetched) {
      // First demand use of a prefetched frame: the hint paid off.
      frame.prefetched = false;
      ++stats_.prefetch_hits;
      if (io != nullptr) ++io->prefetch_hits;
    }
    return PageRef(this, it->second);
  }

  // A miss does I/O: the one place the disk tier can stall, so it is also
  // where a governed call's deadline/cancellation is honored.
  if (const ExecContext* ctx = ExecContext::CurrentThread()) {
    QOF_RETURN_IF_ERROR(ctx->Check());
  }

  QOF_ASSIGN_OR_RETURN(uint32_t f, PickVictimLocked());
  Frame& frame = frames_[f];
  if (frame.valid) {
    page_to_frame_.erase(frame.page_no);
    frame.valid = false;
    frame.prefetched = false;
    ++stats_.evictions;
  }
  // One retry on a read error: transient EIO (a loose cable, a busy
  // controller) should not fail a query that a re-read would satisfy. A
  // second failure is surfaced — and the frame stays invalid, so a bad
  // read is never cached. The frame buffer is cleared before each
  // attempt: the page checksum covers content only (not the page number),
  // so a read that "succeeds" without transferring every byte into a
  // buffer still holding the evicted page's image would otherwise pass
  // verification and cache the *previous* page under the new number.
  frame.data.clear();
  ++stats_.read_calls;
  if (io != nullptr) ++io->read_calls;
  Status read = file_->ReadPage(page_no, &frame.data);
  if (!read.ok()) {
    ++stats_.read_retries;
    ++stats_.read_calls;
    if (io != nullptr) ++io->read_calls;
    frame.data.clear();
    read = file_->ReadPage(page_no, &frame.data);
    if (!read.ok()) {
      ++stats_.io_errors;
      return read;
    }
  }
  if (frame.data.size() != file_->page_size()) {
    ++stats_.io_errors;
    return Status::Internal(
        "buffer pool: short read of page " + std::to_string(page_no) +
        " (" + std::to_string(frame.data.size()) + " of " +
        std::to_string(file_->page_size()) + " bytes)");
  }
  ++stats_.misses;
  ++stats_.pages_read;
  stats_.bytes_read += file_->page_size();
  if (io != nullptr) ++io->pages_read;
  if (!touched_[page_no]) {
    touched_[page_no] = true;
    ++stats_.pages_touched;
  }
  auto header = ParsePage(frame.data, file_->page_size(), page_no);
  if (!header.ok()) {
    ++stats_.checksum_failures;
    return header.status();
  }
  frame.header = *header;
  frame.page_no = page_no;
  frame.valid = true;
  frame.ref_bit = true;
  frame.prefetched = false;
  frame.pins = 1;
  page_to_frame_.emplace(page_no, f);
  return PageRef(this, f);
}

void BufferPool::PrefetchHint(uint32_t first, uint32_t n, FetchIo* io) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0 || first >= file_->num_pages()) return;
  n = std::min<uint32_t>(n, file_->num_pages() - first);
  // Useless beyond capacity: the tail of an over-long run would evict its
  // own head before any Fetch sees it.
  n = std::min<uint32_t>(n, options_.capacity_pages);
  // Prefetch I/O is governed exactly like demand I/O — a cancelled or
  // expired call must not keep the disk busy. Advisory, so a tripped
  // limit silently drops the hint; the demand path reports it.
  if (const ExecContext* ctx = ExecContext::CurrentThread()) {
    if (!ctx->Check().ok()) return;
  }
  std::string batch;
  uint32_t run_first = 0, run_len = 0;
  bool full = false;  // only pinned frames remain — stop admitting
  auto admit_run = [&]() {
    if (run_len == 0) return;
    ++stats_.read_calls;
    if (io != nullptr) ++io->read_calls;
    Status read = file_->ReadPages(run_first, run_len, &batch);
    if (read.ok() &&
        batch.size() != static_cast<size_t>(run_len) * file_->page_size()) {
      read = Status::Internal("buffer pool: short batched read");
    }
    if (!read.ok()) {
      run_len = 0;
      return;  // not admitted; the demand Fetch will retry and report
    }
    for (uint32_t i = 0; i < run_len; ++i) {
      uint32_t page_no = run_first + i;
      auto victim = PickVictimLocked();
      if (!victim.ok()) {
        full = true;
        run_len = 0;
        return;
      }
      Frame& frame = frames_[*victim];
      if (frame.valid) {
        page_to_frame_.erase(frame.page_no);
        frame.valid = false;
        frame.prefetched = false;
        ++stats_.evictions;
      }
      frame.data.assign(batch,
                        static_cast<size_t>(i) * file_->page_size(),
                        file_->page_size());
      auto header = ParsePage(frame.data, file_->page_size(), page_no);
      if (!header.ok()) continue;  // demand Fetch will fail loudly
      ++stats_.pages_read;
      ++stats_.prefetch_pages;
      stats_.bytes_read += file_->page_size();
      if (io != nullptr) ++io->pages_read;
      if (!touched_[page_no]) {
        touched_[page_no] = true;
        ++stats_.pages_touched;
      }
      frame.header = *header;
      frame.page_no = page_no;
      frame.valid = true;
      // ref_bit stays false: an unused prefetched frame is the clock's
      // first choice, so speculation never outcompetes the working set.
      frame.ref_bit = false;
      frame.prefetched = true;
      frame.pins = 0;
      page_to_frame_.emplace(page_no, *victim);
    }
    run_len = 0;
  };
  for (uint32_t p = first; p < first + n && !full; ++p) {
    if (page_to_frame_.count(p) != 0) {
      admit_run();
      continue;
    }
    if (run_len == 0) {
      run_first = p;
      run_len = 1;
    } else {
      ++run_len;
    }
  }
  if (!full) admit_run();
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats out = stats_;
  out.resident_pages = 0;
  out.pinned_frames = 0;
  for (const Frame& f : frames_) {
    if (f.valid) ++out.resident_pages;
    if (f.pins > 0) ++out.pinned_frames;
  }
  return out;
}

void BufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t capacity = stats_.capacity_pages;
  stats_ = BufferPoolStats{};
  stats_.capacity_pages = capacity;
  touched_.assign(touched_.size(), false);
}

}  // namespace qof
