#ifndef QOF_STORE_BUFFER_POOL_H_
#define QOF_STORE_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

struct BufferPoolOptions {
  /// Frames the pool holds resident. Small values force eviction in tests;
  /// the engine's default keeps the hot dictionary and posting pages of a
  /// working set pinned-or-resident.
  uint32_t capacity_pages = 256;
  /// Fault injection for the fuzz harness only: the clock hand treats
  /// pinned frames as evictable, so a page can be stolen out from under a
  /// live PageRef — the classic buffer-manager bug the disk-tier fuzz leg
  /// must catch as a differential mismatch or a decode error.
  bool inject_evict_pinned = false;
};

/// Counters the store-smoke gate and `qof_store inspect` report.
struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;       // demand pages read (and verified) from disk
  uint64_t evictions = 0;
  uint64_t checksum_failures = 0;
  uint64_t io_errors = 0;      // reads that failed even after the retry
  uint64_t read_retries = 0;   // transient I/O errors absorbed by a retry
  uint64_t pages_touched = 0;  // distinct pages ever fetched from disk
  uint64_t bytes_read = 0;     // pages_read * page_size
  uint64_t read_calls = 0;     // VFS read invocations (retries included)
  uint64_t pages_read = 0;     // misses + prefetch_pages
  uint64_t prefetch_pages = 0;  // pages admitted by PrefetchHint
  uint64_t prefetch_hits = 0;   // fetches served by a prefetched frame
  uint32_t capacity_pages = 0;
  uint32_t resident_pages = 0;
  uint32_t pinned_frames = 0;
};

/// Per-call I/O attribution: a caller that passes one of these to Fetch /
/// PrefetchHint gets its own share of the pool counters added in — exact
/// even when concurrent queries share the pool (a stats() delta is not).
struct FetchIo {
  uint64_t read_calls = 0;
  uint64_t pages_read = 0;
  uint64_t prefetch_hits = 0;

  void Add(const FetchIo& other) {
    read_calls += other.read_calls;
    pages_read += other.pages_read;
    prefetch_hits += other.prefetch_hits;
  }
};

class BufferPool;

/// A pinned page: holds one reference on its frame; the frame cannot be
/// evicted (and its bytes cannot move) until every PageRef drops. Movable,
/// not copyable.
class PageRef {
 public:
  PageRef() = default;
  ~PageRef() { Release(); }
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageType type() const;
  uint32_t page_no() const;
  /// The page's payload bytes (checksum already verified at fetch).
  std::string_view payload() const;

  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, uint32_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
};

/// Pinning buffer manager over a PagedFile (the redbase architecture:
/// fixed-size pages, refcounted frames, clock second-chance eviction).
/// Fetch verifies the page checksum on every miss, so damaged pages fail
/// loudly before any payload byte is decoded. Thread-safe; fetches
/// serialize on one mutex (reads are single-digit-microsecond page copies,
/// and the engine's parallelism is at the query level).
///
/// Frame bytes are allocated once per frame and overwritten in place on
/// eviction, so a stale PageRef held across an (injected) evict-pinned bug
/// reads wrong-but-valid memory — a differential mismatch, not UB.
class BufferPool {
 public:
  BufferPool(const PagedFile* file, BufferPoolOptions options = {});

  /// Pins `page_no`, reading and verifying it on a miss. Fails when every
  /// frame is pinned (the caller holds too many pages for the pool size),
  /// when the page fails its checksum, and when the calling thread's
  /// ExecContext (ExecContext::CurrentThread) has tripped a governance
  /// limit. `io` (optional) accumulates this call's share of the I/O
  /// counters.
  Result<PageRef> Fetch(uint32_t page_no, FetchIo* io = nullptr);

  /// Advisory batched readahead: admits the not-yet-resident pages of
  /// [first, first + n) as unpinned, clock-evictable frames, reading each
  /// maximal non-resident run with one ReadPages call. Never displaces a
  /// pinned frame (admission stops when only pinned frames remain), never
  /// re-reads a resident page, and obeys the calling thread's governance
  /// the same way Fetch does — a tripped deadline or cancellation makes
  /// the hint a no-op. Failures are swallowed: a page whose batch read or
  /// checksum fails is simply not admitted, and the demand Fetch that
  /// actually needs it surfaces the error. `io` accumulates the read
  /// calls and pages read on the caller's behalf.
  void PrefetchHint(uint32_t first, uint32_t n, FetchIo* io = nullptr);

  BufferPoolStats stats() const;
  /// Forgets which pages have been touched and zeroes the counters (the
  /// benches measure per-query page footprints this way).
  void ResetStats();

  uint32_t page_size() const { return file_->page_size(); }
  uint32_t num_pages() const { return file_->num_pages(); }

 private:
  friend class PageRef;

  struct Frame {
    uint32_t page_no = 0;
    bool valid = false;
    bool ref_bit = false;
    /// Admitted by PrefetchHint and not yet pinned — the first Fetch that
    /// lands on it counts a prefetch hit and clears the flag.
    bool prefetched = false;
    uint32_t pins = 0;
    PageHeader header;
    std::string data;  // page_size bytes, allocated once, reused
  };

  void Unpin(uint32_t frame);
  /// Picks a victim frame (clock second-chance, pinned frames skipped
  /// unless the evict-pinned bug is injected) or grows the pool while
  /// below capacity. Returns the frame index or an error when every frame
  /// is pinned.
  Result<uint32_t> PickVictimLocked();

  const PagedFile* file_;
  BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<uint32_t, uint32_t> page_to_frame_;
  uint32_t clock_hand_ = 0;
  BufferPoolStats stats_;
  std::vector<bool> touched_;  // by page_no, for stats_.pages_touched
};

}  // namespace qof

#endif  // QOF_STORE_BUFFER_POOL_H_
