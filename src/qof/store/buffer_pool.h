#ifndef QOF_STORE_BUFFER_POOL_H_
#define QOF_STORE_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

struct BufferPoolOptions {
  /// Frames the pool holds resident. Small values force eviction in tests;
  /// the engine's default keeps the hot dictionary and posting pages of a
  /// working set pinned-or-resident.
  uint32_t capacity_pages = 256;
  /// Fault injection for the fuzz harness only: the clock hand treats
  /// pinned frames as evictable, so a page can be stolen out from under a
  /// live PageRef — the classic buffer-manager bug the disk-tier fuzz leg
  /// must catch as a differential mismatch or a decode error.
  bool inject_evict_pinned = false;
};

/// Counters the store-smoke gate and `qof_store inspect` report.
struct BufferPoolStats {
  uint64_t fetches = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;       // pages read (and verified) from disk
  uint64_t evictions = 0;
  uint64_t checksum_failures = 0;
  uint64_t io_errors = 0;      // reads that failed even after the retry
  uint64_t read_retries = 0;   // transient I/O errors absorbed by a retry
  uint64_t pages_touched = 0;  // distinct pages ever fetched from disk
  uint64_t bytes_read = 0;     // misses * page_size
  uint32_t capacity_pages = 0;
  uint32_t resident_pages = 0;
  uint32_t pinned_frames = 0;
};

class BufferPool;

/// A pinned page: holds one reference on its frame; the frame cannot be
/// evicted (and its bytes cannot move) until every PageRef drops. Movable,
/// not copyable.
class PageRef {
 public:
  PageRef() = default;
  ~PageRef() { Release(); }
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), frame_(other.frame_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageType type() const;
  uint32_t page_no() const;
  /// The page's payload bytes (checksum already verified at fetch).
  std::string_view payload() const;

  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, uint32_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
};

/// Pinning buffer manager over a PagedFile (the redbase architecture:
/// fixed-size pages, refcounted frames, clock second-chance eviction).
/// Fetch verifies the page checksum on every miss, so damaged pages fail
/// loudly before any payload byte is decoded. Thread-safe; fetches
/// serialize on one mutex (reads are single-digit-microsecond page copies,
/// and the engine's parallelism is at the query level).
///
/// Frame bytes are allocated once per frame and overwritten in place on
/// eviction, so a stale PageRef held across an (injected) evict-pinned bug
/// reads wrong-but-valid memory — a differential mismatch, not UB.
class BufferPool {
 public:
  BufferPool(const PagedFile* file, BufferPoolOptions options = {});

  /// Pins `page_no`, reading and verifying it on a miss. Fails when every
  /// frame is pinned (the caller holds too many pages for the pool size),
  /// when the page fails its checksum, and when the calling thread's
  /// ExecContext (ExecContext::CurrentThread) has tripped a governance
  /// limit.
  Result<PageRef> Fetch(uint32_t page_no);

  BufferPoolStats stats() const;
  /// Forgets which pages have been touched and zeroes the counters (the
  /// benches measure per-query page footprints this way).
  void ResetStats();

  uint32_t page_size() const { return file_->page_size(); }
  uint32_t num_pages() const { return file_->num_pages(); }

 private:
  friend class PageRef;

  struct Frame {
    uint32_t page_no = 0;
    bool valid = false;
    bool ref_bit = false;
    uint32_t pins = 0;
    PageHeader header;
    std::string data;  // page_size bytes, allocated once, reused
  };

  void Unpin(uint32_t frame);
  /// Picks a victim frame (clock second-chance, pinned frames skipped
  /// unless the evict-pinned bug is injected) or grows the pool while
  /// below capacity. Returns the frame index or an error when every frame
  /// is pinned.
  Result<uint32_t> PickVictimLocked();

  const PagedFile* file_;
  BufferPoolOptions options_;

  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::unordered_map<uint32_t, uint32_t> page_to_frame_;
  uint32_t clock_hand_ = 0;
  BufferPoolStats stats_;
  std::vector<bool> touched_;  // by page_no, for stats_.pages_touched
};

}  // namespace qof

#endif  // QOF_STORE_BUFFER_POOL_H_
