#ifndef QOF_STORE_STORE_FORMAT_H_
#define QOF_STORE_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/store/page.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// The paged store's file layout ("QOFSTOR1"): page 0 is the meta page;
/// the seven sections follow as contiguous page extents in StoreSection
/// order. Byte-stream sections (spec, doc table, fences, postings) are
/// chopped at the page payload capacity, so stream offset → page is plain
/// arithmetic; dictionary sections are page-packed (each page is a
/// self-contained sorted run of whole entries) with a fence section —
/// every dict page's first key — loaded eagerly at open to direct lookups
/// to a single dict page.
///
/// Meta page payload:
///   8 bytes  magic "QOFSTOR1"
///   u32      page_size
///   u64      generation        (maintenance generation, as in QOFIDX3)
///   u64      doc_count
///   u64      universe_size     (|union of region instances|, persisted so
///                               cost estimates never force a full load)
///   u64      region_names
///   u64      total_regions
///   u64      distinct_words
///   u64      total_postings
///   u64      body_bytes        (uncompressed v3-body-equivalent bytes of
///                               the postings payload, for ratio reporting)
///   u8       section count (7)
///   per section: u8 id, u32 first_page, u32 num_pages, u64 byte_len
///
/// Dict page payload: u32 entry count, then per entry PutString(key),
/// varint byte_off (into the postings section), varint byte_len, varint
/// header_len (bytes of the stream's header + skip table), varint count.
/// Fence stream: u32 dict page count, then PutString(first key) per page.

inline constexpr char kStoreMagic[] = "QOFSTOR1";
inline constexpr size_t kStoreMagicLen = 8;
/// Store pages must be multiples of this (and at least this big): the
/// meta page is decoded from the file's first 256 bytes before the true
/// page size is known.
inline constexpr uint32_t kMinStorePageSize = 256;

enum class StoreSection : uint8_t {
  kSpec = 0,
  kDocTable = 1,
  kRegionFence = 2,
  kRegionDict = 3,
  kWordFence = 4,
  kWordDict = 5,
  kPostings = 6,
};
inline constexpr int kNumStoreSections = 7;

inline PageType SectionPageType(StoreSection s) {
  switch (s) {
    case StoreSection::kSpec: return PageType::kSpec;
    case StoreSection::kDocTable: return PageType::kDocTable;
    case StoreSection::kRegionFence: return PageType::kFence;
    case StoreSection::kRegionDict: return PageType::kRegionDict;
    case StoreSection::kWordFence: return PageType::kFence;
    case StoreSection::kWordDict: return PageType::kWordDict;
    case StoreSection::kPostings: return PageType::kPostings;
  }
  return PageType::kFree;
}

struct SectionInfo {
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
  uint64_t byte_len = 0;
};

struct StoreMeta {
  uint32_t page_size = kDefaultPageSize;
  uint64_t generation = 0;
  uint64_t doc_count = 0;
  uint64_t universe_size = 0;
  uint64_t region_names = 0;
  uint64_t total_regions = 0;
  uint64_t distinct_words = 0;
  uint64_t total_postings = 0;
  uint64_t body_bytes = 0;
  SectionInfo sections[kNumStoreSections];

  const SectionInfo& section(StoreSection s) const {
    return sections[static_cast<int>(s)];
  }
};

void EncodeStoreMeta(const StoreMeta& meta, std::string* out);
Result<StoreMeta> DecodeStoreMeta(std::string_view payload);

}  // namespace qof

#endif  // QOF_STORE_STORE_FORMAT_H_
