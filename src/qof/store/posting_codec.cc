#include "qof/store/posting_codec.h"

#include <algorithm>

namespace qof {
namespace {

/// Appends the skip table + concatenated block bytes for blocks already
/// encoded into `block_bytes` with metadata in `blocks`. Returns the
/// header length (everything before the block area).
uint64_t AppendStream(uint64_t total_count,
                      const std::vector<PostingBlockMeta>& blocks,
                      const std::string& block_bytes, std::string* out) {
  size_t start = out->size();
  PutVarint(total_count, out);
  PutVarint(blocks.size(), out);
  uint64_t prev_last = 0;
  for (const PostingBlockMeta& b : blocks) {
    PutVarint(b.first - prev_last, out);
    PutVarint(b.last - b.first, out);
    // max_end >= last always: the block's last region starts at `last`
    // and ends no earlier (posting streams set max_end == last).
    PutVarint(b.max_end - b.last, out);
    PutVarint(b.count, out);
    PutVarint(b.byte_len, out);
    prev_last = b.last;
  }
  uint64_t header_bytes = out->size() - start;
  out->append(block_bytes);
  return header_bytes;
}

}  // namespace

uint64_t EncodePostingStream(const std::vector<uint64_t>& values,
                             std::string* out) {
  std::vector<PostingBlockMeta> blocks;
  std::string block_bytes;
  for (size_t i = 0; i < values.size(); i += kPostingBlockEntries) {
    size_t n = std::min<size_t>(kPostingBlockEntries, values.size() - i);
    PostingBlockMeta m;
    m.first = values[i];
    m.last = values[i + n - 1];
    m.max_end = m.last;
    m.count = static_cast<uint32_t>(n);
    m.byte_off = block_bytes.size();
    for (size_t j = 1; j < n; ++j) {
      PutVarint(values[i + j] - values[i + j - 1], &block_bytes);
    }
    m.byte_len = static_cast<uint32_t>(block_bytes.size() - m.byte_off);
    blocks.push_back(m);
  }
  return AppendStream(values.size(), blocks, block_bytes, out);
}

uint64_t EncodeRegionStream(const std::vector<Region>& regions,
                            std::string* out) {
  std::vector<PostingBlockMeta> blocks;
  std::string block_bytes;
  for (size_t i = 0; i < regions.size(); i += kPostingBlockEntries) {
    size_t n = std::min<size_t>(kPostingBlockEntries, regions.size() - i);
    PostingBlockMeta m;
    m.first = regions[i].start;
    m.last = regions[i + n - 1].start;
    m.max_end = regions[i].end;
    m.count = static_cast<uint32_t>(n);
    m.byte_off = block_bytes.size();
    PutVarint(regions[i].length(), &block_bytes);
    for (size_t j = 1; j < n; ++j) {
      m.max_end = std::max(m.max_end, regions[i + j].end);
      PutVarint(regions[i + j].start - regions[i + j - 1].start,
                &block_bytes);
      PutVarint(regions[i + j].length(), &block_bytes);
    }
    m.byte_len = static_cast<uint32_t>(block_bytes.size() - m.byte_off);
    blocks.push_back(m);
  }
  return AppendStream(regions.size(), blocks, block_bytes, out);
}

Result<PostingStreamHeader> DecodeStreamHeader(std::string_view stream,
                                               const std::string& what) {
  WireReader reader(stream, "posting stream of " + what);
  PostingStreamHeader h;
  QOF_ASSIGN_OR_RETURN(h.total_count, reader.Varint());
  QOF_ASSIGN_OR_RETURN(uint64_t num_blocks, reader.Varint());
  // Each skip entry is at least 5 bytes; reject counts the remaining
  // header bytes cannot hold before reserving.
  QOF_RETURN_IF_ERROR(reader.CheckCount(num_blocks, 5));
  h.blocks.reserve(num_blocks);
  uint64_t prev_last = 0;
  uint64_t byte_off = 0;
  uint64_t decoded = 0;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    PostingBlockMeta m;
    QOF_ASSIGN_OR_RETURN(uint64_t first_delta, reader.Varint());
    QOF_ASSIGN_OR_RETURN(uint64_t span, reader.Varint());
    QOF_ASSIGN_OR_RETURN(uint64_t end_excess, reader.Varint());
    QOF_ASSIGN_OR_RETURN(uint64_t count, reader.Varint());
    QOF_ASSIGN_OR_RETURN(uint64_t byte_len, reader.Varint());
    m.first = prev_last + first_delta;
    m.last = m.first + span;
    m.max_end = m.last + end_excess;
    if (count == 0 || count > kPostingBlockEntries ||
        byte_len > (uint64_t{1} << 32)) {
      return Status::InvalidArgument("posting stream of " + what +
                                     ": corrupt skip entry");
    }
    m.count = static_cast<uint32_t>(count);
    m.byte_off = byte_off;
    m.byte_len = static_cast<uint32_t>(byte_len);
    byte_off += byte_len;
    decoded += count;
    prev_last = m.last;
    h.blocks.push_back(m);
  }
  if (decoded != h.total_count) {
    return Status::InvalidArgument("posting stream of " + what +
                                   ": skip table counts disagree with the "
                                   "stream total");
  }
  h.header_bytes = reader.Position();
  return h;
}

Status DecodePostingBlock(const PostingBlockMeta& meta,
                          std::string_view bytes, const std::string& what,
                          std::vector<uint64_t>* out) {
  WireReader reader(bytes, "posting block of " + what);
  uint64_t value = meta.first;
  out->push_back(value);
  for (uint32_t i = 1; i < meta.count; ++i) {
    QOF_ASSIGN_OR_RETURN(uint64_t delta, reader.Varint());
    value += delta;
    out->push_back(value);
  }
  if (!reader.AtEnd() || value != meta.last) {
    return Status::InvalidArgument("posting block of " + what +
                                   ": decoded bytes disagree with the skip "
                                   "entry");
  }
  return Status::OK();
}

Status DecodeRegionBlock(const PostingBlockMeta& meta, std::string_view bytes,
                         const std::string& what, std::vector<Region>* out) {
  WireReader reader(bytes, "region block of " + what);
  uint64_t start = meta.first;
  QOF_ASSIGN_OR_RETURN(uint64_t length, reader.Varint());
  out->push_back({start, start + length});
  uint64_t max_end = start + length;
  for (uint32_t i = 1; i < meta.count; ++i) {
    QOF_ASSIGN_OR_RETURN(uint64_t delta, reader.Varint());
    QOF_ASSIGN_OR_RETURN(length, reader.Varint());
    start += delta;
    max_end = std::max(max_end, start + length);
    out->push_back({start, start + length});
  }
  // The containment kernels trust max_end to skip blocks without
  // decoding; verify it whenever a block IS decoded.
  if (!reader.AtEnd() || start != meta.last || max_end != meta.max_end) {
    return Status::InvalidArgument("region block of " + what +
                                   ": decoded bytes disagree with the skip "
                                   "entry");
  }
  return Status::OK();
}

}  // namespace qof
