#ifndef QOF_STORE_VFS_H_
#define QOF_STORE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// When journal appends reach the platter (see DurableIndexDir and the
/// qof_index CLI's --sync-policy flag):
///   kAlways — fsync after every appended frame; an acknowledged mutation
///             survives power loss (the durability the manifest protocol
///             assumes).
///   kBatch  — fsync once per batch boundary (explicit Sync calls);
///             a crash can lose the unsynced suffix but never tears
///             frames that were already acknowledged durable.
///   kNone   — never fsync; fastest, survives process crashes (the OS
///             flushes eventually) but not power loss.
enum class SyncPolicy {
  kAlways = 0,
  kBatch = 1,
  kNone = 2,
};

/// "always" / "batch" / "none".
std::string_view SyncPolicyName(SyncPolicy policy);
Result<SyncPolicy> SyncPolicyFromName(std::string_view name);

/// Read-only random access to one file. Implementations must be safe for
/// concurrent ReadAt calls (the buffer pool fetches under its own lock,
/// but tools read the same PagedFile directly).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual uint64_t size() const = 0;

  /// Reads exactly `n` bytes at `offset` into `buf` (resized to `n`).
  /// Reading past EOF or hitting an I/O error is an error, never a short
  /// read.
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* buf) const = 0;
};

/// Sequential append-only writer. Append buffers into the OS (or the
/// fault VFS's volatile image); Sync makes everything appended so far
/// durable. Close without Sync leaves the data at the OS's mercy — the
/// distinction FaultVfs's power cut makes observable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// fsync: everything appended so far survives power loss.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The storage substrate every on-disk artifact goes through: the paged
/// store, index blobs, journals, manifests, and the CLIs all do their
/// I/O via a Vfs so tests and the crash-sweep fuzzer leg can substitute
/// FaultVfs (fault_vfs.h) and make every failure injectable.
class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) = 0;

  /// Opens `path` for writing. `truncate` replaces any existing content;
  /// otherwise the file is created if absent and appended to. Creation
  /// makes the directory entry *volatile* until SyncDir on the parent —
  /// the gap the planted skip-dir-sync bug widens into data loss.
  virtual Result<std::unique_ptr<WritableFile>> OpenWrite(
      const std::string& path, bool truncate) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The
  /// rename itself is durable only after SyncDir on the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes — journal torn-tail repair.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// fsync on the directory: creations, renames, and removals inside it
  /// become durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Entry names (not full paths) in `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Creates `dir` (OK if it already exists).
  virtual Status CreateDir(const std::string& dir) = 0;
};

/// POSIX-backed Vfs: pread for reads, write+fsync for durability, rename
/// for atomic replace, fsync-of-directory-fd for entry durability.
class RealVfs : public Vfs {
 public:
  Result<std::unique_ptr<RandomAccessFile>> OpenRead(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenWrite(const std::string& path,
                                                  bool truncate) override;
  bool Exists(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;
};

/// The process-wide Vfs all storage code routes through: RealVfs unless a
/// ScopedVfs override is installed. Lock-free read, like
/// FaultInjector::Current().
Vfs* DefaultVfs();

/// Installs `vfs` as the DefaultVfs for the current scope and restores
/// the previous one on destruction. Not reentrant across threads: tests
/// and the fuzzer install one override per case.
class ScopedVfs {
 public:
  explicit ScopedVfs(Vfs* vfs);
  ~ScopedVfs();
  ScopedVfs(const ScopedVfs&) = delete;
  ScopedVfs& operator=(const ScopedVfs&) = delete;

 private:
  Vfs* previous_;
};

/// The directory part of `path` ("." when there is no slash) — the
/// parent that must be SyncDir'd for `path`'s entry to be durable.
std::string ParentDir(const std::string& path);

/// Reads the whole of `path` through `vfs`.
Result<std::string> VfsReadFile(Vfs* vfs, const std::string& path);

/// The durable-write protocol every published artifact uses: write
/// `bytes` to `path`.tmp, fsync, rename over `path`, fsync the parent
/// directory. A crash at any step leaves either the old file or the new
/// one at `path` — never a partial image. The temp file is removed on
/// failure (best effort).
Status AtomicWriteFile(Vfs* vfs, const std::string& path,
                       std::string_view bytes);

}  // namespace qof

#endif  // QOF_STORE_VFS_H_
