#include "qof/store/fault_vfs.h"

#include <algorithm>
#include <set>
#include <utility>

namespace qof {
namespace {

/// xorshift64* — deterministic, seed-driven; the same seed replays the
/// same writeback decisions (the repro contract).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

 private:
  uint64_t state_;
};

uint64_t HashPath(const std::string& path) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// What a file's content looks like after power loss: the durable image,
/// plus an adversarial selection of unsynced sectors that "happened to be
/// written back". Sectors beyond the durable length may survive as their
/// live bytes or as garbage (size metadata persisted, data blocks not) —
/// exactly the torn shapes checksums and ParseJournal must absorb.
std::string MergeAfterPowerCut(const std::string& durable,
                               const std::string& live, uint32_t sector,
                               Rng* rng) {
  if (durable == live) return durable;
  const size_t lo = std::min(durable.size(), live.size());
  const size_t hi = std::max(durable.size(), live.size());
  size_t len = 0;
  switch (rng->Next() % 3) {
    case 0: len = durable.size(); break;
    case 1: len = live.size(); break;
    default: {
      // A sector-aligned point strictly between the two sizes.
      size_t span = hi - lo;
      len = lo + (rng->Next() % (span + 1)) / sector * sector;
      break;
    }
  }
  std::string out(len, '\0');
  for (size_t off = 0; off < len; off += sector) {
    const size_t n = std::min<size_t>(sector, len - off);
    const bool in_durable = off < durable.size();
    const bool in_live = off < live.size();
    if (in_durable && in_live) {
      const std::string& pick =
          (rng->Next() & 1) != 0 ? live : durable;
      for (size_t i = 0; i < n; ++i) {
        out[off + i] = off + i < pick.size() ? pick[off + i] : '\0';
      }
    } else if (in_live) {
      // Unsynced extension: survives verbatim, or as garbage.
      if ((rng->Next() & 1) != 0) {
        for (size_t i = 0; i < n; ++i) {
          out[off + i] = off + i < live.size() ? live[off + i] : '\0';
        }
      } else {
        uint64_t noise = rng->Next();
        for (size_t i = 0; i < n; ++i) {
          out[off + i] = static_cast<char>((noise >> ((i % 8) * 8)) ^ 0x5a);
        }
      }
    } else if (in_durable) {
      for (size_t i = 0; i < n; ++i) {
        out[off + i] = off + i < durable.size() ? durable[off + i] : '\0';
      }
    }
  }
  return out;
}

}  // namespace

class FaultVfsReader : public RandomAccessFile {
 public:
  FaultVfsReader(FaultVfs* vfs, std::shared_ptr<FaultVfs::Inode> inode,
                 std::string path)
      : vfs_(vfs), inode_(std::move(inode)), path_(std::move(path)) {}

  uint64_t size() const override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    return inode_->live.size();
  }

  Status ReadAt(uint64_t offset, size_t n, std::string* buf) const override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return Status::Internal("fault vfs: power lost (read '" + path_ +
                              "')");
    }
    if (vfs_->fail_reads_ > 0) {
      --vfs_->fail_reads_;
      return Status::Internal("fault vfs: injected I/O error reading '" +
                              path_ + "'");
    }
    if (vfs_->short_reads_ > 0) {
      --vfs_->short_reads_;
      return Status::OK();  // injected short read: buf left untouched
    }
    if (offset + n > inode_->live.size()) {
      return Status::OutOfRange(
          "read past end of '" + path_ + "' (offset " +
          std::to_string(offset) + " + " + std::to_string(n) + " > " +
          std::to_string(inode_->live.size()) + ")");
    }
    buf->assign(inode_->live, offset, n);
    return Status::OK();
  }

 private:
  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::Inode> inode_;
  std::string path_;
};

class FaultVfsWriter : public WritableFile {
 public:
  FaultVfsWriter(FaultVfs* vfs, std::shared_ptr<FaultVfs::Inode> inode,
                 std::string path)
      : vfs_(vfs), inode_(std::move(inode)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    QOF_RETURN_IF_ERROR(vfs_->ChargeOpLocked("append"));
    if (vfs_->space_limit_ != ~uint64_t{0}) {
      uint64_t used = vfs_->LiveBytesLocked();
      uint64_t room = used < vfs_->space_limit_
                          ? vfs_->space_limit_ - used
                          : 0;
      if (data.size() > room) {
        // Short write: the prefix that fits lands, then the device is
        // full — the partial-artifact shape atomic replace must mask.
        inode_->live.append(data.substr(0, room));
        return Status::Internal("fault vfs: no space left writing '" +
                                path_ + "' (short write of " +
                                std::to_string(room) + " of " +
                                std::to_string(data.size()) + " bytes)");
      }
    }
    inode_->live.append(data);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    QOF_RETURN_IF_ERROR(vfs_->ChargeOpLocked("fsync"));
    inode_->durable = inode_->live;
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::Inode> inode_;
  std::string path_;
};

Status FaultVfs::ChargeOpLocked(const char* what) {
  if (crashed_ || op_count_ >= crash_at_op_) {
    crashed_ = true;
    return Status::Internal(std::string("fault vfs: power lost (") + what +
                            " at op " + std::to_string(op_count_) + ")");
  }
  ++op_count_;
  return Status::OK();
}

uint64_t FaultVfs::LiveBytesLocked() const {
  uint64_t total = 0;
  std::set<const Inode*> seen;
  for (const auto& [path, inode] : live_) {
    if (seen.insert(inode.get()).second) total += inode->live.size();
  }
  return total;
}

Result<std::unique_ptr<RandomAccessFile>> FaultVfs::OpenRead(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Internal("fault vfs: power lost (open '" + path + "')");
  }
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("fault vfs: cannot open '" + path + "'");
  }
  return std::unique_ptr<RandomAccessFile>(
      new FaultVfsReader(this, it->second, path));
}

Result<std::unique_ptr<WritableFile>> FaultVfs::OpenWrite(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) {
    // Creation is a mutating op: the new directory entry is live
    // immediately, durable only after SyncDir on the parent.
    QOF_RETURN_IF_ERROR(ChargeOpLocked("create"));
    it = live_.emplace(path, std::make_shared<Inode>()).first;
  } else if (truncate) {
    QOF_RETURN_IF_ERROR(ChargeOpLocked("truncate"));
    it->second->live.clear();
  }
  return std::unique_ptr<WritableFile>(
      new FaultVfsWriter(this, it->second, path));
}

bool FaultVfs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  QOF_RETURN_IF_ERROR(ChargeOpLocked("rename"));
  auto it = live_.find(from);
  if (it == live_.end()) {
    return Status::Internal("fault vfs: cannot rename missing '" + from +
                            "'");
  }
  std::shared_ptr<Inode> inode = it->second;
  live_.erase(it);
  live_[to] = std::move(inode);
  return Status::OK();
}

Status FaultVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  QOF_RETURN_IF_ERROR(ChargeOpLocked("remove"));
  if (live_.erase(path) == 0) {
    return Status::NotFound("fault vfs: cannot remove '" + path + "'");
  }
  return Status::OK();
}

Status FaultVfs::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  QOF_RETURN_IF_ERROR(ChargeOpLocked("truncate"));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("fault vfs: cannot truncate '" + path + "'");
  }
  if (size < it->second->live.size()) it->second->live.resize(size);
  return Status::OK();
}

Status FaultVfs::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  QOF_RETURN_IF_ERROR(ChargeOpLocked("dirsync"));
  if (skip_dir_sync_) return Status::OK();  // planted bug: silent no-op
  // Make the directory's live entries durable: additions, rebinds
  // (renames), and removals all persist together, like fsync on a dirfd.
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (ParentDir(it->first) == dir && live_.count(it->first) == 0) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (ParentDir(path) == dir) durable_[path] = inode;
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultVfs::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Internal("fault vfs: power lost (list '" + dir + "')");
  }
  if (dirs_.count(dir) == 0) {
    bool any = false;
    for (const auto& [path, inode] : live_) {
      if (ParentDir(path) == dir) { any = true; break; }
    }
    if (!any) {
      return Status::NotFound("fault vfs: cannot list directory '" + dir +
                              "'");
    }
  }
  std::vector<std::string> out;
  for (const auto& [path, inode] : live_) {
    if (ParentDir(path) == dir) {
      size_t slash = path.find_last_of('/');
      out.push_back(slash == std::string::npos ? path
                                               : path.substr(slash + 1));
    }
  }
  return out;
}

Status FaultVfs::CreateDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirs_.count(dir) > 0) return Status::OK();
  QOF_RETURN_IF_ERROR(ChargeOpLocked("mkdir"));
  dirs_.insert(dir);
  return Status::OK();
}

uint64_t FaultVfs::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

void FaultVfs::set_crash_at_op(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_op_ = k;
}

bool FaultVfs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultVfs::CutPower(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  // The namespace reverts to the durable mapping; each surviving file's
  // content is its durable image plus whatever unsynced sectors the
  // (seed-deterministic) writeback happened to push out before the cut.
  std::set<Inode*> merged;
  live_ = durable_;
  for (auto& [path, inode] : live_) {
    if (!merged.insert(inode.get()).second) continue;
    Rng rng(seed ^ HashPath(path));
    std::string after = MergeAfterPowerCut(inode->durable, inode->live,
                                           sector_bytes_, &rng);
    inode->live = after;
    inode->durable = std::move(after);
  }
  crashed_ = false;
  crash_at_op_ = ~uint64_t{0};
  op_count_ = 0;
  fail_reads_ = 0;
}

void FaultVfs::set_torn_sector_bytes(uint32_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  sector_bytes_ = bytes == 0 ? 1 : bytes;
}

void FaultVfs::set_fail_reads(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_reads_ = n;
}

void FaultVfs::set_short_reads(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  short_reads_ = n;
}

void FaultVfs::set_space_limit(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  space_limit_ = bytes;
}

void FaultVfs::set_skip_dir_sync(bool skip) {
  std::lock_guard<std::mutex> lock(mu_);
  skip_dir_sync_ = skip;
}

Result<std::string> FaultVfs::PeekFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("fault vfs: no file '" + path + "'");
  }
  return it->second->live;
}

std::vector<std::string> FaultVfs::LivePaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, inode] : live_) out.push_back(path);
  return out;
}

}  // namespace qof
