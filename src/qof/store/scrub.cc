#include "qof/store/scrub.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "qof/store/page.h"
#include "qof/store/paged_file.h"
#include "qof/store/posting_codec.h"
#include "qof/store/store_format.h"
#include "qof/store/store_writer.h"
#include "qof/store/vfs.h"
#include "qof/util/wire.h"

namespace qof {
namespace {

const char* SectionNameOf(const StoreMeta& meta, uint32_t page_no) {
  if (page_no == 0) return "meta";
  for (int i = 0; i < kNumStoreSections; ++i) {
    const SectionInfo& s = meta.sections[i];
    if (page_no >= s.first_page && page_no < s.first_page + s.num_pages) {
      switch (static_cast<StoreSection>(i)) {
        case StoreSection::kSpec: return "spec";
        case StoreSection::kDocTable: return "doc-table";
        case StoreSection::kRegionFence: return "region-fence";
        case StoreSection::kRegionDict: return "region-dict";
        case StoreSection::kWordFence: return "word-fence";
        case StoreSection::kWordDict: return "word-dict";
        case StoreSection::kPostings: return "postings";
      }
    }
  }
  return "unknown";
}

/// [begin, end) byte interval of a stream section.
struct Interval {
  uint64_t begin = 0;
  uint64_t end = 0;
};

bool Overlaps(const Interval& a, uint64_t begin, uint64_t end) {
  return a.begin < end && begin < a.end;
}

struct RawDictEntry {
  std::string key;
  uint64_t byte_off = 0;
  uint64_t byte_len = 0;
  uint64_t header_len = 0;
  uint64_t count = 0;
};

struct DocSpan {
  std::string name;
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Everything one pass over the pages learns; ScrubStore surfaces the
/// report, RepairStore reuses the assembled sections.
struct ScrubState {
  ScrubReport report;
  StoreMeta meta;
  /// Postings stream bytes, damaged pages zero-filled.
  std::string postings;
  /// Damaged byte intervals within the postings stream.
  std::vector<Interval> postings_damage;
  std::string spec_bytes;
  std::string doc_table_bytes;
  std::vector<RawDictEntry> region_entries;
  std::vector<RawDictEntry> word_entries;
  std::vector<DocSpan> doc_spans;
};

/// Decodes the doc table into per-document corpus spans (the implied
/// dense layout: 1-byte separators, as index_io's LayoutOf).
Status DecodeDocSpans(std::string_view bytes, std::vector<DocSpan>* out) {
  WireReader reader(bytes, "store doc table");
  QOF_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  QOF_RETURN_IF_ERROR(reader.CheckCount(count, 17));
  uint64_t off = 0;
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DocSpan span;
    QOF_ASSIGN_OR_RETURN(span.name, reader.String());
    QOF_ASSIGN_OR_RETURN(uint64_t size, reader.U64());
    QOF_ASSIGN_OR_RETURN(uint64_t fnv, reader.U64());
    (void)fnv;
    span.begin = off > 0 ? off + 1 : off;
    span.end = span.begin + size;
    off = span.end;
    out->push_back(std::move(span));
  }
  return Status::OK();
}

Status DecodeDictPagePayload(std::string_view payload,
                             std::vector<RawDictEntry>* out) {
  WireReader reader(payload, "store dictionary page");
  QOF_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  QOF_RETURN_IF_ERROR(reader.CheckCount(count, 8));
  for (uint32_t i = 0; i < count; ++i) {
    RawDictEntry e;
    QOF_ASSIGN_OR_RETURN(e.key, reader.String());
    QOF_ASSIGN_OR_RETURN(e.byte_off, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.byte_len, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.header_len, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.count, reader.Varint());
    out->push_back(std::move(e));
  }
  return Status::OK();
}

/// Names the documents whose spans [first, max_end] of the damaged
/// blocks cover.
void DocsCovering(const std::vector<DocSpan>& spans, uint64_t first,
                  uint64_t last, std::set<std::string>* out) {
  for (const DocSpan& span : spans) {
    if (span.begin <= last && first < span.end) out->insert(span.name);
  }
}

/// Attributes one damaged entry: decode its skip table (if intact) and
/// name the documents the damaged blocks touch.
InstanceDamage AttributeDamage(const ScrubState& state,
                               const RawDictEntry& entry, bool is_word) {
  InstanceDamage damage;
  damage.key = entry.key;
  damage.is_word = is_word;
  // The skip table is the stream's first header_len bytes; if any damaged
  // interval touches it the block map is gone and attribution with it.
  for (const Interval& iv : state.postings_damage) {
    if (Overlaps(iv, entry.byte_off, entry.byte_off + entry.header_len)) {
      return damage;  // docs_known stays false
    }
  }
  std::string_view stream(state.postings);
  stream = stream.substr(entry.byte_off, entry.byte_len);
  auto header = DecodeStreamHeader(stream, entry.key);
  if (!header.ok()) return damage;
  std::set<std::string> docs;
  for (const PostingBlockMeta& block : header->blocks) {
    uint64_t begin = entry.byte_off + header->header_bytes + block.byte_off;
    uint64_t end = begin + block.byte_len;
    for (const Interval& iv : state.postings_damage) {
      if (Overlaps(iv, begin, end)) {
        DocsCovering(state.doc_spans, block.first,
                     std::max(block.last, block.max_end), &docs);
        break;
      }
    }
  }
  damage.docs.assign(docs.begin(), docs.end());
  damage.docs_known = true;
  return damage;
}

Result<ScrubState> AnalyzeStore(const std::string& path) {
  ScrubState state;
  state.report.path = path;

  // Bootstrap the meta page from the minimum-size prefix — the true page
  // size is inside it. A damaged meta page is reported, not thrown.
  QOF_ASSIGN_OR_RETURN(std::string head,
                       ReadFilePrefix(path, kMinStorePageSize));
  auto meta_header = ParsePage(head, kMinStorePageSize, 0);
  if (!meta_header.ok() || meta_header->type != PageType::kMeta) {
    state.report.damaged_pages.push_back(
        {0, "meta",
         meta_header.ok() ? "page 0 is not a meta page"
                          : meta_header.status().ToString()});
    return state;
  }
  auto meta = DecodeStoreMeta(std::string_view(head).substr(
      kPageHeaderSize, meta_header->payload_len));
  if (!meta.ok()) {
    state.report.damaged_pages.push_back({0, "meta", meta.status().ToString()});
    return state;
  }
  state.meta = *meta;
  state.report.meta_ok = true;

  QOF_ASSIGN_OR_RETURN(PagedFile file,
                       PagedFile::Open(path, state.meta.page_size));
  state.report.pages_total = file.num_pages();
  const uint32_t capacity = PagePayloadCapacity(state.meta.page_size);

  // One pass over every page: verify, and assemble the byte-stream
  // sections with damaged pages zero-filled + their intervals recorded.
  std::map<StoreSection, std::string> streams;
  std::map<StoreSection, std::vector<Interval>> stream_damage;
  bool dicts_ok = true;
  std::string raw;
  for (uint32_t page = 1; page < file.num_pages(); ++page) {
    const char* section_name = SectionNameOf(state.meta, page);
    Status read = file.ReadPage(page, &raw);
    Result<PageHeader> header =
        read.ok() ? ParsePage(raw, state.meta.page_size, page)
                  : Result<PageHeader>(read);
    const bool damaged = !header.ok();
    if (damaged) {
      state.report.damaged_pages.push_back(
          {page, section_name, header.status().ToString()});
    }
    for (int i = 0; i < kNumStoreSections; ++i) {
      StoreSection section = static_cast<StoreSection>(i);
      const SectionInfo& info = state.meta.sections[i];
      if (page < info.first_page || page >= info.first_page + info.num_pages) {
        continue;
      }
      if (section == StoreSection::kRegionDict ||
          section == StoreSection::kWordDict) {
        // Dict pages are self-contained; parse entries page by page.
        if (damaged) {
          dicts_ok = false;
        } else {
          std::vector<RawDictEntry>* out =
              section == StoreSection::kRegionDict ? &state.region_entries
                                                   : &state.word_entries;
          std::string_view payload(raw.data() + kPageHeaderSize,
                                   header->payload_len);
          if (!DecodeDictPagePayload(payload, out).ok()) dicts_ok = false;
        }
        break;
      }
      // Stream sections: append this page's payload at its arithmetic
      // offset; a damaged page contributes zeros and a damage interval.
      std::string& stream = streams[section];
      uint64_t off = static_cast<uint64_t>(page - info.first_page) * capacity;
      uint64_t page_bytes =
          std::min<uint64_t>(capacity, info.byte_len > off
                                           ? info.byte_len - off
                                           : 0);
      if (damaged) {
        stream.append(page_bytes, '\0');
        stream_damage[section].push_back({off, off + page_bytes});
      } else {
        stream.append(raw.data() + kPageHeaderSize, header->payload_len);
      }
      break;
    }
  }

  state.spec_bytes = std::move(streams[StoreSection::kSpec]);
  state.doc_table_bytes = std::move(streams[StoreSection::kDocTable]);
  state.postings = std::move(streams[StoreSection::kPostings]);
  state.postings_damage = std::move(stream_damage[StoreSection::kPostings]);

  const bool spec_ok = stream_damage[StoreSection::kSpec].empty();
  const bool doc_table_ok = stream_damage[StoreSection::kDocTable].empty();
  state.report.structural_ok = spec_ok && doc_table_ok && dicts_ok;

  if (doc_table_ok) {
    if (!DecodeDocSpans(state.doc_table_bytes, &state.doc_spans).ok()) {
      state.report.structural_ok = false;
    }
  }

  // Attribute postings damage to the instances whose streams it touches.
  if (dicts_ok && !state.postings_damage.empty()) {
    for (int pass = 0; pass < 2; ++pass) {
      const bool is_word = pass == 1;
      const auto& entries =
          is_word ? state.word_entries : state.region_entries;
      for (const RawDictEntry& entry : entries) {
        bool hit = false;
        for (const Interval& iv : state.postings_damage) {
          if (Overlaps(iv, entry.byte_off, entry.byte_off + entry.byte_len)) {
            hit = true;
            break;
          }
        }
        if (hit) {
          state.report.damaged_instances.push_back(
              AttributeDamage(state, entry, is_word));
        }
      }
    }
  }
  return state;
}

}  // namespace

Result<ScrubReport> ScrubStore(const std::string& path) {
  QOF_ASSIGN_OR_RETURN(ScrubState state, AnalyzeStore(path));
  return std::move(state.report);
}

std::string FormatScrubReport(const ScrubReport& report) {
  std::ostringstream out;
  if (report.clean()) {
    out << report.path << ": scrub clean — all " << report.pages_total
        << " page(s) verify\n";
    return out.str();
  }
  out << report.path << ": " << report.damaged_pages.size()
      << " damaged page(s) of " << report.pages_total << "\n";
  for (const PageDamage& page : report.damaged_pages) {
    out << "  page " << page.page_no << " [" << page.section
        << "]: " << page.error << "\n";
  }
  for (const InstanceDamage& damage : report.damaged_instances) {
    out << "  " << (damage.is_word ? "word" : "region") << " '"
        << damage.key << "': stream damaged";
    if (!damage.docs_known) {
      out << " (skip table lost — affected documents unknown)";
    } else if (damage.docs.empty()) {
      out << " (no document spans covered)";
    } else {
      out << ", documents:";
      for (const std::string& doc : damage.docs) out << " " << doc;
    }
    out << "\n";
  }
  if (!report.meta_ok) {
    out << "  meta page damaged — store unrecoverable\n";
  } else if (report.structural_ok) {
    out << "  damage is confined to postings/fence pages — repairable "
           "(qof_store repair)\n";
  } else {
    out << "  structural sections damaged — not repairable\n";
  }
  return out.str();
}

Result<RepairResult> RepairStore(const std::string& path) {
  QOF_ASSIGN_OR_RETURN(ScrubState state, AnalyzeStore(path));
  RepairResult result;
  if (state.report.clean()) return result;
  if (!state.report.repairable()) {
    return Status::DataLoss(
        path + ": damage is structural (meta, spec, doc table, or "
               "dictionary pages) — cannot repair; restore from a "
               "blob or re-index");
  }

  // Keep every entry whose stream bytes are fully intact; drop the rest.
  auto survivors = [&](const std::vector<RawDictEntry>& entries,
                       bool is_word) {
    std::vector<RawStreamEntry> out;
    for (const RawDictEntry& entry : entries) {
      bool hit = false;
      for (const Interval& iv : state.postings_damage) {
        if (Overlaps(iv, entry.byte_off, entry.byte_off + entry.byte_len)) {
          hit = true;
          break;
        }
      }
      if (hit) {
        result.dropped.push_back(std::string(is_word ? "word:" : "region:") +
                                 entry.key);
        continue;
      }
      RawStreamEntry raw;
      raw.key = entry.key;
      raw.stream = state.postings.substr(entry.byte_off, entry.byte_len);
      raw.header_len = entry.header_len;
      raw.count = entry.count;
      out.push_back(std::move(raw));
    }
    return out;
  };
  std::vector<RawStreamEntry> regions =
      survivors(state.region_entries, /*is_word=*/false);
  std::vector<RawStreamEntry> words =
      survivors(state.word_entries, /*is_word=*/true);

  QOF_ASSIGN_OR_RETURN(
      std::string image,
      BuildStoreImageFromRaw(state.meta, state.spec_bytes,
                             state.doc_table_bytes, regions, words,
                             state.meta.page_size));

  // Quarantine the damaged original, then publish the rebuilt image
  // atomically at the store's name.
  Vfs* vfs = DefaultVfs();
  result.quarantine_path = path + ".quarantined";
  QOF_RETURN_IF_ERROR(vfs->Rename(path, result.quarantine_path));
  QOF_RETURN_IF_ERROR(vfs->SyncDir(ParentDir(path)));
  QOF_RETURN_IF_ERROR(AtomicWriteFile(vfs, path, image));
  return result;
}

}  // namespace qof
