#include "qof/store/paged_store.h"

#include <algorithm>
#include <utility>

#include "qof/util/wire.h"

namespace qof {
namespace {

Result<std::vector<std::string>> DecodeFences(std::string_view bytes,
                                              const std::string& what) {
  WireReader reader(bytes, what);
  QOF_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  QOF_RETURN_IF_ERROR(reader.CheckCount(count, 4));
  std::vector<std::string> fences;
  fences.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string key, reader.String());
    fences.push_back(std::move(key));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(what + ": trailing bytes");
  }
  return fences;
}

}  // namespace

/// Disk-backed RegionCursor: skip bounds come from the eagerly decoded
/// stream header; ReadBlock pins exactly the pages the block's bytes span
/// (all at once), decodes, and unpins.
class StoreRegionCursorImpl : public RegionCursor {
 public:
  StoreRegionCursorImpl(std::shared_ptr<const PagedStore> store,
                        PagedStore::DictEntry entry,
                        PostingStreamHeader header)
      : store_(std::move(store)),
        entry_(std::move(entry)),
        header_(std::move(header)) {}

  uint64_t total_count() const override { return header_.total_count; }
  size_t num_blocks() const override { return header_.blocks.size(); }
  uint64_t block_first(size_t b) const override {
    return header_.blocks[b].first;
  }
  uint64_t block_last(size_t b) const override {
    return header_.blocks[b].last;
  }
  uint64_t block_max_end(size_t b) const override {
    return header_.blocks[b].max_end;
  }
  uint32_t block_count(size_t b) const override {
    return header_.blocks[b].count;
  }

  bool wants_prefetch() const override {
    return store_->prefetch_ && prefetch_allowed_;
  }

  void PrefetchBlocks(size_t first, size_t count) override {
    if (!wants_prefetch() || count == 0 ||
        first + count > header_.blocks.size()) {
      return;
    }
    // Blocks already decoded into this cursor's cache are served without
    // touching the pool — reading their pages back in would be pure
    // waste, so the run is split around them.
    size_t run_first = first, run_len = 0;
    auto emit = [&]() {
      if (run_len == 0) return;
      const PostingBlockMeta& lo = header_.blocks[run_first];
      const PostingBlockMeta& hi = header_.blocks[run_first + run_len - 1];
      uint64_t off = entry_.byte_off + entry_.header_len + lo.byte_off;
      uint64_t len = hi.byte_off + hi.byte_len - lo.byte_off;
      run_len = 0;
      if (len == 0) return;
      const SectionInfo& info =
          store_->meta_.section(StoreSection::kPostings);
      if (off + len > info.byte_len) return;  // damaged header; ReadBlock
                                              // will report it
      const uint32_t capacity = PagePayloadCapacity(store_->page_size());
      uint32_t p0 = static_cast<uint32_t>(off / capacity);
      uint32_t p1 = static_cast<uint32_t>((off + len - 1) / capacity);
      store_->pool_.PrefetchHint(info.first_page + p0, p1 - p0 + 1, &io_);
    };
    for (size_t b = first; b < first + count; ++b) {
      bool cached = b < cache_.size() && !cache_[b].empty();
      if (cached) {
        emit();
        run_first = b + 1;
        continue;
      }
      if (run_len == 0) run_first = b;
      ++run_len;
    }
    emit();
  }

  CursorIoStats io_stats() const override {
    CursorIoStats out;
    out.pages_read = io_.pages_read;
    out.read_calls = io_.read_calls;
    out.prefetch_hits = io_.prefetch_hits;
    return out;
  }

  Status ReadBlock(size_t b, std::vector<Region>* out) override {
    // A long-lived cursor (repeated probes of one hot instance) keeps the
    // blocks it already decoded: a re-probe costs a copy, not a page pin
    // plus a varint decode. Bounded so a full materialization through a
    // cursor cannot hold the whole instance decoded twice.
    if (cache_.size() != header_.blocks.size()) {
      cache_.resize(header_.blocks.size());
    }
    if (!cache_[b].empty()) {
      *out = cache_[b];
      return Status::OK();
    }
    out->clear();
    const PostingBlockMeta& m = header_.blocks[b];
    std::string_view bytes;
    pins_.clear();
    QOF_RETURN_IF_ERROR(store_->ReadStreamRangePinned(
        StoreSection::kPostings,
        entry_.byte_off + entry_.header_len + m.byte_off, m.byte_len,
        &pins_, &scratch_, &bytes, &io_));
    QOF_RETURN_IF_ERROR(DecodeRegionBlock(m, bytes, entry_.key, out));
    pins_.clear();
    ++blocks_decoded_;
    if (cached_blocks_ < kMaxCachedBlocks) {
      cache_[b] = *out;
      ++cached_blocks_;
    }
    return Status::OK();
  }

 private:
  /// At 128 regions a block this caps the cache at ~2 MB per cursor.
  static constexpr size_t kMaxCachedBlocks = 1024;

  std::shared_ptr<const PagedStore> store_;
  PagedStore::DictEntry entry_;
  PostingStreamHeader header_;
  /// Indexed by block; an empty slot is "not cached" (stored blocks are
  /// never empty). Direct indexing keeps the warm-hit path at an array
  /// load plus a copy — no hashing on the kernels' hot path.
  std::vector<std::vector<Region>> cache_;
  size_t cached_blocks_ = 0;
  std::vector<PageRef> pins_;
  std::string scratch_;
  FetchIo io_;
};

Result<std::shared_ptr<const PagedStore>> PagedStore::Open(
    const std::string& path, PagedStoreOptions options) {
  // Bootstrap: the meta page always fits the minimum page size, so its
  // header and payload can be verified before the true geometry is known.
  QOF_ASSIGN_OR_RETURN(std::string prefix,
                       ReadFilePrefix(path, kMinStorePageSize));
  QOF_ASSIGN_OR_RETURN(PageHeader header,
                       ParsePage(prefix, kMinStorePageSize, 0));
  if (header.type != PageType::kMeta) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a qof paged store (page 0 is "
                                   "not a meta page)");
  }
  QOF_ASSIGN_OR_RETURN(
      StoreMeta meta,
      DecodeStoreMeta(
          std::string_view(prefix).substr(kPageHeaderSize,
                                          header.payload_len)));
  QOF_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path, meta.page_size));
  for (const SectionInfo& s : meta.sections) {
    if (uint64_t{s.first_page} + s.num_pages > file.num_pages()) {
      return Status::InvalidArgument(
          "paged store: meta page lists a section beyond the end of '" +
          path + "'");
    }
  }
  std::shared_ptr<PagedStore> store(
      new PagedStore(std::move(file), meta, options));
  QOF_ASSIGN_OR_RETURN(std::string region_fence_bytes,
                       store->ReadSection(StoreSection::kRegionFence));
  QOF_ASSIGN_OR_RETURN(
      store->region_fences_,
      DecodeFences(region_fence_bytes, "region fence section"));
  QOF_ASSIGN_OR_RETURN(std::string word_fence_bytes,
                       store->ReadSection(StoreSection::kWordFence));
  QOF_ASSIGN_OR_RETURN(store->word_fences_,
                       DecodeFences(word_fence_bytes, "word fence section"));
  return std::shared_ptr<const PagedStore>(std::move(store));
}

Result<std::string> PagedStore::ReadSection(StoreSection section) const {
  const SectionInfo& info = meta_.section(section);
  std::string out;
  out.reserve(info.byte_len);
  QOF_RETURN_IF_ERROR(ReadStreamRange(section, 0, info.byte_len, &out));
  return out;
}

Status PagedStore::ReadStreamRange(StoreSection section, uint64_t off,
                                   uint64_t len, std::string* out) const {
  const SectionInfo& info = meta_.section(section);
  if (off + len > info.byte_len) {
    return Status::InvalidArgument(
        "paged store: stream read past the end of the " +
        std::string(PageTypeName(SectionPageType(section))) + " section");
  }
  const uint32_t capacity = PagePayloadCapacity(page_size());
  while (len > 0) {
    uint32_t page_no = info.first_page + static_cast<uint32_t>(off / capacity);
    size_t in_page = off % capacity;
    QOF_ASSIGN_OR_RETURN(PageRef ref, pool_.Fetch(page_no));
    std::string_view payload = ref.payload();
    if (ref.type() != SectionPageType(section) ||
        payload.size() <= in_page) {
      return Status::InvalidArgument(
          "paged store: page " + std::to_string(page_no) +
          " does not belong to the expected section — the store file is "
          "damaged");
    }
    size_t take = std::min<uint64_t>(len, payload.size() - in_page);
    out->append(payload.substr(in_page, take));
    off += take;
    len -= take;
  }
  return Status::OK();
}

Status PagedStore::ReadStreamRangePinned(StoreSection section, uint64_t off,
                                         uint64_t len,
                                         std::vector<PageRef>* pins,
                                         std::string* scratch,
                                         std::string_view* bytes,
                                         FetchIo* io) const {
  const SectionInfo& info = meta_.section(section);
  if (off + len > info.byte_len) {
    return Status::InvalidArgument(
        "paged store: block read past the end of the postings section");
  }
  if (len == 0) {
    *bytes = std::string_view();
    return Status::OK();
  }
  const uint32_t capacity = PagePayloadCapacity(page_size());
  uint32_t first = static_cast<uint32_t>(off / capacity);
  uint32_t last = static_cast<uint32_t>((off + len - 1) / capacity);
  pins->clear();
  pins->reserve(last - first + 1);
  for (uint32_t p = first; p <= last; ++p) {
    QOF_ASSIGN_OR_RETURN(PageRef ref, pool_.Fetch(info.first_page + p, io));
    if (ref.type() != SectionPageType(section)) {
      return Status::InvalidArgument(
          "paged store: page " + std::to_string(info.first_page + p) +
          " does not belong to the expected section — the store file is "
          "damaged");
    }
    pins->push_back(std::move(ref));
  }
  // Assembled only after every pin is held: with the injected
  // evict-pinned bug, a later fetch can steal an earlier pinned frame,
  // and these reads then see the stolen frame's bytes — the corruption
  // the disk-tier fuzz leg exists to catch.
  size_t in_page = off % capacity;
  if (pins->size() == 1) {
    std::string_view payload = (*pins)[0].payload();
    if (payload.size() < in_page + len) {
      return Status::InvalidArgument(
          "paged store: short page in the postings section");
    }
    *bytes = payload.substr(in_page, len);
    return Status::OK();
  }
  scratch->clear();
  scratch->reserve(len);
  uint64_t remaining = len;
  for (const PageRef& ref : *pins) {
    std::string_view payload = ref.payload();
    if (payload.size() <= in_page) {
      return Status::InvalidArgument(
          "paged store: short page in the postings section");
    }
    size_t take = std::min<uint64_t>(remaining, payload.size() - in_page);
    scratch->append(payload.substr(in_page, take));
    remaining -= take;
    in_page = 0;
  }
  if (remaining != 0) {
    return Status::InvalidArgument(
        "paged store: short page in the postings section");
  }
  *bytes = *scratch;
  return Status::OK();
}

Status PagedStore::ReadDictPage(StoreSection section, uint32_t index,
                                std::vector<DictEntry>* out) const {
  const SectionInfo& info = meta_.section(section);
  if (index >= info.num_pages) {
    return Status::InvalidArgument("paged store: dict page out of range");
  }
  QOF_ASSIGN_OR_RETURN(PageRef ref, pool_.Fetch(info.first_page + index));
  if (ref.type() != SectionPageType(section)) {
    return Status::InvalidArgument(
        "paged store: expected a dictionary page — the store file is "
        "damaged");
  }
  WireReader reader(ref.payload(), "store dictionary page");
  QOF_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  QOF_RETURN_IF_ERROR(reader.CheckCount(count, 8));
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DictEntry e;
    QOF_ASSIGN_OR_RETURN(e.key, reader.String());
    QOF_ASSIGN_OR_RETURN(e.byte_off, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.byte_len, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.header_len, reader.Varint());
    QOF_ASSIGN_OR_RETURN(e.count, reader.Varint());
    const SectionInfo& postings = meta_.section(StoreSection::kPostings);
    if (e.byte_off + e.byte_len > postings.byte_len ||
        e.header_len > e.byte_len) {
      return Status::InvalidArgument(
          "paged store: dictionary entry '" + e.key +
          "' points outside the postings section");
    }
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Result<std::optional<PagedStore::DictEntry>> PagedStore::FindEntry(
    StoreSection fence_section, StoreSection dict_section,
    const std::vector<std::string>& fences, std::string_view key) const {
  (void)fence_section;
  if (fences.empty() || key < fences.front()) return std::optional<DictEntry>();
  // The last dict page whose first key is <= key is the only page that
  // can hold it.
  auto it = std::upper_bound(fences.begin(), fences.end(), key,
                             [](std::string_view k, const std::string& f) {
                               return k < f;
                             });
  uint32_t page = static_cast<uint32_t>(it - fences.begin() - 1);
  std::vector<DictEntry> entries;
  QOF_RETURN_IF_ERROR(ReadDictPage(dict_section, page, &entries));
  auto pos = std::lower_bound(entries.begin(), entries.end(), key,
                              [](const DictEntry& e, std::string_view k) {
                                return e.key < k;
                              });
  if (pos == entries.end() || pos->key != key) return std::optional<DictEntry>();
  return std::optional<DictEntry>(std::move(*pos));
}

Result<std::optional<PagedStore::DictEntry>> PagedStore::FindRegionEntry(
    std::string_view name) const {
  return FindEntry(StoreSection::kRegionFence, StoreSection::kRegionDict,
                   region_fences_, name);
}

Result<std::optional<PagedStore::DictEntry>> PagedStore::FindWordEntry(
    std::string_view word) const {
  return FindEntry(StoreSection::kWordFence, StoreSection::kWordDict,
                   word_fences_, word);
}

Result<std::vector<PagedStore::DictEntry>> PagedStore::AllRegionEntries()
    const {
  std::vector<DictEntry> all, page;
  for (uint32_t i = 0; i < meta_.section(StoreSection::kRegionDict).num_pages;
       ++i) {
    QOF_RETURN_IF_ERROR(ReadDictPage(StoreSection::kRegionDict, i, &page));
    for (DictEntry& e : page) all.push_back(std::move(e));
  }
  return all;
}

Result<std::vector<PagedStore::DictEntry>> PagedStore::AllWordEntries()
    const {
  std::vector<DictEntry> all, page;
  for (uint32_t i = 0; i < meta_.section(StoreSection::kWordDict).num_pages;
       ++i) {
    QOF_RETURN_IF_ERROR(ReadDictPage(StoreSection::kWordDict, i, &page));
    for (DictEntry& e : page) all.push_back(std::move(e));
  }
  return all;
}

Result<std::vector<std::string>> PagedStore::WordsWithPrefix(
    std::string_view prefix) const {
  std::vector<std::string> out;
  if (word_fences_.empty()) return out;
  auto it = std::upper_bound(word_fences_.begin(), word_fences_.end(),
                             prefix,
                             [](std::string_view k, const std::string& f) {
                               return k < f;
                             });
  uint32_t page = it == word_fences_.begin()
                      ? 0
                      : static_cast<uint32_t>(it - word_fences_.begin() - 1);
  std::vector<DictEntry> entries;
  const uint32_t num_pages =
      meta_.section(StoreSection::kWordDict).num_pages;
  for (; page < num_pages; ++page) {
    QOF_RETURN_IF_ERROR(ReadDictPage(StoreSection::kWordDict, page,
                                     &entries));
    for (DictEntry& e : entries) {
      if (e.key < prefix) continue;
      if (e.key.compare(0, prefix.size(), prefix) == 0) {
        out.push_back(std::move(e.key));
      } else {
        return out;  // sorted: no later word can match
      }
    }
  }
  return out;
}

Result<PostingStreamHeader> PagedStore::ReadStreamHeader(
    const DictEntry& entry) const {
  std::string header_bytes;
  header_bytes.reserve(entry.header_len);
  QOF_RETURN_IF_ERROR(ReadStreamRange(StoreSection::kPostings,
                                      entry.byte_off, entry.header_len,
                                      &header_bytes));
  QOF_ASSIGN_OR_RETURN(PostingStreamHeader header,
                       DecodeStreamHeader(header_bytes, entry.key));
  uint64_t block_bytes = entry.byte_len - entry.header_len;
  if (header.header_bytes != entry.header_len ||
      header.total_count != entry.count ||
      (!header.blocks.empty() &&
       header.blocks.back().byte_off + header.blocks.back().byte_len !=
           block_bytes)) {
    return Status::InvalidArgument(
        "paged store: posting stream of '" + entry.key +
        "' disagrees with its dictionary entry — the store file is "
        "damaged");
  }
  return header;
}

Result<std::vector<uint64_t>> PagedStore::LoadPostings(
    const DictEntry& entry) const {
  QOF_ASSIGN_OR_RETURN(PostingStreamHeader header, ReadStreamHeader(entry));
  std::vector<uint64_t> out;
  out.reserve(header.total_count);
  std::vector<PageRef> pins;
  std::string scratch;
  for (const PostingBlockMeta& m : header.blocks) {
    std::string_view bytes;
    QOF_RETURN_IF_ERROR(ReadStreamRangePinned(
        StoreSection::kPostings,
        entry.byte_off + entry.header_len + m.byte_off, m.byte_len, &pins,
        &scratch, &bytes));
    QOF_RETURN_IF_ERROR(DecodePostingBlock(m, bytes, entry.key, &out));
  }
  return out;
}

Result<std::unique_ptr<RegionCursor>> PagedStore::OpenRegionCursor(
    std::shared_ptr<const PagedStore> self, const DictEntry& entry) {
  QOF_ASSIGN_OR_RETURN(PostingStreamHeader header,
                       self->ReadStreamHeader(entry));
  return std::unique_ptr<RegionCursor>(new StoreRegionCursorImpl(
      std::move(self), entry, std::move(header)));
}

}  // namespace qof
