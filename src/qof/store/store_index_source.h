#ifndef QOF_STORE_STORE_INDEX_SOURCE_H_
#define QOF_STORE_STORE_INDEX_SOURCE_H_

#include <memory>

#include "qof/region/region_source.h"
#include "qof/store/paged_store.h"
#include "qof/text/posting_source.h"

namespace qof {

/// RegionSource over a paged store: Entries() scans the (small) region
/// dictionary; OpenCursor probes it and hands back a block-skipping disk
/// cursor. Materialized bytes are charged to the calling thread's scan
/// counter (byte budgets cover decompressed index I/O).
class StoreRegionSource : public RegionSource {
 public:
  explicit StoreRegionSource(std::shared_ptr<const PagedStore> store)
      : store_(std::move(store)) {}

  Result<std::vector<Entry>> Entries() const override;
  uint64_t universe_size() const override {
    return store_->meta().universe_size;
  }
  uint64_t approx_bytes() const override;
  Result<std::unique_ptr<RegionCursor>> OpenCursor(
      std::string_view name) const override;

 private:
  std::shared_ptr<const PagedStore> store_;
};

/// PostingSource over a paged store: presence and loads are fence-guided
/// dictionary probes; prefix search walks only the dict pages the fences
/// admit.
class StorePostingSource : public PostingSource {
 public:
  explicit StorePostingSource(std::shared_ptr<const PagedStore> store)
      : store_(std::move(store)) {}

  uint64_t distinct_words() const override {
    return store_->meta().distinct_words;
  }
  uint64_t total_postings() const override {
    return store_->meta().total_postings;
  }
  uint64_t approx_bytes() const override;
  Result<std::optional<std::vector<TextPos>>> Load(
      std::string_view word) const override;
  Result<std::vector<std::string>> WordsWithPrefix(
      std::string_view prefix) const override;
  Result<std::vector<Entry>> Entries() const override;

 private:
  std::shared_ptr<const PagedStore> store_;
};

}  // namespace qof

#endif  // QOF_STORE_STORE_INDEX_SOURCE_H_
