#include "qof/store/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

namespace qof {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  uint64_t size() const override { return size_; }

  Status ReadAt(uint64_t offset, size_t n, std::string* buf) const override {
    buf->resize(n);
    size_t done = 0;
    while (done < n) {
      ssize_t got = ::pread(fd_, buf->data() + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("I/O error reading", path_));
      }
      if (got == 0) {
        return Status::OutOfRange(
            "read past end of '" + path_ + "' (offset " +
            std::to_string(offset) + " + " + std::to_string(n) + " > " +
            std::to_string(size_) + ")");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t put = ::write(fd_, data.data() + done, data.size() - done);
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("I/O error writing", path_));
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(Errno("fsync failed on", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal(Errno("close failed on", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways: return "always";
    case SyncPolicy::kBatch: return "batch";
    case SyncPolicy::kNone: return "none";
  }
  return "unknown";
}

Result<SyncPolicy> SyncPolicyFromName(std::string_view name) {
  if (name == "always") return SyncPolicy::kAlways;
  if (name == "batch") return SyncPolicy::kBatch;
  if (name == "none") return SyncPolicy::kNone;
  return Status::InvalidArgument("unknown sync policy '" + std::string(name) +
                                 "' (want always, batch, or none)");
}

Result<std::unique_ptr<RandomAccessFile>> RealVfs::OpenRead(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(Errno("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal(Errno("cannot stat", path));
  }
  return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(
      fd, static_cast<uint64_t>(st.st_size), path));
}

Result<std::unique_ptr<WritableFile>> RealVfs::OpenWrite(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
              (truncate ? O_TRUNC : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::InvalidArgument(Errno("cannot open for writing", path));
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

bool RealVfs::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RealVfs::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal(Errno("cannot rename to '" + to + "' from", from));
  }
  return Status::OK();
}

Status RealVfs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound(Errno("cannot remove", path));
    }
    return Status::Internal(Errno("cannot remove", path));
  }
  return Status::OK();
}

Status RealVfs::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("cannot truncate", path));
  }
  return Status::OK();
}

Status RealVfs::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(Errno("cannot open directory", dir));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal(Errno("fsync failed on directory", dir));
  }
  return Status::OK();
}

Result<std::vector<std::string>> RealVfs::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound(Errno("cannot list directory", dir));
  }
  std::vector<std::string> out;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

Status RealVfs::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(Errno("cannot create directory", dir));
  }
  return Status::OK();
}

namespace {

RealVfs* GlobalRealVfs() {
  static RealVfs* vfs = new RealVfs();
  return vfs;
}

std::atomic<Vfs*>& CurrentVfsSlot() {
  static std::atomic<Vfs*> current{nullptr};
  return current;
}

}  // namespace

Vfs* DefaultVfs() {
  Vfs* override_vfs = CurrentVfsSlot().load(std::memory_order_acquire);
  return override_vfs != nullptr ? override_vfs : GlobalRealVfs();
}

ScopedVfs::ScopedVfs(Vfs* vfs) {
  previous_ = CurrentVfsSlot().exchange(vfs, std::memory_order_acq_rel);
}

ScopedVfs::~ScopedVfs() {
  CurrentVfsSlot().store(previous_, std::memory_order_release);
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Result<std::string> VfsReadFile(Vfs* vfs, const std::string& path) {
  QOF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                       vfs->OpenRead(path));
  std::string out;
  if (file->size() == 0) return out;
  QOF_RETURN_IF_ERROR(file->ReadAt(0, file->size(), &out));
  return out;
}

Status AtomicWriteFile(Vfs* vfs, const std::string& path,
                       std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  auto file = vfs->OpenWrite(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(bytes);
  if (status.ok()) status = (*file)->Sync();
  Status closed = (*file)->Close();
  if (status.ok()) status = closed;
  if (status.ok()) status = vfs->Rename(tmp, path);
  if (status.ok()) status = vfs->SyncDir(ParentDir(path));
  if (!status.ok()) {
    if (vfs->Exists(tmp)) vfs->Remove(tmp);
    return status;
  }
  return Status::OK();
}

}  // namespace qof
