#include "qof/exec/exec_context.h"

#include <string>

namespace qof {

thread_local const ExecContext* ExecContext::current_ = nullptr;

ExecContext::ExecContext(const QueryOptions& options)
    : active_(!options.unlimited()),
      deadline_ms_(options.deadline_ms),
      max_bytes_(options.max_bytes),
      max_regions_(options.max_regions),
      cancel_(options.cancel) {
  if (deadline_ms_ > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms_);
  }
}

Status ExecContext::Check() const {
  if (!active_) return Status::OK();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    stop_.store(true, std::memory_order_relaxed);
    return Status::Cancelled("query cancelled by caller");
  }
  if (max_bytes_ > 0 && scanned_bytes_ != nullptr) {
    uint64_t scanned = scanned_bytes_->load(std::memory_order_relaxed);
    if (scanned > max_bytes_) {
      stop_.store(true, std::memory_order_relaxed);
      return Status::BudgetExhausted(
          "byte budget exhausted: scanned " + std::to_string(scanned) +
          " of at most " + std::to_string(max_bytes_) + " bytes");
    }
  }
  if (max_regions_ > 0 &&
      regions_.load(std::memory_order_relaxed) > max_regions_) {
    stop_.store(true, std::memory_order_relaxed);
    regions_exhausted_.store(true, std::memory_order_relaxed);
    return Status::BudgetExhausted(
        "region budget exhausted: produced " +
        std::to_string(regions_.load(std::memory_order_relaxed)) +
        " of at most " + std::to_string(max_regions_) + " regions");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    stop_.store(true, std::memory_order_relaxed);
    return Status::DeadlineExceeded("deadline exceeded (" +
                                    std::to_string(deadline_ms_) + " ms)");
  }
  return Status::OK();
}

Status ExecContext::ChargeRegions(uint64_t n) const {
  if (!active_ || max_regions_ == 0) return Status::OK();
  uint64_t total = regions_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > max_regions_) {
    stop_.store(true, std::memory_order_relaxed);
    regions_exhausted_.store(true, std::memory_order_relaxed);
    return Status::BudgetExhausted(
        "region budget exhausted: produced " + std::to_string(total) +
        " of at most " + std::to_string(max_regions_) + " regions");
  }
  return Status::OK();
}

void ExecContext::ResetForFallback() const {
  regions_.store(0, std::memory_order_relaxed);
  regions_exhausted_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
}

bool IsGovernanceError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kBudgetExhausted:
      return true;
    default:
      return false;
  }
}

}  // namespace qof
