#ifndef QOF_EXEC_EXEC_CONTEXT_H_
#define QOF_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "qof/util/status.h"

namespace qof {

/// Cooperative cancellation handle. The party that wants to stop a
/// running query calls Cancel() from any thread; execution notices at
/// the next governance checkpoint and unwinds with kCancelled.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-call resource limits. All limits default to "unlimited"; a
/// default-constructed QueryOptions makes execution behave exactly as it
/// did before governance existed (the engine skips every checkpoint).
struct QueryOptions {
  /// Wall-clock budget in milliseconds, armed when execution starts.
  /// 0 = no deadline.
  uint64_t deadline_ms = 0;
  /// Maximum corpus bytes the call may scan (parsing, phrase
  /// verification, baseline scans all count). 0 = unlimited.
  uint64_t max_bytes = 0;
  /// Maximum regions algebra operators may produce across the call —
  /// bounds intermediate-result explosion on index-backed plans.
  /// 0 = unlimited.
  uint64_t max_regions = 0;
  /// When a governance limit trips mid-query, return the results
  /// verified so far with QueryStats::truncated set instead of a typed
  /// error.
  bool soft_fail = false;
  /// Optional external cancellation handle, shared with whoever may
  /// cancel the call.
  std::shared_ptr<CancelToken> cancel;

  /// Evaluate index plans through the dataflow IR (lowering + optimizer
  /// passes + batched executor) instead of walking the expression tree.
  /// Results are identical by construction — the tree evaluator is kept
  /// as the differential-testing oracle. The QOF_FORCE_EXEC environment
  /// variable ("tree" | "ir") overrides this per process.
  bool use_ir = true;

  /// Worker threads for morsel-driven IR execution. 1 = serial (the
  /// default), n > 1 = that many workers, 0 = one per hardware thread.
  /// Results are byte-identical at every setting — the scheduler merges
  /// morsels in canonical doc order. The QOF_EXEC_WORKERS environment
  /// variable overrides this per process.
  int exec_workers = 1;

  /// Let disk-tier cursor kernels emit skip-table-guided prefetch hints
  /// so the buffer pool batches multi-page reads. Affects I/O counts
  /// only, never results.
  bool prefetch = true;

  // Note: use_ir / exec_workers / prefetch are engine selectors, not
  // limits — they must not make a default-constructed QueryOptions count
  // as "governed".
  bool unlimited() const {
    return deadline_ms == 0 && max_bytes == 0 && max_regions == 0 &&
           cancel == nullptr;
  }
};

/// Execution-scoped governance state: an armed deadline, budget
/// counters, and a stop flag workers poll so a tripped limit stops all
/// of them promptly. One ExecContext lives for the duration of a single
/// engine call (query, index build, mutation); it is shared by all
/// worker threads of that call. All methods are thread-safe.
///
/// Engine code receives `const ExecContext*` and treats nullptr as
/// "ungoverned" — every checkpoint is then a single branch.
class ExecContext {
 public:
  /// Inactive context: Check() always succeeds.
  ExecContext() = default;

  /// Arms the deadline clock at construction time.
  explicit ExecContext(const QueryOptions& options);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// False when no limit is configured; callers then pass nullptr down
  /// so the hot paths skip checkpoints entirely.
  bool active() const { return active_; }

  /// Points the byte budget at a live scanned-bytes counter (in
  /// practice Corpus::bytes_read_counter()). May be null.
  void set_scanned_bytes_counter(const std::atomic<uint64_t>* counter) {
    scanned_bytes_ = counter;
  }

  /// Full checkpoint: cancellation, byte budget, region budget,
  /// deadline — in that order. On failure the stop flag is set so
  /// sibling workers unwind too.
  Status Check() const;

  /// Adds `n` to the produced-region counter and fails with
  /// kBudgetExhausted once the region budget is exceeded. Cheap (no
  /// clock read); deadline checks are left to Check().
  Status ChargeRegions(uint64_t n) const;

  /// Raw stop flag for ThreadPool::ParallelFor early exit. Always
  /// non-null; never set on an inactive context.
  const std::atomic<bool>* stop_flag() const { return &stop_; }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  /// True once the region budget specifically has tripped. The
  /// execution ladder uses this to degrade an exploding index plan to a
  /// scan instead of failing the query.
  bool regions_exhausted() const {
    return regions_exhausted_.load(std::memory_order_relaxed);
  }

  /// Regions charged so far (partial-progress reporting).
  uint64_t regions_charged() const {
    return regions_.load(std::memory_order_relaxed);
  }

  /// Re-arms the context for a fallback attempt after the region budget
  /// tripped: clears the region counter and the stop flag. Deadline,
  /// cancellation and the byte budget keep their state — only the
  /// per-attempt intermediate-result budget resets.
  void ResetForFallback() const;

  /// RAII installer of a thread-local "current" context. Layers the engine
  /// does not thread an ExecContext* through explicitly — the buffer
  /// pool's page-fetch path — call CurrentThread() at their blocking
  /// points so a governed call's deadline and cancellation reach into the
  /// disk tier. Scopes nest (a nested engine call restores the outer
  /// context on exit); a null/inactive context installs nothing.
  class ThreadScope {
   public:
    explicit ThreadScope(const ExecContext* ctx) : prev_(current_) {
      current_ = (ctx != nullptr && ctx->active()) ? ctx : prev_;
    }
    ~ThreadScope() { current_ = prev_; }
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    const ExecContext* prev_;
  };

  /// The context installed on this thread, or nullptr when ungoverned.
  static const ExecContext* CurrentThread() { return current_; }

 private:
  static thread_local const ExecContext* current_;

  bool active_ = false;
  uint64_t deadline_ms_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t max_bytes_ = 0;
  uint64_t max_regions_ = 0;
  std::shared_ptr<CancelToken> cancel_;
  const std::atomic<uint64_t>* scanned_bytes_ = nullptr;
  mutable std::atomic<uint64_t> regions_{0};
  mutable std::atomic<bool> regions_exhausted_{false};
  mutable std::atomic<bool> stop_{false};
};

/// True for the three governance codes (deadline/cancelled/budget) —
/// errors that describe the caller's limits rather than the data.
/// Rollback-based control flow (the schema parser's star backtracking)
/// must propagate these instead of swallowing them.
bool IsGovernanceError(const Status& status);

}  // namespace qof

#endif  // QOF_EXEC_EXEC_CONTEXT_H_
