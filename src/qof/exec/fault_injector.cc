#include "qof/exec/fault_injector.h"

#include <atomic>

namespace qof {

namespace {
std::atomic<FaultInjector*> g_current{nullptr};
}  // namespace

const std::vector<std::string>& FaultSites() {
  static const std::vector<std::string>* kSites = new std::vector<std::string>{
      fault_site::kParseDocument,     fault_site::kIndexerBuild,
      fault_site::kIndexIoSerialize,  fault_site::kIndexIoDeserialize,
      fault_site::kJournalAppend,     fault_site::kJournalReplay,
      fault_site::kMaintainAdd,       fault_site::kMaintainUpdate,
      fault_site::kMaintainRemove,    fault_site::kMaintainCompact,
      fault_site::kAlgebraEval,       fault_site::kTwoPhaseCandidate,
  };
  return *kSites;
}

Status FaultInjector::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = observed_.find(site);
  if (it == observed_.end()) {
    observed_.emplace(std::string(site), 1);
  } else {
    ++it->second;
  }
  if (fired_ || spec_.site != site) return Status::OK();
  if (++armed_site_passes_ != spec_.hit) return Status::OK();
  fired_ = true;
  return Status::Internal("injected fault at site '" + spec_.site +
                          "' (hit " + std::to_string(spec_.hit) + ")");
}

bool FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::observed()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {observed_.begin(), observed_.end()};
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector::Spec spec)
    : injector_(std::move(spec)) {
  previous_ = g_current.exchange(&injector_, std::memory_order_acq_rel);
}

ScopedFaultInjector::~ScopedFaultInjector() {
  g_current.store(previous_, std::memory_order_release);
}

FaultInjector* FaultInjector::Current() {
  return g_current.load(std::memory_order_acquire);
}

}  // namespace qof
