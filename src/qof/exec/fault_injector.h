#ifndef QOF_EXEC_FAULT_INJECTOR_H_
#define QOF_EXEC_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qof/util/status.h"

namespace qof {

/// Canonical fault-site names. Instrumented code calls
/// MaybeInjectFault(site) at each; the list is the contract the fuzzer
/// and the governance tests iterate over.
namespace fault_site {
inline constexpr const char* kParseDocument = "parse.document";
inline constexpr const char* kIndexerBuild = "indexer.build";
inline constexpr const char* kIndexIoSerialize = "index_io.serialize";
inline constexpr const char* kIndexIoDeserialize = "index_io.deserialize";
inline constexpr const char* kJournalAppend = "journal.append";
inline constexpr const char* kJournalReplay = "journal.replay";
inline constexpr const char* kMaintainAdd = "maintain.add";
inline constexpr const char* kMaintainUpdate = "maintain.update";
inline constexpr const char* kMaintainRemove = "maintain.remove";
inline constexpr const char* kMaintainCompact = "maintain.compact";
inline constexpr const char* kAlgebraEval = "algebra.eval";
inline constexpr const char* kTwoPhaseCandidate = "two_phase.candidate";
}  // namespace fault_site

/// Every registered site name, in a stable order. Tests and the fuzzer's
/// random-site mode enumerate this.
const std::vector<std::string>& FaultSites();

/// Deterministic one-shot fault injection. A FaultInjector is installed
/// process-wide (via Scoped); instrumented code consults it through
/// MaybeInjectFault(site). The spec names a site and a hit ordinal: the
/// hit-th time execution passes through that site, the call returns an
/// injected kInternal error exactly once. All other sites (and later
/// passes) are recorded but succeed, so a run with a given (site, hit)
/// pair is reproducible bit-for-bit.
class FaultInjector {
 public:
  struct Spec {
    std::string site;   // one of FaultSites(); empty = record-only
    uint64_t hit = 1;   // 1-based ordinal of the pass that fails
  };

  explicit FaultInjector(Spec spec) : spec_(std::move(spec)) {}

  /// Called by MaybeInjectFault. Records the pass; fails if this is the
  /// armed site's hit-th pass and the injector has not fired yet.
  Status Fire(std::string_view site);

  bool fired() const;
  /// Passes observed per site so far (for tests asserting coverage).
  std::vector<std::pair<std::string, uint64_t>> observed() const;

  /// Currently installed injector, or nullptr. Lock-free read so the
  /// uninstrumented (production) path costs one relaxed atomic load.
  static FaultInjector* Current();

 private:
  const Spec spec_;
  mutable std::mutex mu_;
  bool fired_ = false;
  uint64_t armed_site_passes_ = 0;
  std::map<std::string, uint64_t, std::less<>> observed_;
};

/// Installs an injector for the current scope and restores the previous
/// one (usually none) on destruction. Not reentrant across threads:
/// tests and the fuzzer install one injector per case.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector::Spec spec);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

/// Checkpoint placed at each named fault site. Returns OK (at one atomic
/// load of cost) unless a FaultInjector is installed and decides this
/// pass fails.
inline Status MaybeInjectFault(const char* site) {
  FaultInjector* injector = FaultInjector::Current();
  if (injector == nullptr) return Status::OK();
  return injector->Fire(site);
}

}  // namespace qof

#endif  // QOF_EXEC_FAULT_INJECTOR_H_
