#include "qof/optimizer/optimizer.h"

namespace qof {

std::string ChainRewrite::ToString() const {
  if (kind == Kind::kRelaxDirect) {
    return "relax-direct@" + std::to_string(position);
  }
  return "drop-middle@" + std::to_string(position);
}

bool ChainOptimizer::IsTriviallyEmpty(const InclusionChain& chain) const {
  // Names absent from the RIG denote region sets that are empty on every
  // conforming instance.
  for (const std::string& name : chain.names) {
    if (rig_->FindNode(name) == Rig::kInvalidNode) return true;
  }
  for (size_t i = 0; i + 1 < chain.names.size(); ++i) {
    auto [parent, child] = chain.Link(i);
    Rig::NodeId p = rig_->FindNode(parent);
    Rig::NodeId c = rig_->FindNode(child);
    if (chain.direct[i]) {
      // Prop. 3.3(i): Ri ⊃d Rj with (Ri,Rj) ∉ E is empty.
      if (!rig_->HasEdge(p, c)) return true;
    } else {
      // Prop. 3.3(ii): Ri ⊃ Rj with no path is empty. A link between the
      // same name is self-satisfied under weak inclusion (every region
      // weakly contains itself), so it is never trivial.
      if (p != c && !rig_->Reachable(p, c)) return true;
    }
  }
  return false;
}

bool ChainOptimizer::CanRelaxDirect(const InclusionChain& chain,
                                    size_t op_index) const {
  if (!chain.direct[op_index]) return false;
  auto [parent, child] = chain.Link(op_index);
  Rig::NodeId p = rig_->FindNode(parent);
  Rig::NodeId c = rig_->FindNode(child);
  if (p == Rig::kInvalidNode || c == Rig::kInvalidNode) return false;
  // Prop. 3.5(a), first disjunct.
  if (rig_->IsOnlyPath(p, c)) return true;
  // Second disjunct: Rj is the rightmost region of the expression and
  // every path starts with the edge. The argument is existential on the
  // *contained* side (any deeper Rj under an Ri implies a shallower,
  // directly-included one), which is only the result-preserving direction
  // for ⊃-oriented chains; for ⊂-chains the contained side is the result
  // itself, so the shortcut would add spurious deep regions and we do not
  // apply it.
  if (chain.orientation == InclusionChain::Orientation::kContains &&
      op_index + 2 == chain.names.size()) {
    return rig_->EveryPathStartsWithEdge(p, c);
  }
  return false;
}

bool ChainOptimizer::CanDropMiddle(const InclusionChain& chain,
                                   size_t name_index) const {
  if (name_index == 0 || name_index + 1 >= chain.names.size()) return false;
  // Both surrounding operators must already be simple (paper step 2 runs
  // after step 1), and a selected position cannot be dropped — its filter
  // contributes to the result.
  if (chain.direct[name_index - 1] || chain.direct[name_index]) return false;
  if (chain.sels[name_index].has_value()) return false;
  Rig::NodeId mid = rig_->FindNode(chain.names[name_index]);
  Rig::NodeId from, to;
  if (chain.orientation == InclusionChain::Orientation::kContains) {
    from = rig_->FindNode(chain.names[name_index - 1]);
    to = rig_->FindNode(chain.names[name_index + 1]);
  } else {
    from = rig_->FindNode(chain.names[name_index + 1]);
    to = rig_->FindNode(chain.names[name_index - 1]);
  }
  if (from == Rig::kInvalidNode || to == Rig::kInvalidNode ||
      mid == Rig::kInvalidNode) {
    return false;
  }
  // Prop. 3.5(b): every containment r_from ⊇ r_to traverses a parse chain
  // whose names form a RIG path; if every such path passes through the
  // middle name, some region on the chain instantiates it.
  return rig_->EveryPathThrough(from, to, mid);
}

std::vector<ChainRewrite> ChainOptimizer::ApplicableRewrites(
    const InclusionChain& chain) const {
  std::vector<ChainRewrite> out;
  for (size_t i = 0; i + 1 < chain.names.size(); ++i) {
    if (CanRelaxDirect(chain, i)) {
      out.push_back({ChainRewrite::Kind::kRelaxDirect, i});
    }
  }
  for (size_t j = 1; j + 1 < chain.names.size(); ++j) {
    if (CanDropMiddle(chain, j)) {
      out.push_back({ChainRewrite::Kind::kDropMiddle, j});
    }
  }
  return out;
}

InclusionChain ChainOptimizer::ApplyRewrite(
    const InclusionChain& chain, const ChainRewrite& rewrite) const {
  InclusionChain out = chain;
  if (rewrite.kind == ChainRewrite::Kind::kRelaxDirect) {
    out.direct[rewrite.position] = false;
    return out;
  }
  size_t j = rewrite.position;
  out.names.erase(out.names.begin() + j);
  out.sels.erase(out.sels.begin() + j);
  // Merge the two simple operators around the dropped name into one.
  out.direct.erase(out.direct.begin() + j);
  return out;
}

Result<OptimizeOutcome> ChainOptimizer::Optimize(
    const InclusionChain& chain) const {
  if (rig_ == nullptr) {
    return Status::InvalidArgument("optimizer has no RIG");
  }
  OptimizeOutcome outcome;
  outcome.chain = chain;
  if (IsTriviallyEmpty(chain)) {
    outcome.trivially_empty = true;
    return outcome;
  }
  // Step 1: relax every ⊃d that Prop. 3.5(a) allows.
  for (size_t i = 0; i + 1 < outcome.chain.names.size(); ++i) {
    if (CanRelaxDirect(outcome.chain, i)) {
      ChainRewrite rw{ChainRewrite::Kind::kRelaxDirect, i};
      outcome.chain = ApplyRewrite(outcome.chain, rw);
      outcome.applied.push_back(rw);
    }
  }
  // Step 2: shorten until no Prop. 3.5(b) drop applies. Each drop removes
  // a name, so this loop is linear in the chain length; with the
  // per-position graph tests the whole algorithm is polynomial
  // (Theorem 3.6(ii)).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t j = 1; j + 1 < outcome.chain.names.size(); ++j) {
      if (CanDropMiddle(outcome.chain, j)) {
        ChainRewrite rw{ChainRewrite::Kind::kDropMiddle, j};
        outcome.chain = ApplyRewrite(outcome.chain, rw);
        outcome.applied.push_back(rw);
        changed = true;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace qof
