#ifndef QOF_OPTIMIZER_OPTIMIZER_H_
#define QOF_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "qof/algebra/inclusion_chain.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// One applicable rewrite of the paper's replacement system (Prop. 3.5).
struct ChainRewrite {
  enum class Kind {
    kRelaxDirect,  // Ri ⊃d Rj  →  Ri ⊃ Rj       (Prop. 3.5(a))
    kDropMiddle,   // Ri ⊃ Rj ⊃ Rk  →  Ri ⊃ Rk   (Prop. 3.5(b))
  };
  Kind kind;
  /// kRelaxDirect: index of the operator; kDropMiddle: index of the
  /// dropped (middle) name.
  size_t position;

  std::string ToString() const;
};

/// Outcome of optimizing one inclusion expression.
struct OptimizeOutcome {
  InclusionChain chain;       // the most efficient equivalent version
  bool trivially_empty = false;  // Prop. 3.3 fired: result is ∅ on every
                                 // instance satisfying the RIG
  std::vector<ChainRewrite> applied;  // rewrites, in application order
};

/// The paper's polynomial-time optimizer (§3.2, Theorem 3.6). Given a RIG
/// G, it rewrites an inclusion expression to its unique most efficient
/// version: first every ⊃d that Prop. 3.5(a) allows becomes ⊃, then
/// Prop. 3.5(b) repeatedly shortens ⊃-⊃ runs until fixpoint. The rewrite
/// system is finite Church-Rosser, so application order is irrelevant —
/// a property the tests exercise via ApplicableRewrites/ApplyRewrite.
class ChainOptimizer {
 public:
  explicit ChainOptimizer(const Rig* rig) : rig_(rig) {}

  /// Full optimization: triviality test, then rewrite to normal form.
  Result<OptimizeOutcome> Optimize(const InclusionChain& chain) const;

  /// Prop. 3.3: the expression evaluates to ∅ on every instance
  /// satisfying the RIG iff some ⊃d link is a missing edge or some ⊃ link
  /// has no path. Names absent from the RIG count as unreachable.
  bool IsTriviallyEmpty(const InclusionChain& chain) const;

  /// All single rewrites applicable to `chain` right now.
  std::vector<ChainRewrite> ApplicableRewrites(
      const InclusionChain& chain) const;

  /// Applies one rewrite (which must be applicable).
  InclusionChain ApplyRewrite(const InclusionChain& chain,
                              const ChainRewrite& rewrite) const;

 private:
  bool CanRelaxDirect(const InclusionChain& chain, size_t op_index) const;
  bool CanDropMiddle(const InclusionChain& chain, size_t name_index) const;

  const Rig* rig_;
};

}  // namespace qof

#endif  // QOF_OPTIMIZER_OPTIMIZER_H_
