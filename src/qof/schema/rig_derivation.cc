#include "qof/schema/rig_derivation.h"

namespace qof {

Rig DeriveFullRig(const StructuringSchema& schema) {
  Rig rig;
  const Grammar& g = schema.grammar();
  for (size_t i = 0; i < g.num_symbols(); ++i) {
    rig.AddNode(g.SymbolName(static_cast<SymbolId>(i)));
  }
  for (size_t i = 0; i < g.num_symbols(); ++i) {
    SymbolId lhs = static_cast<SymbolId>(i);
    if (!g.HasRule(lhs)) continue;
    for (SymbolId child : g.RuleChildren(lhs)) {
      rig.AddEdge(g.SymbolName(lhs), g.SymbolName(child));
    }
  }
  return rig;
}

Rig DerivePartialRig(const Rig& full_rig,
                     const std::set<std::string>& indexed_names) {
  return DerivePartialRig(full_rig, indexed_names, indexed_names);
}

Rig DerivePartialRig(const Rig& full_rig,
                     const std::set<std::string>& indexed_names,
                     const std::set<std::string>& blocking_names) {
  Rig partial;
  std::vector<Rig::NodeId> indexed_ids;
  for (const std::string& name : indexed_names) {
    if (full_rig.FindNode(name) != Rig::kInvalidNode) {
      partial.AddNode(name);
      indexed_ids.push_back(full_rig.FindNode(name));
    }
  }
  auto interior_unindexed = [&](Rig::NodeId v) {
    return blocking_names.find(full_rig.name(v)) == blocking_names.end();
  };
  for (Rig::NodeId a : indexed_ids) {
    for (Rig::NodeId b : indexed_ids) {
      if (full_rig.PathMultiplicity(a, b, interior_unindexed) > 0) {
        partial.AddEdge(full_rig.name(a), full_rig.name(b));
      }
    }
  }
  return partial;
}

}  // namespace qof
