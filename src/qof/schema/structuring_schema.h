#ifndef QOF_SCHEMA_STRUCTURING_SCHEMA_H_
#define QOF_SCHEMA_STRUCTURING_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "qof/schema/action.h"
#include "qof/schema/grammar.h"
#include "qof/util/result.h"

namespace qof {

/// A structuring schema (paper §4.1, after [ACM93]): a grammar annotated
/// with database-construction actions, describing how a file's text maps
/// to a database view. The paper's BibTeX example becomes:
///
///   SchemaBuilder b("BibTeX", "Ref_Set");
///   b.Star("Ref_Set", "Reference", "", Action::CollectSet());
///   b.Sequence("Reference",
///              {b.Lit("@INCOLLECTION{"), b.NT("Key"), b.Lit(","), ...},
///              Action::Object("Reference", {{"Key", 1}, ...}));
///   ...
///   auto schema = b.Build();
///
/// The *view symbol* is the non-terminal whose database images populate
/// the queryable class extent (Reference in the example); the root symbol
/// spans the whole file.
class StructuringSchema {
 public:
  const std::string& name() const { return name_; }
  const Grammar& grammar() const { return grammar_; }
  SymbolId root() const { return root_; }
  SymbolId view() const { return view_; }
  const std::string& view_name() const {
    return grammar_.SymbolName(view_);
  }

  const Action& ActionFor(SymbolId id) const { return actions_.at(id); }

  /// Non-terminal names except the root (the default set of region
  /// indices under "full indexing", §5: the root region is the whole file
  /// and is never worth indexing).
  std::vector<std::string> IndexableNames() const;

 private:
  friend class SchemaBuilder;

  std::string name_;
  Grammar grammar_;
  SymbolId root_ = kInvalidSymbol;
  SymbolId view_ = kInvalidSymbol;
  std::map<SymbolId, Action> actions_;
};

/// Fluent construction of structuring schemas; Build() validates.
class SchemaBuilder {
 public:
  /// `view` defaults to the first sequence rule added if left empty.
  SchemaBuilder(std::string schema_name, std::string root,
                std::string view = "");

  GrammarElement Lit(std::string text);
  GrammarElement NT(std::string_view name);
  /// Inline repetition element: item (separator item)*.
  GrammarElement StarOf(std::string_view item, std::string separator,
                        int min_count = 0);

  /// lhs -> elements, with the given construction action.
  SchemaBuilder& Sequence(std::string_view lhs,
                          std::vector<GrammarElement> elements,
                          Action action);

  /// lhs -> item (sep item)*; default action collects a set.
  SchemaBuilder& Star(std::string_view lhs, std::string_view item,
                      std::string separator,
                      Action action = Action::CollectSet(),
                      int min_count = 0);

  /// lhs -> token leaf.
  SchemaBuilder& Token(std::string_view lhs, TokenKind kind,
                       std::vector<std::string> stops = {},
                       Action action = Action::String());

  /// Validates and returns the schema. Errors from rule definitions are
  /// deferred to here.
  Result<StructuringSchema> Build();

 private:
  StructuringSchema schema_;
  std::string view_name_;
  Status deferred_error_;
};

}  // namespace qof

#endif  // QOF_SCHEMA_STRUCTURING_SCHEMA_H_
