#ifndef QOF_SCHEMA_RIG_DERIVATION_H_
#define QOF_SCHEMA_RIG_DERIVATION_H_

#include <set>
#include <string>

#include "qof/rig/rig.h"
#include "qof/schema/structuring_schema.h"

namespace qof {

/// Derives the full RIG of a structuring schema (paper §4.2): one node per
/// non-terminal, and an edge (A, B) iff some rule has A on the left and B
/// among its right-side non-terminals — exactly when an A region can
/// directly include a B region under full indexing.
Rig DeriveFullRig(const StructuringSchema& schema);

/// Derives the RIG of a partial index (paper §6.1): nodes are the indexed
/// names; edge (A, B) iff the full RIG has a path A ⇝ B whose interior
/// nodes are all unindexed.
Rig DerivePartialRig(const Rig& full_rig,
                     const std::set<std::string>& indexed_names);

/// Generalization for contextually-restricted indices (§7): nodes are the
/// indexed names, but only `blocking_names` (the names indexed
/// *everywhere*) exclude a path's interior. A name indexed only within
/// some context may be absent anywhere, so it cannot be relied on to
/// separate regions: treating it as transparent yields a graph every
/// partially-indexed instance satisfies (Def. 3.1), keeping the
/// optimizer's rewrites and triviality test sound.
Rig DerivePartialRig(const Rig& full_rig,
                     const std::set<std::string>& indexed_names,
                     const std::set<std::string>& blocking_names);

}  // namespace qof

#endif  // QOF_SCHEMA_RIG_DERIVATION_H_
