#include "qof/schema/action.h"

namespace qof {

std::string Action::ToString() const {
  switch (kind) {
    case Kind::kString:
      return "$$ := text";
    case Kind::kInt:
      return "$$ := int(text)";
    case Kind::kChild:
      return "$$ := $" + std::to_string(child);
    case Kind::kCollectSet:
      return "$$ := U $i";
    case Kind::kCollectList:
      return "$$ := [$i...]";
    case Kind::kTuple:
    case Kind::kObject: {
      std::string out = kind == Kind::kObject
                            ? "$$ := new(" + class_name + ", tuple("
                            : "$$ := tuple(";
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields[i].first + ": $" + std::to_string(fields[i].second);
      }
      out += kind == Kind::kObject ? "))" : ")";
      return out;
    }
  }
  return "<invalid>";
}

}  // namespace qof
