#include "qof/schema/schema_text.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace qof {
namespace {

// --- token layer ------------------------------------------------------------

enum class TokKind {
  kIdent,    // schema, root, word, rule names, ...
  kString,   // "..." or '...'
  kDefine,   // ::=
  kArrow,    // =>
  kSemi,     // ;
  kLParen,
  kRParen,
  kComma,
  kColon,
  kSlash,
  kStar,
  kPlus,
  kDollar,
  kNumber,
  kEnd,
};

struct Tok {
  TokKind kind;
  std::string text;
  size_t line = 1;
};

Result<std::vector<Tok>> Lex(std::string_view input) {
  std::vector<Tok> out;
  size_t pos = 0;
  size_t line = 1;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              " of schema text");
  };
  while (pos < input.size()) {
    char c = input[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '-' && pos + 1 < input.size() && input[pos + 1] == '-') {
      while (pos < input.size() && input[pos] != '\n') ++pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t b = pos;
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '_' || input[pos] == '-')) {
        ++pos;
      }
      out.push_back({TokKind::kIdent,
                     std::string(input.substr(b, pos - b)), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t b = pos;
      while (pos < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[pos]))) {
        ++pos;
      }
      out.push_back({TokKind::kNumber,
                     std::string(input.substr(b, pos - b)), line});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      size_t b = pos;
      while (pos < input.size() && input[pos] != quote) {
        if (input[pos] == '\n') ++line;
        ++pos;
      }
      if (pos >= input.size()) return error("unterminated string literal");
      out.push_back({TokKind::kString,
                     std::string(input.substr(b, pos - b)), line});
      ++pos;
      continue;
    }
    if (c == ':' && input.compare(pos, 3, "::=") == 0) {
      out.push_back({TokKind::kDefine, "::=", line});
      pos += 3;
      continue;
    }
    if (c == '=' && pos + 1 < input.size() && input[pos + 1] == '>') {
      out.push_back({TokKind::kArrow, "=>", line});
      pos += 2;
      continue;
    }
    TokKind kind;
    switch (c) {
      case ';': kind = TokKind::kSemi; break;
      case '(': kind = TokKind::kLParen; break;
      case ')': kind = TokKind::kRParen; break;
      case ',': kind = TokKind::kComma; break;
      case ':': kind = TokKind::kColon; break;
      case '/': kind = TokKind::kSlash; break;
      case '*': kind = TokKind::kStar; break;
      case '+': kind = TokKind::kPlus; break;
      case '$': kind = TokKind::kDollar; break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    out.push_back({kind, std::string(1, c), line});
    ++pos;
  }
  out.push_back({TokKind::kEnd, "", line});
  return out;
}

// --- parser layer -----------------------------------------------------------

// Parsed pieces before assembly through SchemaBuilder.
struct StarSpec {
  std::string item;
  std::string separator;
  int min_count = 0;
};

struct TokenSpec {
  TokenKind kind;
  std::vector<std::string> stops;
};

struct ElementSpec {
  enum class Kind { kLiteral, kNonTerminal, kStar };
  Kind kind;
  std::string text;  // literal / NT name
  StarSpec star;
};

struct RuleSpec {
  std::string lhs;
  // Exactly one of these is set.
  std::optional<StarSpec> star_body;
  std::optional<TokenSpec> token_body;
  std::vector<ElementSpec> elements;
  std::optional<Action> action;
  size_t line = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<StructuringSchema> Parse() {
    QOF_RETURN_IF_ERROR(ExpectKeyword("schema"));
    QOF_ASSIGN_OR_RETURN(std::string schema_name, ExpectIdent("name"));
    QOF_RETURN_IF_ERROR(ExpectKeyword("root"));
    QOF_ASSIGN_OR_RETURN(std::string root, ExpectIdent("root symbol"));
    QOF_RETURN_IF_ERROR(ExpectKeyword("view"));
    QOF_ASSIGN_OR_RETURN(std::string view, ExpectIdent("view symbol"));
    QOF_RETURN_IF_ERROR(Expect(TokKind::kSemi, "';'"));

    std::vector<RuleSpec> rules;
    while (Peek().kind != TokKind::kEnd) {
      QOF_ASSIGN_OR_RETURN(RuleSpec rule, ParseRule());
      rules.push_back(std::move(rule));
    }

    // Assemble through the builder (which also validates).
    SchemaBuilder builder(schema_name, root, view);
    for (const RuleSpec& rule : rules) {
      if (rule.star_body.has_value()) {
        builder.Star(rule.lhs, rule.star_body->item,
                     rule.star_body->separator,
                     rule.action.value_or(Action::CollectSet()),
                     rule.star_body->min_count);
      } else if (rule.token_body.has_value()) {
        builder.Token(rule.lhs, rule.token_body->kind,
                      rule.token_body->stops,
                      rule.action.value_or(Action::String()));
      } else {
        if (!rule.action.has_value()) {
          return Status::ParseError(
              "sequence rule for '" + rule.lhs +
              "' needs an explicit => action (line " +
              std::to_string(rule.line) + ")");
        }
        std::vector<GrammarElement> elements;
        for (const ElementSpec& e : rule.elements) {
          switch (e.kind) {
            case ElementSpec::Kind::kLiteral:
              elements.push_back(builder.Lit(e.text));
              break;
            case ElementSpec::Kind::kNonTerminal:
              elements.push_back(builder.NT(e.text));
              break;
            case ElementSpec::Kind::kStar:
              elements.push_back(builder.StarOf(
                  e.star.item, e.star.separator, e.star.min_count));
              break;
          }
        }
        builder.Sequence(rule.lhs, std::move(elements), *rule.action);
      }
    }
    return builder.Build();
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at line " +
                              std::to_string(Peek().line) +
                              " of schema text");
  }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + what);
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectKeyword(const char* word) {
    if (Peek().kind != TokKind::kIdent || Peek().text != word) {
      return Error(std::string("expected keyword '") + word + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return toks_[pos_++].text;
  }

  // star ::= '(' IDENT ('/' STRING)? ')' ('*' | '+')
  Result<StarSpec> ParseStar() {
    StarSpec star;
    QOF_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    QOF_ASSIGN_OR_RETURN(star.item, ExpectIdent("repeated symbol"));
    if (Peek().kind == TokKind::kSlash) {
      ++pos_;
      if (Peek().kind != TokKind::kString) {
        return Error("expected separator string after '/'");
      }
      star.separator = toks_[pos_++].text;
    }
    QOF_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    if (Peek().kind == TokKind::kStar) {
      star.min_count = 0;
    } else if (Peek().kind == TokKind::kPlus) {
      star.min_count = 1;
    } else {
      return Error("expected '*' or '+' after repetition");
    }
    ++pos_;
    return star;
  }

  Result<std::vector<std::string>> ParseStops() {
    std::vector<std::string> stops;
    QOF_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    while (true) {
      if (Peek().kind != TokKind::kString) {
        return Error("expected stop string");
      }
      stops.push_back(toks_[pos_++].text);
      if (Peek().kind != TokKind::kComma) break;
      ++pos_;
    }
    QOF_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return stops;
  }

  Result<std::vector<std::pair<std::string, int>>> ParseFields() {
    std::vector<std::pair<std::string, int>> fields;
    QOF_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    while (true) {
      QOF_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("field name"));
      QOF_RETURN_IF_ERROR(Expect(TokKind::kColon, "':'"));
      QOF_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
      if (Peek().kind != TokKind::kNumber) {
        return Error("expected child index after '$'");
      }
      fields.emplace_back(std::move(attr), std::stoi(toks_[pos_++].text));
      if (Peek().kind != TokKind::kComma) break;
      ++pos_;
    }
    QOF_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return fields;
  }

  Result<Action> ParseAction() {
    if (Peek().kind == TokKind::kDollar) {
      ++pos_;
      if (Peek().kind != TokKind::kNumber) {
        return Error("expected child index after '$'");
      }
      return Action::Child(std::stoi(toks_[pos_++].text));
    }
    QOF_ASSIGN_OR_RETURN(std::string word, ExpectIdent("action"));
    if (word == "text") return Action::String();
    if (word == "int") return Action::Int();
    if (word == "collect") {
      QOF_ASSIGN_OR_RETURN(std::string kind, ExpectIdent("set|list"));
      if (kind == "set") return Action::CollectSet();
      if (kind == "list") return Action::CollectList();
      return Error("expected 'set' or 'list' after collect");
    }
    if (word == "tuple") {
      QOF_ASSIGN_OR_RETURN(auto fields, ParseFields());
      return Action::Tuple(std::move(fields));
    }
    if (word == "object") {
      QOF_ASSIGN_OR_RETURN(std::string class_name,
                           ExpectIdent("class name"));
      QOF_ASSIGN_OR_RETURN(auto fields, ParseFields());
      return Action::Object(std::move(class_name), std::move(fields));
    }
    return Error("unknown action '" + word + "'");
  }

  Result<RuleSpec> ParseRule() {
    RuleSpec rule;
    rule.line = Peek().line;
    QOF_ASSIGN_OR_RETURN(rule.lhs, ExpectIdent("rule name"));
    QOF_RETURN_IF_ERROR(Expect(TokKind::kDefine, "'::='"));

    // Token bodies.
    if (Peek().kind == TokKind::kIdent &&
        (Peek().text == "word" || Peek().text == "number" ||
         Peek().text == "until" || Peek().text == "until-last-word")) {
      std::string word = toks_[pos_++].text;
      TokenSpec token;
      if (word == "word") {
        token.kind = TokenKind::kWord;
      } else if (word == "number") {
        token.kind = TokenKind::kNumber;
      } else {
        token.kind = word == "until" ? TokenKind::kUntil
                                     : TokenKind::kUntilLastWord;
        QOF_ASSIGN_OR_RETURN(token.stops, ParseStops());
      }
      rule.token_body = std::move(token);
    } else {
      // Elements until '=>' or ';'.
      while (Peek().kind != TokKind::kArrow &&
             Peek().kind != TokKind::kSemi) {
        ElementSpec element;
        if (Peek().kind == TokKind::kString) {
          element.kind = ElementSpec::Kind::kLiteral;
          element.text = toks_[pos_++].text;
        } else if (Peek().kind == TokKind::kIdent) {
          element.kind = ElementSpec::Kind::kNonTerminal;
          element.text = toks_[pos_++].text;
        } else if (Peek().kind == TokKind::kLParen) {
          element.kind = ElementSpec::Kind::kStar;
          QOF_ASSIGN_OR_RETURN(element.star, ParseStar());
        } else {
          return Error("expected literal, symbol or repetition");
        }
        rule.elements.push_back(std::move(element));
      }
      if (rule.elements.empty()) {
        return Error("empty rule body for '" + rule.lhs + "'");
      }
      // A body that is exactly one repetition is a star rule.
      if (rule.elements.size() == 1 &&
          rule.elements[0].kind == ElementSpec::Kind::kStar) {
        rule.star_body = rule.elements[0].star;
        rule.elements.clear();
      }
    }

    if (Peek().kind == TokKind::kArrow) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(Action action, ParseAction());
      rule.action = std::move(action);
    }
    QOF_RETURN_IF_ERROR(Expect(TokKind::kSemi, "';' closing rule"));
    return rule;
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<StructuringSchema> ParseSchemaText(std::string_view input) {
  QOF_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(input));
  return Parser(std::move(toks)).Parse();
}

}  // namespace qof
