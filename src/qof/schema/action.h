#ifndef QOF_SCHEMA_ACTION_H_
#define QOF_SCHEMA_ACTION_H_

#include <string>
#include <utility>
#include <vector>

namespace qof {

/// The annotation attached to a grammar rule: how the database image of a
/// word derived from the rule is constructed from its children's images
/// (paper §4.1). This is the structured equivalent of the paper's
/// Yacc-style statements:
///   kString       $$ := <matched text>                (leaf rules)
///   kInt          $$ := <matched text as integer>
///   kChild        $$ := $k
///   kCollectSet   $$ := ∪ $i                           (star rules)
///   kCollectList  $$ := [$1, ..., $n]
///   kTuple        $$ := tuple(a1: $k1, ..., am: $km)
///   kObject       $$ := new(Class, tuple(a1: $k1, ...))
/// Child indices $k are 1-based and count only non-terminal elements,
/// matching the paper's examples.
struct Action {
  enum class Kind {
    kString,
    kInt,
    kChild,
    kCollectSet,
    kCollectList,
    kTuple,
    kObject,
  };

  Kind kind = Kind::kString;
  int child = 1;                  // kChild
  std::string class_name;        // kObject
  std::vector<std::pair<std::string, int>> fields;  // kTuple / kObject

  static Action String() { return {Kind::kString, 1, "", {}}; }
  static Action Int() { return {Kind::kInt, 1, "", {}}; }
  static Action Child(int k) { return {Kind::kChild, k, "", {}}; }
  static Action CollectSet() { return {Kind::kCollectSet, 1, "", {}}; }
  static Action CollectList() { return {Kind::kCollectList, 1, "", {}}; }
  static Action Tuple(std::vector<std::pair<std::string, int>> fields) {
    return {Kind::kTuple, 1, "", std::move(fields)};
  }
  static Action Object(std::string class_name,
                       std::vector<std::pair<std::string, int>> fields) {
    return {Kind::kObject, 1, std::move(class_name), std::move(fields)};
  }

  std::string ToString() const;
};

}  // namespace qof

#endif  // QOF_SCHEMA_ACTION_H_
