#include "qof/schema/structuring_schema.h"

namespace qof {

std::vector<std::string> StructuringSchema::IndexableNames() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < grammar_.num_symbols(); ++i) {
    if (static_cast<SymbolId>(i) == root_) continue;
    out.push_back(grammar_.SymbolName(static_cast<SymbolId>(i)));
  }
  return out;
}

SchemaBuilder::SchemaBuilder(std::string schema_name, std::string root,
                             std::string view) {
  schema_.name_ = std::move(schema_name);
  schema_.root_ = schema_.grammar_.AddSymbol(root);
  view_name_ = std::move(view);
}

GrammarElement SchemaBuilder::Lit(std::string text) {
  return GrammarElement::Lit(std::move(text));
}

GrammarElement SchemaBuilder::NT(std::string_view name) {
  return GrammarElement::NT(schema_.grammar_.AddSymbol(name));
}

GrammarElement SchemaBuilder::StarOf(std::string_view item,
                                     std::string separator, int min_count) {
  return GrammarElement::Star(schema_.grammar_.AddSymbol(item),
                              std::move(separator), min_count);
}

SchemaBuilder& SchemaBuilder::Sequence(std::string_view lhs,
                                       std::vector<GrammarElement> elements,
                                       Action action) {
  SymbolId id = schema_.grammar_.AddSymbol(lhs);
  Status s = schema_.grammar_.SetRule(id, SequenceBody{std::move(elements)});
  if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
  schema_.actions_[id] = std::move(action);
  if (view_name_.empty()) view_name_ = std::string(lhs);
  return *this;
}

SchemaBuilder& SchemaBuilder::Star(std::string_view lhs,
                                   std::string_view item,
                                   std::string separator, Action action,
                                   int min_count) {
  SymbolId id = schema_.grammar_.AddSymbol(lhs);
  SymbolId item_id = schema_.grammar_.AddSymbol(item);
  Status s = schema_.grammar_.SetRule(
      id, StarBody{item_id, std::move(separator), min_count});
  if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
  schema_.actions_[id] = std::move(action);
  return *this;
}

SchemaBuilder& SchemaBuilder::Token(std::string_view lhs, TokenKind kind,
                                    std::vector<std::string> stops,
                                    Action action) {
  SymbolId id = schema_.grammar_.AddSymbol(lhs);
  Status s = schema_.grammar_.SetRule(id, TokenBody{kind, std::move(stops)});
  if (!s.ok() && deferred_error_.ok()) deferred_error_ = s;
  schema_.actions_[id] = std::move(action);
  return *this;
}

Result<StructuringSchema> SchemaBuilder::Build() {
  QOF_RETURN_IF_ERROR(deferred_error_);
  QOF_RETURN_IF_ERROR(schema_.grammar_.Validate(schema_.root_));
  if (view_name_.empty()) {
    return Status::InvalidArgument("schema has no view symbol");
  }
  schema_.view_ = schema_.grammar_.FindSymbol(view_name_);
  if (schema_.view_ == kInvalidSymbol) {
    return Status::InvalidArgument("view symbol not in grammar: " +
                                   view_name_);
  }
  // Every non-terminal with a rule needs an action; default leaves to
  // kString (harmless) but sequences/stars must be explicit.
  for (size_t i = 0; i < schema_.grammar_.num_symbols(); ++i) {
    SymbolId id = static_cast<SymbolId>(i);
    if (!schema_.grammar_.HasRule(id)) continue;
    if (schema_.actions_.find(id) == schema_.actions_.end()) {
      schema_.actions_[id] = Action::String();
    }
    // Action child indices must be within the rule's child count.
    const Action& a = schema_.actions_[id];
    size_t n_children = schema_.grammar_.RuleChildren(id).size();
    auto check = [&](int k) {
      return k >= 1 && static_cast<size_t>(k) <= n_children;
    };
    if (a.kind == Action::Kind::kChild && !check(a.child)) {
      return Status::InvalidArgument(
          "action $" + std::to_string(a.child) + " out of range in rule " +
          schema_.grammar_.SymbolName(id));
    }
    if (a.kind == Action::Kind::kTuple || a.kind == Action::Kind::kObject) {
      for (const auto& [attr, k] : a.fields) {
        if (!check(k)) {
          return Status::InvalidArgument(
              "action field " + attr + ": $" + std::to_string(k) +
              " out of range in rule " + schema_.grammar_.SymbolName(id));
        }
      }
    }
  }
  return schema_;
}

}  // namespace qof
