#ifndef QOF_SCHEMA_GRAMMAR_H_
#define QOF_SCHEMA_GRAMMAR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Non-terminal identifier within a Grammar.
using SymbolId = int32_t;
inline constexpr SymbolId kInvalidSymbol = -1;

/// Leaf token kinds a non-terminal can match (grammar terminals).
enum class TokenKind {
  /// A maximal run of word characters (same character class as the word
  /// index's tokenizer, so σw selections line up with parsed regions).
  kWord,
  /// A run of ASCII digits.
  kNumber,
  /// Everything up to (excluding) the earliest occurrence of any stop
  /// string; the match is trimmed of surrounding whitespace. The stop
  /// itself is not consumed.
  kUntil,
  /// Like kUntil, but stops *before the last word* preceding the earliest
  /// stop, leaving that word for the next element. This supports the
  /// "first names ... last name" shape of natural schemas ("G. F." +
  /// "Corliss"). Matches empty when only one word remains.
  kUntilLastWord,
};

/// One element of a sequence rule: a literal to match, a non-terminal to
/// recurse into, or an inline separated repetition of a non-terminal.
/// Inline stars let composite regions carry their own delimiters —
/// `Authors -> '"' Name (" and " Name)* '"'` — so a parent's span strictly
/// contains its children's even with a single child.
struct GrammarElement {
  enum class Kind { kLiteral, kNonTerminal, kStar };
  Kind kind;
  std::string literal;   // kLiteral: the text; kStar: the separator
  SymbolId symbol = kInvalidSymbol;  // kNonTerminal / kStar
  int min_count = 0;     // kStar

  static GrammarElement Lit(std::string text) {
    return {Kind::kLiteral, std::move(text), kInvalidSymbol, 0};
  }
  static GrammarElement NT(SymbolId s) {
    return {Kind::kNonTerminal, "", s, 0};
  }
  static GrammarElement Star(SymbolId s, std::string separator,
                             int min_count = 0) {
    return {Kind::kStar, std::move(separator), s, min_count};
  }
};

/// A → e1 e2 ... en.
struct SequenceBody {
  std::vector<GrammarElement> elements;
};

/// A → B (sep B)*  — at least `min_count` items; `separator` may be empty,
/// in which case items are tried back-to-back with backtracking.
struct StarBody {
  SymbolId item = kInvalidSymbol;
  std::string separator;
  int min_count = 0;
};

/// A → token.
struct TokenBody {
  TokenKind kind = TokenKind::kWord;
  std::vector<std::string> stops;  // kUntil / kUntilLastWord
};

using RuleBody = std::variant<SequenceBody, StarBody, TokenBody>;

/// A context-free grammar in the restricted shape structuring schemas use
/// (paper §4.1): every non-terminal has exactly one rule, and rules are
/// sequences, separated repetitions, or token leaves. This is sufficient
/// for "natural" schemas and parses deterministically top-down.
///
/// Region-soundness guideline: a rule whose body is a bare single
/// non-terminal (no literals) gives parent and child identical spans,
/// which makes the pair indistinguishable to the region algebra's direct
/// inclusion. Validate() reports such rules.
class Grammar {
 public:
  Grammar() = default;

  /// Adds (or finds) a non-terminal by name.
  SymbolId AddSymbol(std::string_view name);
  SymbolId FindSymbol(std::string_view name) const;
  const std::string& SymbolName(SymbolId id) const { return names_[id]; }
  size_t num_symbols() const { return names_.size(); }

  /// Installs the rule for `lhs`; each non-terminal may have only one.
  Status SetRule(SymbolId lhs, RuleBody body);

  bool HasRule(SymbolId id) const;
  const RuleBody& RuleFor(SymbolId id) const { return rules_[id]; }

  /// Non-terminal children of a rule, in element order (the $i operands of
  /// the annotation language; literals do not count).
  std::vector<SymbolId> RuleChildren(SymbolId id) const;

  /// Checks that every reachable non-terminal has a rule, star items and
  /// sequence symbols are defined, and reports single-non-terminal rules
  /// (span-collision hazard, see class comment).
  Status Validate(SymbolId root) const;

  /// All symbol names, id order.
  std::vector<std::string> SymbolNames() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::vector<RuleBody> rules_;
  std::vector<bool> has_rule_;
};

}  // namespace qof

#endif  // QOF_SCHEMA_GRAMMAR_H_
