#ifndef QOF_SCHEMA_SCHEMA_TEXT_H_
#define QOF_SCHEMA_SCHEMA_TEXT_H_

#include <string_view>

#include "qof/schema/structuring_schema.h"
#include "qof/util/result.h"

namespace qof {

/// Parses the textual structuring-schema format — the file-based
/// counterpart of SchemaBuilder, mirroring how the paper presents
/// annotated grammars (§4.1):
///
///   schema BibTeX root Ref_Set view Reference;
///
///   Ref_Set   ::= (Reference)*                => collect set;
///   Reference ::= "@INCOLLECTION{" Key ","
///                 "AUTHOR =" Authors ","
///                 "}"                         => object Reference(
///                                                  Key: $1, Authors: $2);
///   Authors   ::= '"' (Name / "and ")+ '"'    => collect set;
///   Name      ::= First_Name Last_Name        => tuple(First_Name: $1,
///                                                      Last_Name: $2);
///   Key       ::= until(",");
///   Year      ::= number                      => int;
///   First_Name ::= until-last-word(" and ", '"');
///   Last_Name ::= word;
///
/// Grammar of the format:
///   schema_file ::= header rule* ;
///   header      ::= 'schema' IDENT 'root' IDENT 'view' IDENT ';'
///   rule        ::= IDENT '::=' body ('=>' action)? ';'
///   body        ::= star_body | token_body | element+
///   star_body   ::= star            (the whole body is one repetition)
///   element     ::= STRING | IDENT | star
///   star        ::= '(' IDENT ('/' STRING)? ')' ('*' | '+')
///   token_body  ::= 'word' | 'number'
///                 | 'until' '(' STRING (',' STRING)* ')'
///                 | 'until-last-word' '(' STRING (',' STRING)* ')'
///   action      ::= 'text' | 'int' | '$' NUMBER
///                 | 'collect' ('set' | 'list')
///                 | 'tuple' '(' fields ')'
///                 | 'object' IDENT '(' fields ')'
///   fields      ::= IDENT ':' '$' NUMBER (',' IDENT ':' '$' NUMBER)*
///
/// String literals use double or single quotes (no escapes: pick the
/// quote the literal does not contain). `--` starts a comment to end of
/// line. Default actions: `text` for token rules, `collect set` for
/// repetitions; sequence rules must state their action.
Result<StructuringSchema> ParseSchemaText(std::string_view input);

}  // namespace qof

#endif  // QOF_SCHEMA_SCHEMA_TEXT_H_
