#include "qof/schema/grammar.h"

#include <deque>

namespace qof {

SymbolId Grammar::AddSymbol(std::string_view name) {
  SymbolId existing = FindSymbol(name);
  if (existing != kInvalidSymbol) return existing;
  names_.emplace_back(name);
  rules_.emplace_back(SequenceBody{});
  has_rule_.push_back(false);
  return static_cast<SymbolId>(names_.size() - 1);
}

SymbolId Grammar::FindSymbol(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SymbolId>(i);
  }
  return kInvalidSymbol;
}

Status Grammar::SetRule(SymbolId lhs, RuleBody body) {
  if (lhs < 0 || static_cast<size_t>(lhs) >= names_.size()) {
    return Status::InvalidArgument("rule for unknown symbol id");
  }
  if (has_rule_[lhs]) {
    return Status::AlreadyExists("symbol already has a rule: " +
                                 names_[lhs]);
  }
  rules_[lhs] = std::move(body);
  has_rule_[lhs] = true;
  return Status::OK();
}

bool Grammar::HasRule(SymbolId id) const {
  return id >= 0 && static_cast<size_t>(id) < has_rule_.size() &&
         has_rule_[id];
}

std::vector<SymbolId> Grammar::RuleChildren(SymbolId id) const {
  std::vector<SymbolId> out;
  const RuleBody& body = rules_[id];
  if (const auto* seq = std::get_if<SequenceBody>(&body)) {
    for (const GrammarElement& e : seq->elements) {
      if (e.kind != GrammarElement::Kind::kLiteral) {
        out.push_back(e.symbol);
      }
    }
  } else if (const auto* star = std::get_if<StarBody>(&body)) {
    out.push_back(star->item);
  }
  return out;
}

Status Grammar::Validate(SymbolId root) const {
  if (root < 0 || static_cast<size_t>(root) >= names_.size()) {
    return Status::InvalidArgument("unknown root symbol");
  }
  std::vector<bool> seen(names_.size(), false);
  std::deque<SymbolId> frontier = {root};
  seen[root] = true;
  while (!frontier.empty()) {
    SymbolId s = frontier.front();
    frontier.pop_front();
    if (!has_rule_[s]) {
      return Status::InvalidArgument("non-terminal has no rule: " +
                                     names_[s]);
    }
    const RuleBody& body = rules_[s];
    if (const auto* seq = std::get_if<SequenceBody>(&body)) {
      size_t nts = 0;
      size_t lits = 0;
      size_t stars = 0;
      for (const GrammarElement& e : seq->elements) {
        if (e.kind != GrammarElement::Kind::kLiteral) {
          if (e.kind == GrammarElement::Kind::kStar) {
            ++stars;
            if (e.min_count < 0) {
              return Status::InvalidArgument("negative min_count in " +
                                             names_[s]);
            }
          } else {
            ++nts;
          }
          if (e.symbol < 0 ||
              static_cast<size_t>(e.symbol) >= names_.size()) {
            return Status::InvalidArgument(
                "sequence rule references unknown symbol in " + names_[s]);
          }
          if (!seen[e.symbol]) {
            seen[e.symbol] = true;
            frontier.push_back(e.symbol);
          }
        } else {
          if (e.literal.empty()) {
            return Status::InvalidArgument("empty literal in rule for " +
                                           names_[s]);
          }
          ++lits;
        }
      }
      if (seq->elements.empty()) {
        return Status::InvalidArgument("empty sequence rule for " +
                                       names_[s]);
      }
      if (stars > 0 && (stars > 1 || nts > 0)) {
        // Inline stars produce a variable number of children; mixing them
        // with fixed non-terminals would make $i indices ambiguous.
        return Status::InvalidArgument(
            "rule '" + names_[s] +
            "' mixes an inline star with other non-terminals");
      }
      if (nts == 1 && lits == 0) {
        return Status::InvalidArgument(
            "rule '" + names_[s] +
            " -> <single non-terminal>' gives parent and child identical "
            "spans; direct inclusion cannot separate them — add a "
            "delimiter literal or inline the child");
      }
    } else if (const auto* star = std::get_if<StarBody>(&body)) {
      if (star->item < 0 ||
          static_cast<size_t>(star->item) >= names_.size()) {
        return Status::InvalidArgument("star rule with unknown item in " +
                                       names_[s]);
      }
      if (star->min_count < 0) {
        return Status::InvalidArgument("negative min_count in " +
                                       names_[s]);
      }
      if (!seen[star->item]) {
        seen[star->item] = true;
        frontier.push_back(star->item);
      }
    } else {
      const auto& tok = std::get<TokenBody>(body);
      if ((tok.kind == TokenKind::kUntil ||
           tok.kind == TokenKind::kUntilLastWord) &&
          tok.stops.empty()) {
        return Status::InvalidArgument(
            "until-token rule needs at least one stop in " + names_[s]);
      }
      for (const std::string& stop : tok.stops) {
        if (stop.empty()) {
          return Status::InvalidArgument("empty stop string in " +
                                         names_[s]);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace qof
