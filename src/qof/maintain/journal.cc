#include "qof/maintain/journal.h"

#include <cstring>

#include "qof/exec/fault_injector.h"
#include "qof/util/wire.h"

namespace qof {
namespace {

Result<JournalRecord> DecodeRecordPayload(std::string_view payload) {
  WireReader reader(payload, "journal record");
  JournalRecord record;
  QOF_ASSIGN_OR_RETURN(record.generation, reader.U64());
  QOF_ASSIGN_OR_RETURN(uint8_t op, reader.U8());
  if (op < static_cast<uint8_t>(JournalOp::kAdd) ||
      op > static_cast<uint8_t>(JournalOp::kRemove)) {
    return Status::InvalidArgument("journal record has unknown op " +
                                   std::to_string(op));
  }
  record.op = static_cast<JournalOp>(op);
  QOF_ASSIGN_OR_RETURN(record.name, reader.String());
  QOF_ASSIGN_OR_RETURN(record.text, reader.String());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in journal record");
  }
  return record;
}

}  // namespace

std::string JournalHeader() { return std::string(kJournalMagic); }

std::string EncodeJournalRecord(const JournalRecord& record) {
  std::string payload;
  PutU64(record.generation, &payload);
  PutU8(static_cast<uint8_t>(record.op), &payload);
  PutString(record.name, &payload);
  PutString(record.text, &payload);

  std::string frame;
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU64(Fnv1a(payload), &frame);
  frame.append(payload);
  return frame;
}

Result<ParsedJournal> ParseJournal(std::string_view data) {
  if (data.size() < kJournalMagic.size() ||
      std::memcmp(data.data(), kJournalMagic.data(),
                  kJournalMagic.size()) != 0) {
    return Status::InvalidArgument("not a qof journal (bad magic)");
  }
  ParsedJournal out;
  out.valid_bytes = kJournalMagic.size();
  size_t pos = kJournalMagic.size();
  while (pos < data.size()) {
    // Anything that fails from here on is a torn append: keep the intact
    // prefix, flag the tail.
    WireReader header(data.substr(pos), "journal frame");
    auto size = header.U32();
    auto checksum = header.U64();
    if (!size.ok() || !checksum.ok() ||
        header.Remaining() < static_cast<size_t>(*size)) {
      out.truncated_tail = true;
      return out;
    }
    std::string_view payload = data.substr(pos + 12, *size);
    if (Fnv1a(payload) != *checksum) {
      out.truncated_tail = true;
      return out;
    }
    auto record = DecodeRecordPayload(payload);
    if (!record.ok()) {
      out.truncated_tail = true;
      return out;
    }
    out.records.push_back(std::move(*record));
    pos += 12 + *size;
    out.valid_bytes = pos;
  }
  return out;
}

Status ReplayJournal(const std::vector<JournalRecord>& records,
                     IndexMaintainer* maintainer) {
  for (const JournalRecord& record : records) {
    QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kJournalReplay));
    if (record.generation != maintainer->generation() + 1) {
      return Status::InvalidArgument(
          "journal generation " + std::to_string(record.generation) +
          " does not continue from index generation " +
          std::to_string(maintainer->generation()) +
          " — blob and journal are from different histories");
    }
    switch (record.op) {
      case JournalOp::kAdd: {
        auto id = maintainer->AddDocument(record.name, record.text);
        if (!id.ok()) return id.status();
        break;
      }
      case JournalOp::kUpdate: {
        auto id = maintainer->UpdateDocument(record.name, record.text);
        if (!id.ok()) return id.status();
        break;
      }
      case JournalOp::kRemove:
        QOF_RETURN_IF_ERROR(maintainer->RemoveDocument(record.name));
        break;
    }
  }
  return Status::OK();
}

Status AppendJournalRecordToFile(const std::string& path,
                                 const JournalRecord& record,
                                 SyncPolicy policy) {
  std::string frame = EncodeJournalRecord(record);
  Status fault = MaybeInjectFault(fault_site::kJournalAppend);
  Vfs* vfs = DefaultVfs();
  const bool fresh = !vfs->Exists(path);
  uint64_t old_size = 0;
  if (!fresh) {
    auto probe = vfs->OpenRead(path);
    if (!probe.ok()) {
      return Status::Internal("cannot open journal for append: " + path +
                              ": " + probe.status().message());
    }
    old_size = (*probe)->size();
  }
  auto out = vfs->OpenWrite(path, /*truncate=*/false);
  if (!out.ok()) {
    return Status::Internal("cannot open journal for append: " + path +
                            ": " + out.status().message());
  }
  if (!fault.ok()) {
    // Simulated crash mid-append: the magic (when fresh) and half the
    // frame reach the file, then the writer dies. ParseJournal must
    // treat the result as a torn tail.
    if (fresh) (*out)->Append(JournalHeader());
    (*out)->Append(frame.substr(0, frame.size() / 2));
    (*out)->Close();
    return fault;
  }
  // A failed write may leave a partial frame behind; truncating back to
  // the pre-append size keeps the intact tail readable without even
  // needing ParseJournal's torn-tail discard.
  auto FailAndRestore = [&](const char* what, const Status& cause) {
    (*out)->Close();
    if (fresh) {
      vfs->Remove(path);
    } else {
      vfs->Truncate(path, old_size);
    }
    return Status::Internal("journal append failed (" + std::string(what) +
                            ") on '" + path + "': " + cause.message());
  };
  if (fresh) {
    Status status = (*out)->Append(JournalHeader());
    if (!status.ok()) return FailAndRestore("header write", status);
  }
  Status status = (*out)->Append(frame);
  if (!status.ok()) return FailAndRestore("frame write", status);
  if (policy == SyncPolicy::kAlways) {
    status = (*out)->Sync();
    if (!status.ok()) return FailAndRestore("fsync", status);
  }
  status = (*out)->Close();
  if (!status.ok()) return FailAndRestore("close", status);
  // A freshly created journal's directory entry is volatile until the
  // parent is sync'd; kAlways promises the acknowledged record survives
  // power loss, so pay the dirsync once at creation.
  if (fresh && policy == SyncPolicy::kAlways) {
    status = vfs->SyncDir(ParentDir(path));
    if (!status.ok()) {
      return Status::Internal("journal append failed (dirsync) on '" +
                              path + "': " + status.message());
    }
  }
  return Status::OK();
}

}  // namespace qof
