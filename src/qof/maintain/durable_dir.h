#ifndef QOF_MAINTAIN_DURABLE_DIR_H_
#define QOF_MAINTAIN_DURABLE_DIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qof/maintain/journal.h"
#include "qof/store/manifest.h"
#include "qof/store/vfs.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// A crash-consistent index directory: the layout the qof_index CLI
/// keeps, factored here so tests and the crash-sweep fuzzer leg can
/// drive it against a FaultVfs.
///
///   <dir>/MANIFEST        checksummed superblock (see store/manifest.h)
///   <dir>/blob-<G>.qofidx serialized indexes at generation G
///   <dir>/journal-<G>.qofj mutations applied after blob generation G
///   <dir>/schema          schema text (written once at create)
///
/// Invariant: the MANIFEST is only ever replaced atomically, and only
/// after the blob and journal it names are durable. Recovery therefore
/// trusts the manifest unconditionally: read blob-G, replay journal-G's
/// intact frames (the torn tail a crash can leave is discarded), done.
/// Files the manifest does not name are strays from an interrupted
/// checkpoint and are garbage-collected.
///
/// The checkpoint protocol (Checkpoint()):
///   1. write blob-<G'> atomically (tmp+fsync+rename+dirsync)
///   2. create an empty journal-<G'> (synced, dirsync'd)
///   3. publish MANIFEST{G', blob-<G'>, journal-<G'>} atomically
///   4. remove the old blob/journal, dirsync
/// A crash before 3 leaves the old manifest pointing at intact old
/// files; a crash after 3 leaves the new pair committed and at worst
/// stray old files. Skipping any directory sync (the planted
/// skip-dir-sync bug) breaks exactly this old-or-new guarantee.
class DurableIndexDir {
 public:
  struct Options {
    SyncPolicy sync_policy = SyncPolicy::kAlways;
  };

  /// Creates `dir` (if needed) and publishes generation `generation`
  /// with `blob` as its starting blob and a fresh empty journal.
  /// (Overloads rather than a default argument: a nested class with
  /// member initializers cannot be default-constructed in a default
  /// argument before the enclosing class is complete.)
  static Result<DurableIndexDir> Create(Vfs* vfs, const std::string& dir,
                                        const std::string& blob,
                                        uint64_t generation,
                                        const Options& options);
  static Result<DurableIndexDir> Create(Vfs* vfs, const std::string& dir,
                                        const std::string& blob,
                                        uint64_t generation);

  /// Opens an existing directory: reads + verifies the MANIFEST and
  /// garbage-collects strays from interrupted checkpoints. Fails with
  /// kDataLoss when the manifest (or the blob it names) is damaged or
  /// missing.
  static Result<DurableIndexDir> Open(Vfs* vfs, const std::string& dir,
                                      const Options& options);
  static Result<DurableIndexDir> Open(Vfs* vfs, const std::string& dir);

  /// The blob bytes the manifest points at.
  Result<std::string> ReadBlob() const;

  /// Journal records that continue the blob: the intact frames of
  /// journal-<G>, with any torn tail repaired in place (truncated back
  /// to the last intact frame). `repaired`, when non-null, reports
  /// whether a torn tail was discarded.
  Result<std::vector<JournalRecord>> ReadJournal(
      bool* repaired = nullptr) const;

  /// Appends one mutation record per the sync policy. With kAlways the
  /// record is durable when the call returns.
  Status Append(const JournalRecord& record);

  /// Fsyncs the journal — the kBatch boundary. No-op under kAlways
  /// (already synced) and kNone (caller opted out of durability).
  Status SyncJournal();

  /// Runs the checkpoint protocol: publishes `blob` as generation
  /// `generation` with a fresh empty journal, then removes the old pair.
  Status Checkpoint(const std::string& blob, uint64_t generation);

  uint64_t generation() const { return manifest_.generation; }
  const Manifest& manifest() const { return manifest_; }
  std::string blob_path() const { return dir_ + "/" + manifest_.blob_name; }
  std::string journal_path() const {
    return dir_ + "/" + manifest_.journal_name;
  }
  std::string manifest_path() const { return dir_ + "/MANIFEST"; }

 private:
  DurableIndexDir(Vfs* vfs, std::string dir, Options options)
      : vfs_(vfs), dir_(std::move(dir)), options_(options) {}

  Status RemoveStraysLocked();

  Vfs* vfs_ = nullptr;
  std::string dir_;
  Options options_;
  Manifest manifest_;
};

}  // namespace qof

#endif  // QOF_MAINTAIN_DURABLE_DIR_H_
