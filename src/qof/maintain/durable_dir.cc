#include "qof/maintain/durable_dir.h"

#include <utility>

namespace qof {
namespace {

std::string BlobName(uint64_t generation) {
  return "blob-" + std::to_string(generation) + ".qofidx";
}

std::string JournalName(uint64_t generation) {
  return "journal-" + std::to_string(generation) + ".qofj";
}

bool StartsWith(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Creates an empty journal (just the magic) at `path`, fully durable.
/// Atomic-replace rather than truncate-in-place: re-checkpointing a
/// generation reuses the journal name, and a crash between an in-place
/// truncate and the rewrite would leave a magicless journal behind a
/// manifest that references it.
Status CreateEmptyJournal(Vfs* vfs, const std::string& path) {
  return AtomicWriteFile(vfs, path, JournalHeader());
}

}  // namespace

Result<DurableIndexDir> DurableIndexDir::Create(Vfs* vfs,
                                                const std::string& dir,
                                                const std::string& blob,
                                                uint64_t generation,
                                                const Options& options) {
  QOF_RETURN_IF_ERROR(vfs->CreateDir(dir));
  DurableIndexDir out(vfs, dir, options);
  QOF_RETURN_IF_ERROR(out.Checkpoint(blob, generation));
  return out;
}

Result<DurableIndexDir> DurableIndexDir::Create(Vfs* vfs,
                                                const std::string& dir,
                                                const std::string& blob,
                                                uint64_t generation) {
  return Create(vfs, dir, blob, generation, Options());
}

Result<DurableIndexDir> DurableIndexDir::Open(Vfs* vfs,
                                              const std::string& dir) {
  return Open(vfs, dir, Options());
}

Result<DurableIndexDir> DurableIndexDir::Open(Vfs* vfs,
                                              const std::string& dir,
                                              const Options& options) {
  DurableIndexDir out(vfs, dir, options);
  QOF_ASSIGN_OR_RETURN(out.manifest_,
                       ReadManifest(vfs, out.manifest_path()));
  if (!vfs->Exists(out.blob_path())) {
    return Status::DataLoss(out.manifest_path() + " names blob '" +
                            out.manifest_.blob_name +
                            "' which does not exist");
  }
  QOF_RETURN_IF_ERROR(out.RemoveStraysLocked());
  return out;
}

Status DurableIndexDir::RemoveStraysLocked() {
  auto entries = vfs_->ListDir(dir_);
  if (!entries.ok()) return entries.status();
  bool removed = false;
  for (const std::string& name : *entries) {
    if (name == "MANIFEST" || name == "schema" ||
        name == manifest_.blob_name || name == manifest_.journal_name) {
      continue;
    }
    // Only artifacts of an interrupted checkpoint are ours to reap;
    // anything else in the directory is left alone.
    if (StartsWith(name, "blob-") || StartsWith(name, "journal-") ||
        EndsWith(name, ".tmp")) {
      Status status = vfs_->Remove(dir_ + "/" + name);
      if (!status.ok() && !status.IsNotFound()) return status;
      removed = true;
    }
  }
  if (removed) QOF_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
  return Status::OK();
}

Result<std::string> DurableIndexDir::ReadBlob() const {
  auto blob = VfsReadFile(vfs_, blob_path());
  if (!blob.ok() && blob.status().IsNotFound()) {
    return Status::DataLoss("index blob '" + blob_path() +
                            "' vanished after open");
  }
  return blob;
}

Result<std::vector<JournalRecord>> DurableIndexDir::ReadJournal(
    bool* repaired) const {
  if (repaired != nullptr) *repaired = false;
  const std::string path = journal_path();
  if (manifest_.journal_name.empty() || !vfs_->Exists(path)) {
    return Status::DataLoss("journal '" + path +
                            "' named by the manifest does not exist");
  }
  QOF_ASSIGN_OR_RETURN(std::string bytes, VfsReadFile(vfs_, path));
  QOF_ASSIGN_OR_RETURN(ParsedJournal parsed, ParseJournal(bytes));
  if (parsed.truncated_tail) {
    // Crash mid-append: repair in place so the next append continues
    // from an intact frame boundary instead of extending garbage.
    QOF_RETURN_IF_ERROR(vfs_->Truncate(path, parsed.valid_bytes));
    if (repaired != nullptr) *repaired = true;
  }
  return parsed.records;
}

Status DurableIndexDir::Append(const JournalRecord& record) {
  return AppendJournalRecordToFile(journal_path(), record,
                                   options_.sync_policy);
}

Status DurableIndexDir::SyncJournal() {
  if (options_.sync_policy != SyncPolicy::kBatch) return Status::OK();
  auto out = vfs_->OpenWrite(journal_path(), /*truncate=*/false);
  if (!out.ok()) return out.status();
  Status status = (*out)->Sync();
  Status closed = (*out)->Close();
  return status.ok() ? closed : status;
}

Status DurableIndexDir::Checkpoint(const std::string& blob,
                                   uint64_t generation) {
  Manifest next;
  next.generation = generation;
  next.blob_name = BlobName(generation);
  next.journal_name = JournalName(generation);
  next.journal_offset = kJournalMagic.size();

  // 1 + 2: make the new pair durable under names the current manifest
  // does not reference — a crash here leaves strays, never damage.
  QOF_RETURN_IF_ERROR(
      AtomicWriteFile(vfs_, dir_ + "/" + next.blob_name, blob));
  QOF_RETURN_IF_ERROR(
      CreateEmptyJournal(vfs_, dir_ + "/" + next.journal_name));

  // 3: the commit point.
  QOF_RETURN_IF_ERROR(WriteManifest(vfs_, manifest_path(), next));

  // 4: reap the superseded pair (absent on first create; same-name when
  // re-checkpointing a generation in place).
  Manifest old = std::exchange(manifest_, next);
  bool removed = false;
  for (const std::string& name : {old.blob_name, old.journal_name}) {
    if (name.empty() || name == next.blob_name ||
        name == next.journal_name) {
      continue;
    }
    Status status = vfs_->Remove(dir_ + "/" + name);
    if (!status.ok() && !status.IsNotFound()) return status;
    removed = true;
  }
  if (removed) QOF_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
  return Status::OK();
}

}  // namespace qof
