#include "qof/maintain/maintainer.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "qof/exec/fault_injector.h"
#include "qof/parse/parser.h"

namespace qof {
namespace {

/// One live document's shift under compaction: bytes in
/// [old_start, old_end) move by `delta` (signed — documents only ever
/// move toward the front).
struct Seg {
  TextPos old_start;
  TextPos old_end;
  int64_t delta;
};

TextPos Shift(TextPos p, int64_t delta) {
  return static_cast<TextPos>(static_cast<int64_t>(p) + delta);
}

}  // namespace

IndexMaintainer::IndexMaintainer(const StructuringSchema* schema,
                                 Corpus* corpus, BuiltIndexes* built,
                                 IndexSpec spec, MaintainOptions options)
    : schema_(schema),
      corpus_(corpus),
      built_(built),
      spec_(std::move(spec)),
      filter_(spec_.ToFilter()),
      options_(options) {}

Result<IndexMaintainer::Contribution> IndexMaintainer::ParseContribution(
    std::string_view text, const ExecContext* ctx) {
  SchemaParser parser(schema_, ctx);
  auto tree = parser.ParseDocument(text, /*base=*/0);
  if (!tree.ok()) return tree.status();
  Contribution collected;
  CollectRegions(*schema_, **tree, filter_, &collected);
  // Canonicalize each run the same way a fresh build does (FromUnsorted):
  // tree preorder is already canonical, but duplicate spans from chained
  // unary rules must collapse.
  for (auto& [name, run] : collected) {
    std::sort(run.begin(), run.end());
    run.erase(std::unique(run.begin(), run.end()), run.end());
  }
  return collected;
}

void IndexMaintainer::SpliceIn(const Contribution& at_zero, TextPos start,
                               std::string_view text) {
  Contribution shifted;
  for (const auto& [name, run] : at_zero) {
    std::vector<Region>& dst = shifted[name];
    dst.reserve(run.size());
    for (const Region& r : run) {
      dst.push_back({r.start + start, r.end + start});
    }
  }
  built_->regions.InsertDocRegions(shifted);
  built_->words.AddDocPostings(text, start);
}

void IndexMaintainer::SpliceOut(DocId id) {
  if (options_.inject_drop_tombstone) {
    // Fault injection: the document gets tombstoned in the corpus but its
    // contribution survives in the indexes — exactly the state a lost
    // tombstone write would leave behind. One-shot.
    options_.inject_drop_tombstone = false;
    return;
  }
  TextPos begin = corpus_->document_start(id);
  TextPos end = corpus_->document_end(id);
  built_->regions.EraseSpan(begin, end);
  if (synthetic_.count(id) > 0) {
    // Placeholder bytes would tokenize wrongly; erase by span instead
    // (identical effect: every posting in the span belongs to this
    // document).
    built_->words.EraseSpanPostings(begin, end);
    synthetic_.erase(id);
  } else {
    built_->words.EraseDocPostings(corpus_->RawText(begin, end), begin, end);
  }
}

Status IndexMaintainer::EnsureIndexesResident() {
  QOF_RETURN_IF_ERROR(built_->regions.EnsureResident());
  return built_->words.EnsureResident();
}

Result<DocId> IndexMaintainer::AddDocument(std::string name,
                                           std::string_view text,
                                           ThreadPool* pool,
                                           const ExecContext* ctx) {
  if (corpus_->FindDocument(name).ok()) {
    return Status::AlreadyExists("document already in corpus: " + name);
  }
  QOF_RETURN_IF_ERROR(EnsureIndexesResident());
  // The fault site sits before any state change: an injected failure (or
  // a governance interrupt inside the parse below) aborts with corpus and
  // indexes untouched — the atomicity the fuzz fault leg verifies.
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kMaintainAdd));
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  QOF_ASSIGN_OR_RETURN(Contribution fresh, ParseContribution(text, ctx));
  QOF_ASSIGN_OR_RETURN(DocId id, corpus_->AddDocument(std::move(name), text));
  TextPos start = corpus_->document_start(id);
  SpliceIn(fresh, start, corpus_->RawText(start, corpus_->document_end(id)));
  ++built_->documents;
  ++stats_.generation;
  ++stats_.delta_segments;
  ++stats_.docs_reparsed;
  stats_.bytes_reparsed += text.size();
  QOF_RETURN_IF_ERROR(MaybeAutoCompact(pool));
  return id;
}

Result<DocId> IndexMaintainer::UpdateDocument(std::string_view name,
                                              std::string_view text,
                                              ThreadPool* pool,
                                              const ExecContext* ctx) {
  QOF_ASSIGN_OR_RETURN(DocId old_id, corpus_->FindDocument(name));
  QOF_RETURN_IF_ERROR(EnsureIndexesResident());
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kMaintainUpdate));
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  QOF_ASSIGN_OR_RETURN(Contribution fresh, ParseContribution(text, ctx));
  SpliceOut(old_id);
  QOF_ASSIGN_OR_RETURN(DocId id, corpus_->ReplaceDocument(name, text));
  TextPos start = corpus_->document_start(id);
  SpliceIn(fresh, start, corpus_->RawText(start, corpus_->document_end(id)));
  ++stats_.generation;
  ++stats_.delta_segments;
  ++stats_.docs_reparsed;
  stats_.bytes_reparsed += text.size();
  QOF_RETURN_IF_ERROR(MaybeAutoCompact(pool));
  return id;
}

Status IndexMaintainer::RemoveDocument(std::string_view name,
                                       ThreadPool* pool,
                                       const ExecContext* ctx) {
  QOF_ASSIGN_OR_RETURN(DocId id, corpus_->FindDocument(name));
  QOF_RETURN_IF_ERROR(EnsureIndexesResident());
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kMaintainRemove));
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  SpliceOut(id);
  QOF_RETURN_IF_ERROR(corpus_->RemoveDocument(name).status());
  --built_->documents;
  ++stats_.generation;
  return MaybeAutoCompact(pool);
}

bool IndexMaintainer::HasLiveSyntheticDocuments() const {
  for (DocId id : synthetic_) {
    if (id < corpus_->num_documents() && corpus_->is_live(id)) return true;
  }
  return false;
}

void IndexMaintainer::MarkDocumentSynthetic(DocId id) {
  synthetic_.insert(id);
}

bool IndexMaintainer::NeedsCompaction() const {
  if (!corpus_->fragmented()) return false;
  if (HasLiveSyntheticDocuments()) return false;  // would bake bad bytes in
  if (corpus_->num_dead_documents() > options_.max_tombstones) return true;
  return static_cast<double>(corpus_->dead_bytes()) >
         options_.max_dead_fraction * static_cast<double>(corpus_->size());
}

Status IndexMaintainer::MaybeAutoCompact(ThreadPool* pool) {
  if (options_.auto_compact && NeedsCompaction()) return Compact(pool);
  return Status::OK();
}

Status IndexMaintainer::Compact(ThreadPool* pool) {
  // Before phase 1: an injected failure here proves callers survive a
  // compaction that refuses to start (state is untouched until commit).
  QOF_RETURN_IF_ERROR(EnsureIndexesResident());
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kMaintainCompact));
  if (HasLiveSyntheticDocuments()) {
    return Status::InvalidArgument(
        "cannot compact: live documents restored from a journal have "
        "placeholder bytes; update them with real text first");
  }
  if (!corpus_->fragmented()) {
    // Append-only history: the layout is already dense and identical to a
    // fresh build's, so there is nothing to fold.
    stats_.delta_segments = 0;
    return Status::OK();
  }

  // Dense re-layout: live documents keep their physical order, so the
  // position mapping is monotone and canonical orders survive shifting.
  std::vector<Seg> segs;
  Corpus fresh;
  for (DocId id = 0; id < corpus_->num_documents(); ++id) {
    if (!corpus_->is_live(id)) continue;
    TextPos begin = corpus_->document_start(id);
    TextPos end = corpus_->document_end(id);
    auto added = fresh.AddDocument(corpus_->document_name(id),
                                   corpus_->RawText(begin, end));
    if (!added.ok()) return added.status();  // unreachable: live names unique
    segs.push_back({begin, end,
                    static_cast<int64_t>(fresh.document_start(*added)) -
                        static_cast<int64_t>(begin)});
  }

  // Phase 1 (read-only): rebase every region instance into a new index.
  // Any region outside a live document means a tombstone was lost; fail
  // here and nothing has been mutated.
  std::vector<std::string> names = built_->regions.Names();
  std::vector<RegionSet> rebased(names.size());
  std::vector<Status> statuses(names.size(), Status::OK());
  auto rebase_name = [&](size_t i) {
    auto set = built_->regions.Get(names[i]);
    if (!set.ok()) {
      statuses[i] = set.status();
      return;
    }
    std::vector<Region> out;
    out.reserve((*set)->size());
    size_t s = 0;
    for (const Region& r : **set) {
      while (s < segs.size() && segs[s].old_end <= r.start) ++s;
      if (s == segs.size() || r.start < segs[s].old_start ||
          r.end > segs[s].old_end) {
        statuses[i] = Status::Internal(
            "region instance '" + names[i] + "' span [" +
            std::to_string(r.start) + ", " + std::to_string(r.end) +
            ") points into a tombstoned span — a tombstone was lost; "
            "rebuild the indexes");
        return;
      }
      out.push_back({Shift(r.start, segs[s].delta),
                     Shift(r.end, segs[s].delta)});
    }
    rebased[i] = RegionSet::FromSortedUnique(std::move(out));
  };
  if (pool != nullptr && pool->size() > 1 && names.size() > 1) {
    pool->ParallelFor(names.size(), [&](int, size_t i) { rebase_name(i); });
  } else {
    for (size_t i = 0; i < names.size(); ++i) rebase_name(i);
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  // Phase 2: rebase postings in place. A stale posting here (possible
  // only with already-corrupt indexes) is detected but leaves the word
  // index partially rebased — the caller must rebuild.
  std::atomic<bool> stale{false};
  auto map_pos = [&segs, &stale](TextPos p) -> TextPos {
    auto it = std::upper_bound(
        segs.begin(), segs.end(), p,
        [](TextPos v, const Seg& s) { return v < s.old_start; });
    if (it == segs.begin()) {
      stale.store(true, std::memory_order_relaxed);
      return p;
    }
    --it;
    if (p >= it->old_end) {
      stale.store(true, std::memory_order_relaxed);
      return p;
    }
    return Shift(p, it->delta);
  };
  built_->words.RebasePostings(map_pos, pool);
  if (stale.load(std::memory_order_relaxed)) {
    return Status::Internal(
        "word posting points into a tombstoned span — a tombstone was "
        "lost; the word index is corrupt, rebuild the indexes");
  }

  // Commit.
  RegionIndex fresh_regions;
  for (size_t i = 0; i < names.size(); ++i) {
    fresh_regions.Add(std::move(names[i]), std::move(rebased[i]));
  }
  built_->regions = std::move(fresh_regions);
  *corpus_ = std::move(fresh);
  synthetic_.clear();
  ++stats_.compactions;
  stats_.delta_segments = 0;
  return Status::OK();
}

MaintainStats IndexMaintainer::stats() const {
  MaintainStats s = stats_;
  s.live_documents = corpus_->num_live_documents();
  s.tombstones = corpus_->num_dead_documents();
  s.dead_bytes = corpus_->dead_bytes();
  return s;
}

}  // namespace qof
