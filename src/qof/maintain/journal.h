#ifndef QOF_MAINTAIN_JOURNAL_H_
#define QOF_MAINTAIN_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/maintain/maintainer.h"
#include "qof/store/vfs.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// The maintenance journal: an append-only log of document mutations.
/// Persisted next to a serialized index blob, it lets a session recover
/// the current corpus state as  base blob + replay  instead of requiring
/// a full re-serialize after every mutation.
///
/// On-disk layout: an 8-byte magic, then one frame per record —
///   u32 payload_size | u64 fnv1a(payload) | payload
/// where the payload is  u64 generation | u8 op | name | text  (strings
/// as u32 length + bytes). Appends are a single write of a frame; a crash
/// mid-append leaves a torn tail that ParseJournal detects (by size or
/// checksum) and discards rather than failing — everything before the
/// tear replays normally.

inline constexpr std::string_view kJournalMagic = "QOFJRNL1";

enum class JournalOp : uint8_t {
  kAdd = 1,
  kUpdate = 2,
  kRemove = 3,
};

struct JournalRecord {
  /// The generation the mutation produced (maintainer generation *after*
  /// applying it). Records must be consecutive.
  uint64_t generation = 0;
  JournalOp op = JournalOp::kAdd;
  std::string name;
  std::string text;  // empty for kRemove

  friend bool operator==(const JournalRecord& a, const JournalRecord& b) {
    return a.generation == b.generation && a.op == b.op &&
           a.name == b.name && a.text == b.text;
  }
};

/// The magic bytes a fresh journal file starts with.
std::string JournalHeader();

/// Encodes one record as a self-checking frame (appendable to a journal).
std::string EncodeJournalRecord(const JournalRecord& record);

struct ParsedJournal {
  std::vector<JournalRecord> records;
  /// True when a torn/corrupt tail was discarded (crash mid-append).
  bool truncated_tail = false;
  /// Offset just past the last intact frame — the safe truncation point
  /// for repairing the file in place.
  size_t valid_bytes = 0;
};

/// Parses a journal byte buffer. A bad magic is an error (wrong file); a
/// torn or checksum-failing tail is NOT — the intact prefix is returned
/// with `truncated_tail` set.
Result<ParsedJournal> ParseJournal(std::string_view data);

/// Replays records through the maintainer in order. Each record's
/// generation must be exactly maintainer->generation() + 1 — a gap means
/// blob and journal are from different histories. Callers replaying onto
/// a blob-restored corpus should disable auto-compaction first (restored
/// document bytes are placeholders; see MarkDocumentSynthetic).
/// Mutations are atomic, so a replay aborted mid-way (error or injected
/// "journal.replay" fault) leaves the maintainer at the state of the last
/// successfully replayed record.
Status ReplayJournal(const std::vector<JournalRecord>& records,
                     IndexMaintainer* maintainer);

/// Appends one encoded frame to the journal file at `path` (creating it
/// with the magic header when absent), through the DefaultVfs(). With
/// SyncPolicy::kAlways (the default) the frame is fsync'd before the call
/// returns — an acknowledged append survives power loss; kBatch and kNone
/// leave syncing to the caller / the OS. I/O failures are surfaced as
/// typed errors and the file is truncated back to its previous size, so
/// the intact tail before a failed append always survives. The
/// "journal.append" fault site simulates a crash mid-frame: an injected
/// fault writes only a *prefix* of the frame and then fails — exactly the
/// torn tail ParseJournal is built to detect and discard.
Status AppendJournalRecordToFile(const std::string& path,
                                 const JournalRecord& record,
                                 SyncPolicy policy = SyncPolicy::kAlways);

}  // namespace qof

#endif  // QOF_MAINTAIN_JOURNAL_H_
