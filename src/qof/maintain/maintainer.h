#ifndef QOF_MAINTAIN_MAINTAINER_H_
#define QOF_MAINTAIN_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/exec/exec_context.h"
#include "qof/parse/region_extractor.h"
#include "qof/schema/structuring_schema.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"
#include "qof/util/status.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// Knobs for incremental index maintenance.
struct MaintainOptions {
  /// Compact automatically once either threshold below trips. Mutations
  /// stay cheap (re-parse one document); compaction amortizes the rebuild
  /// of the corpus layout over many mutations.
  bool auto_compact = true;
  /// Compact when tombstoned bytes exceed this fraction of the address
  /// space.
  double max_dead_fraction = 0.5;
  /// Compact when more than this many documents are tombstoned.
  uint64_t max_tombstones = 64;

  /// Fault injection for the fuzz harness only: pretend the tombstone of
  /// the *next* update/remove was lost, leaving the dead document's
  /// regions and postings in the indexes.
  bool inject_drop_tombstone = false;
};

/// Counters describing the maintenance state. `generation` is the number
/// of mutations ever applied — it identifies a corpus state, and the
/// journal (journal.h) records one entry per generation so a crashed
/// session can replay forward from a persisted base.
struct MaintainStats {
  uint64_t generation = 0;
  uint64_t live_documents = 0;
  uint64_t tombstones = 0;       // dead document-table entries
  uint64_t delta_segments = 0;   // tail segments appended since compaction
  uint64_t dead_bytes = 0;       // reclaimable by Compact()
  uint64_t compactions = 0;
  uint64_t docs_reparsed = 0;    // total documents parsed by mutations
  uint64_t bytes_reparsed = 0;   // total bytes parsed by mutations
};

/// Keeps a Corpus and its BuiltIndexes live under document-level mutations
/// without full rebuilds (the paper builds indexes as a one-shot
/// pre-processing pass; this subsystem makes that pass incremental).
///
/// Mutation model: the corpus address space is append-only. A mutation
/// re-parses ONLY the touched document: its old contribution is spliced
/// out of every region instance and posting list (a document's regions and
/// tokens never cross its span, so the contribution is a contiguous run in
/// each sorted vector), and the new text is appended at the tail and its
/// freshly parsed contribution spliced in. Tombstoned spans linger until
/// Compact() folds live documents back into a dense layout — after which
/// the indexes are byte-identical (under SerializeIndexes) to a
/// from-scratch BuildIndexes of the same documents in the same order.
///
/// Failed mutations (parse errors, unknown names) leave corpus and indexes
/// untouched. The maintainer does not lock: callers serialize mutations
/// against queries the same way they already serialize BuildIndexes.
class IndexMaintainer {
 public:
  /// Maintains `built` (produced by BuildIndexes(schema, *corpus, spec))
  /// in place. All pointees must outlive the maintainer.
  IndexMaintainer(const StructuringSchema* schema, Corpus* corpus,
                  BuiltIndexes* built, IndexSpec spec,
                  MaintainOptions options = {});

  /// Parses `text` and splices it in as a new document. AlreadyExists if
  /// a live document has that name; parse failures leave state untouched.
  /// `ctx` (optional) bounds the re-parse: a governance interrupt aborts
  /// before any state changes, like every other mutation failure.
  Result<DocId> AddDocument(std::string name, std::string_view text,
                            ThreadPool* pool = nullptr,
                            const ExecContext* ctx = nullptr);

  /// Replaces the live document `name`: splices its old contribution out
  /// and the re-parsed new text in. NotFound when absent.
  Result<DocId> UpdateDocument(std::string_view name, std::string_view text,
                               ThreadPool* pool = nullptr,
                               const ExecContext* ctx = nullptr);

  /// Splices the live document `name` out of corpus and indexes.
  Status RemoveDocument(std::string_view name, ThreadPool* pool = nullptr,
                        const ExecContext* ctx = nullptr);

  /// Folds tombstoned spans away: re-lays the corpus out densely (live
  /// documents keep their physical order) and rebases every region and
  /// posting by its document's shift — no re-parsing or re-tokenizing.
  /// Fails without mutating if an indexed region points into a tombstoned
  /// span (a lost tombstone — the corruption the fuzzer injects) or if a
  /// live document's bytes are placeholders (MarkDocumentSynthetic).
  Status Compact(ThreadPool* pool = nullptr);

  /// True when the options' thresholds say Compact() is due (and legal).
  bool NeedsCompaction() const;

  /// Journal replay reconstructs corpus state from a base blob whose
  /// document *bytes* may be unavailable (only sizes and fingerprints are
  /// stored). Such zero-filled documents are marked synthetic: their
  /// contributions are erased by span rather than by re-tokenizing, and
  /// Compact() refuses while any is live (its bytes would be wrong).
  void MarkDocumentSynthetic(DocId id);
  bool HasLiveSyntheticDocuments() const;

  /// Resumes the generation counter (journal replay starts from the
  /// generation persisted in the base blob).
  void set_generation(uint64_t g) { stats_.generation = g; }
  uint64_t generation() const { return stats_.generation; }

  /// Repoints the maintainer at a copy-on-write clone of its corpus and
  /// indexes (see FileQuerySystem::AcquireSnapshot: when a snapshot pins
  /// the current state, the next mutation clones both and mutates the
  /// clone). All counters — generation, compactions, reparse totals —
  /// carry over: the clone *is* the same logical state, just at a new
  /// address.
  void Retarget(Corpus* corpus, BuiltIndexes* built) {
    corpus_ = corpus;
    built_ = built;
  }

  /// Point-in-time counters (corpus-derived fields refreshed on call).
  MaintainStats stats() const;

  MaintainOptions& options() { return options_; }

 private:
  /// One document's parse output, shifted to its corpus position.
  using Contribution = std::map<std::string, std::vector<Region>>;

  /// Parses `text` at base offset 0; the caller shifts. Does not touch
  /// any index state, so a parse failure aborts the mutation cleanly.
  Result<Contribution> ParseContribution(std::string_view text,
                                         const ExecContext* ctx);

  /// Splices a document appended at [start, start+size) into the indexes.
  void SpliceIn(const Contribution& at_zero, TextPos start,
                std::string_view text);

  /// Erases the live document's contribution from regions and postings.
  /// Honors (and consumes) a pending inject_drop_tombstone.
  void SpliceOut(DocId id);

  /// Splicing mutates instances and posting runs in place — a
  /// disk-backed index must be fully paged in first, or the splice
  /// would edit a partial view. No-ops for in-memory indexes.
  Status EnsureIndexesResident();

  Status MaybeAutoCompact(ThreadPool* pool);

  const StructuringSchema* schema_;
  Corpus* corpus_;
  BuiltIndexes* built_;
  IndexSpec spec_;
  ExtractionFilter filter_;
  MaintainOptions options_;
  MaintainStats stats_;
  /// Documents whose corpus bytes are placeholders (see
  /// MarkDocumentSynthetic). Ids of dead documents are pruned lazily.
  std::set<DocId> synthetic_;
};

}  // namespace qof

#endif  // QOF_MAINTAIN_MAINTAINER_H_
