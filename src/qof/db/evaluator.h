#ifndef QOF_DB_EVALUATOR_H_
#define QOF_DB_EVALUATOR_H_

#include <string>
#include <vector>

#include "qof/db/object_store.h"
#include "qof/db/value.h"

namespace qof {

/// One step of a database navigation path.
struct NavStep {
  enum class Kind {
    kAttr,     // named attribute / typed element step
    kAnyStar,  // any (possibly empty) attribute sequence — XSQL's *X
  };
  Kind kind = Kind::kAttr;
  std::string name;  // kAttr

  static NavStep Attr(std::string name) {
    return {Kind::kAttr, std::move(name)};
  }
  static NavStep AnyStar() { return {Kind::kAnyStar, ""}; }
};

/// Navigates values the way XSQL paths do (paper §2, §5.3):
///  - an attribute step on a tuple yields the field of that name;
///  - sets and lists are traversed implicitly, element-wise;
///  - a step naming a value's *type tag* yields the value itself (this is
///    how `r.Authors.Name....` crosses from the Authors set into its
///    Name-typed elements);
///  - object references resolve through the store;
///  - kAnyStar yields every value reachable by any attribute sequence,
///    including the empty one.
/// The result preserves discovery order and keeps duplicates (multiple
/// authors named Chang are two hits).
std::vector<Value> NavigatePath(const ObjectStore& store, const Value& root,
                                const std::vector<NavStep>& steps);

/// All values reachable from `root` (including itself) by attribute/
/// element traversal.
std::vector<Value> CollectDescendants(const ObjectStore& store,
                                      const Value& root);

}  // namespace qof

#endif  // QOF_DB_EVALUATOR_H_
