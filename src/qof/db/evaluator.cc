#include "qof/db/evaluator.h"

namespace qof {
namespace {

// Resolves a reference chain to the stored object's state.
Value Resolve(const ObjectStore& store, const Value& v) {
  Value cur = v;
  int fuel = 16;  // defensive: reference cycles cannot occur, but cap anyway
  while (cur.kind() == Value::Kind::kRef && fuel-- > 0) {
    auto obj = store.Get(cur.ref_id());
    if (!obj.ok()) return Value::Null();
    cur = (*obj)->state;
  }
  return cur;
}

void StepInto(const ObjectStore& store, const Value& value,
              const std::string& name, std::vector<Value>* out) {
  Value v = Resolve(store, value);
  switch (v.kind()) {
    case Value::Kind::kTuple: {
      if (const Value* f = v.Field(name)) {
        out->push_back(*f);
      } else if (v.type_name() == name) {
        out->push_back(v);
      }
      return;
    }
    case Value::Kind::kSet:
    case Value::Kind::kList: {
      if (v.type_name() == name) {
        out->push_back(v);
        return;
      }
      for (const Value& e : v.elements()) StepInto(store, e, name, out);
      return;
    }
    default:
      if (v.type_name() == name) out->push_back(v);
      return;
  }
}

void Descend(const ObjectStore& store, const Value& value,
             std::vector<Value>* out) {
  Value v = Resolve(store, value);
  out->push_back(v);
  switch (v.kind()) {
    case Value::Kind::kTuple:
      for (const auto& [attr, field] : v.fields()) {
        Descend(store, field, out);
      }
      return;
    case Value::Kind::kSet:
    case Value::Kind::kList:
      for (const Value& e : v.elements()) Descend(store, e, out);
      return;
    default:
      return;
  }
}

}  // namespace

std::vector<Value> NavigatePath(const ObjectStore& store, const Value& root,
                                const std::vector<NavStep>& steps) {
  std::vector<Value> current = {root};
  for (const NavStep& step : steps) {
    std::vector<Value> next;
    for (const Value& v : current) {
      if (step.kind == NavStep::Kind::kAttr) {
        StepInto(store, v, step.name, &next);
      } else {
        Descend(store, v, &next);
      }
    }
    current = std::move(next);
  }
  // Resolve any trailing references so callers compare object state.
  for (Value& v : current) v = Resolve(store, v);
  return current;
}

std::vector<Value> CollectDescendants(const ObjectStore& store,
                                      const Value& root) {
  std::vector<Value> out;
  Descend(store, root, &out);
  return out;
}

}  // namespace qof
