#include "qof/db/value.h"

#include <algorithm>
#include <cassert>

namespace qof {

struct Value::Rep {
  Kind kind = Kind::kNull;
  std::string type_name;
  std::string str;
  int64_t int_value = 0;
  ObjectId ref_id = 0;
  std::vector<std::pair<std::string, Value>> fields;
  std::vector<Value> elements;
};

Value::Value() : rep_(nullptr) {}

Value Value::Str(std::string s) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kString;
  rep->str = std::move(s);
  return Value(std::move(rep));
}

Value Value::Int(int64_t v) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kInt;
  rep->int_value = v;
  return Value(std::move(rep));
}

Value Value::MakeTuple(
    std::vector<std::pair<std::string, Value>> fields) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kTuple;
  rep->fields = std::move(fields);
  return Value(std::move(rep));
}

Value Value::MakeSet(std::vector<Value> elements) {
  // Canonical order, but duplicates stay: each element is a distinct
  // occurrence in the file ("parsing; parsing" is two keyword regions),
  // and collapsing them would make database answers disagree with
  // index-computed ones, which count text regions.
  std::sort(elements.begin(), elements.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kSet;
  rep->elements = std::move(elements);
  return Value(std::move(rep));
}

Value Value::MakeList(std::vector<Value> elements) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kList;
  rep->elements = std::move(elements);
  return Value(std::move(rep));
}

Value Value::Ref(ObjectId id) {
  auto rep = std::make_shared<Rep>();
  rep->kind = Kind::kRef;
  rep->ref_id = id;
  return Value(std::move(rep));
}

Value::Kind Value::kind() const {
  return rep_ ? rep_->kind : Kind::kNull;
}

const std::string& Value::str() const {
  assert(kind() == Kind::kString);
  return rep_->str;
}

int64_t Value::int_value() const {
  assert(kind() == Kind::kInt);
  return rep_->int_value;
}

ObjectId Value::ref_id() const {
  assert(kind() == Kind::kRef);
  return rep_->ref_id;
}

const std::vector<std::pair<std::string, Value>>& Value::fields() const {
  assert(kind() == Kind::kTuple);
  return rep_->fields;
}

const std::vector<Value>& Value::elements() const {
  assert(kind() == Kind::kSet || kind() == Kind::kList);
  return rep_->elements;
}

const Value* Value::Field(std::string_view name) const {
  if (kind() != Kind::kTuple) return nullptr;
  for (const auto& [attr, value] : rep_->fields) {
    if (attr == name) return &value;
  }
  return nullptr;
}

Value Value::WithType(std::string type_name) const {
  auto rep = rep_ ? std::make_shared<Rep>(*rep_) : std::make_shared<Rep>();
  rep->type_name = std::move(type_name);
  return Value(std::move(rep));
}

const std::string& Value::type_name() const {
  static const std::string kEmpty;
  return rep_ ? rep_->type_name : kEmpty;
}

bool Value::Equals(const Value& other) const {
  return Compare(*this, other) == 0;
}

int Value::Compare(const Value& a, const Value& b) {
  Kind ka = a.kind();
  Kind kb = b.kind();
  if (ka != kb) return ka < kb ? -1 : 1;
  switch (ka) {
    case Kind::kNull:
      return 0;
    case Kind::kString:
      return a.rep_->str.compare(b.rep_->str);
    case Kind::kInt:
      return a.rep_->int_value < b.rep_->int_value
                 ? -1
                 : (a.rep_->int_value > b.rep_->int_value ? 1 : 0);
    case Kind::kRef:
      return a.rep_->ref_id < b.rep_->ref_id
                 ? -1
                 : (a.rep_->ref_id > b.rep_->ref_id ? 1 : 0);
    case Kind::kTuple: {
      const auto& fa = a.rep_->fields;
      const auto& fb = b.rep_->fields;
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      for (size_t i = 0; i < fa.size(); ++i) {
        int c = fa[i].first.compare(fb[i].first);
        if (c != 0) return c;
        c = Compare(fa[i].second, fb[i].second);
        if (c != 0) return c;
      }
      return 0;
    }
    case Kind::kSet:
    case Kind::kList: {
      const auto& ea = a.rep_->elements;
      const auto& eb = b.rep_->elements;
      if (ea.size() != eb.size()) return ea.size() < eb.size() ? -1 : 1;
      for (size_t i = 0; i < ea.size(); ++i) {
        int c = Compare(ea[i], eb[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "null";
    case Kind::kString:
      return "\"" + rep_->str + "\"";
    case Kind::kInt:
      return std::to_string(rep_->int_value);
    case Kind::kRef:
      return "@" + std::to_string(rep_->ref_id);
    case Kind::kTuple: {
      std::string out = "{";
      for (size_t i = 0; i < rep_->fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += rep_->fields[i].first + ": " +
               rep_->fields[i].second.ToString();
      }
      out += "}";
      return out;
    }
    case Kind::kSet:
    case Kind::kList: {
      std::string out = kind() == Kind::kSet ? "{" : "[";
      for (size_t i = 0; i < rep_->elements.size(); ++i) {
        if (i > 0) out += ", ";
        out += rep_->elements[i].ToString();
      }
      out += kind() == Kind::kSet ? "}" : "]";
      return out;
    }
  }
  return "null";
}

}  // namespace qof
