#ifndef QOF_DB_OBJECT_STORE_H_
#define QOF_DB_OBJECT_STORE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "qof/db/value.h"
#include "qof/util/result.h"

namespace qof {

/// A stored object: identity + class + state (a tuple value, typically).
struct StoredObject {
  ObjectId id = 0;
  std::string class_name;
  Value state;
};

/// The object repository of the mini-OODB. Objects are immutable once
/// inserted; class extents record insertion order. The baseline query plan
/// materializes every parsed object here; index plans only the candidates.
class ObjectStore {
 public:
  ObjectStore() = default;

  // The store owns object identity; copying would fork ids silently.
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;
  ObjectStore(ObjectStore&&) = default;
  ObjectStore& operator=(ObjectStore&&) = default;

  /// Inserts an object and returns its id (ids start at 1; 0 is invalid).
  ObjectId Insert(std::string class_name, Value state);

  Result<const StoredObject*> Get(ObjectId id) const;

  /// Ids of all objects of a class, in insertion order.
  const std::vector<ObjectId>& Extent(std::string_view class_name) const;

  size_t size() const { return objects_.size(); }

  /// Approximate bytes held (experiment reporting).
  uint64_t ApproxBytes() const;

 private:
  std::vector<StoredObject> objects_;
  std::map<std::string, std::vector<ObjectId>, std::less<>> extents_;
};

}  // namespace qof

#endif  // QOF_DB_OBJECT_STORE_H_
