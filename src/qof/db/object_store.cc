#include "qof/db/object_store.h"

namespace qof {

ObjectId ObjectStore::Insert(std::string class_name, Value state) {
  ObjectId id = objects_.size() + 1;
  extents_[class_name].push_back(id);
  objects_.push_back(StoredObject{id, std::move(class_name),
                                  std::move(state)});
  return id;
}

Result<const StoredObject*> ObjectStore::Get(ObjectId id) const {
  if (id == 0 || id > objects_.size()) {
    return Status::NotFound("no object with id " + std::to_string(id));
  }
  return &objects_[id - 1];
}

const std::vector<ObjectId>& ObjectStore::Extent(
    std::string_view class_name) const {
  static const std::vector<ObjectId> kEmpty;
  auto it = extents_.find(class_name);
  return it == extents_.end() ? kEmpty : it->second;
}

uint64_t ObjectStore::ApproxBytes() const {
  // A rough, stable proxy: rendered size of every object state.
  uint64_t bytes = 0;
  for (const StoredObject& o : objects_) {
    bytes += o.class_name.size() + o.state.ToString().size() + 32;
  }
  return bytes;
}

}  // namespace qof
