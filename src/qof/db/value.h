#ifndef QOF_DB_VALUE_H_
#define QOF_DB_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qof {

/// Identifier of an object in an ObjectStore.
using ObjectId = uint64_t;

/// The database value model of the mini-OODB substrate (paper §2 assumes
/// an object-oriented database in the style of O2/XSQL): atomic strings
/// and integers, tuples with named attributes, sets, lists, and object
/// references. Values are immutable and cheap to copy (shared
/// representation).
///
/// A value may carry a *type tag* — the non-terminal/class name it was
/// built from ("Name", "Reference"). Path navigation uses tags to resolve
/// steps like `.Name` over set elements (XSQL's typed path components).
/// Equality and ordering compare content only, never tags.
class Value {
 public:
  enum class Kind { kNull, kString, kInt, kTuple, kSet, kList, kRef };

  /// Constructs the null value.
  Value();

  static Value Null() { return Value(); }
  static Value Str(std::string s);
  static Value Int(int64_t v);
  /// Field order is preserved (it mirrors the file's layout).
  static Value MakeTuple(std::vector<std::pair<std::string, Value>> fields);
  /// Deduplicates and canonically orders the elements.
  static Value MakeSet(std::vector<Value> elements);
  static Value MakeList(std::vector<Value> elements);
  static Value Ref(ObjectId id);

  Kind kind() const;
  bool is_null() const { return kind() == Kind::kNull; }

  /// Accessors; each requires the matching kind.
  const std::string& str() const;
  int64_t int_value() const;
  ObjectId ref_id() const;
  const std::vector<std::pair<std::string, Value>>& fields() const;
  const std::vector<Value>& elements() const;

  /// Tuple field by name, or nullptr.
  const Value* Field(std::string_view name) const;

  /// Returns a copy of this value carrying `type_name` as its tag.
  Value WithType(std::string type_name) const;
  const std::string& type_name() const;

  /// Content equality (tags ignored). Ref values compare by id.
  bool Equals(const Value& other) const;
  /// Total order for canonical set layout; consistent with Equals.
  static int Compare(const Value& a, const Value& b);

  /// JSON-like rendering, e.g. {Key: "Corl82a", Authors: {...}}.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Equals(b);
  }

 private:
  struct Rep;
  explicit Value(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}
  std::shared_ptr<const Rep> rep_;
};

}  // namespace qof

#endif  // QOF_DB_VALUE_H_
