#ifndef QOF_CORE_API_H_
#define QOF_CORE_API_H_

/// Umbrella header: everything a downstream user of the library needs.
///
/// Layering (bottom-up):
///   text      — corpus, tokenizer, word index
///   region    — region sets, the §3.1 region algebra primitives
///   algebra   — region expressions, textual syntax, evaluator
///   rig       — region inclusion graphs (§3.2, Def. 3.1)
///   optimizer — Prop. 3.3 / 3.5 rewrites, Theorem 3.6 normal forms
///   schema    — structuring schemas (§4.1), RIG derivation (§4.2)
///   parse     — schema-driven parsing, region extraction, DB images
///   db        — values, object store, path navigation
///   query     — FQL (XSQL-flavoured SELECT/FROM/WHERE)
///   compiler  — query → optimized inclusion expressions (§5–§6)
///   cache     — plan + eval-result caches (generation-keyed)
///   ir        — dataflow query IR, optimizer passes, executor
///   engine    — FileQuerySystem facade, execution strategies
///   datagen   — synthetic BibTeX / mail / log corpora + their schemas

#include "qof/algebra/evaluator.h"
#include "qof/algebra/parser.h"
#include "qof/cache/cache.h"
#include "qof/compiler/index_advisor.h"
#include "qof/compiler/query_compiler.h"
#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/index_io.h"
#include "qof/engine/system.h"
#include "qof/engine/workspace.h"
#include "qof/ir/executor.h"
#include "qof/ir/ir.h"
#include "qof/ir/passes.h"
#include "qof/optimizer/optimizer.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"
#include "qof/schema/schema_text.h"
#include "qof/schema/structuring_schema.h"

#endif  // QOF_CORE_API_H_
