#ifndef QOF_REGION_COST_MODEL_H_
#define QOF_REGION_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace qof {

/// One shared table of size-ratio dispatch constants, used by the region
/// kernels, the tree evaluator's adaptive selection dispatch, the
/// CostEstimator, and the IR optimizer passes. Keeping the thresholds in
/// a single place guarantees the layers agree on *when* the asymmetric
/// (galloping / posting-driven) paths win, so a plan the optimizer costs
/// one way cannot execute another way.
struct CostModel {
  /// Crossover ratio for the adaptive set kernels: gallop when
  /// small * kGallopRatio < large (probing the small operand into the
  /// large one in O(m log n) beats the O(m + n) linear merge exactly when
  /// the operands are skewed past this ratio).
  static constexpr size_t kGallopRatio = 16;

  /// Weight of a ⊃d/⊂d relative to ⊃/⊂ on the same operands (measured
  /// ratio of the paper's layered program is 3–12×; 4 is a fair middle).
  static constexpr double kDirectFactor = 4.0;

  /// Region-run batch size for fused IR kernels: stages of a fused chain
  /// are applied per batch so intermediates stay cache-resident without
  /// changing results (every fused stage is a per-member predicate).
  static constexpr size_t kFusedBatch = 2048;

  /// Below this many total attribute regions (both join sides summed) the
  /// nested-loop join's lower constant factor beats the sort-merge join's
  /// sort; at or above it, sort both sides once and merge linearly.
  static constexpr size_t kSortMergeJoinMinPairs = 64;

  /// Adaptive set-kernel direction: probe `small` into `large`?
  static constexpr bool PreferGallop(size_t small, size_t large) {
    return small < large / kGallopRatio;
  }

  /// Adaptive selection-kernel direction: iterating the word's postings
  /// and probing the child set costs O(P log C); scanning the child and
  /// probing the postings costs O(C log P). Both probe factors are
  /// logarithmic, so the linear term decides; reusing the region kernels'
  /// crossover ratio keeps the policy consistent across layers.
  static constexpr bool PreferPostingDriven(uint64_t posting_count,
                                            uint64_t child_size) {
    return posting_count < child_size / kGallopRatio;
  }
};

}  // namespace qof

#endif  // QOF_REGION_COST_MODEL_H_
