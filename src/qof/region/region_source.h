#ifndef QOF_REGION_REGION_SOURCE_H_
#define QOF_REGION_REGION_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region_cursor.h"
#include "qof/util/result.h"

namespace qof {

/// A backing tier a RegionIndex can load instances from on demand (the
/// disk-resident paged store implements this; see qof/store/). The index
/// learns every name and its cardinality up front — cheap, region names
/// number in the dozens — and materializes an instance through a
/// RegionCursor only when a query first touches the name, so selective
/// queries on a store-backed index page in only what they reference.
///
/// Implementations must be thread-safe: concurrent queries materialize
/// different names at once.
class RegionSource {
 public:
  virtual ~RegionSource() = default;

  struct Entry {
    std::string name;
    uint64_t count = 0;  // regions in the instance
  };

  /// Every stored instance, sorted by name.
  virtual Result<std::vector<Entry>> Entries() const = 0;

  /// |union of all instances| — persisted at write time so direct
  /// inclusion's cost estimates don't force full materialization.
  virtual uint64_t universe_size() const = 0;

  /// Encoded bytes of all region instances (footprint reporting).
  virtual uint64_t approx_bytes() const = 0;

  /// A cursor over `name`'s instance; NotFound if the name is not stored.
  virtual Result<std::unique_ptr<RegionCursor>> OpenCursor(
      std::string_view name) const = 0;
};

}  // namespace qof

#endif  // QOF_REGION_REGION_SOURCE_H_
