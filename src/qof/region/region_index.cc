#include "qof/region/region_index.h"

namespace qof {

void RegionIndex::Add(std::string name, RegionSet regions) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    sets_.emplace(std::move(name), std::move(regions));
  } else {
    it->second = Union(it->second, regions);
  }
  universe_valid_ = false;
}

uint64_t RegionIndex::EraseSpan(uint64_t begin, uint64_t end) {
  uint64_t erased = 0;
  for (auto& [name, set] : sets_) {
    erased += set.EraseStartsIn(begin, end);
  }
  if (erased > 0) universe_valid_ = false;
  return erased;
}

void RegionIndex::InsertDocRegions(
    const std::map<std::string, std::vector<Region>>& by_name) {
  for (const auto& [name, run] : by_name) {
    sets_[name].InsertRun(run);
  }
  universe_valid_ = false;
}

bool RegionIndex::Has(std::string_view name) const {
  return sets_.find(name) != sets_.end();
}

Result<const RegionSet*> RegionIndex::Get(std::string_view name) const {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("region name not indexed: " + std::string(name));
  }
  return &it->second;
}

std::vector<std::string> RegionIndex::Names() const {
  std::vector<std::string> names;
  names.reserve(sets_.size());
  for (const auto& [name, set] : sets_) names.push_back(name);
  return names;
}

const RegionSet& RegionIndex::Universe() const {
  std::lock_guard<std::mutex> lock(universe_mu_);
  if (!universe_valid_) {
    RegionSet u;
    for (const auto& [name, set] : sets_) u = Union(u, set);
    universe_ = std::move(u);
    universe_valid_ = true;
  }
  return universe_;
}

std::vector<const RegionSet*> RegionIndex::AllExcept(
    std::string_view excluded) const {
  std::vector<const RegionSet*> out;
  for (const auto& [name, set] : sets_) {
    if (name != excluded) out.push_back(&set);
  }
  return out;
}

uint64_t RegionIndex::num_regions() const {
  uint64_t n = 0;
  for (const auto& [name, set] : sets_) n += set.size();
  return n;
}

uint64_t RegionIndex::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const auto& [name, set] : sets_) {
    bytes += name.size() + set.size() * sizeof(Region) + 64;
  }
  return bytes;
}

}  // namespace qof
