#include "qof/region/region_index.h"

#include <utility>

#include "qof/region/region_cursor.h"

namespace qof {

void RegionIndex::Add(std::string name, RegionSet regions) {
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    sets_.emplace(std::move(name), std::move(regions));
  } else {
    it->second = Union(it->second, regions);
  }
  universe_valid_ = false;
}

uint64_t RegionIndex::EraseSpan(uint64_t begin, uint64_t end) {
  uint64_t erased = 0;
  for (auto& [name, set] : sets_) {
    erased += set.EraseStartsIn(begin, end);
  }
  if (erased > 0) universe_valid_ = false;
  return erased;
}

void RegionIndex::InsertDocRegions(
    const std::map<std::string, std::vector<Region>>& by_name) {
  for (const auto& [name, run] : by_name) {
    sets_[name].InsertRun(run);
  }
  universe_valid_ = false;
}

bool RegionIndex::Has(std::string_view name) const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (unloaded_.find(name) != unloaded_.end()) return true;
    return sets_.find(name) != sets_.end();
  }
  return sets_.find(name) != sets_.end();
}

Status RegionIndex::MaterializeLocked(const std::string& name,
                                      uint64_t count) const {
  QOF_ASSIGN_OR_RETURN(std::unique_ptr<RegionCursor> cursor,
                       source_->OpenCursor(name));
  QOF_ASSIGN_OR_RETURN(RegionSet set, MaterializeCursor(*cursor));
  if (set.size() != count) {
    return Status::Internal("region instance '" + name + "' materialized " +
                            std::to_string(set.size()) + " regions, store " +
                            "dictionary promised " + std::to_string(count));
  }
  sets_.emplace(name, std::move(set));
  unloaded_.erase(name);
  return Status::OK();
}

uint64_t RegionIndex::InstanceCount(std::string_view name) const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    auto pending = unloaded_.find(name);
    if (pending != unloaded_.end()) return pending->second;
    auto it = sets_.find(name);
    return it != sets_.end() ? it->second.size() : 0;
  }
  auto it = sets_.find(name);
  return it != sets_.end() ? it->second.size() : 0;
}

Result<const RegionSet*> RegionIndex::Get(std::string_view name) const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    auto it = sets_.find(name);
    if (it != sets_.end()) return &it->second;
    auto pending = unloaded_.find(name);
    if (pending != unloaded_.end()) {
      QOF_RETURN_IF_ERROR(
          MaterializeLocked(pending->first, pending->second));
      return &sets_.find(name)->second;
    }
    return Status::NotFound("region name not indexed: " + std::string(name));
  }
  auto it = sets_.find(name);
  if (it == sets_.end()) {
    return Status::NotFound("region name not indexed: " + std::string(name));
  }
  return &it->second;
}

Result<std::unique_ptr<RegionCursor>> RegionIndex::OpenCursor(
    std::string_view name) const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (unloaded_.find(name) != unloaded_.end()) {
      return source_->OpenCursor(name);
    }
    if (sets_.find(name) != sets_.end()) {
      return std::unique_ptr<RegionCursor>();
    }
    return Status::NotFound("region name not indexed: " + std::string(name));
  }
  if (sets_.find(name) == sets_.end()) {
    return Status::NotFound("region name not indexed: " + std::string(name));
  }
  return std::unique_ptr<RegionCursor>();
}

std::vector<std::string> RegionIndex::Names() const {
  std::vector<std::string> names;
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    names.reserve(sets_.size() + unloaded_.size());
    // Both maps are sorted and disjoint: merge.
    auto a = sets_.begin();
    auto b = unloaded_.begin();
    while (a != sets_.end() || b != unloaded_.end()) {
      if (b == unloaded_.end() ||
          (a != sets_.end() && a->first < b->first)) {
        names.push_back((a++)->first);
      } else {
        names.push_back((b++)->first);
      }
    }
    return names;
  }
  names.reserve(sets_.size());
  for (const auto& [name, set] : sets_) names.push_back(name);
  return names;
}

Status RegionIndex::AttachSource(std::shared_ptr<const RegionSource> source) {
  QOF_ASSIGN_OR_RETURN(std::vector<RegionSource::Entry> entries,
                       source->Entries());
  std::lock_guard<std::mutex> lock(lazy_mu_);
  for (auto& e : entries) {
    if (sets_.find(e.name) == sets_.end()) {
      unloaded_.emplace(std::move(e.name), e.count);
    }
  }
  source_ = std::move(source);
  universe_valid_ = false;
  return Status::OK();
}

bool RegionIndex::disk_resident() const {
  if (source_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  return !unloaded_.empty();
}

Status RegionIndex::EnsureResident() const {
  if (source_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(lazy_mu_);
  while (!unloaded_.empty()) {
    auto it = unloaded_.begin();
    QOF_RETURN_IF_ERROR(MaterializeLocked(it->first, it->second));
  }
  return Status::OK();
}

uint64_t RegionIndex::UniverseSize() const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (!unloaded_.empty()) return source_->universe_size();
  }
  return Universe().size();
}

const RegionSet& RegionIndex::Universe() const {
  // Forces residency: the universe is the union of *every* instance.
  // Fallible callers run EnsureResident() first to observe I/O errors;
  // on failure here the union covers what did load (and the next
  // EnsureResident reports the same error).
  (void)EnsureResident();
  std::lock_guard<std::mutex> lock(universe_mu_);
  if (!universe_valid_) {
    RegionSet u;
    for (const auto& [name, set] : sets_) u = Union(u, set);
    universe_ = std::move(u);
    universe_valid_ = true;
  }
  return universe_;
}

std::vector<const RegionSet*> RegionIndex::AllExcept(
    std::string_view excluded) const {
  (void)EnsureResident();
  std::vector<const RegionSet*> out;
  for (const auto& [name, set] : sets_) {
    if (name != excluded) out.push_back(&set);
  }
  return out;
}

size_t RegionIndex::num_names() const {
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    return sets_.size() + unloaded_.size();
  }
  return sets_.size();
}

uint64_t RegionIndex::num_regions() const {
  uint64_t n = 0;
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    for (const auto& [name, count] : unloaded_) n += count;
    for (const auto& [name, set] : sets_) n += set.size();
    return n;
  }
  for (const auto& [name, set] : sets_) n += set.size();
  return n;
}

uint64_t RegionIndex::ApproxBytes() const {
  uint64_t bytes = 0;
  if (source_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    for (const auto& [name, count] : unloaded_) {
      bytes += name.size() + count * sizeof(Region) + 64;
    }
    for (const auto& [name, set] : sets_) {
      bytes += name.size() + set.size() * sizeof(Region) + 64;
    }
    return bytes;
  }
  for (const auto& [name, set] : sets_) {
    bytes += name.size() + set.size() * sizeof(Region) + 64;
  }
  return bytes;
}

}  // namespace qof
