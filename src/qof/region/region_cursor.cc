#include "qof/region/region_cursor.h"

#include <algorithm>

namespace qof {
namespace {

/// Gallop + binary search: the first block at or after `b` whose
/// block_last reaches `start` (nb when every remaining block falls
/// short). Shared by IntersectCursor's decode loop and its prefetch
/// pass, so the blocks announced are exactly the blocks visited.
size_t GallopToBlock(const RegionCursor& cursor, size_t nb, size_t b,
                     uint64_t start) {
  if (b >= nb || cursor.block_last(b) >= start) return b;
  size_t lo = b;  // block_last(lo) < start
  size_t step = 1;
  size_t hi = lo + step;
  while (hi < nb && cursor.block_last(hi) < start) {
    lo = hi;
    step *= 2;
    hi = lo + step;
  }
  if (hi > nb) hi = nb;
  // First index in (lo, hi] whose block_last reaches start (hi when none
  // does; hi == nb means every remaining block falls short).
  size_t left = lo + 1, right = hi;
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (cursor.block_last(mid) < start) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return left;
}

/// Announces the marked blocks to the cursor as maximal consecutive runs
/// — the disk cursor turns each run into one batched page read.
void EmitPrefetchRuns(RegionCursor& cursor, const std::vector<char>& needed) {
  size_t first = 0, len = 0;
  for (size_t b = 0; b < needed.size(); ++b) {
    if (needed[b]) {
      if (len == 0) first = b;
      ++len;
    } else if (len != 0) {
      cursor.PrefetchBlocks(first, len);
      len = 0;
    }
  }
  if (len != 0) cursor.PrefetchBlocks(first, len);
}

}  // namespace

Result<RegionSet> MaterializeCursor(RegionCursor& cursor) {
  std::vector<Region> all;
  all.reserve(cursor.total_count());
  if (cursor.wants_prefetch()) {
    cursor.PrefetchBlocks(0, cursor.num_blocks());
  }
  std::vector<Region> block;
  for (size_t b = 0; b < cursor.num_blocks(); ++b) {
    QOF_RETURN_IF_ERROR(cursor.ReadBlock(b, &block));
    all.insert(all.end(), block.begin(), block.end());
  }
  return RegionSet::FromSortedUnique(std::move(all));
}

Result<RegionSet> IntersectCursor(const RegionSet& probe,
                                  RegionCursor& cursor) {
  std::vector<Region> out;
  const size_t nb = cursor.num_blocks();
  if (nb == 0 || probe.size() == 0) {
    return RegionSet::FromSortedUnique(std::move(out));
  }
  if (cursor.wants_prefetch()) {
    // Dry-run the skip table: replay the gallop per probe and mark the
    // block each probe start lands in. (Only the first block of an
    // equal-start straddle is marked — the continuation blocks are
    // decoded on demand only when the probe misses, so announcing them
    // could read pages the real walk never touches.)
    std::vector<char> needed(nb, 0);
    size_t pb = 0;
    for (const Region& p : probe) {
      pb = GallopToBlock(cursor, nb, pb, p.start);
      if (pb == nb) break;
      if (cursor.block_first(pb) <= p.start) needed[pb] = 1;
    }
    EmitPrefetchRuns(cursor, needed);
  }
  std::vector<Region> block;
  size_t decoded = SIZE_MAX;  // which block `block` currently holds
  size_t b = 0;
  for (const Region& p : probe) {
    // Skip whole blocks on their max start — no decode, and for the disk
    // cursor no page fetch either. Gallop + binary search instead of a
    // linear walk: at high skew the probe lands in a handful of blocks,
    // and stepping over every bound in between would cost more than the
    // decodes themselves.
    b = GallopToBlock(cursor, nb, b, p.start);
    if (b == nb) break;
    // p can only live in blocks whose [first, last] covers p.start. An
    // equal-start run may straddle a block boundary (ends descend across
    // it), so keep probing while the next block still starts at p.start.
    for (size_t bb = b; bb < nb && cursor.block_first(bb) <= p.start; ++bb) {
      if (decoded != bb) {
        QOF_RETURN_IF_ERROR(cursor.ReadBlock(bb, &block));
        decoded = bb;
      }
      auto it = std::lower_bound(block.begin(), block.end(), p);
      if (it != block.end() && *it == p) {
        out.push_back(p);
        break;
      }
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

namespace {

/// Collects, canonically orders and dedupes kernel hits. The containment
/// kernels can find the same member through several probe regions.
RegionSet Canonicalize(std::vector<Region> hits) {
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return RegionSet::FromSortedUnique(std::move(hits));
}

/// Index of the last block whose first start is <= key, or SIZE_MAX when
/// every block starts past key.
size_t LastBlockStartingAtOrBefore(const RegionCursor& cursor, size_t nb,
                                   uint64_t key) {
  size_t left = 0, right = nb;  // first block with block_first > key
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (cursor.block_first(mid) <= key) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return left - 1;  // SIZE_MAX when left == 0
}

}  // namespace

Result<RegionSet> IncludingCursor(const RegionSet& probe,
                                  RegionCursor& cursor) {
  const size_t nb = cursor.num_blocks();
  if (nb == 0 || probe.size() == 0) return RegionSet();
  // prefix_max[b] = max block_max_end over blocks [0, b) — the block-level
  // analogue of IncludedInImpl's per-member prefix table. The backward
  // candidate walk stops the moment no earlier block can reach p.end.
  std::vector<uint64_t> prefix_max(nb + 1, 0);
  for (size_t b = 0; b < nb; ++b) {
    prefix_max[b + 1] = std::max(prefix_max[b], cursor.block_max_end(b));
  }
  if (cursor.wants_prefetch()) {
    // Dry-run the backward candidate walk — pure skip-table metadata, so
    // the marked set is exactly the set the decode loop visits.
    std::vector<char> needed(nb, 0);
    for (const Region& p : probe) {
      size_t bl = LastBlockStartingAtOrBefore(cursor, nb, p.start);
      if (bl == SIZE_MAX) continue;
      for (size_t b = bl + 1; b-- > 0;) {
        if (prefix_max[b + 1] < p.end) break;
        if (cursor.block_max_end(b) < p.end) continue;
        needed[b] = 1;
      }
    }
    EmitPrefetchRuns(cursor, needed);
  }
  std::vector<Region> out;
  std::vector<Region> block;
  size_t decoded = SIZE_MAX;
  for (const Region& p : probe) {
    // A member containing p has start <= p.start: blocks (0..bl].
    size_t bl = LastBlockStartingAtOrBefore(cursor, nb, p.start);
    if (bl == SIZE_MAX) continue;
    for (size_t b = bl + 1; b-- > 0;) {
      if (prefix_max[b + 1] < p.end) break;
      if (cursor.block_max_end(b) < p.end) continue;
      if (decoded != b) {
        QOF_RETURN_IF_ERROR(cursor.ReadBlock(b, &block));
        decoded = b;
      }
      // Canonical order: members with start <= p.start are a prefix of
      // the block (an equal-start run's descending ends don't matter for
      // the start bound).
      auto stop = std::upper_bound(
          block.begin(), block.end(), p.start,
          [](uint64_t s, const Region& r) { return s < r.start; });
      for (auto it = block.begin(); it != stop; ++it) {
        if (it->end >= p.end) out.push_back(*it);
      }
    }
  }
  return Canonicalize(std::move(out));
}

Result<RegionSet> IncludedInCursor(const RegionSet& probe,
                                   RegionCursor& cursor) {
  const size_t nb = cursor.num_blocks();
  if (nb == 0 || probe.size() == 0) return RegionSet();
  if (cursor.wants_prefetch()) {
    // Dry-run of the forward walk below: for each probe, every block
    // whose start range intersects [p.start, p.end] is decoded
    // unconditionally, so the marked set matches the decode loop's.
    std::vector<char> needed(nb, 0);
    size_t pb = 0;
    for (const Region& p : probe) {
      size_t lo = pb;
      while (lo < nb && cursor.block_last(lo) < p.start) ++lo;
      pb = lo;
      for (size_t bb = lo; bb < nb && cursor.block_first(bb) <= p.end;
           ++bb) {
        needed[bb] = 1;
      }
      if (pb == nb) break;
    }
    EmitPrefetchRuns(cursor, needed);
  }
  std::vector<Region> out;
  std::vector<Region> block;
  size_t decoded = SIZE_MAX;
  size_t b = 0;
  for (const Region& p : probe) {
    // Probe starts ascend, so the first block that can hold a member
    // starting at or after p.start only moves forward — but within one
    // probe's span several blocks may qualify, so `b` itself must not
    // advance past blocks a later (nested) probe still needs.
    size_t lo = b;
    while (lo < nb && cursor.block_last(lo) < p.start) ++lo;
    b = lo;
    for (size_t bb = lo; bb < nb && cursor.block_first(bb) <= p.end; ++bb) {
      if (decoded != bb) {
        QOF_RETURN_IF_ERROR(cursor.ReadBlock(bb, &block));
        decoded = bb;
      }
      // Members with start in [p.start, p.end] and end <= p.end are
      // inside p.
      auto it = std::lower_bound(
          block.begin(), block.end(), p.start,
          [](const Region& r, uint64_t s) { return r.start < s; });
      for (; it != block.end() && it->start <= p.end; ++it) {
        if (it->end <= p.end) out.push_back(*it);
      }
    }
    if (b == nb) break;
  }
  return Canonicalize(std::move(out));
}

}  // namespace qof
