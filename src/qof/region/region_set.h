#ifndef QOF_REGION_REGION_SET_H_
#define QOF_REGION_REGION_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qof/region/cost_model.h"
#include "qof/region/region.h"

namespace qof {

/// A set of regions in canonical order (start ascending, end descending)
/// with no duplicate spans. Overlapping and nested members are allowed
/// (paper §3.1: "with no restrictions on overlaps").
///
/// All the region-algebra primitives of §3.1 are provided as free functions
/// below; each is a sorted-merge / sweep algorithm whose cost is linear or
/// O(n log n) in its inputs — never proportional to the underlying text.
class RegionSet {
 public:
  RegionSet() = default;

  /// Takes arbitrary regions; sorts and deduplicates.
  static RegionSet FromUnsorted(std::vector<Region> regions);

  /// Adopts a vector that is already canonically sorted and duplicate-free
  /// (checked in debug builds). Used by the algorithms below.
  static RegionSet FromSortedUnique(std::vector<Region> regions);

  bool empty() const { return regions_.empty(); }
  size_t size() const { return regions_.size(); }
  const Region& operator[](size_t i) const { return regions_[i]; }
  const std::vector<Region>& regions() const { return regions_; }

  std::vector<Region>::const_iterator begin() const {
    return regions_.begin();
  }
  std::vector<Region>::const_iterator end() const { return regions_.end(); }

  bool ContainsRegion(const Region& r) const;

  // --- incremental maintenance (see src/qof/maintain/) ------------------
  // Parse-derived instances never cross document boundaries, so one
  // document's members form a contiguous slice of the canonical order;
  // document-level maintenance is a slice erase / slice insert.

  /// Erases members whose start lies in [begin, end); returns how many.
  size_t EraseStartsIn(uint64_t begin, uint64_t end);

  /// Splices in a canonically sorted, duplicate-free run whose start
  /// window is disjoint from every existing member's start (one
  /// document's contribution). Debug-checked.
  void InsertRun(const std::vector<Region>& run);

  /// Sum of member lengths (bytes covered, counting nested spans multiply).
  uint64_t TotalLength() const;

  /// True when members are pairwise nested-or-disjoint (no partial
  /// overlaps). Parse-tree-derived indices always are; the fast direct
  /// -inclusion algorithms require a laminar universe.
  bool IsLaminar() const;

  friend bool operator==(const RegionSet& a, const RegionSet& b) {
    return a.regions_ == b.regions_;
  }

  std::string ToString() const;

 private:
  std::vector<Region> regions_;
};

/// Which merge kernel the binary set operations (∪ ∩ − ⊃ ⊂) use.
///
/// The linear kernels cost O(m + n) or O(n log n) regardless of operand
/// skew; the galloping (exponential-search) kernels probe the small
/// operand into the large one in O(m log n), which wins exactly when
/// min(m, n) ≪ max(m, n) — the shape indexed containment queries produce
/// (a handful of selected regions against a full instance).
enum class KernelPolicy {
  /// Per call: gallop when the size ratio crosses kGallopRatio (default).
  kAdaptive,
  /// Always the linear merge / full-table path.
  kLinear,
  /// Always the galloping path (when one exists for the operation).
  kGalloping,
};

/// Crossover ratio for kAdaptive: gallop when small * ratio < large.
/// Aliased from the shared CostModel table so every layer (kernels,
/// evaluator dispatch, cost estimation, IR passes) agrees on it.
inline constexpr size_t kGallopRatio = CostModel::kGallopRatio;

/// Sets the process-wide kernel policy. The default is kAdaptive, or the
/// value of the QOF_FORCE_KERNEL environment variable ("linear" |
/// "galloping" | "adaptive") read once at first use — a debug knob to pin
/// either path. Results are identical under every policy; only cost
/// changes.
void SetKernelPolicy(KernelPolicy policy);
KernelPolicy kernel_policy();

/// Set-theoretic union of two region sets.
RegionSet Union(const RegionSet& a, const RegionSet& b);
/// Set-theoretic intersection (identical spans).
RegionSet Intersect(const RegionSet& a, const RegionSet& b);
/// Members of `a` whose span does not occur in `b`.
RegionSet Difference(const RegionSet& a, const RegionSet& b);

/// ι(R): members that contain no *other* member (paper's innermost).
RegionSet Innermost(const RegionSet& r);
/// ω(R): members contained in no *other* member (paper's outermost).
RegionSet Outermost(const RegionSet& r);

/// R ⊃ S: members of `r` that (weakly) contain some member of `s`.
RegionSet Including(const RegionSet& r, const RegionSet& s);
/// R ⊂ S: members of `r` (weakly) contained in some member of `s`.
RegionSet IncludedIn(const RegionSet& r, const RegionSet& s);

/// Strict variants (the containing/contained member must differ). Used by
/// the direct-inclusion machinery; not part of the paper's surface algebra.
RegionSet IncludingStrict(const RegionSet& r, const RegionSet& s);
RegionSet IncludedInStrict(const RegionSet& r, const RegionSet& s);

/// For every member of `queries`, the innermost member of `universe` that
/// *strictly* contains it, or {0,0} sentinel when none exists.
/// Precondition: `universe` is laminar (checked in debug builds).
std::vector<Region> InnermostStrictEnclosers(const RegionSet& queries,
                                             const RegionSet& universe);

/// R ⊃d S: members of `r` that directly include some member of `s`, where
/// "directly" means no region of `universe` lies strictly between the two
/// (paper §3.1). Preconditions (debug-checked): `universe` is laminar and
/// the spans of `r` and `s` occur in `universe` — which holds whenever the
/// arguments were produced by evaluating algebra expressions over the
/// region indices that make up the universe.
RegionSet DirectlyIncluding(const RegionSet& r, const RegionSet& s,
                            const RegionSet& universe);

/// R ⊂d S: members of `r` directly included in some member of `s`.
RegionSet DirectlyIncluded(const RegionSet& r, const RegionSet& s,
                           const RegionSet& universe);

/// The paper's §3.1 reference implementation of ⊃d: iterate over nested
/// layers of `r` via ω, and for each layer subtract the `s` members that
/// have an indexed region between themselves and the layer. `other_indices`
/// plays the role of "I − {S}" in the paper's program: it must cover every
/// indexed region that is not a member of `s`, and `s` must be the complete
/// instance of its region name (members of `s` never act as separators; the
/// returned r-set still matches the definition, because an r whose only
/// separators are `s`-members directly includes the outermost of them).
/// Quadratic in the nesting depth; exists to measure the cost the paper
/// attributes to ⊃d (experiment E3) and to cross-check DirectlyIncluding.
RegionSet DirectlyIncludingLayered(
    const RegionSet& r, const RegionSet& s,
    const std::vector<const RegionSet*>& other_indices);

}  // namespace qof

#endif  // QOF_REGION_REGION_SET_H_
