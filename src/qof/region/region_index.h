#ifndef QOF_REGION_REGION_INDEX_H_
#define QOF_REGION_REGION_INDEX_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region_set.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// An *instance* of a region index (paper §3.1): a mapping from region
/// names R1..Rn to sets of regions. The union of all instances is the
/// "universe" of indexed regions, which defines direct inclusion (⊃d/⊂d:
/// no *indexed* region strictly in between).
class RegionIndex {
 public:
  RegionIndex() = default;

  // Hand-written copy/move: the index is a value (copy-on-write snapshots
  // duplicate it, builds move it), but the mutex guarding the lazy
  // universe cache is neither copyable nor movable — each instance gets
  // its own.
  RegionIndex(const RegionIndex& other)
      : sets_(other.sets_),
        universe_(other.universe_),
        universe_valid_(other.universe_valid_) {}
  RegionIndex& operator=(const RegionIndex& other) {
    sets_ = other.sets_;
    universe_ = other.universe_;
    universe_valid_ = other.universe_valid_;
    return *this;
  }
  RegionIndex(RegionIndex&& other) noexcept
      : sets_(std::move(other.sets_)),
        universe_(std::move(other.universe_)),
        universe_valid_(other.universe_valid_) {}
  RegionIndex& operator=(RegionIndex&& other) noexcept {
    sets_ = std::move(other.sets_);
    universe_ = std::move(other.universe_);
    universe_valid_ = other.universe_valid_;
    return *this;
  }

  /// Registers (or extends) the instance of a region name.
  void Add(std::string name, RegionSet regions);

  // --- incremental maintenance (see src/qof/maintain/) ------------------

  /// Erases from every instance the regions starting in [begin, end) — a
  /// tombstoned document's contribution. Names stay registered (possibly
  /// with empty instances): "indexed but absent" must survive removals.
  /// Returns the number of regions erased.
  uint64_t EraseSpan(uint64_t begin, uint64_t end);

  /// Splices one document's contribution in: for each (name, run) the run
  /// is inserted at its canonical position. Runs must be canonically
  /// sorted, duplicate-free, and confined to a span no existing region
  /// starts in. Unknown names are registered.
  void InsertDocRegions(
      const std::map<std::string, std::vector<Region>>& by_name);

  bool Has(std::string_view name) const;

  /// The instance of `name`; NotFound if the name was never registered.
  Result<const RegionSet*> Get(std::string_view name) const;

  /// Region names in registration-independent (sorted) order.
  std::vector<std::string> Names() const;

  /// Union of every instance — the indexed-region universe. Computed
  /// lazily and cached; invalidated by Add(). Safe to call from
  /// concurrent readers sharing an otherwise-immutable index (snapshot
  /// queries): the lazy initialization is serialized internally.
  const RegionSet& Universe() const;

  /// All instances except `excluded` — the paper's "I − {S}" used by the
  /// layered ⊃d program.
  std::vector<const RegionSet*> AllExcept(std::string_view excluded) const;

  size_t num_names() const { return sets_.size(); }
  uint64_t num_regions() const;

  /// Approximate memory footprint (for the indexing-amount tradeoff
  /// experiments, §6–§7).
  uint64_t ApproxBytes() const;

 private:
  std::map<std::string, RegionSet, std::less<>> sets_;
  /// Serializes the lazy Universe() build between concurrent readers of a
  /// shared immutable index. Mutators (Add/EraseSpan/InsertDocRegions)
  /// require external exclusion, as before.
  mutable std::mutex universe_mu_;
  mutable RegionSet universe_;
  mutable bool universe_valid_ = false;
};

}  // namespace qof

#endif  // QOF_REGION_REGION_INDEX_H_
