#ifndef QOF_REGION_REGION_INDEX_H_
#define QOF_REGION_REGION_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "qof/region/region_set.h"
#include "qof/region/region_source.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// An *instance* of a region index (paper §3.1): a mapping from region
/// names R1..Rn to sets of regions. The union of all instances is the
/// "universe" of indexed regions, which defines direct inclusion (⊃d/⊂d:
/// no *indexed* region strictly in between).
///
/// Disk-resident mode: AttachSource() hands the index a backing
/// RegionSource (the paged store). Instances then materialize lazily on
/// first Get() — a selective query pages in only the names it touches —
/// while Names()/Has()/counts answer from the source's dictionary without
/// any posting I/O. EnsureResident() forces every instance into memory;
/// mutations and serialization require it first (the mutators below keep
/// their resident-only contract).
class RegionIndex {
 public:
  RegionIndex() = default;

  // Hand-written copy/move: the index is a value (copy-on-write snapshots
  // duplicate it, builds move it), but the mutexes guarding the lazy
  // universe cache and the lazy materialization are neither copyable nor
  // movable — each instance gets its own.
  RegionIndex(const RegionIndex& other) {
    std::lock_guard<std::mutex> lock(other.lazy_mu_);
    sets_ = other.sets_;
    universe_ = other.universe_;
    universe_valid_ = other.universe_valid_;
    source_ = other.source_;
    unloaded_ = other.unloaded_;
  }
  RegionIndex& operator=(const RegionIndex& other) {
    if (this == &other) return *this;
    std::lock_guard<std::mutex> lock(other.lazy_mu_);
    sets_ = other.sets_;
    universe_ = other.universe_;
    universe_valid_ = other.universe_valid_;
    source_ = other.source_;
    unloaded_ = other.unloaded_;
    return *this;
  }
  RegionIndex(RegionIndex&& other) noexcept
      : sets_(std::move(other.sets_)),
        universe_(std::move(other.universe_)),
        universe_valid_(other.universe_valid_),
        source_(std::move(other.source_)),
        unloaded_(std::move(other.unloaded_)) {}
  RegionIndex& operator=(RegionIndex&& other) noexcept {
    sets_ = std::move(other.sets_);
    universe_ = std::move(other.universe_);
    universe_valid_ = other.universe_valid_;
    source_ = std::move(other.source_);
    unloaded_ = std::move(other.unloaded_);
    return *this;
  }

  /// Registers (or extends) the instance of a region name.
  void Add(std::string name, RegionSet regions);

  // --- incremental maintenance (see src/qof/maintain/) ------------------

  /// Erases from every instance the regions starting in [begin, end) — a
  /// tombstoned document's contribution. Names stay registered (possibly
  /// with empty instances): "indexed but absent" must survive removals.
  /// Returns the number of regions erased.
  uint64_t EraseSpan(uint64_t begin, uint64_t end);

  /// Splices one document's contribution in: for each (name, run) the run
  /// is inserted at its canonical position. Runs must be canonically
  /// sorted, duplicate-free, and confined to a span no existing region
  /// starts in. Unknown names are registered.
  void InsertDocRegions(
      const std::map<std::string, std::vector<Region>>& by_name);

  bool Has(std::string_view name) const;

  /// `name`'s cardinality without materializing it: resident instances
  /// answer from memory, unloaded ones from the backing source's
  /// dictionary counts. 0 for unregistered names — the shape the cost
  /// estimators want, and the reason a disk-backed index can be planned
  /// against without a single posting read.
  uint64_t InstanceCount(std::string_view name) const;

  /// The instance of `name`; NotFound if the name was never registered.
  /// With a backing source attached this may page the instance in, so it
  /// can also fail on I/O or corruption. The returned pointer stays valid
  /// for the life of the index (map nodes are stable; materialized
  /// instances are immutable until EnsureResident precedes mutation).
  Result<const RegionSet*> Get(std::string_view name) const;

  /// Region names in registration-independent (sorted) order.
  std::vector<std::string> Names() const;

  // --- disk-resident backing (see src/qof/store/) -----------------------

  /// Attaches a backing source; instances materialize lazily from it on
  /// first Get(). Call on a freshly constructed index, before sharing it.
  Status AttachSource(std::shared_ptr<const RegionSource> source);

  /// A block cursor over `name`'s still-unmaterialized instance, or null
  /// when the instance is already resident (read it via Get(), which is
  /// then free) — the executor's block-skipping kernels probe the cursor
  /// so a selective query never materializes the name at all. NotFound
  /// for unregistered names, like Get().
  Result<std::unique_ptr<RegionCursor>> OpenCursor(
      std::string_view name) const;

  /// True while some instance still lives only in the source.
  bool disk_resident() const;

  /// Materializes every not-yet-loaded instance. Idempotent. Mutators and
  /// serialization require this first; Universe()/AllExcept() force it
  /// internally, so fallible callers should invoke this beforehand to see
  /// the error.
  Status EnsureResident() const;

  /// Universe().size() without forcing materialization: a disk-backed
  /// index answers from the store's persisted universe size (the cost
  /// model and the optimizer only need the cardinality).
  uint64_t UniverseSize() const;

  /// Union of every instance — the indexed-region universe. Computed
  /// lazily and cached; invalidated by Add(). Safe to call from
  /// concurrent readers sharing an otherwise-immutable index (snapshot
  /// queries): the lazy initialization is serialized internally.
  const RegionSet& Universe() const;

  /// All instances except `excluded` — the paper's "I − {S}" used by the
  /// layered ⊃d program.
  std::vector<const RegionSet*> AllExcept(std::string_view excluded) const;

  size_t num_names() const;
  uint64_t num_regions() const;

  /// Approximate memory footprint (for the indexing-amount tradeoff
  /// experiments, §6–§7).
  uint64_t ApproxBytes() const;

 private:
  /// Pages `name` in from the source. Caller holds lazy_mu_.
  Status MaterializeLocked(const std::string& name, uint64_t count) const;

  /// Mutable: Get() materializes lazily under lazy_mu_. Node-based, so
  /// pointers handed out by Get() survive later insertions.
  mutable std::map<std::string, RegionSet, std::less<>> sets_;
  /// Serializes the lazy Universe() build between concurrent readers of a
  /// shared immutable index. Mutators (Add/EraseSpan/InsertDocRegions)
  /// require external exclusion, as before.
  mutable std::mutex universe_mu_;
  mutable RegionSet universe_;
  mutable bool universe_valid_ = false;

  /// Backing source; null for a fully in-memory index. Set once before
  /// the index is shared, never reassigned by const paths (readers may
  /// test it without the lock).
  std::shared_ptr<const RegionSource> source_;
  /// Serializes lazy materialization between concurrent readers. Taken
  /// by const paths only while source_ is attached.
  mutable std::mutex lazy_mu_;
  /// name → region count for instances not yet materialized. Guarded by
  /// lazy_mu_; empty once EnsureResident() has run.
  mutable std::map<std::string, uint64_t, std::less<>> unloaded_;
};

}  // namespace qof

#endif  // QOF_REGION_REGION_INDEX_H_
