#ifndef QOF_REGION_REGION_CURSOR_H_
#define QOF_REGION_REGION_CURSOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "qof/region/region.h"
#include "qof/region/region_set.h"
#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Block-oriented read access to one stored region instance — the
/// abstraction the disk tier hands the galloping kernels. A cursor exposes
/// the instance as a sequence of canonical-order blocks with [first, last]
/// start bounds per block, so a probe can discard whole blocks on their
/// min/max before the block's bytes are decompressed (or even paged in).
/// The in-memory implementation (VectorRegionCursor) views an existing
/// vector; the disk implementation (qof/store/) decodes delta+varint
/// blocks out of a paged file through the buffer pool.
///
/// Per-cursor I/O attribution the disk implementation fills in (the
/// in-memory cursor reports zeros): how many pages its reads pulled from
/// disk, in how many VFS read calls, and how many of its page fetches
/// were served by a frame its own prefetch hints admitted.
struct CursorIoStats {
  uint64_t pages_read = 0;
  uint64_t read_calls = 0;
  uint64_t prefetch_hits = 0;

  void Add(const CursorIoStats& other) {
    pages_read += other.pages_read;
    read_calls += other.read_calls;
    prefetch_hits += other.prefetch_hits;
  }
};

/// Cursors are single-reader: one thread walks one cursor. Blocks are
/// indexed 0..num_blocks() and partition the instance in canonical order.
class RegionCursor {
 public:
  virtual ~RegionCursor() = default;

  virtual uint64_t total_count() const = 0;
  virtual size_t num_blocks() const = 0;
  /// Smallest region start in block `b`.
  virtual uint64_t block_first(size_t b) const = 0;
  /// Largest region start in block `b`.
  virtual uint64_t block_last(size_t b) const = 0;
  /// Largest region end in block `b` — the bound the containment kernels
  /// skip on: a block with max_end < p.end cannot hold a region that
  /// encloses p, however early its starts are.
  virtual uint64_t block_max_end(size_t b) const = 0;
  virtual uint32_t block_count(size_t b) const = 0;

  /// Decodes block `b` into `out` (cleared first). The expensive step —
  /// the kernels call it only for blocks whose bounds survive skipping.
  virtual Status ReadBlock(size_t b, std::vector<Region>* out) = 0;

  /// Blocks actually decoded so far — the skip-effectiveness number the
  /// disk-tier bench reports against num_blocks().
  uint64_t blocks_decoded() const { return blocks_decoded_; }

  /// True when PrefetchBlocks is worth calling — the kernels then spend
  /// an extra metadata pass computing which blocks their skip tables say
  /// they will decode, and announce them before decoding starts. The
  /// in-memory cursor has no I/O to batch and returns false.
  virtual bool wants_prefetch() const { return false; }

  /// Advisory: the caller expects to decode blocks [first, first+count).
  /// The disk implementation maps the run to its page span and hands the
  /// buffer pool a batched-read hint; results never depend on it.
  virtual void PrefetchBlocks(size_t first, size_t count) {
    (void)first;
    (void)count;
  }

  /// I/O this cursor has done so far (disk implementation only).
  virtual CursorIoStats io_stats() const { return CursorIoStats{}; }

  /// Per-query override (QueryOptions::prefetch): a cursor opened for a
  /// prefetch-off query keeps the PR 9 one-page-at-a-time behavior even
  /// when the store allows prefetch. Implementations AND this into
  /// wants_prefetch().
  void set_prefetch_allowed(bool allowed) { prefetch_allowed_ = allowed; }

 protected:
  uint64_t blocks_decoded_ = 0;
  bool prefetch_allowed_ = true;
};

/// An in-memory cursor over a RegionSet's vector, blocked at `block_size`
/// regions. Used by tests and benches to compare the block-skipping path
/// against the plain kernels on identical data.
class VectorRegionCursor : public RegionCursor {
 public:
  explicit VectorRegionCursor(const std::vector<Region>* regions,
                              uint32_t block_size = 128)
      : regions_(regions), block_size_(block_size) {}

  uint64_t total_count() const override { return regions_->size(); }
  size_t num_blocks() const override {
    return (regions_->size() + block_size_ - 1) / block_size_;
  }
  uint64_t block_first(size_t b) const override {
    return (*regions_)[b * block_size_].start;
  }
  uint64_t block_last(size_t b) const override {
    size_t end = std::min<size_t>((b + 1) * block_size_, regions_->size());
    return (*regions_)[end - 1].start;
  }
  uint64_t block_max_end(size_t b) const override {
    size_t begin = b * block_size_;
    size_t end = std::min<size_t>(begin + block_size_, regions_->size());
    uint64_t max_end = 0;
    for (size_t i = begin; i < end; ++i) {
      max_end = std::max(max_end, (*regions_)[i].end);
    }
    return max_end;
  }
  uint32_t block_count(size_t b) const override {
    size_t end = std::min<size_t>((b + 1) * block_size_, regions_->size());
    return static_cast<uint32_t>(end - b * block_size_);
  }
  Status ReadBlock(size_t b, std::vector<Region>* out) override {
    size_t begin = b * block_size_;
    size_t end = std::min<size_t>(begin + block_size_, regions_->size());
    out->assign(regions_->begin() + begin, regions_->begin() + end);
    ++blocks_decoded_;
    return Status::OK();
  }

 private:
  const std::vector<Region>* regions_;
  uint32_t block_size_;
};

/// Decodes every block — how a store-backed index materializes an
/// instance into memory.
Result<RegionSet> MaterializeCursor(RegionCursor& cursor);

/// Set intersection of `probe` (in memory, typically small) with the
/// instance behind `cursor` (typically large, on disk) — the
/// block-skipping variant of the galloping Intersect kernel: blocks whose
/// [first, last] range cannot contain a probe start are skipped without
/// decoding.
Result<RegionSet> IntersectCursor(const RegionSet& probe,
                                  RegionCursor& cursor);

/// Members of the instance behind `cursor` that contain at least one
/// member of `probe` — Including(instance, probe) without materializing
/// the instance. Candidate blocks for a probe region p are those with
/// block_first <= p.start, walked backward and skipped on
/// block_max_end < p.end; a prefix-max over the block max_ends stops the
/// walk as soon as no earlier block can reach p.end (for instances with
/// little nesting that is after one or two blocks).
Result<RegionSet> IncludingCursor(const RegionSet& probe,
                                  RegionCursor& cursor);

/// Members of the instance behind `cursor` contained in at least one
/// member of `probe` — IncludedIn(instance, probe) without materializing
/// the instance. A probe region p only reaches blocks whose start range
/// [first, last] intersects [p.start, p.end]; everything else is skipped
/// undecoded.
Result<RegionSet> IncludedInCursor(const RegionSet& probe,
                                   RegionCursor& cursor);

}  // namespace qof

#endif  // QOF_REGION_REGION_CURSOR_H_
