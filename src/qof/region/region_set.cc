#include "qof/region/region_set.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace qof {
namespace {

KernelPolicy InitialKernelPolicy() {
  const char* env = std::getenv("QOF_FORCE_KERNEL");
  if (env != nullptr) {
    if (std::strcmp(env, "linear") == 0) return KernelPolicy::kLinear;
    if (std::strcmp(env, "galloping") == 0) return KernelPolicy::kGalloping;
  }
  return KernelPolicy::kAdaptive;
}

std::atomic<KernelPolicy>& KernelPolicyFlag() {
  static std::atomic<KernelPolicy> policy{InitialKernelPolicy()};
  return policy;
}

/// True when the galloping kernel should run for operand sizes (m, n),
/// m <= n, under the current policy.
bool UseGalloping(size_t small, size_t large) {
  if (small == 0) return false;
  switch (KernelPolicyFlag().load(std::memory_order_relaxed)) {
    case KernelPolicy::kLinear:
      return false;
    case KernelPolicy::kGalloping:
      return true;
    case KernelPolicy::kAdaptive:
      break;
  }
  return CostModel::PreferGallop(small, large);
}

// Sparse table for O(1) range-min queries over member end offsets; built
// per algebra operation, so construction is O(n log n) on the operand only.
class MinEndTable {
 public:
  explicit MinEndTable(const std::vector<Region>& regions) {
    size_t n = regions.size();
    if (n == 0) return;
    size_t levels = 1;
    while ((size_t{1} << levels) <= n) ++levels;
    table_.resize(levels);
    table_[0].resize(n);
    for (size_t i = 0; i < n; ++i) table_[0][i] = regions[i].end;
    for (size_t k = 1; k < levels; ++k) {
      size_t len = size_t{1} << k;
      table_[k].resize(n - len + 1);
      for (size_t i = 0; i + len <= n; ++i) {
        table_[k][i] =
            std::min(table_[k - 1][i], table_[k - 1][i + len / 2]);
      }
    }
  }

  // Minimum end over [lo, hi); UINT64_MAX when empty.
  uint64_t Min(size_t lo, size_t hi) const {
    if (lo >= hi) return UINT64_MAX;
    size_t k = 0;
    while ((size_t{2} << k) <= hi - lo) ++k;
    return std::min(table_[k][lo], table_[k][hi - (size_t{1} << k)]);
  }

 private:
  std::vector<std::vector<uint64_t>> table_;
};

// Index range [lo, hi) of members whose start lies in [min_start, max_start].
std::pair<size_t, size_t> StartWindow(const std::vector<Region>& v,
                                      uint64_t min_start,
                                      uint64_t max_start) {
  auto lo = std::lower_bound(
      v.begin(), v.end(), min_start,
      [](const Region& r, uint64_t s) { return r.start < s; });
  auto hi = std::upper_bound(
      v.begin(), v.end(), max_start,
      [](uint64_t s, const Region& r) { return s < r.start; });
  return {static_cast<size_t>(lo - v.begin()),
          static_cast<size_t>(hi - v.begin())};
}

// Index of the exact span in a canonical vector, or npos.
size_t FindExact(const std::vector<Region>& v, const Region& r) {
  auto it = std::lower_bound(v.begin(), v.end(), r);
  if (it != v.end() && *it == r) return static_cast<size_t>(it - v.begin());
  return static_cast<size_t>(-1);
}

// Shared implementation of R ⊃ S (strict=false) and its strict variant.
RegionSet IncludingImpl(const RegionSet& r, const RegionSet& s, bool strict) {
  std::vector<Region> out;
  if (r.empty() || s.empty()) return RegionSet();
  const std::vector<Region>& sv = s.regions();
  MinEndTable min_end(sv);
  for (const Region& cand : r) {
    auto [lo, hi] = StartWindow(sv, cand.start, cand.end);
    bool hit;
    if (!strict) {
      hit = min_end.Min(lo, hi) <= cand.end;
    } else {
      size_t self = FindExact(sv, cand);
      if (self >= lo && self < hi) {
        hit = std::min(min_end.Min(lo, self), min_end.Min(self + 1, hi)) <=
              cand.end;
      } else {
        hit = min_end.Min(lo, hi) <= cand.end;
      }
    }
    if (hit) out.push_back(cand);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

// Shared implementation of R ⊂ S and its strict variant.
RegionSet IncludedInImpl(const RegionSet& r, const RegionSet& s,
                         bool strict) {
  std::vector<Region> out;
  if (r.empty() || s.empty()) return RegionSet();
  const std::vector<Region>& sv = s.regions();
  // prefix_max[i] = max end over sv[0..i).
  std::vector<uint64_t> prefix_max(sv.size() + 1, 0);
  for (size_t i = 0; i < sv.size(); ++i) {
    prefix_max[i + 1] = std::max(prefix_max[i], sv[i].end);
  }
  for (const Region& cand : r) {
    // Candidates that may contain `cand` have start <= cand.start, i.e.
    // indices [0, hi).
    auto hi_it = std::upper_bound(
        sv.begin(), sv.end(), cand.start,
        [](uint64_t p, const Region& x) { return p < x.start; });
    size_t hi = static_cast<size_t>(hi_it - sv.begin());
    bool hit = prefix_max[hi] >= cand.end;
    if (hit && strict) {
      // The only member of sv[0,hi) that weakly-but-not-strictly contains
      // `cand` is the identical span; re-check excluding it.
      size_t self = FindExact(sv, cand);
      if (self < hi) {
        uint64_t best = prefix_max[self];  // max over [0, self)
        for (size_t j = self + 1; j < hi && sv[j].start == cand.start; ++j) {
          best = std::max(best, sv[j].end);
        }
        // Members after `self` with the same start have smaller ends (and
        // cannot contain cand); members with larger start are not in [0,hi).
        hit = best >= cand.end;
      }
    }
    if (hit) out.push_back(cand);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

// --- galloping kernels ----------------------------------------------------
//
// Each probes the small operand into the large one: a forward exponential
// search from the previous match position, then a binary search over the
// bracketed range — O(m log(n/m)) total instead of the linear merge's
// O(m + n). All outputs are produced in canonical order (debug-asserted);
// results are identical to the linear kernels under every policy.

/// First index >= `from` whose region is not less than `key` (canonical
/// order), found by galloping forward from `from`.
size_t GallopLowerBound(const std::vector<Region>& v, size_t from,
                        const Region& key) {
  size_t n = v.size();
  size_t lo = from;
  size_t step = 1;
  while (from + step < n && v[from + step] < key) {
    lo = from + step;
    step <<= 1;
  }
  size_t hi = std::min(n, from + step);
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<long>(lo),
                       v.begin() + static_cast<long>(hi), key) -
      v.begin());
}

/// Intersection with |a| ≪ |b|: gallop each member of `a` into `b`.
RegionSet GallopIntersect(const RegionSet& a, const RegionSet& b) {
  std::vector<Region> out;
  out.reserve(a.size());
  const std::vector<Region>& bv = b.regions();
  size_t pos = 0;
  for (const Region& x : a) {
    pos = GallopLowerBound(bv, pos, x);
    if (pos == bv.size()) break;
    if (bv[pos] == x) {
      assert((out.empty() || out.back() < x) &&
             "galloping intersect broke canonical order");
      out.push_back(x);
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

/// Difference with |a| ≪ |b|: keep the members of `a` whose span is
/// absent from `b`. (When `b` is the small side the linear merge is
/// already output-proportional, so no galloping variant exists for it.)
RegionSet GallopDifference(const RegionSet& a, const RegionSet& b) {
  std::vector<Region> out;
  out.reserve(a.size());
  const std::vector<Region>& bv = b.regions();
  size_t pos = 0;
  for (const Region& x : a) {
    pos = GallopLowerBound(bv, pos, x);
    if (pos == bv.size() || !(bv[pos] == x)) {
      assert((out.empty() || out.back() < x) &&
             "galloping difference broke canonical order");
      out.push_back(x);
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

/// R ⊃ S with |r| ≪ |s|: instead of building the range-min table over all
/// of `s`, binary-search each candidate's start window and scan it with an
/// early exit at the first contained member. When the windows blow past
/// |s| in total (pathologically overlapping operands) the scan bails to
/// the table-based kernel, bounding the worst case at ~2x linear.
RegionSet GallopIncluding(const RegionSet& r, const RegionSet& s,
                          bool strict) {
  std::vector<Region> out;
  out.reserve(r.size());
  const std::vector<Region>& sv = s.regions();
  size_t scanned = 0;
  for (const Region& cand : r) {
    auto [lo, hi] = StartWindow(sv, cand.start, cand.end);
    for (size_t i = lo; i < hi; ++i) {
      if (++scanned > sv.size()) return IncludingImpl(r, s, strict);
      if (sv[i].end > cand.end) continue;
      if (strict && sv[i] == cand) continue;
      assert((out.empty() || out.back() < cand) &&
             "galloping including broke canonical order");
      out.push_back(cand);
      break;
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

/// R ⊂ S with |r| ≪ |s|: the prefix-max over `s` ends is built
/// incrementally, advancing a cursor only as far as the candidates'
/// (nondecreasing) start positions require — s-members past the last
/// candidate's start are never touched.
RegionSet GallopIncludedInSmallR(const RegionSet& r, const RegionSet& s,
                                 bool strict) {
  std::vector<Region> out;
  out.reserve(r.size());
  const std::vector<Region>& sv = s.regions();
  size_t cursor = 0;          // sv[0, cursor) folded into the maxima below
  uint64_t max_end = 0;       // max end over sv[0, cursor)
  uint64_t second_end = 0;    // max end over sv[0, cursor) minus one
                              // occurrence of the max (for strict)
  for (const Region& cand : r) {
    // Fold in the s-members with start <= cand.start.
    while (cursor < sv.size() && sv[cursor].start <= cand.start) {
      if (sv[cursor].end >= max_end) {
        second_end = max_end;
        max_end = sv[cursor].end;
      } else {
        second_end = std::max(second_end, sv[cursor].end);
      }
      ++cursor;
    }
    bool hit = max_end >= cand.end;
    if (hit && strict && max_end == cand.end) {
      // The maximum may be the identical span; a strict container exists
      // iff some *other* folded member also reaches cand.end, or the max
      // was achieved by a non-identical span (earlier start or duplicate
      // end at a different start).
      size_t self = FindExact(sv, cand);
      if (self < cursor) {
        hit = second_end >= cand.end;
        // A member with the same end but a different (earlier) start
        // strictly contains cand and also counts; second_end covers it
        // because the identical span displaces only one occurrence.
      }
    }
    if (hit) {
      assert((out.empty() || out.back() < cand) &&
             "galloping included-in broke canonical order");
      out.push_back(cand);
    }
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

/// R ⊂ S with |s| ≪ |r|: enumerate each container's start window in `r`
/// and keep the members it contains, deduplicating across overlapping
/// containers by index. Bails to the linear kernel when the windows blow
/// past |r| in total.
RegionSet GallopIncludedInSmallS(const RegionSet& r, const RegionSet& s,
                                 bool strict) {
  const std::vector<Region>& rv = r.regions();
  std::vector<size_t> hits;
  size_t scanned = 0;
  for (const Region& container : s) {
    auto [lo, hi] = StartWindow(rv, container.start, container.end);
    for (size_t i = lo; i < hi; ++i) {
      if (++scanned > rv.size()) return IncludedInImpl(r, s, strict);
      if (rv[i].end > container.end) continue;
      if (strict && rv[i] == container) continue;
      hits.push_back(i);
    }
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  std::vector<Region> out;
  out.reserve(hits.size());
  for (size_t i : hits) out.push_back(rv[i]);
  return RegionSet::FromSortedUnique(std::move(out));
}

}  // namespace

RegionSet RegionSet::FromUnsorted(std::vector<Region> regions) {
  std::sort(regions.begin(), regions.end());
  regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
  RegionSet set;
  set.regions_ = std::move(regions);
  return set;
}

RegionSet RegionSet::FromSortedUnique(std::vector<Region> regions) {
#ifndef NDEBUG
  for (size_t i = 1; i < regions.size(); ++i) {
    assert(regions[i - 1] < regions[i] && "regions not canonically sorted");
  }
#endif
  RegionSet set;
  set.regions_ = std::move(regions);
  return set;
}

bool RegionSet::ContainsRegion(const Region& r) const {
  return FindExact(regions_, r) != static_cast<size_t>(-1);
}

size_t RegionSet::EraseStartsIn(uint64_t begin, uint64_t end) {
  auto lo = std::lower_bound(
      regions_.begin(), regions_.end(), begin,
      [](const Region& r, uint64_t s) { return r.start < s; });
  auto hi = std::lower_bound(
      lo, regions_.end(), end,
      [](const Region& r, uint64_t s) { return r.start < s; });
  size_t n = static_cast<size_t>(hi - lo);
  regions_.erase(lo, hi);
  return n;
}

void RegionSet::InsertRun(const std::vector<Region>& run) {
  if (run.empty()) return;
#ifndef NDEBUG
  for (size_t i = 1; i < run.size(); ++i) {
    assert(run[i - 1] < run[i] && "run not canonically sorted");
  }
#endif
  auto at = std::lower_bound(regions_.begin(), regions_.end(), run.front());
  assert((at == regions_.end() || run.back().start < at->start) &&
         "run start window overlaps existing members");
  assert((at == regions_.begin() ||
          std::prev(at)->start < run.front().start) &&
         "run start window overlaps existing members");
  regions_.insert(at, run.begin(), run.end());
}

uint64_t RegionSet::TotalLength() const {
  uint64_t total = 0;
  for (const Region& r : regions_) total += r.length();
  return total;
}

bool RegionSet::IsLaminar() const {
  std::vector<Region> stack;
  for (const Region& r : regions_) {
    while (!stack.empty() && stack.back().end <= r.start) stack.pop_back();
    if (!stack.empty() && !stack.back().Contains(r)) return false;
    stack.push_back(r);
  }
  return true;
}

std::string RegionSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (i > 0) out += ", ";
    out += regions_[i].ToString();
  }
  out += "}";
  return out;
}

RegionSet Union(const RegionSet& a, const RegionSet& b) {
  std::vector<Region> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return RegionSet::FromSortedUnique(std::move(out));
}

void SetKernelPolicy(KernelPolicy policy) {
  KernelPolicyFlag().store(policy, std::memory_order_relaxed);
}

KernelPolicy kernel_policy() {
  return KernelPolicyFlag().load(std::memory_order_relaxed);
}

RegionSet Intersect(const RegionSet& a, const RegionSet& b) {
  const RegionSet& small = a.size() <= b.size() ? a : b;
  const RegionSet& large = a.size() <= b.size() ? b : a;
  if (UseGalloping(small.size(), large.size())) {
    return GallopIntersect(small, large);
  }
  std::vector<Region> out;
  out.reserve(small.size());
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Difference(const RegionSet& a, const RegionSet& b) {
  // Only the a-small case gallops: with b small the linear merge is
  // already proportional to the output (which contains most of a).
  if (a.size() <= b.size() && UseGalloping(a.size(), b.size())) {
    return GallopDifference(a, b);
  }
  std::vector<Region> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Innermost(const RegionSet& r) {
  std::vector<Region> out;
  const std::vector<Region>& v = r.regions();
  MinEndTable min_end(v);
  for (size_t i = 0; i < v.size(); ++i) {
    // Any member contained in v[i] appears after i (canonical order) with
    // start <= v[i].end; it is contained iff its end <= v[i].end.
    auto hi_it = std::upper_bound(
        v.begin() + i + 1, v.end(), v[i].end,
        [](uint64_t p, const Region& x) { return p < x.start; });
    size_t hi = static_cast<size_t>(hi_it - v.begin());
    if (min_end.Min(i + 1, hi) > v[i].end) out.push_back(v[i]);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet Outermost(const RegionSet& r) {
  std::vector<Region> out;
  const std::vector<Region>& v = r.regions();
  uint64_t max_end = 0;
  for (const Region& cand : v) {
    // Any member containing cand appears before it (canonical order) and
    // contains it iff its end >= cand.end.
    if (max_end < cand.end) out.push_back(cand);
    max_end = std::max(max_end, cand.end);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

namespace {

/// Shared adaptive dispatch for ⊃ and its strict variant. Only the
/// r-small case has a galloping kernel: the table-based kernel's work is
/// dominated by iterating r, which the output is drawn from.
RegionSet IncludingDispatch(const RegionSet& r, const RegionSet& s,
                            bool strict) {
  if (r.empty() || s.empty()) return RegionSet();
  if (r.size() <= s.size() && UseGalloping(r.size(), s.size())) {
    return GallopIncluding(r, s, strict);
  }
  return IncludingImpl(r, s, strict);
}

/// Shared adaptive dispatch for ⊂ and its strict variant; both skew
/// directions have galloping kernels.
RegionSet IncludedInDispatch(const RegionSet& r, const RegionSet& s,
                             bool strict) {
  if (r.empty() || s.empty()) return RegionSet();
  if (r.size() <= s.size()) {
    if (UseGalloping(r.size(), s.size())) {
      return GallopIncludedInSmallR(r, s, strict);
    }
  } else if (UseGalloping(s.size(), r.size())) {
    return GallopIncludedInSmallS(r, s, strict);
  }
  return IncludedInImpl(r, s, strict);
}

}  // namespace

RegionSet Including(const RegionSet& r, const RegionSet& s) {
  return IncludingDispatch(r, s, /*strict=*/false);
}

RegionSet IncludedIn(const RegionSet& r, const RegionSet& s) {
  return IncludedInDispatch(r, s, /*strict=*/false);
}

RegionSet IncludingStrict(const RegionSet& r, const RegionSet& s) {
  return IncludingDispatch(r, s, /*strict=*/true);
}

RegionSet IncludedInStrict(const RegionSet& r, const RegionSet& s) {
  return IncludedInDispatch(r, s, /*strict=*/true);
}

std::vector<Region> InnermostStrictEnclosers(const RegionSet& queries,
                                             const RegionSet& universe) {
  assert(universe.IsLaminar() &&
         "direct inclusion requires a laminar universe");
  std::vector<Region> result(queries.size(), Region{0, 0});
  const std::vector<Region>& uv = universe.regions();
  std::vector<Region> stack;
  size_t ui = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Region& q = queries[qi];
    // Push universe members that precede (or equal) q in canonical order;
    // exactly those can enclose q.
    while (ui < uv.size() && (uv[ui] < q || uv[ui] == q)) {
      while (!stack.empty() && stack.back().end <= uv[ui].start) {
        stack.pop_back();
      }
      stack.push_back(uv[ui]);
      ++ui;
    }
    while (!stack.empty() && stack.back().end <= q.start) stack.pop_back();
    // The stack is now the chain of universe members covering q.start,
    // outermost first. The innermost strict encloser is the deepest entry
    // that strictly contains q (at most the identical span needs skipping).
    for (size_t d = stack.size(); d-- > 0;) {
      if (stack[d] == q) continue;
      if (stack[d].Contains(q)) {
        result[qi] = stack[d];
      }
      break;
    }
  }
  return result;
}

RegionSet DirectlyIncluding(const RegionSet& r, const RegionSet& s,
                            const RegionSet& universe) {
  // r ⊃d s  ⟺  r is the innermost strict encloser of s within the
  // universe of indexed regions (see region_set.h preconditions): any
  // shallower encloser has that innermost one strictly between itself and
  // s, and any member of `r` strictly containing s *is* an encloser.
  std::vector<Region> enclosers = InnermostStrictEnclosers(s, universe);
  std::vector<Region> valid;
  valid.reserve(enclosers.size());
  for (const Region& e : enclosers) {
    if (e.end > e.start || e.start > 0) valid.push_back(e);
  }
  return Intersect(r, RegionSet::FromUnsorted(std::move(valid)));
}

RegionSet DirectlyIncluded(const RegionSet& r, const RegionSet& s,
                           const RegionSet& universe) {
  std::vector<Region> enclosers = InnermostStrictEnclosers(r, universe);
  std::vector<Region> out;
  for (size_t i = 0; i < r.size(); ++i) {
    const Region& e = enclosers[i];
    bool has_encloser = e.end > e.start || e.start > 0;
    if (has_encloser && s.ContainsRegion(e)) out.push_back(r[i]);
  }
  return RegionSet::FromSortedUnique(std::move(out));
}

RegionSet DirectlyIncludingLayered(
    const RegionSet& r, const RegionSet& s,
    const std::vector<const RegionSet*>& other_indices) {
  // Faithful transcription of the paper's §3.1 program. Each iteration
  // peels the outermost layer of `r` and keeps the layer members that
  // include an `s` member with no other indexed region in between.
  RegionSet layer = Outermost(r);
  RegionSet rest = Difference(r, layer);
  RegionSet result;
  while (!Including(layer, s).empty()) {
    RegionSet blocked;
    for (const RegionSet* t : other_indices) {
      blocked = Union(
          blocked, IncludedInStrict(s, IncludedInStrict(*t, layer)));
    }
    result = Union(result, IncludingStrict(layer, Difference(s, blocked)));
    if (rest.empty()) break;
    layer = Outermost(rest);
    rest = Difference(rest, layer);
  }
  return result;
}

}  // namespace qof
