#ifndef QOF_REGION_REGION_H_
#define QOF_REGION_REGION_H_

#include <cstdint>
#include <string>

namespace qof {

/// A contiguous substring of the indexed text, identified by its byte span
/// [start, end) in the corpus-wide address space (paper §3.1: "each region
/// is ... defined by a pair of positions in the text").
struct Region {
  uint64_t start = 0;
  uint64_t end = 0;

  uint64_t length() const { return end - start; }

  /// Weak containment: the endpoints of `other` lie within this region's
  /// (paper's `r ⊇ s`). A region contains itself.
  bool Contains(const Region& other) const {
    return start <= other.start && other.end <= end;
  }

  /// Strict containment: contains `other` and differs from it. This is the
  /// relation that matters for "directly includes" (a region is never
  /// directly included in itself).
  bool StrictlyContains(const Region& other) const {
    return Contains(other) && *this != other;
  }

  bool Overlaps(const Region& other) const {
    return start < other.end && other.start < end;
  }

  friend bool operator==(const Region& a, const Region& b) {
    return a.start == b.start && a.end == b.end;
  }

  /// Canonical order: by start ascending, then by end *descending*, so that
  /// an enclosing region sorts before every region it contains.
  friend bool operator<(const Region& a, const Region& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end > b.end;
  }

  std::string ToString() const {
    std::string out = "[";
    out += std::to_string(start);
    out += ",";
    out += std::to_string(end);
    out += ")";
    return out;
  }
};

}  // namespace qof

#endif  // QOF_REGION_REGION_H_
