#ifndef QOF_DATAGEN_MAIL_GEN_H_
#define QOF_DATAGEN_MAIL_GEN_H_

#include <cstdint>
#include <string>

namespace qof {

/// Synthetic mailbox generator (the paper's e-mail motivating example,
/// §1). Emits files parseable by MailSchema().
struct MailGenOptions {
  int num_messages = 100;
  uint32_t seed = 7;
  int min_recipients = 1;
  int max_recipients = 3;
  int max_tags = 3;
  int body_words = 30;
  /// Probability that a message involves the probe person as sender /
  /// as a recipient (the mail analogue of the Chang author/editor split).
  double probe_sender_rate = 0.05;
  double probe_recipient_rate = 0.08;
  std::string probe_name = "Dana Chang";
  std::string probe_email = "dchang@example.org";
};

std::string GenerateMailbox(const MailGenOptions& options);

}  // namespace qof

#endif  // QOF_DATAGEN_MAIL_GEN_H_
