#include "qof/datagen/bibtex_gen.h"

#include <random>
#include <vector>

namespace qof {
namespace {

constexpr const char* kFirstNames[] = {
    "G. F.", "Y. F.", "A.",  "J. R.", "Mary",  "Chen",  "K.",
    "L. M.", "Tova",  "P.",  "S. A.", "Diane", "R. W.", "Hugo",
    "N.",    "E. C.", "Ana", "T. J.", "Vera",  "M.",
};

constexpr const char* kLastNames[] = {
    "Corliss",  "Griewank", "Milo",    "Abiteboul", "Consens",
    "Tompa",    "Salminen", "Gonnet",  "Mendelzon", "Kifer",
    "Sagiv",    "Lamport",  "Sethi",   "Burkowski", "Salton",
    "McGill",   "Paepcke",  "Schwartz", "Goldberg",  "Nichols",
    "Hadzilacos", "Kilpelainen", "Yeung", "Bertino", "Delobel",
};

constexpr const char* kTitleWords[] = {
    "Solving",   "Ordinary",  "Differential", "Equations",  "Using",
    "Taylor",    "Series",    "Automatic",    "Queries",    "Files",
    "Indexing",  "Regions",   "Databases",    "Optimizing", "Text",
    "Retrieval", "Grammars",  "Structured",   "Algorithms", "Parallel",
};

constexpr const char* kKeywords[] = {
    "point algorithm", "Taylor series",  "radius of convergence",
    "text indexing",   "region algebra", "query optimization",
    "semi-structured", "file systems",   "inverted files",
    "parsing",         "bibliographies", "object databases",
};

constexpr const char* kPublishers[] = {"SIAM", "ACM Press", "Springer",
                                       "North-Holland", "Morgan Kaufmann"};

constexpr const char* kAddresses[] = {
    "Philadelphia, Penn.", "New York, NY", "Berlin", "Amsterdam",
    "San Mateo, CA"};

constexpr const char* kAbstractWords[] = {
    "a",        "Fortran",   "pre-processor", "uses",     "automatic",
    "differentiation", "to", "write",   "programs", "that",
    "solve",    "the",       "system",  "of",       "equations",
    "with",     "series",    "methods", "and",      "interval",
    "bounds",   "derived",   "from",    "truncated", "expansions",
};

class Gen {
 public:
  explicit Gen(const BibtexGenOptions& options)
      : opt_(options), rng_(options.seed) {}

  std::string Run() {
    std::string out;
    // Rough per-entry size; avoids repeated reallocation on big corpora.
    out.reserve(static_cast<size_t>(opt_.num_references) * 480);
    for (int i = 0; i < opt_.num_references; ++i) {
      EmitReference(i, &out);
      out += "\n";
    }
    return out;
  }

 private:
  template <size_t N>
  const char* Pick(const char* const (&pool)[N]) {
    return pool[std::uniform_int_distribution<size_t>(0, N - 1)(rng_)];
  }

  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  bool Chance(double p) {
    return std::bernoulli_distribution(p)(rng_);
  }

  // names: "First Last and First Last"; optionally forces the probe
  // surname into one slot.
  void EmitNames(int count, bool force_probe, std::string* out) {
    int probe_slot = force_probe ? Range(0, count - 1) : -1;
    for (int i = 0; i < count; ++i) {
      if (i > 0) *out += " and ";
      *out += Pick(kFirstNames);
      *out += " ";
      *out += i == probe_slot ? opt_.probe_surname : Pick(kLastNames);
    }
  }

  void EmitReference(int index, std::string* out) {
    *out += "@INCOLLECTION{";
    *out += "Ref";
    *out += std::to_string(index);
    *out += ",\n  AUTHOR = \"";
    EmitNames(Range(opt_.min_authors, opt_.max_authors),
              Chance(opt_.probe_author_rate), out);
    *out += "\",\n  TITLE = \"";
    int title_words = Range(3, 7);
    for (int i = 0; i < title_words; ++i) {
      if (i > 0) *out += " ";
      *out += Pick(kTitleWords);
    }
    *out += "\",\n  BOOKTITLE = \"";
    for (int i = 0; i < 4; ++i) {
      if (i > 0) *out += " ";
      *out += Pick(kTitleWords);
    }
    *out += "\",\n  YEAR = \"";
    *out += std::to_string(Range(1970, 1994));
    *out += "\",\n  EDITOR = \"";
    EmitNames(Range(opt_.min_editors, opt_.max_editors),
              Chance(opt_.probe_editor_rate), out);
    *out += "\",\n  PUBLISHER = \"";
    *out += Pick(kPublishers);
    *out += "\",\n  ADDRESS = \"";
    *out += Pick(kAddresses);
    *out += "\",\n  PAGES = \"";
    int first_page = Range(1, 400);
    *out += std::to_string(first_page);
    *out += "--";
    *out += std::to_string(first_page + Range(5, 40));
    *out += "\",\n  REFERRED = \"";
    int refs = Range(0, 3);
    for (int i = 0; i < refs; ++i) {
      if (i > 0) *out += "; ";
      *out += "[Ref";
      *out += std::to_string(Range(0, opt_.num_references - 1));
      *out += "]";
    }
    *out += "\",\n  KEYWORDS = \"";
    int kw = Range(opt_.min_keywords, opt_.max_keywords);
    for (int i = 0; i < kw; ++i) {
      if (i > 0) *out += "; ";
      *out += Pick(kKeywords);
    }
    *out += "\",\n  ABSTRACT = \"";
    for (int i = 0; i < opt_.abstract_words; ++i) {
      if (i > 0) *out += " ";
      *out += Pick(kAbstractWords);
    }
    *out += "\"\n}\n";
  }

  const BibtexGenOptions& opt_;
  std::mt19937 rng_;
};

}  // namespace

std::string GenerateBibtex(const BibtexGenOptions& options) {
  return Gen(options).Run();
}

}  // namespace qof
