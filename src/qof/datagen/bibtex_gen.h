#ifndef QOF_DATAGEN_BIBTEX_GEN_H_
#define QOF_DATAGEN_BIBTEX_GEN_H_

#include <cstdint>
#include <string>

namespace qof {

/// Parameters of the synthetic BibTeX corpus generator. The generator
/// stands in for the shared bibliography files the paper's experiments
/// used (not available): it emits Figure-1-shaped @INCOLLECTION entries
/// with controllable scale and controllable author/editor name collisions
/// — the property the paper's flagship query ("Chang as author, not
/// editor") depends on.
struct BibtexGenOptions {
  int num_references = 100;
  uint32_t seed = 42;
  int min_authors = 1;
  int max_authors = 3;
  int min_editors = 1;
  int max_editors = 2;
  int min_keywords = 1;
  int max_keywords = 4;
  int abstract_words = 25;
  /// Probability that a reference gets the probe surname among its author
  /// last names / editor last names.
  double probe_author_rate = 0.05;
  double probe_editor_rate = 0.05;
  /// The probe surname ("Chang" in the paper's example).
  std::string probe_surname = "Chang";
};

/// Generates one BibTeX file parseable by BibtexSchema().
std::string GenerateBibtex(const BibtexGenOptions& options);

}  // namespace qof

#endif  // QOF_DATAGEN_BIBTEX_GEN_H_
