#include "qof/datagen/mail_gen.h"

#include <random>

namespace qof {
namespace {

struct Person {
  const char* name;
  const char* email;
};

constexpr Person kPeople[] = {
    {"Alice Zhou", "azhou@example.org"},
    {"Bob Tanaka", "btanaka@example.org"},
    {"Carol Iverson", "carol@example.com"},
    {"Deepak Rao", "drao@example.net"},
    {"Elena Petrova", "elena@example.org"},
    {"Frank Mills", "fmills@example.com"},
    {"Grace Okafor", "gokafor@example.net"},
    {"Henrik Olsen", "holsen@example.org"},
    {"Ines Castro", "icastro@example.com"},
    {"Jonas Weber", "jweber@example.net"},
};

constexpr const char* kSubjectWords[] = {
    "meeting", "notes",   "draft",  "review", "schedule", "budget",
    "release", "plan",    "agenda", "report", "update",   "question",
    "paper",   "figures", "deadline"};

constexpr const char* kTags[] = {"work",   "urgent", "personal",
                                 "travel", "admin",  "archive"};

constexpr const char* kBodyWords[] = {
    "please", "find",    "attached", "the",     "latest", "version",
    "of",     "our",     "document", "and",     "send",   "comments",
    "before", "friday",  "thanks",   "we",      "should", "discuss",
    "next",   "steps",   "budget",   "numbers", "look",   "fine",
    "to",     "me",      "see",      "you",     "at",     "lunch"};

class Gen {
 public:
  explicit Gen(const MailGenOptions& options)
      : opt_(options), rng_(options.seed) {}

  std::string Run() {
    std::string out;
    out.reserve(static_cast<size_t>(opt_.num_messages) * 360);
    for (int i = 0; i < opt_.num_messages; ++i) EmitMessage(i, &out);
    return out;
  }

 private:
  template <size_t N>
  const char* Pick(const char* const (&pool)[N]) {
    return pool[std::uniform_int_distribution<size_t>(0, N - 1)(rng_)];
  }

  const Person& PickPerson() {
    return kPeople[std::uniform_int_distribution<size_t>(
        0, std::size(kPeople) - 1)(rng_)];
  }

  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  bool Chance(double p) { return std::bernoulli_distribution(p)(rng_); }

  void EmitAddress(bool probe, std::string* out) {
    if (probe) {
      *out += opt_.probe_name;
      *out += " <";
      *out += opt_.probe_email;
      *out += ">";
      return;
    }
    const Person& p = PickPerson();
    *out += p.name;
    *out += " <";
    *out += p.email;
    *out += ">";
  }

  void EmitMessage(int index, std::string* out) {
    *out += "MESSAGE {\n  FROM [";
    EmitAddress(Chance(opt_.probe_sender_rate), out);
    *out += "]\n  TO [";
    int recipients = Range(opt_.min_recipients, opt_.max_recipients);
    int probe_slot =
        Chance(opt_.probe_recipient_rate) ? Range(0, recipients - 1) : -1;
    for (int i = 0; i < recipients; ++i) {
      if (i > 0) *out += "; ";
      EmitAddress(i == probe_slot, out);
    }
    *out += "]\n  SUBJECT [";
    int subject_words = Range(2, 5);
    for (int i = 0; i < subject_words; ++i) {
      if (i > 0) *out += " ";
      *out += Pick(kSubjectWords);
    }
    *out += "]\n  DATE [1994-";
    int month = Range(1, 12);
    if (month < 10) *out += "0";
    *out += std::to_string(month);
    *out += "-";
    int day = Range(1, 28);
    if (day < 10) *out += "0";
    *out += std::to_string(day);
    *out += "]\n  TAGS [";
    int tags = Range(0, opt_.max_tags);
    for (int i = 0; i < tags; ++i) {
      if (i > 0) *out += "; ";
      *out += Pick(kTags);
    }
    *out += "]\n  BODY [msg";
    *out += std::to_string(index);
    for (int i = 0; i < opt_.body_words; ++i) {
      *out += " ";
      *out += Pick(kBodyWords);
    }
    *out += "]\n}\n";
  }

  const MailGenOptions& opt_;
  std::mt19937 rng_;
};

}  // namespace

std::string GenerateMailbox(const MailGenOptions& options) {
  return Gen(options).Run();
}

}  // namespace qof
