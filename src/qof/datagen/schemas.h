#ifndef QOF_DATAGEN_SCHEMAS_H_
#define QOF_DATAGEN_SCHEMAS_H_

#include "qof/schema/structuring_schema.h"
#include "qof/util/result.h"

namespace qof {

/// The paper's running example (§2, §4.1): BibTeX files. View symbol:
/// Reference. RIG shape matches the paper's §3.2 diagram —
///   Reference -> {Key, Title, BookTitle, Year, Publisher, Address, Pages,
///                 Abstract, Authors, Editors, Keywords, Referred}
///   Authors -> Name, Editors -> Name, Name -> {First_Name, Last_Name},
///   Keywords -> Keyword, Referred -> RefKey.
/// Composite regions (Authors, Editors, Keywords, Referred) include their
/// surrounding quotes, mirroring §2's "regions starting with AUTHOR= and
/// ending with a comma": a parent's span strictly contains its children's.
Result<StructuringSchema> BibtexSchema();

/// A mailbox of structured messages (the paper's motivating e-mail files,
/// §1). View symbol: Message.
///   Message -> {Sender, Recipients, Subject, Date, Tags, Body}
///   Sender -> Address, Recipients -> Address,
///   Address -> {Addr_Name, Email}, Tags -> Tag.
Result<StructuringSchema> MailSchema();

/// A structured application log (the paper's log files, §1). View symbol:
/// Entry.
///   Entry -> {Timestamp, Level, Component, SessionId, Message}
Result<StructuringSchema> LogSchema();

/// A recursive document outline: sections nest inside sections, giving a
/// *cyclic* RIG (Section -> Subsections -> Section) — the self-nested
/// regions of §3.2 and the transitive-closure paths of §5.3. View symbol:
/// Section (every nesting level is a view object).
///   Section -> {SecTitle, Prose, Subsections}, Subsections -> Section
/// Text shape: <sec [Title] prose words { <sec ...> ... } sec>
Result<StructuringSchema> OutlineSchema();

}  // namespace qof

#endif  // QOF_DATAGEN_SCHEMAS_H_
