#ifndef QOF_DATAGEN_SEED_H_
#define QOF_DATAGEN_SEED_H_

#include <cstdint>

namespace qof {

/// Derives the i-th child seed of `base` (splitmix32 finalizer over an
/// odd-stride counter). Passing consecutive `i` to the same generator —
/// or `base` to different generators — yields decorrelated streams, which
/// naive `seed + i` does not: the datagen generators' first draws differ
/// in only a few low bits under adjacent seeds. All the multi-corpus
/// drivers (experiments, fuzzing) derive their per-document and
/// per-generator seeds through this one function.
constexpr uint32_t WithSeed(uint32_t base, uint32_t i) {
  uint32_t z = base + 0x9e3779b9u * (i + 1u);
  z ^= z >> 16;
  z *= 0x85ebca6bu;
  z ^= z >> 13;
  z *= 0xc2b2ae35u;
  z ^= z >> 16;
  return z;
}

}  // namespace qof

#endif  // QOF_DATAGEN_SEED_H_
