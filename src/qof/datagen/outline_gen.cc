#include "qof/datagen/outline_gen.h"

#include <random>

namespace qof {
namespace {

constexpr const char* kTitleWords[] = {
    "Introduction", "Background", "Design",    "Evaluation",
    "Indexing",     "Regions",    "Algebra",   "Grammars",
    "Parsing",      "Results",    "Discussion", "Conclusions",
};

constexpr const char* kProseWords[] = {
    "this",    "section", "describes", "the",      "approach", "in",
    "detail",  "and",     "relates",   "it",       "to",       "previous",
    "work",    "on",      "indexed",   "text",     "files",    "with",
    "regions", "queries", "evaluated", "without",  "scanning",
};

class Gen {
 public:
  explicit Gen(const OutlineGenOptions& options)
      : opt_(options), rng_(options.seed) {}

  std::string Run() {
    std::string out;
    out.reserve(static_cast<size_t>(opt_.num_top_sections) * 600);
    for (int i = 0; i < opt_.num_top_sections; ++i) {
      EmitSection(opt_.max_depth, &out);
      out += "\n";
    }
    return out;
  }

 private:
  template <size_t N>
  const char* Pick(const char* const (&pool)[N]) {
    return pool[std::uniform_int_distribution<size_t>(0, N - 1)(rng_)];
  }

  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  bool Chance(double p) { return std::bernoulli_distribution(p)(rng_); }

  void EmitSection(int depth_budget, std::string* out) {
    *out += "<sec [";
    if (Chance(opt_.probe_title_rate)) {
      *out += opt_.probe_title;
    } else {
      *out += Pick(kTitleWords);
      *out += " ";
      *out += Pick(kTitleWords);
    }
    *out += "] ";
    for (int i = 0; i < opt_.prose_words; ++i) {
      *out += Pick(kProseWords);
      *out += " ";
    }
    *out += "{ ";
    if (depth_budget > 0) {
      int children = Range(0, opt_.max_children);
      for (int c = 0; c < children; ++c) {
        EmitSection(depth_budget - 1, out);
        *out += " ";
      }
    }
    *out += "} sec>";
  }

  const OutlineGenOptions& opt_;
  std::mt19937 rng_;
};

}  // namespace

std::string GenerateOutline(const OutlineGenOptions& options) {
  return Gen(options).Run();
}

}  // namespace qof
