#ifndef QOF_DATAGEN_LOG_GEN_H_
#define QOF_DATAGEN_LOG_GEN_H_

#include <cstdint>
#include <string>

namespace qof {

/// Synthetic structured-log generator (the paper's log-file motivating
/// example, §1). Emits files parseable by LogSchema().
struct LogGenOptions {
  int num_entries = 1000;
  uint32_t seed = 11;
  double error_rate = 0.05;
  int num_sessions = 50;
  int message_words = 8;
};

std::string GenerateLog(const LogGenOptions& options);

}  // namespace qof

#endif  // QOF_DATAGEN_LOG_GEN_H_
