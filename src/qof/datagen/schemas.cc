#include "qof/datagen/schemas.h"

namespace qof {

Result<StructuringSchema> BibtexSchema() {
  SchemaBuilder b("BibTeX", "Ref_Set", "Reference");
  b.Star("Ref_Set", "Reference", "", Action::CollectSet());
  b.Sequence(
      "Reference",
      {
          b.Lit("@INCOLLECTION{"), b.NT("Key"), b.Lit(","),
          b.Lit("AUTHOR ="), b.NT("Authors"), b.Lit(","),
          b.Lit("TITLE = \""), b.NT("Title"), b.Lit("\","),
          b.Lit("BOOKTITLE = \""), b.NT("BookTitle"), b.Lit("\","),
          b.Lit("YEAR = \""), b.NT("Year"), b.Lit("\","),
          b.Lit("EDITOR ="), b.NT("Editors"), b.Lit(","),
          b.Lit("PUBLISHER = \""), b.NT("Publisher"), b.Lit("\","),
          b.Lit("ADDRESS = \""), b.NT("Address"), b.Lit("\","),
          b.Lit("PAGES = \""), b.NT("Pages"), b.Lit("\","),
          b.Lit("REFERRED ="), b.NT("Referred"), b.Lit(","),
          b.Lit("KEYWORDS ="), b.NT("Keywords"), b.Lit(","),
          b.Lit("ABSTRACT = \""), b.NT("Abstract"), b.Lit("\""),
          b.Lit("}"),
      },
      Action::Object("Reference", {{"Key", 1},
                                   {"Authors", 2},
                                   {"Title", 3},
                                   {"BookTitle", 4},
                                   {"Year", 5},
                                   {"Editors", 6},
                                   {"Publisher", 7},
                                   {"Address", 8},
                                   {"Pages", 9},
                                   {"Referred", 10},
                                   {"Keywords", 11},
                                   {"Abstract", 12}}));
  // Composite fields carry their quotes so their spans strictly contain
  // their children's.
  b.Sequence("Authors",
             {b.Lit("\""), b.StarOf("Name", "and ", /*min_count=*/1),
              b.Lit("\"")},
             Action::CollectSet());
  b.Sequence("Editors",
             {b.Lit("\""), b.StarOf("Name", "and ", /*min_count=*/1),
              b.Lit("\"")},
             Action::CollectSet());
  b.Sequence("Name", {b.NT("First_Name"), b.NT("Last_Name")},
             Action::Tuple({{"First_Name", 1}, {"Last_Name", 2}}));
  b.Sequence("Keywords",
             {b.Lit("\""), b.StarOf("Keyword", ";"), b.Lit("\"")},
             Action::CollectSet());
  b.Sequence("Referred",
             {b.Lit("\""), b.StarOf("RefKey", ";"), b.Lit("\"")},
             Action::CollectSet());
  b.Token("Key", TokenKind::kUntil, {","});
  b.Token("Title", TokenKind::kUntil, {"\""});
  b.Token("BookTitle", TokenKind::kUntil, {"\""});
  b.Token("Year", TokenKind::kNumber, {}, Action::Int());
  b.Token("Publisher", TokenKind::kUntil, {"\""});
  b.Token("Address", TokenKind::kUntil, {"\""});
  b.Token("Pages", TokenKind::kUntil, {"\""});
  b.Token("Abstract", TokenKind::kUntil, {"\""});
  b.Token("Keyword", TokenKind::kUntil, {";", "\""});
  b.Token("RefKey", TokenKind::kUntil, {";", "\""});
  b.Token("First_Name", TokenKind::kUntilLastWord, {" and ", "\""});
  b.Token("Last_Name", TokenKind::kWord);
  return b.Build();
}

Result<StructuringSchema> MailSchema() {
  SchemaBuilder b("Mail", "Mailbox", "Message");
  b.Star("Mailbox", "Message", "", Action::CollectSet());
  b.Sequence("Message",
             {
                 b.Lit("MESSAGE {"),
                 b.Lit("FROM"), b.NT("Sender"),
                 b.Lit("TO"), b.NT("Recipients"),
                 b.Lit("SUBJECT ["), b.NT("Subject"), b.Lit("]"),
                 b.Lit("DATE ["), b.NT("Date"), b.Lit("]"),
                 b.Lit("TAGS"), b.NT("Tags"),
                 b.Lit("BODY ["), b.NT("Body"), b.Lit("]"),
                 b.Lit("}"),
             },
             Action::Object("Message", {{"Sender", 1},
                                        {"Recipients", 2},
                                        {"Subject", 3},
                                        {"Date", 4},
                                        {"Tags", 5},
                                        {"Body", 6}}));
  b.Sequence("Sender", {b.Lit("["), b.NT("Address"), b.Lit("]")},
             Action::Child(1));
  b.Sequence("Recipients",
             {b.Lit("["), b.StarOf("Address", ";", /*min_count=*/1),
              b.Lit("]")},
             Action::CollectSet());
  b.Sequence("Address",
             {b.NT("Addr_Name"), b.Lit("<"), b.NT("Email"), b.Lit(">")},
             Action::Tuple({{"Addr_Name", 1}, {"Email", 2}}));
  b.Sequence("Tags", {b.Lit("["), b.StarOf("Tag", ";"), b.Lit("]")},
             Action::CollectSet());
  b.Token("Addr_Name", TokenKind::kUntil, {"<"});
  b.Token("Email", TokenKind::kUntil, {">"});
  b.Token("Subject", TokenKind::kUntil, {"]"});
  b.Token("Date", TokenKind::kUntil, {"]"});
  b.Token("Tag", TokenKind::kUntil, {";", "]"});
  b.Token("Body", TokenKind::kUntil, {"]"});
  return b.Build();
}

Result<StructuringSchema> LogSchema() {
  SchemaBuilder b("Log", "LogFile", "Entry");
  b.Star("LogFile", "Entry", "", Action::CollectSet());
  b.Sequence("Entry",
             {
                 b.Lit("["), b.NT("Timestamp"), b.Lit("]"),
                 b.NT("Level"),
                 b.Lit("("), b.NT("Component"), b.Lit(")"),
                 b.Lit("sid="), b.NT("SessionId"),
                 b.Lit(":"), b.NT("Message"), b.Lit(";;"),
             },
             Action::Object("Entry", {{"Timestamp", 1},
                                      {"Level", 2},
                                      {"Component", 3},
                                      {"SessionId", 4},
                                      {"Message", 5}}));
  b.Token("Timestamp", TokenKind::kUntil, {"]"});
  b.Token("Level", TokenKind::kWord);
  b.Token("Component", TokenKind::kWord);
  b.Token("SessionId", TokenKind::kNumber, {}, Action::Int());
  b.Token("Message", TokenKind::kUntil, {";;"});
  return b.Build();
}

Result<StructuringSchema> OutlineSchema() {
  SchemaBuilder b("Outline", "Document", "Section");
  b.Star("Document", "Section", "", Action::CollectSet());
  b.Sequence("Section",
             {
                 b.Lit("<sec ["), b.NT("SecTitle"), b.Lit("]"),
                 b.NT("Prose"),
                 b.NT("Subsections"),
                 b.Lit("sec>"),
             },
             Action::Object("Section", {{"SecTitle", 1},
                                        {"Prose", 2},
                                        {"Subsections", 3}}));
  b.Sequence("Subsections",
             {b.Lit("{"), b.StarOf("Section", ""), b.Lit("}")},
             Action::CollectSet());
  b.Token("SecTitle", TokenKind::kUntil, {"]"});
  b.Token("Prose", TokenKind::kUntil, {"{"});
  return b.Build();
}

}  // namespace qof
