#ifndef QOF_DATAGEN_OUTLINE_GEN_H_
#define QOF_DATAGEN_OUTLINE_GEN_H_

#include <cstdint>
#include <string>

namespace qof {

/// Synthetic recursive document outlines, parseable by OutlineSchema().
/// The probe title is planted at controlled depths so closure queries
/// (s.*X.SecTitle) have known answers at every nesting level.
struct OutlineGenOptions {
  int num_top_sections = 20;
  uint32_t seed = 19;
  int max_depth = 4;
  int max_children = 3;
  int prose_words = 12;
  /// Probability that a section's title is the probe title.
  double probe_title_rate = 0.05;
  std::string probe_title = "Optimization";
};

std::string GenerateOutline(const OutlineGenOptions& options);

}  // namespace qof

#endif  // QOF_DATAGEN_OUTLINE_GEN_H_
