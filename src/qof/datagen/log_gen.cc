#include "qof/datagen/log_gen.h"

#include <random>

namespace qof {
namespace {

constexpr const char* kComponents[] = {"auth",    "storage", "network",
                                       "planner", "cache",   "api"};

constexpr const char* kInfoWords[] = {
    "request", "completed", "in",     "time",     "cache",  "hit",
    "for",     "key",       "opened", "connection", "to",   "peer",
    "flushed", "buffer",    "pages",  "scheduled", "job",   "done"};

constexpr const char* kErrorWords[] = {
    "connection", "refused",  "by",      "upstream", "timeout",
    "waiting",    "for",      "lock",    "disk",     "full",
    "while",      "writing",  "segment", "checksum", "mismatch"};

class Gen {
 public:
  explicit Gen(const LogGenOptions& options)
      : opt_(options), rng_(options.seed) {}

  std::string Run() {
    std::string out;
    out.reserve(static_cast<size_t>(opt_.num_entries) * 120);
    int64_t clock = 0;
    for (int i = 0; i < opt_.num_entries; ++i) {
      clock += Range(1, 30);
      EmitEntry(clock, &out);
    }
    return out;
  }

 private:
  template <size_t N>
  const char* Pick(const char* const (&pool)[N]) {
    return pool[std::uniform_int_distribution<size_t>(0, N - 1)(rng_)];
  }

  int Range(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  bool Chance(double p) { return std::bernoulli_distribution(p)(rng_); }

  void EmitEntry(int64_t clock, std::string* out) {
    bool error = Chance(opt_.error_rate);
    *out += "[1994-05-24T";
    int64_t secs = clock % 86400;
    auto two = [&](int64_t v) {
      if (v < 10) *out += "0";
      *out += std::to_string(v);
    };
    two(secs / 3600);
    *out += ":";
    two((secs / 60) % 60);
    *out += ":";
    two(secs % 60);
    *out += "] ";
    *out += error ? (Chance(0.3) ? "FATAL" : "ERROR")
                  : (Chance(0.2) ? "WARN" : "INFO");
    *out += " (";
    *out += Pick(kComponents);
    *out += ") sid=";
    *out += std::to_string(Range(1, opt_.num_sessions));
    *out += " : ";
    for (int i = 0; i < opt_.message_words; ++i) {
      if (i > 0) *out += " ";
      *out += error ? Pick(kErrorWords) : Pick(kInfoWords);
    }
    *out += " ;;\n";
  }

  const LogGenOptions& opt_;
  std::mt19937 rng_;
};

}  // namespace

std::string GenerateLog(const LogGenOptions& options) {
  return Gen(options).Run();
}

}  // namespace qof
