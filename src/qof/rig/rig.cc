#include "qof/rig/rig.h"

#include <algorithm>
#include <deque>

namespace qof {

Rig::NodeId Rig::AddNode(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  NodeId id = static_cast<NodeId>(names_.size());
  names_.emplace_back(name);
  adj_.emplace_back();
  ids_.emplace(std::string(name), id);
  return id;
}

Rig::NodeId Rig::FindNode(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidNode : it->second;
}

void Rig::AddEdge(std::string_view from, std::string_view to) {
  AddEdge(AddNode(from), AddNode(to));
}

void Rig::AddEdge(NodeId from, NodeId to) {
  std::vector<NodeId>& out = adj_[from];
  if (std::find(out.begin(), out.end(), to) == out.end()) {
    out.push_back(to);
  }
}

bool Rig::HasEdge(NodeId from, NodeId to) const {
  const std::vector<NodeId>& out = adj_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

bool Rig::HasEdge(std::string_view from, std::string_view to) const {
  NodeId f = FindNode(from);
  NodeId t = FindNode(to);
  if (f == kInvalidNode || t == kInvalidNode) return false;
  return HasEdge(f, t);
}

size_t Rig::num_edges() const {
  size_t n = 0;
  for (const auto& out : adj_) n += out.size();
  return n;
}

std::vector<bool> Rig::ReachSet(
    NodeId start, const std::function<bool(NodeId)>& interior_ok) const {
  std::vector<bool> reached(names_.size(), false);
  std::deque<NodeId> frontier;
  // Seed with out-neighbours: paths have length >= 1.
  for (NodeId m : adj_[start]) {
    if (!reached[m]) {
      reached[m] = true;
      frontier.push_back(m);
    }
  }
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop_front();
    // v is an interior node of any longer path through it.
    if (interior_ok && !interior_ok(v)) continue;
    for (NodeId m : adj_[v]) {
      if (!reached[m]) {
        reached[m] = true;
        frontier.push_back(m);
      }
    }
  }
  return reached;
}

bool Rig::Reachable(NodeId from, NodeId to) const {
  return ReachSet(from, nullptr)[to];
}

bool Rig::IsOnlyPath(NodeId i, NodeId j) const {
  if (!HasEdge(i, j)) return false;
  if (!EveryPathStartsWithEdge(i, j)) return false;
  // A cycle j ⇝ j appends to the edge, producing a second i ⇝ j path.
  return !Reachable(j, j);
}

bool Rig::EveryPathStartsWithEdge(NodeId i, NodeId j) const {
  if (!HasEdge(i, j)) return false;
  for (NodeId m : adj_[i]) {
    if (m == j) continue;
    if (m == i) {
      // A self-loop lets a path restart at i and then use any of i's
      // out-edges, but its first step is still (i,i), not (i,j) — so the
      // existence of the self-loop alone violates the condition as long as
      // it can be extended to reach j, which it can via the (i,j) edge.
      return false;
    }
    if (Reachable(m, j)) return false;
  }
  return true;
}

bool Rig::EveryPathThrough(NodeId i, NodeId k, NodeId j) const {
  if (j == i || j == k) return true;
  auto avoid_j = [j](NodeId v) { return v != j; };
  // Paths from i to k with interior avoiding j; endpoints are exempt from
  // the interior predicate, which is exactly what we need (i, k != j here).
  return !ReachSet(i, avoid_j)[k];
}

int Rig::PathMultiplicity(
    NodeId from, NodeId to,
    const std::function<bool(NodeId)>& interior_ok) const {
  // Work in the subgraph of nodes usable as interiors, plus the endpoints.
  // First find which nodes can reach `to` through allowed interiors; any
  // cycle inside that set that is reachable from `from` yields infinitely
  // many paths.
  const size_t n = names_.size();
  auto allowed_interior = [&](NodeId v) {
    return !interior_ok || interior_ok(v);
  };

  // can_reach[v]: a path v ⇝ to (length >= 1, allowed interiors) exists.
  std::vector<bool> can_reach(n, false);
  {
    // Reverse BFS from `to`.
    std::vector<std::vector<NodeId>> radj(n);
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      for (NodeId v : adj_[u]) radj[v].push_back(u);
    }
    std::deque<NodeId> frontier;
    for (NodeId u : radj[to]) {
      if (!can_reach[u]) {
        can_reach[u] = true;
        frontier.push_back(u);
      }
    }
    while (!frontier.empty()) {
      NodeId v = frontier.front();
      frontier.pop_front();
      if (!allowed_interior(v)) continue;  // v would be an interior node
      for (NodeId u : radj[v]) {
        if (!can_reach[u]) {
          can_reach[u] = true;
          frontier.push_back(u);
        }
      }
    }
  }
  if (!can_reach[from]) return 0;

  // DFS counting with saturation; colour 1 = on stack, 2 = done.
  // Only traverse nodes that still can reach `to`.
  std::vector<int> colour(n, 0);
  std::vector<int> memo(n, -1);
  bool cycle_found = false;

  // count(v) = number of paths v ⇝ to (length >= 1) where v acts as an
  // interior-eligible waypoint; from's out-edges are handled by the caller
  // loop below so that `from` itself is endpoint-exempt.
  std::function<int(NodeId)> count = [&](NodeId v) -> int {
    if (memo[v] >= 0) return memo[v];
    colour[v] = 1;
    int total = 0;
    for (NodeId u : adj_[v]) {
      if (u == to) {
        total = std::min(2, total + 1);
        // A cycle to ⇝ to (with `to` usable as interior) extends this path
        // into infinitely many.
        if (allowed_interior(to) && can_reach[to]) total = 2;
        continue;
      }
      if (!allowed_interior(u) || !can_reach[u]) continue;
      if (colour[u] == 1) {
        cycle_found = true;
        continue;
      }
      total = std::min(2, total + count(u));
    }
    colour[v] = 2;
    memo[v] = total;
    return total;
  };

  int total = 0;
  colour[from] = 1;
  for (NodeId u : adj_[from]) {
    if (u == to) {
      total = std::min(2, total + 1);
      if (allowed_interior(to) && can_reach[to]) total = 2;
      continue;
    }
    if (!allowed_interior(u) || !can_reach[u]) continue;
    if (colour[u] == 1) {
      cycle_found = true;
      continue;
    }
    total = std::min(2, total + count(u));
  }
  if (cycle_found && total > 0) return 2;
  return total;
}

std::string Rig::ToDot(std::string_view graph_name) const {
  std::string out = "digraph ";
  out += graph_name;
  out += " {\n";
  for (NodeId i = 0; i < static_cast<NodeId>(names_.size()); ++i) {
    out += "  \"" + names_[i] + "\";\n";
  }
  for (NodeId i = 0; i < static_cast<NodeId>(names_.size()); ++i) {
    for (NodeId j : adj_[i]) {
      out += "  \"" + names_[i] + "\" -> \"" + names_[j] + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace qof
