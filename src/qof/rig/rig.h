#ifndef QOF_RIG_RIG_H_
#define QOF_RIG_RIG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// A Region Inclusion Graph (paper §3.2, Def. 3.1): nodes are region names;
/// an edge (Ri, Rj) states that an Ri region *may directly include* an Rj
/// region. Cycles are allowed (self-nested regions). The optimizer's
/// rewrite conditions (Prop. 3.5) reduce to the reachability tests below;
/// each test documents its derivation from the proposition.
class Rig {
 public:
  using NodeId = int32_t;
  static constexpr NodeId kInvalidNode = -1;

  Rig() = default;

  /// Adds (or finds) a node by name.
  NodeId AddNode(std::string_view name);

  /// Node id for a name, or kInvalidNode.
  NodeId FindNode(std::string_view name) const;

  /// Adds the edge (from, to); nodes are created as needed. Idempotent.
  void AddEdge(std::string_view from, std::string_view to);
  void AddEdge(NodeId from, NodeId to);

  bool HasEdge(NodeId from, NodeId to) const;
  bool HasEdge(std::string_view from, std::string_view to) const;

  size_t num_nodes() const { return names_.size(); }
  size_t num_edges() const;
  const std::string& name(NodeId id) const { return names_[id]; }
  const std::vector<NodeId>& out_edges(NodeId id) const { return adj_[id]; }
  std::vector<std::string> NodeNames() const { return names_; }

  /// True when a path of length >= 1 exists from `from` to `to` (a node
  /// reaches itself only through a cycle; a region cannot properly contain
  /// itself otherwise).
  bool Reachable(NodeId from, NodeId to) const;

  /// Prop. 3.5(a), first disjunct: the edge (i,j) is the *only* path from
  /// i to j. Holds iff the edge exists, no other out-neighbour m of i
  /// reaches j, and j lies on no cycle (a cycle j ⇝ j would extend the
  /// edge into a second, longer path).
  bool IsOnlyPath(NodeId i, NodeId j) const;

  /// Prop. 3.5(a), second disjunct: every path from i to j starts with the
  /// edge (i,j). Holds iff the edge exists and no other out-neighbour m of
  /// i reaches j. (Unlike IsOnlyPath, cycles through j are permitted: such
  /// paths still start with the edge.)
  bool EveryPathStartsWithEdge(NodeId i, NodeId j) const;

  /// Prop. 3.5(b): every path from i to k passes through j. Holds iff
  /// deleting j disconnects i from k. Trivially true when j is i or k.
  bool EveryPathThrough(NodeId i, NodeId k, NodeId j) const;

  /// Number of distinct paths of length >= 1 from `from` to `to` whose
  /// *interior* nodes all satisfy `interior_ok`, saturated at 2:
  /// 0 = none, 1 = exactly one, 2 = more than one (including infinitely
  /// many via cycles). Used by the §6.3 exact-answer test, where an edge of
  /// a partial RIG must match a *unique* path through unindexed nodes.
  int PathMultiplicity(NodeId from, NodeId to,
                       const std::function<bool(NodeId)>& interior_ok) const;

  /// GraphViz rendering of the RIG (figure-reproduction drivers).
  std::string ToDot(std::string_view graph_name = "RIG") const;

 private:
  /// Nodes reachable from `start` by paths of length >= 1 whose interior
  /// nodes satisfy `interior_ok` (the endpoints are exempt).
  std::vector<bool> ReachSet(
      NodeId start, const std::function<bool(NodeId)>& interior_ok) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace qof

#endif  // QOF_RIG_RIG_H_
