#ifndef QOF_PARSE_VALUE_BUILDER_H_
#define QOF_PARSE_VALUE_BUILDER_H_

#include "qof/db/object_store.h"
#include "qof/db/value.h"
#include "qof/parse/parser.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// Evaluates a parse tree's annotations bottom-up, producing the database
/// image of the parsed word (paper §4.1). Leaf reads use Corpus::RawText:
/// the executing plan already charged the enclosing text to the
/// scanned-byte counter when it acquired it (the whole document for the
/// baseline, just the candidate region for two-phase plans).
///
/// kObject actions insert into `store` (required if any rule uses them)
/// and evaluate to a tagged Ref. Every value is tagged with its rule's
/// non-terminal name (or class name) for typed path navigation.
Result<Value> BuildValue(const StructuringSchema& schema,
                         const Corpus& corpus, const ParseNode& node,
                         ObjectStore* store);

/// Builds the value of `node` and, when the action is not already an
/// object, wraps it into a stored object of the node's symbol name.
/// Returns the object id. This is how view-symbol candidates become
/// queryable objects.
Result<ObjectId> BuildObject(const StructuringSchema& schema,
                             const Corpus& corpus, const ParseNode& node,
                             ObjectStore* store);

}  // namespace qof

#endif  // QOF_PARSE_VALUE_BUILDER_H_
