#ifndef QOF_PARSE_REGION_EXTRACTOR_H_
#define QOF_PARSE_REGION_EXTRACTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "qof/parse/parser.h"
#include "qof/region/region_index.h"

namespace qof {

/// Which parse-tree regions become region-index instances.
struct ExtractionFilter {
  /// Names to index. Empty means "every non-terminal except the root"
  /// (full indexing, §5). A subset gives partial indexing (§6).
  std::set<std::string> include;

  /// Contextual (selective) indexing, §7: when `within[N] = A`, regions of
  /// N are indexed only when some strict ancestor in the parse tree is an
  /// A region — e.g. index Name only inside Authors.
  std::map<std::string, std::string> within;

  static ExtractionFilter Full() { return {}; }
  static ExtractionFilter Partial(std::set<std::string> names) {
    return {std::move(names), {}};
  }
};

/// Walks a parse tree and appends each selected node's span to
/// `collected[name]`. This is the per-document step of index
/// construction; it registers nothing for absent names — use
/// RegisterIndexedNames/ExtractRegions for that. Spans are appended in
/// tree order, so collecting documents in corpus order keeps each name's
/// vector sorted by position.
void CollectRegions(const StructuringSchema& schema, const ParseNode& root,
                    const ExtractionFilter& filter,
                    std::map<std::string, std::vector<Region>>* collected);

/// Ensures `collected` has an entry (possibly empty) for every name the
/// filter selects, so later lookups distinguish "indexed but absent"
/// from "not indexed".
void RegisterIndexedNames(const StructuringSchema& schema,
                          const ExtractionFilter& filter,
                          std::map<std::string, std::vector<Region>>* collected);

/// Walks a parse tree and appends each selected node's span to the region
/// index under its non-terminal's name. Zero-length spans (empty matches)
/// are skipped — they carry no text and would only pollute direct
/// inclusion. Filtered-out names still get (possibly empty) instances so
/// lookups distinguish "indexed but absent" from "not indexed".
void ExtractRegions(const StructuringSchema& schema, const ParseNode& root,
                    const ExtractionFilter& filter, RegionIndex* out);

}  // namespace qof

#endif  // QOF_PARSE_REGION_EXTRACTOR_H_
