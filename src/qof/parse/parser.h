#ifndef QOF_PARSE_PARSER_H_
#define QOF_PARSE_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "qof/exec/exec_context.h"
#include "qof/region/region.h"
#include "qof/schema/structuring_schema.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// A node of the parse tree: the non-terminal, its byte span in corpus
/// space, and its non-terminal children in rule order. Literal matches are
/// part of the parent's span but produce no nodes — which is what makes a
/// parent's span strictly contain its children's whenever the rule has
/// delimiters, the property direct inclusion relies on.
struct ParseNode {
  SymbolId symbol = kInvalidSymbol;
  Region span;
  std::vector<std::unique_ptr<ParseNode>> children;
};

/// Deterministic top-down parser for structuring-schema grammars. This
/// plays the role of the paper's Yacc-generated parser [AJ74]: it turns
/// file text into a parse tree whose node spans become region-index
/// instances, and whose shape drives database-image construction.
class SchemaParser {
 public:
  /// `ctx` (optional, borrowed) makes parsing interruptible: the run
  /// polls it every few dozen rule applications, so a deadline or
  /// cancellation tripping mid-document unwinds promptly even when the
  /// corpus is one huge document. Governance errors bypass the parser's
  /// rollback/deepest-error machinery — they are not parse failures.
  explicit SchemaParser(const StructuringSchema* schema,
                        const ExecContext* ctx = nullptr)
      : schema_(schema), ctx_(ctx) {}

  /// Parses `text` as one derivation of `symbol`. Offsets in the returned
  /// tree are relative to `base` (pass the document's corpus offset).
  /// The whole text must be consumed up to trailing whitespace.
  Result<std::unique_ptr<ParseNode>> Parse(std::string_view text,
                                           TextPos base,
                                           SymbolId symbol) const;

  /// Convenience: parse with the schema's root symbol.
  Result<std::unique_ptr<ParseNode>> ParseDocument(std::string_view text,
                                                   TextPos base) const;

  /// Number of bytes consumed by the last successful Parse (before
  /// trailing whitespace). Useful for region re-parsing.
  const StructuringSchema& schema() const { return *schema_; }

 private:
  class Run;
  const StructuringSchema* schema_;
  const ExecContext* ctx_ = nullptr;
};

/// Renders a parse tree (symbols + spans), one node per line, indented —
/// the Figure 2 / Figure 3 reproduction format.
std::string ParseTreeToString(const StructuringSchema& schema,
                              const ParseNode& node);

}  // namespace qof

#endif  // QOF_PARSE_PARSER_H_
