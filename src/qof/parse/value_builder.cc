#include "qof/parse/value_builder.h"

#include <string>
#include <vector>

#include "qof/util/string_util.h"

namespace qof {
namespace {

Result<Value> Build(const StructuringSchema& schema, const Corpus& corpus,
                    const ParseNode& node, ObjectStore* store) {
  const Grammar& g = schema.grammar();
  const std::string& symbol_name = g.SymbolName(node.symbol);
  const Action& action = schema.ActionFor(node.symbol);

  auto child_value = [&](int k) -> Result<Value> {
    if (k < 1 || static_cast<size_t>(k) > node.children.size()) {
      return Status::OutOfRange("action $" + std::to_string(k) +
                                " exceeds children of " + symbol_name);
    }
    return Build(schema, corpus, *node.children[k - 1], store);
  };

  switch (action.kind) {
    case Action::Kind::kString: {
      // RawText, not ScanText: the span was already charged when the
      // executing plan acquired the enclosing text (whole document for
      // the baseline, candidate region for two-phase plans).
      std::string_view text = corpus.RawText(node.span.start,
                                             node.span.end);
      return Value::Str(std::string(TrimView(text)))
          .WithType(symbol_name);
    }
    case Action::Kind::kInt: {
      std::string_view text =
          TrimView(corpus.RawText(node.span.start, node.span.end));
      int64_t v = 0;
      bool any = false;
      bool neg = false;
      size_t i = 0;
      if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
        neg = text[0] == '-';
        i = 1;
      }
      for (; i < text.size(); ++i) {
        if (text[i] < '0' || text[i] > '9') {
          return Status::ParseError("non-numeric text for int action in " +
                                    symbol_name + ": \"" +
                                    std::string(text) + "\"");
        }
        v = v * 10 + (text[i] - '0');
        any = true;
      }
      if (!any) {
        return Status::ParseError("empty text for int action in " +
                                  symbol_name);
      }
      return Value::Int(neg ? -v : v).WithType(symbol_name);
    }
    case Action::Kind::kChild: {
      // "$$ := $k" passes the child's image through untouched — including
      // its type tag, so typed path steps still see the child's type.
      return child_value(action.child);
    }
    case Action::Kind::kCollectSet:
    case Action::Kind::kCollectList: {
      std::vector<Value> elements;
      elements.reserve(node.children.size());
      for (size_t i = 0; i < node.children.size(); ++i) {
        QOF_ASSIGN_OR_RETURN(Value v,
                             child_value(static_cast<int>(i + 1)));
        elements.push_back(std::move(v));
      }
      Value v = action.kind == Action::Kind::kCollectSet
                    ? Value::MakeSet(std::move(elements))
                    : Value::MakeList(std::move(elements));
      return v.WithType(symbol_name);
    }
    case Action::Kind::kTuple:
    case Action::Kind::kObject: {
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(action.fields.size());
      for (const auto& [attr, k] : action.fields) {
        QOF_ASSIGN_OR_RETURN(Value v, child_value(k));
        fields.emplace_back(attr, std::move(v));
      }
      if (action.kind == Action::Kind::kTuple) {
        return Value::MakeTuple(std::move(fields)).WithType(symbol_name);
      }
      if (store == nullptr) {
        return Status::InvalidArgument(
            "object action requires an object store (rule " + symbol_name +
            ")");
      }
      Value state = Value::MakeTuple(std::move(fields))
                        .WithType(action.class_name);
      ObjectId id = store->Insert(action.class_name, std::move(state));
      return Value::Ref(id).WithType(action.class_name);
    }
  }
  return Status::Internal("unhandled action kind");
}

}  // namespace

Result<Value> BuildValue(const StructuringSchema& schema,
                         const Corpus& corpus, const ParseNode& node,
                         ObjectStore* store) {
  return Build(schema, corpus, node, store);
}

Result<ObjectId> BuildObject(const StructuringSchema& schema,
                             const Corpus& corpus, const ParseNode& node,
                             ObjectStore* store) {
  QOF_ASSIGN_OR_RETURN(Value v, Build(schema, corpus, node, store));
  if (v.kind() == Value::Kind::kRef) return v.ref_id();
  const std::string& name = schema.grammar().SymbolName(node.symbol);
  return store->Insert(name, v);
}

}  // namespace qof
