#include "qof/parse/region_extractor.h"

#include <vector>

namespace qof {
namespace {

void Walk(const StructuringSchema& schema, const ParseNode& node,
          const ExtractionFilter& filter,
          std::vector<SymbolId>* ancestors,
          std::map<std::string, std::vector<Region>>* collected) {
  const Grammar& g = schema.grammar();
  const std::string& name = g.SymbolName(node.symbol);
  bool included;
  if (filter.include.empty()) {
    included = node.symbol != schema.root();
  } else {
    included = filter.include.count(name) > 0;
  }
  if (included) {
    auto within = filter.within.find(name);
    if (within != filter.within.end()) {
      SymbolId required = g.FindSymbol(within->second);
      bool found = false;
      for (SymbolId a : *ancestors) {
        if (a == required) {
          found = true;
          break;
        }
      }
      included = found;
    }
  }
  if (included && node.span.length() > 0) {
    (*collected)[name].push_back(node.span);
  }
  ancestors->push_back(node.symbol);
  for (const auto& child : node.children) {
    Walk(schema, *child, filter, ancestors, collected);
  }
  ancestors->pop_back();
}

}  // namespace

void CollectRegions(const StructuringSchema& schema, const ParseNode& root,
                    const ExtractionFilter& filter,
                    std::map<std::string, std::vector<Region>>* collected) {
  std::vector<SymbolId> ancestors;
  Walk(schema, root, filter, &ancestors, collected);
}

void RegisterIndexedNames(
    const StructuringSchema& schema, const ExtractionFilter& filter,
    std::map<std::string, std::vector<Region>>* collected) {
  // Register every selected name, even when no region matched, so that
  // later lookups see an empty instance rather than NotFound.
  if (filter.include.empty()) {
    for (const std::string& name : schema.IndexableNames()) {
      if (collected->find(name) == collected->end()) {
        (*collected)[name] = {};
      }
    }
  } else {
    for (const std::string& name : filter.include) {
      if (collected->find(name) == collected->end()) {
        (*collected)[name] = {};
      }
    }
  }
}

void ExtractRegions(const StructuringSchema& schema, const ParseNode& root,
                    const ExtractionFilter& filter, RegionIndex* out) {
  std::map<std::string, std::vector<Region>> collected;
  CollectRegions(schema, root, filter, &collected);
  RegisterIndexedNames(schema, filter, &collected);
  for (auto& [name, regions] : collected) {
    out->Add(name, RegionSet::FromUnsorted(std::move(regions)));
  }
}

}  // namespace qof
