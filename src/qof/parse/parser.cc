#include "qof/parse/parser.h"

#include <algorithm>
#include <string>

#include "qof/exec/fault_injector.h"

namespace qof {
namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool IsWordCh(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '\'' || c == '-' ||
         c == '.';
}

// Core characters — the span of a word token is trimmed to these so that
// parsed leaf regions line up with what the word index records.
bool IsCoreCh(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

class SchemaParser::Run {
 public:
  Run(const StructuringSchema& schema, std::string_view text, TextPos base,
      const ExecContext* ctx)
      : schema_(schema),
        g_(schema.grammar()),
        text_(text),
        base_(base),
        ctx_(ctx) {}

  Result<std::unique_ptr<ParseNode>> ParseAll(SymbolId symbol) {
    auto node = ParseSymbol(symbol);
    // Governance interrupts describe the caller's limits, not this text:
    // pass them through without line/column decoration.
    if (!node.ok() && IsGovernanceError(node.status())) {
      return node.status();
    }
    if (!node.ok()) return RenderDeepestError(node.status());
    SkipWs();
    if (pos_ != text_.size()) {
      // A repetition may have rolled back a partial item; the deepest
      // recorded error explains why the input could not be consumed.
      if (deepest_error_pos_ >= pos_ && !deepest_error_msg_.empty()) {
        return RenderDeepestError(
            Status::ParseError("trailing input after " +
                               g_.SymbolName(symbol)));
      }
      return RenderDeepestError(
          Error("trailing input after " + g_.SymbolName(symbol)));
    }
    return std::move(*node);
  }

 private:
  // Failures are control flow (star rollback), so Error() must be cheap:
  // it records the message and offset; line/column rendering happens once
  // when the overall parse fails (RenderDeepestError).
  Status Error(std::string msg) const {
    if (pos_ >= deepest_error_pos_) {
      deepest_error_pos_ = pos_;
      deepest_error_msg_ = msg;
    }
    return Status::ParseError(std::move(msg));
  }

  // Renders the deepest recorded failure with line:column and context.
  Status RenderDeepestError(const Status& fallback) const {
    if (deepest_error_msg_.empty()) return fallback;
    size_t pos = std::min(deepest_error_pos_, text_.size());
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos; ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::string context(
        text_.substr(pos, std::min<size_t>(24, text_.size() - pos)));
    return Status::ParseError(deepest_error_msg_ + " at line " +
                              std::to_string(line) + ":" +
                              std::to_string(col) + " near \"" + context +
                              "\"");
  }

  void SkipWs() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  }

  Status MatchLiteral(const std::string& lit) {
    SkipWs();
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return Status::OK();
    }
    return Error("expected \"" + lit + "\"");
  }

  // Earliest occurrence of any stop string at/after pos_, or npos.
  size_t FindStop(const std::vector<std::string>& stops) const {
    size_t best = std::string_view::npos;
    for (const std::string& stop : stops) {
      size_t found = text_.find(stop, pos_);
      best = std::min(best, found);
    }
    return best;
  }

  Result<std::unique_ptr<ParseNode>> ParseSymbol(SymbolId symbol) {
    // Strided governance checkpoint: cheap enough to live on the parse
    // hot path, frequent enough that a deadline trips within fractions
    // of a millisecond even inside a single monster document.
    if (ctx_ != nullptr && (++ticks_ & 63u) == 0) {
      QOF_RETURN_IF_ERROR(ctx_->Check());
    }
    if (!g_.HasRule(symbol)) {
      return Status::Internal("no rule for symbol " +
                              g_.SymbolName(symbol));
    }
    const RuleBody& body = g_.RuleFor(symbol);
    if (const auto* seq = std::get_if<SequenceBody>(&body)) {
      return ParseSequence(symbol, *seq);
    }
    if (const auto* star = std::get_if<StarBody>(&body)) {
      auto node = std::make_unique<ParseNode>();
      node->symbol = symbol;
      SkipWs();
      uint64_t span_start = base_ + pos_;
      uint64_t span_end = span_start;
      bool any = false;
      QOF_RETURN_IF_ERROR(ParseItems(star->item, star->separator,
                                     star->min_count, node.get(), &any,
                                     &span_start, &span_end));
      node->span = {span_start, span_end};
      return node;
    }
    return ParseToken(symbol, std::get<TokenBody>(body));
  }

  // Parses item (sep item)*, appending children to `node`. On success the
  // span of the items (if any) is reflected into *first_start / *last_end;
  // with zero items both are left untouched and *any stays false.
  Status ParseItems(SymbolId item, const std::string& separator,
                    int min_count, ParseNode* node, bool* any,
                    uint64_t* first_start, uint64_t* last_end) {
    size_t before_count = node->children.size();
    size_t mark = pos_;
    auto first = ParseSymbol(item);
    // A first item that matched nothing and consumed nothing (an empty
    // until-token in front of its stop) means the repetition is absent.
    if (first.ok() && (*first)->span.length() == 0 && pos_ == mark) {
      first = Status::ParseError("empty item");
    }
    if (!first.ok()) {
      // Star rollback treats failure as "repetition absent" — but a
      // governance interrupt must abort the whole parse, not roll back.
      if (IsGovernanceError(first.status())) return first.status();
      pos_ = mark;
      if (min_count > 0) {
        return Error("expected at least " + std::to_string(min_count) +
                     " items of " + g_.SymbolName(item));
      }
      return Status::OK();
    }
    *any = true;
    *first_start = (*first)->span.start;
    *last_end = std::max(*last_end, (*first)->span.end);
    node->children.push_back(std::move(*first));

    while (true) {
      size_t before = pos_;
      if (!separator.empty()) {
        if (!MatchLiteral(separator).ok()) {
          pos_ = before;
          break;
        }
        // After a separator the next item must parse.
        auto item_node = ParseSymbol(item);
        if (!item_node.ok()) return item_node.status();
        *last_end = std::max(*last_end, (*item_node)->span.end);
        node->children.push_back(std::move(*item_node));
      } else {
        auto item_node = ParseSymbol(item);
        if (!item_node.ok()) {
          if (IsGovernanceError(item_node.status())) {
            return item_node.status();
          }
          pos_ = before;
          break;
        }
        *last_end = std::max(*last_end, (*item_node)->span.end);
        node->children.push_back(std::move(*item_node));
      }
      if (pos_ == before) break;  // no progress: stop rather than loop
    }
    size_t got = node->children.size() - before_count;
    if (static_cast<int>(got) < min_count) {
      return Error("expected at least " + std::to_string(min_count) +
                   " items of " + g_.SymbolName(item));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<ParseNode>> ParseSequence(
      SymbolId symbol, const SequenceBody& seq) {
    auto node = std::make_unique<ParseNode>();
    node->symbol = symbol;
    uint64_t span_start = 0;
    uint64_t span_end = 0;
    bool first = true;
    for (const GrammarElement& e : seq.elements) {
      switch (e.kind) {
        case GrammarElement::Kind::kLiteral: {
          SkipWs();
          uint64_t lit_start = base_ + pos_;
          QOF_RETURN_IF_ERROR(MatchLiteral(e.literal));
          if (first) {
            span_start = lit_start;
            first = false;
          }
          span_end = base_ + pos_;
          break;
        }
        case GrammarElement::Kind::kNonTerminal: {
          QOF_ASSIGN_OR_RETURN(std::unique_ptr<ParseNode> child,
                               ParseSymbol(e.symbol));
          if (first && child->span.length() > 0) {
            span_start = child->span.start;
            first = false;
          }
          // Zero-length child spans keep the previous end.
          span_end = std::max(span_end, child->span.end);
          node->children.push_back(std::move(child));
          break;
        }
        case GrammarElement::Kind::kStar: {
          bool any = false;
          uint64_t items_start = 0;
          uint64_t items_end = span_end;
          QOF_RETURN_IF_ERROR(ParseItems(e.symbol, e.literal, e.min_count,
                                         node.get(), &any, &items_start,
                                         &items_end));
          if (any) {
            if (first) {
              span_start = items_start;
              first = false;
            }
            span_end = std::max(span_end, items_end);
          }
          break;
        }
      }
    }
    node->span = {span_start, span_end};
    return node;
  }

  Result<std::unique_ptr<ParseNode>> ParseToken(SymbolId symbol,
                                                const TokenBody& tok) {
    auto node = std::make_unique<ParseNode>();
    node->symbol = symbol;
    switch (tok.kind) {
      case TokenKind::kWord: {
        SkipWs();
        size_t b = pos_;
        while (pos_ < text_.size() && IsWordCh(text_[pos_])) ++pos_;
        if (b == pos_) {
          return Error("expected word for " + g_.SymbolName(symbol));
        }
        // Trim the span (not the consumption) to core characters so the
        // region matches the word index's token.
        size_t tb = b;
        size_t te = pos_;
        while (tb < te && !IsCoreCh(text_[tb])) ++tb;
        while (te > tb && !IsCoreCh(text_[te - 1])) --te;
        if (tb == te) {
          return Error("word has no indexable core for " +
                       g_.SymbolName(symbol));
        }
        node->span = {base_ + tb, base_ + te};
        return node;
      }
      case TokenKind::kNumber: {
        SkipWs();
        size_t b = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
          ++pos_;
        }
        if (b == pos_) {
          return Error("expected number for " + g_.SymbolName(symbol));
        }
        node->span = {base_ + b, base_ + pos_};
        return node;
      }
      case TokenKind::kUntil: {
        SkipWs();
        size_t stop = FindStop(tok.stops);
        if (stop == std::string_view::npos) {
          return Error("no stop found for " + g_.SymbolName(symbol));
        }
        size_t te = stop;
        while (te > pos_ && IsSpace(text_[te - 1])) --te;
        node->span = {base_ + pos_, base_ + te};
        pos_ = stop;
        return node;
      }
      case TokenKind::kUntilLastWord: {
        SkipWs();
        size_t stop = FindStop(tok.stops);
        if (stop == std::string_view::npos) {
          return Error("no stop found for " + g_.SymbolName(symbol));
        }
        size_t ce = stop;
        while (ce > pos_ && IsSpace(text_[ce - 1])) --ce;
        // Find the whitespace run separating the last word.
        size_t lw = ce;
        while (lw > pos_ && !IsSpace(text_[lw - 1])) --lw;
        if (lw == pos_) {
          // Single word: match empty, leaving the word for what follows.
          node->span = {base_ + pos_, base_ + pos_};
          return node;
        }
        size_t te = lw;
        while (te > pos_ && IsSpace(text_[te - 1])) --te;
        node->span = {base_ + pos_, base_ + te};
        pos_ = lw;
        return node;
      }
    }
    return Status::Internal("unhandled token kind");
  }

  const StructuringSchema& schema_;
  const Grammar& g_;
  std::string_view text_;
  TextPos base_;
  const ExecContext* ctx_ = nullptr;
  uint64_t ticks_ = 0;
  size_t pos_ = 0;
  // Deepest failure seen, surfaced when a rollback hides the real cause.
  mutable size_t deepest_error_pos_ = 0;
  mutable std::string deepest_error_msg_;
};

Result<std::unique_ptr<ParseNode>> SchemaParser::Parse(
    std::string_view text, TextPos base, SymbolId symbol) const {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kParseDocument));
  Run run(*schema_, text, base, ctx_);
  return run.ParseAll(symbol);
}

Result<std::unique_ptr<ParseNode>> SchemaParser::ParseDocument(
    std::string_view text, TextPos base) const {
  return Parse(text, base, schema_->root());
}

namespace {

void RenderTree(const StructuringSchema& schema, const ParseNode& node,
                int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(schema.grammar().SymbolName(node.symbol));
  out->append(" ");
  out->append(node.span.ToString());
  out->append("\n");
  for (const auto& child : node.children) {
    RenderTree(schema, *child, depth + 1, out);
  }
}

}  // namespace

std::string ParseTreeToString(const StructuringSchema& schema,
                              const ParseNode& node) {
  std::string out;
  RenderTree(schema, node, 0, &out);
  return out;
}

}  // namespace qof
