#ifndef QOF_IR_IR_H_
#define QOF_IR_IR_H_

#include <string>
#include <vector>

#include "qof/algebra/expr.h"
#include "qof/algebra/select_kernels.h"
#include "qof/util/result.h"

namespace qof {

/// Operators of the dataflow query IR. The tree algebra's binary ∪/∩/−
/// flatten into n-ary nodes during lowering; everything else maps 1:1,
/// plus three engineering ops: kFusedChain (a pipeline of per-member
/// stages the fusion pass created), kProject (the engine's index-only
/// projection root) and kJoin (the engine's index-assisted join root).
enum class IrOp {
  kLoad,        // region-index instance by name
  kUnion,       // n-ary ∪ (left-fold of the binary op)
  kIntersect,   // n-ary ∩
  kDifference,  // n-ary −: inputs[0] minus each of inputs[1..]
  kInnermost,   // ι
  kOutermost,   // ω
  kIncluding,           // ⊃   inputs = {left, right}
  kIncluded,            // ⊂
  kDirectlyIncluding,   // ⊃d
  kDirectlyIncluded,    // ⊂d
  kSelect,      // one SelectSpec over inputs[0]
  kFusedChain,  // per-member stage pipeline over inputs[0]
  kProject,     // IncludedIn(inputs[0] = attrs, inputs[1] = candidates)
  kJoin,        // index join over {candidates, lhs attrs, rhs attrs}
};

const char* IrOpName(IrOp op);

/// One stage of a fused chain. Every fusable stage is a per-member
/// predicate on its input set (selection, or containment against a fixed
/// right operand), which is what makes batched execution sound: a member
/// survives the stage independently of the other members.
struct IrStage {
  enum class Kind { kSelect, kIncluding, kIncluded };
  Kind kind = Kind::kSelect;
  SelectSpec select;  // kSelect only
  int rhs = -1;       // kIncluding/kIncluded: node id of the right operand
};

/// One IR node. `inputs` refer to lower node ids (the program is kept in
/// topological order); `key` is the node's canonical serialization —
/// identical to RegionExpr::ToString() of the equivalent expression tree,
/// so IR results share EvalCache entries with the tree evaluator.
struct IrNode {
  IrOp op = IrOp::kLoad;
  std::string name;    // kLoad
  SelectSpec select;   // kSelect
  std::vector<int> inputs;
  std::vector<IrStage> stages;  // kFusedChain
  std::string key;
  // Cost annotations (CostEstimator formulas over the shared CostModel
  // table); negative until AnnotateIrCosts runs.
  double est_cardinality = -1;
  double est_work = -1;
};

/// A multi-root dataflow program: all of a compiled plan's expression
/// legs lowered together, so subexpression sharing crosses legs. Root
/// ids are -1 when the plan has no such leg.
struct IrProgram {
  std::vector<IrNode> nodes;  // topological: every input id < node id
  int candidates = -1;
  int projection = -1;  // the raw attribute expression root
  int project = -1;     // kProject over {projection, candidates}
  int join_lhs = -1;
  int join_rhs = -1;
  int join = -1;  // kJoin over {candidates, join_lhs, join_rhs}

  /// Deterministic textual form (goldens, --explain): one `%id = op ...`
  /// line per node plus a roots line; cost annotations appended when
  /// present.
  std::string Dump() const;
};

/// Canonical serialization of one node given its inputs' keys (which must
/// be current). Exposed for passes that rewrite nodes incrementally.
std::string ComputeNodeKey(const IrProgram& program, const IrNode& node);

/// The composed serialization after each stage of a kFusedChain node (the
/// last entry equals the node's key). Used for per-stage error messages.
std::vector<std::string> FusedStageKeys(const IrProgram& program,
                                        const IrNode& node);

/// Recomputes every node's canonical key bottom-up. Passes that rewire
/// nodes call this before comparing or caching keys.
void RecomputeKeys(IrProgram* program);

/// Rebuilds the program in deterministic topological order (DFS from the
/// roots), dropping nodes no root reaches. Passes run this afterwards so
/// invariants (inputs < id, no dead nodes) hold for the next pass.
void Canonicalize(IrProgram* program);

/// Lowers a compiled plan's expression legs into one flat program. Any
/// leg pointer may be null. No optimization happens here — every
/// occurrence of a subexpression becomes its own node (the CSE pass
/// merges them).
IrProgram LowerToIr(const RegionExpr* candidates,
                    const RegionExpr* projection,
                    const RegionExpr* join_lhs, const RegionExpr* join_rhs);

}  // namespace qof

#endif  // QOF_IR_IR_H_
