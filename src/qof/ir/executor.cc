#include "qof/ir/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "qof/algebra/select_kernels.h"
#include "qof/exec/fault_injector.h"
#include "qof/region/cost_model.h"
#include "qof/region/region_cursor.h"
#include "qof/text/tokenizer.h"

namespace qof {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

void Record(EvalStats* stats, const RegionSet& produced) {
  if (stats == nullptr) return;
  stats->regions_produced += produced.size();
  stats->max_intermediate =
      std::max<uint64_t>(stats->max_intermediate, produced.size());
}

bool Cacheable(IrOp op) {
  // kLoad borrows the index instance (a cache entry would duplicate it);
  // kProject/kJoin are engine rungs the tree engine never caches either.
  return op != IrOp::kLoad && op != IrOp::kProject && op != IrOp::kJoin;
}

}  // namespace

IrExecutor::IrExecutor(const IrProgram* program, const RegionIndex* regions,
                       const WordIndex* words, const Corpus* corpus,
                       const ExecContext* ctx, EvalCache* cache,
                       CacheEpoch epoch)
    : program_(program),
      regions_(regions),
      words_(words),
      corpus_(corpus),
      ctx_(ctx),
      cache_(cache),
      epoch_(epoch),
      slots_(program->nodes.size()) {}

Status IrExecutor::Charge(EvalStats* stats,
                          const RegionSet& produced) const {
  Record(stats, produced);
  if (ctx_ != nullptr) return ctx_->ChargeRegions(produced.size());
  return Status::OK();
}

Result<RegionSet> IrExecutor::EvaluateRoot(int root, EvalStats* stats) {
  if (regions_ == nullptr) {
    return Status::InvalidArgument("IR executor has no region index");
  }
  if (root < 0 || root >= static_cast<int>(program_->nodes.size())) {
    return Status::InvalidArgument("IR program has no such root");
  }
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kAlgebraEval));
  QOF_ASSIGN_OR_RETURN(const RegionSet* result, EvalNode(root, stats));
  // Slots keep borrowing/sharing internally; only this API boundary
  // copies — same contract as ExprEvaluator::Evaluate.
  return *result;
}

Result<const RegionSet*> IrExecutor::EvalNode(int id, EvalStats* stats) {
  Slot& slot = slots_[id];
  if (slot.done) return &slot.set();
  const IrNode& node = program_->nodes[id];

  // One governance checkpoint per operator, exactly like the tree
  // evaluator (kProject/kJoin are engine rungs the tree never polls for).
  if (ctx_ != nullptr && node.op != IrOp::kProject &&
      node.op != IrOp::kJoin) {
    QOF_RETURN_IF_ERROR(ctx_->Check());
  }

  if (node.op == IrOp::kLoad) {
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, regions_->Get(node.name));
    IrOpTiming& t = timings_[IrOpName(node.op)];
    ++t.count;
    slot.borrowed = set;
    slot.done = true;
    return &slot.set();
  }

  if (cache_ != nullptr && Cacheable(node.op)) {
    if (auto hit = cache_->Lookup(node.key, epoch_)) {
      if (stats != nullptr) ++stats->cache_hits;
      // A hit charges what computing the node would have charged for its
      // own result — governance stays cache-independent.
      QOF_RETURN_IF_ERROR(Charge(stats, *hit));
      slot.shared = std::move(hit);
      slot.done = true;
      return &slot.set();
    }
    if (stats != nullptr) ++stats->cache_misses;
    QOF_ASSIGN_OR_RETURN(Slot computed, ComputeNode(id, stats));
    auto shared =
        std::make_shared<const RegionSet>(std::move(computed.owned));
    cache_->Insert(node.key, epoch_, shared);
    slot.shared = std::move(shared);
    slot.done = true;
    return &slot.set();
  }

  QOF_ASSIGN_OR_RETURN(slot, ComputeNode(id, stats));
  slot.done = true;
  return &slot.set();
}

Result<std::optional<IrExecutor::Slot>> IrExecutor::TryCursorPath(
    const IrNode& node, EvalStats* stats) {
  if (!regions_->disk_resident()) return std::optional<Slot>();
  const bool eligible =
      node.op == IrOp::kSelect || node.op == IrOp::kIncluding ||
      node.op == IrOp::kIncluded || node.op == IrOp::kProject;
  if (!eligible) return std::optional<Slot>();
  // The bulk input must be a load whose slot nothing has forced yet —
  // once an instance is resident, probing it directly is cheaper.
  const int load_id = node.inputs[0];
  if (program_->nodes[load_id].op != IrOp::kLoad ||
      slots_[load_id].done) {
    return std::optional<Slot>();
  }

  if (node.op == IrOp::kSelect) {
    // Only the single-token exact-match form: its posting-driven kernel
    // probes the child for exact spans {p, p+len}, which IntersectCursor
    // reproduces block-skippingly. Everything else (phrases, prefixes,
    // containment) falls back to the materializing kernel.
    if (node.select.kind != ExprKind::kSelectMatches || words_ == nullptr) {
      return std::optional<Slot>();
    }
    auto tokens = Tokenizer::Tokenize(node.select.word);
    if (tokens.size() != 1) return std::optional<Slot>();
    QOF_ASSIGN_OR_RETURN(
        std::unique_ptr<RegionCursor> cursor,
        regions_->OpenCursor(program_->nodes[load_id].name));
    if (cursor == nullptr) return std::optional<Slot>();
    if (words_->disk_resident()) {
      QOF_RETURN_IF_ERROR(words_->EnsureLoaded(tokens[0].text));
    }
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(word);
    const uint64_t len = word.size();
    std::vector<Region> spans;
    spans.reserve(postings.size());
    for (TextPos p : postings) spans.push_back({p, p + len});
    RegionSet probe = RegionSet::FromSortedUnique(std::move(spans));

    if (stats != nullptr) ++stats->select_ops;
    IrOpTiming& timing = timings_[IrOpName(node.op)];
    ++timing.count;
    const Clock::time_point start = Clock::now();
    Slot out;
    QOF_ASSIGN_OR_RETURN(out.owned, IntersectCursor(probe, *cursor));
    QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
    timing.micros += MicrosSince(start);
    return std::optional<Slot>(std::move(out));
  }

  // kIncluding/kIncluded/kProject: the other operand is the (typically
  // small) probe side; evaluate it first — it may itself take a cursor
  // path — then stream the loaded side. kProject keeps its engine-rung
  // contract: no stats, no charge.
  QOF_ASSIGN_OR_RETURN(const RegionSet* probe,
                       EvalNode(node.inputs[1], stats));
  QOF_ASSIGN_OR_RETURN(
      std::unique_ptr<RegionCursor> cursor,
      regions_->OpenCursor(program_->nodes[load_id].name));
  if (cursor == nullptr) return std::optional<Slot>();
  if (stats != nullptr && node.op != IrOp::kProject) {
    ++stats->simple_incl_ops;
  }
  IrOpTiming& timing = timings_[IrOpName(node.op)];
  ++timing.count;
  const Clock::time_point start = Clock::now();
  Slot out;
  QOF_ASSIGN_OR_RETURN(out.owned,
                       node.op == IrOp::kIncluding
                           ? IncludingCursor(*probe, *cursor)
                           : IncludedInCursor(*probe, *cursor));
  if (node.op != IrOp::kProject) {
    QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
  }
  timing.micros += MicrosSince(start);
  return std::optional<Slot>(std::move(out));
}

Result<IrExecutor::Slot> IrExecutor::ComputeNode(int id, EvalStats* stats) {
  const IrNode& node = program_->nodes[id];
  {
    QOF_ASSIGN_OR_RETURN(std::optional<Slot> streamed,
                         TryCursorPath(node, stats));
    if (streamed.has_value()) return std::move(*streamed);
  }
  // Inputs are evaluated (and governed) before the operator's own work,
  // which alone counts toward the per-operator timings.
  std::vector<const RegionSet*> inputs;
  inputs.reserve(node.inputs.size());
  for (int input : node.inputs) {
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, EvalNode(input, stats));
    inputs.push_back(set);
  }

  if (node.op == IrOp::kFusedChain) return ComputeFused(node, stats);

  IrOpTiming& timing = timings_[IrOpName(node.op)];
  ++timing.count;
  const Clock::time_point start = Clock::now();
  Slot out;
  switch (node.op) {
    case IrOp::kUnion:
    case IrOp::kIntersect:
    case IrOp::kDifference: {
      // Left-fold of the binary kernel; every intermediate is charged,
      // so governance matches the binary tree the node replaced.
      for (size_t k = 1; k < inputs.size(); ++k) {
        const RegionSet& acc = k == 1 ? *inputs[0] : out.owned;
        if (stats != nullptr) ++stats->set_ops;
        out.owned = node.op == IrOp::kUnion        ? Union(acc, *inputs[k])
                    : node.op == IrOp::kIntersect  ? Intersect(acc, *inputs[k])
                                                   : Difference(acc, *inputs[k]);
        QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      }
      break;
    }
    case IrOp::kInnermost:
    case IrOp::kOutermost:
      if (stats != nullptr) ++stats->nest_ops;
      out.owned = node.op == IrOp::kInnermost ? Innermost(*inputs[0])
                                              : Outermost(*inputs[0]);
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kSelect: {
      if (stats != nullptr) ++stats->select_ops;
      uint64_t scanned = 0;
      QOF_ASSIGN_OR_RETURN(
          std::vector<Region> members,
          RunSelectKernel(node.select, *inputs[0], words_, corpus_,
                          &scanned, node.key));
      if (stats != nullptr) stats->bytes_scanned += scanned;
      out.owned = RegionSet::FromSortedUnique(std::move(members));
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    }
    case IrOp::kIncluding:
    case IrOp::kIncluded:
      if (stats != nullptr) ++stats->simple_incl_ops;
      out.owned = node.op == IrOp::kIncluding
                      ? Including(*inputs[0], *inputs[1])
                      : IncludedIn(*inputs[0], *inputs[1]);
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kDirectlyIncluding:
    case IrOp::kDirectlyIncluded:
      if (stats != nullptr) ++stats->direct_incl_ops;
      // Disk-backed indexes materialize every instance for the universe;
      // surface I/O errors before the infallible Universe() call.
      QOF_RETURN_IF_ERROR(regions_->EnsureResident());
      out.owned = node.op == IrOp::kDirectlyIncluding
                      ? DirectlyIncluding(*inputs[0], *inputs[1],
                                          regions_->Universe())
                      : DirectlyIncluded(*inputs[0], *inputs[1],
                                         regions_->Universe());
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kProject:
      // The engine's index-only projection rung: attrs within candidates,
      // uncharged — identical to the tree engine's post-evaluation step.
      out.owned = IncludedIn(*inputs[0], *inputs[1]);
      break;
    case IrOp::kJoin: {
      if (!join_fn_) {
        return Status::Internal("IR executor has no join callback");
      }
      QOF_ASSIGN_OR_RETURN(
          std::vector<Region> joined,
          join_fn_(*inputs[0], *inputs[1], *inputs[2]));
      out.owned = RegionSet::FromUnsorted(std::move(joined));
      break;
    }
    case IrOp::kLoad:
    case IrOp::kFusedChain:
      return Status::Internal("unreachable IR op in ComputeNode");
  }
  timing.micros += MicrosSince(start);
  return out;
}

Result<IrExecutor::Slot> IrExecutor::ComputeFused(const IrNode& node,
                                                  EvalStats* stats) {
  const RegionSet& source = slots_[node.inputs[0]].set();
  const std::vector<std::string> stage_keys =
      FusedStageKeys(*program_, node);
  // Each stage is one logical operator however many batches run it.
  if (stats != nullptr) {
    for (const IrStage& stage : node.stages) {
      if (stage.kind == IrStage::Kind::kSelect) {
        ++stats->select_ops;
      } else {
        ++stats->simple_incl_ops;
      }
    }
  }
  IrOpTiming& timing = timings_[IrOpName(node.op)];
  ++timing.count;
  const Clock::time_point start = Clock::now();

  std::vector<Region> out;
  const size_t batch_size = CostModel::kFusedBatch;
  const std::vector<Region>& members = source.regions();
  // An empty source still runs one (empty) batch so stage validation
  // errors (bad selection parameters) surface exactly as unfused.
  size_t begin = 0;
  do {
    if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
    const size_t end = std::min(members.size(), begin + batch_size);
    RegionSet current = RegionSet::FromSortedUnique(
        std::vector<Region>(members.begin() + begin, members.begin() + end));
    for (size_t j = 0; j < node.stages.size(); ++j) {
      const IrStage& stage = node.stages[j];
      switch (stage.kind) {
        case IrStage::Kind::kSelect: {
          uint64_t scanned = 0;
          QOF_ASSIGN_OR_RETURN(
              std::vector<Region> kept,
              RunSelectKernel(stage.select, current, words_, corpus_,
                              &scanned, stage_keys[j]));
          if (stats != nullptr) stats->bytes_scanned += scanned;
          current = RegionSet::FromSortedUnique(std::move(kept));
          break;
        }
        case IrStage::Kind::kIncluding:
          current = Including(current, slots_[stage.rhs].set());
          break;
        case IrStage::Kind::kIncluded:
          current = IncludedIn(current, slots_[stage.rhs].set());
          break;
      }
      // Per stage per batch; summed over batches this equals exactly
      // what the unfused chain would have charged per stage.
      QOF_RETURN_IF_ERROR(Charge(stats, current));
    }
    out.insert(out.end(), current.regions().begin(),
               current.regions().end());
    begin = end;
  } while (begin < members.size());

  Slot result;
  // Every stage keeps a canonically-ordered subset of its batch and the
  // batches partition the source in canonical order, so the
  // concatenation is already sorted and unique. No final re-charge: the
  // last stage's per-batch charges sum to this set's size.
  result.owned = RegionSet::FromSortedUnique(std::move(out));
  timing.micros += MicrosSince(start);
  return result;
}

}  // namespace qof
