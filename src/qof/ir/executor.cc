#include "qof/ir/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "qof/algebra/select_kernels.h"
#include "qof/exec/fault_injector.h"
#include "qof/region/cost_model.h"
#include "qof/region/region_cursor.h"
#include "qof/text/tokenizer.h"

namespace qof {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

void Record(EvalStats* stats, const RegionSet& produced) {
  if (stats == nullptr) return;
  stats->regions_produced += produced.size();
  stats->max_intermediate =
      std::max<uint64_t>(stats->max_intermediate, produced.size());
}

/// Folds one worker's per-node stats into the query total. Every field is
/// a sum except max_intermediate, which is a max — both are commutative,
/// so the merged total is independent of wave completion order.
void MergeStats(EvalStats* into, const EvalStats& s) {
  if (into == nullptr) return;
  into->set_ops += s.set_ops;
  into->select_ops += s.select_ops;
  into->nest_ops += s.nest_ops;
  into->simple_incl_ops += s.simple_incl_ops;
  into->direct_incl_ops += s.direct_incl_ops;
  into->regions_produced += s.regions_produced;
  into->max_intermediate =
      std::max(into->max_intermediate, s.max_intermediate);
  into->bytes_scanned += s.bytes_scanned;
  into->cache_hits += s.cache_hits;
  into->cache_misses += s.cache_misses;
}

bool Cacheable(IrOp op) {
  // kLoad borrows the index instance (a cache entry would duplicate it);
  // kProject/kJoin are engine rungs the tree engine never caches either.
  return op != IrOp::kLoad && op != IrOp::kProject && op != IrOp::kJoin;
}

/// True while the calling thread is inside a ParallelFor task of this
/// executor. ParallelFor is not reentrant, so morsel splitting must not
/// trigger from such a thread — the morsel falls back to the serial
/// kernel there (identical results by construction).
thread_local bool tls_in_pool_task = false;

struct PoolTaskScope {
  bool prev;
  PoolTaskScope() : prev(tls_in_pool_task) { tls_in_pool_task = true; }
  ~PoolTaskScope() { tls_in_pool_task = prev; }
  PoolTaskScope(const PoolTaskScope&) = delete;
  PoolTaskScope& operator=(const PoolTaskScope&) = delete;
};

/// The members of `s` falling in pivot range `r`: [bounds[r-1], bounds[r])
/// in canonical Region order (open ends at the edges). The ranges
/// partition the whole key space, so for any two canonically sorted sets
/// the per-range subsets of an element-local set operation concatenate to
/// exactly the full operation's result.
RegionSet SubRangeSet(const RegionSet& s, const std::vector<Region>& bounds,
                      size_t r) {
  const std::vector<Region>& v = s.regions();
  auto lo = r == 0 ? v.begin()
                   : std::lower_bound(v.begin(), v.end(), bounds[r - 1]);
  auto hi = r == bounds.size()
                ? v.end()
                : std::lower_bound(v.begin(), v.end(), bounds[r]);
  return RegionSet::FromSortedUnique(std::vector<Region>(lo, hi));
}

/// Equidistant pivots from the largest input, deduplicated — at most
/// `target` ranges, fewer when the input repeats pivot values.
std::vector<Region> PickBounds(const RegionSet& largest, size_t target) {
  const std::vector<Region>& v = largest.regions();
  std::vector<Region> bounds;
  for (size_t r = 1; r < target; ++r) {
    const Region& piv = v[r * v.size() / target];
    if (bounds.empty() || bounds.back() < piv) bounds.push_back(piv);
  }
  return bounds;
}

}  // namespace

IrExecutor::IrExecutor(const IrProgram* program, const RegionIndex* regions,
                       const WordIndex* words, const Corpus* corpus,
                       const ExecContext* ctx, EvalCache* cache,
                       CacheEpoch epoch)
    : program_(program),
      regions_(regions),
      words_(words),
      corpus_(corpus),
      ctx_(ctx),
      cache_(cache),
      epoch_(epoch),
      slots_(program->nodes.size()) {}

Status IrExecutor::Charge(EvalStats* stats,
                          const RegionSet& produced) const {
  Record(stats, produced);
  if (ctx_ != nullptr) return ctx_->ChargeRegions(produced.size());
  return Status::OK();
}

void IrExecutor::AddTiming(IrOp op, uint64_t micros,
                           const CursorIoStats* io) {
  std::lock_guard<std::mutex> lock(timings_mu_);
  IrOpTiming& t = timings_[IrOpName(op)];
  ++t.count;
  t.micros += micros;
  if (io != nullptr) {
    t.pages_read += io->pages_read;
    t.read_calls += io->read_calls;
    t.prefetch_hits += io->prefetch_hits;
  }
}

bool IrExecutor::CursorCandidate(const IrNode& node) const {
  if (!regions_->disk_resident()) return false;
  const bool eligible =
      node.op == IrOp::kSelect || node.op == IrOp::kIncluding ||
      node.op == IrOp::kIncluded || node.op == IrOp::kProject;
  if (!eligible || node.inputs.empty()) return false;
  if (program_->nodes[node.inputs[0]].op != IrOp::kLoad) return false;
  if (node.op == IrOp::kSelect) {
    // Only the single-token exact-match form: its posting-driven kernel
    // probes the child for exact spans {p, p+len}, which IntersectCursor
    // reproduces block-skippingly. Everything else (phrases, prefixes,
    // containment) falls back to the materializing kernel.
    if (node.select.kind != ExprKind::kSelectMatches || words_ == nullptr) {
      return false;
    }
    if (Tokenizer::Tokenize(node.select.word).size() != 1) return false;
  }
  return true;
}

bool IrExecutor::CursorPathWanted(int id, int load_id) const {
  // Parallel mode decides from the snapshot ScheduleParallel took before
  // dispatching any wave: a live read of the load slot would make the
  // cursor-vs-kernel choice depend on which wave filled the load first.
  // (Either path yields byte-identical results; pinning the choice keeps
  // I/O counters and timings reproducible run to run.)
  if (parallel_active_) return cursor_elected_[id] != 0;
  // Serial: once something has forced the instance resident, probing the
  // in-memory set directly is cheaper than streaming it back off disk.
  return !slots_[load_id].done;
}

Result<RegionSet> IrExecutor::EvaluateRoot(int root, EvalStats* stats) {
  if (regions_ == nullptr) {
    return Status::InvalidArgument("IR executor has no region index");
  }
  if (root < 0 || root >= static_cast<int>(program_->nodes.size())) {
    return Status::InvalidArgument("IR program has no such root");
  }
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kAlgebraEval));
  // Morsel scans on pool workers must account text bytes where this
  // thread's scope says (per-query counters under the service).
  scan_counter_ = Corpus::CurrentThreadScanCounter();
  if (pool_ != nullptr && workers_ > 1 && !slots_[root].done) {
    QOF_RETURN_IF_ERROR(ScheduleParallel(root, stats));
  }
  QOF_ASSIGN_OR_RETURN(const RegionSet* result, EvalNode(root, stats));
  // Slots keep borrowing/sharing internally; only this API boundary
  // copies — same contract as ExprEvaluator::Evaluate.
  return *result;
}

Result<const RegionSet*> IrExecutor::EvalNode(int id, EvalStats* stats) {
  const IrNode& node = program_->nodes[id];

  if (node.op == IrOp::kLoad && parallel_active_) {
    // Loads are the one slot two tasks can race for: a cursor-path
    // fallback materializes its (soft-edged) load input inline, possibly
    // concurrently with another fallback or with the load's own wave
    // task. Classic double-checked fill under the slot mutex.
    std::lock_guard<std::mutex> lock(slot_mu_);
    Slot& slot = slots_[id];
    if (slot.done) return &slot.set();
    if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, regions_->Get(node.name));
    AddTiming(node.op, 0);
    slot.borrowed = set;
    slot.done = true;
    return &slot.set();
  }

  Slot& slot = slots_[id];
  if (slot.done) return &slot.set();

  // One governance checkpoint per operator, exactly like the tree
  // evaluator (kProject/kJoin are engine rungs the tree never polls for).
  if (ctx_ != nullptr && node.op != IrOp::kProject &&
      node.op != IrOp::kJoin) {
    QOF_RETURN_IF_ERROR(ctx_->Check());
  }

  if (node.op == IrOp::kLoad) {
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, regions_->Get(node.name));
    AddTiming(node.op, 0);
    slot.borrowed = set;
    slot.done = true;
    return &slot.set();
  }

  if (cache_ != nullptr && Cacheable(node.op)) {
    if (auto hit = cache_->Lookup(node.key, epoch_)) {
      if (stats != nullptr) ++stats->cache_hits;
      // A hit charges what computing the node would have charged for its
      // own result — governance stays cache-independent.
      QOF_RETURN_IF_ERROR(Charge(stats, *hit));
      slot.shared = std::move(hit);
      slot.done = true;
      return &slot.set();
    }
    if (stats != nullptr) ++stats->cache_misses;
    QOF_ASSIGN_OR_RETURN(Slot computed, ComputeNode(id, stats));
    auto shared =
        std::make_shared<const RegionSet>(std::move(computed.owned));
    cache_->Insert(node.key, epoch_, shared);
    slot.shared = std::move(shared);
    slot.done = true;
    return &slot.set();
  }

  QOF_ASSIGN_OR_RETURN(slot, ComputeNode(id, stats));
  slot.done = true;
  return &slot.set();
}

Result<std::optional<IrExecutor::Slot>> IrExecutor::TryCursorPath(
    int id, EvalStats* stats) {
  const IrNode& node = program_->nodes[id];
  if (!CursorCandidate(node)) return std::optional<Slot>();
  // The bulk input must be a load whose slot nothing has forced yet —
  // see CursorPathWanted for how parallel mode pins this choice.
  if (!CursorPathWanted(id, node.inputs[0])) return std::optional<Slot>();
  const int load_id = node.inputs[0];

  if (node.op == IrOp::kSelect) {
    auto tokens = Tokenizer::Tokenize(node.select.word);
    QOF_ASSIGN_OR_RETURN(
        std::unique_ptr<RegionCursor> cursor,
        regions_->OpenCursor(program_->nodes[load_id].name));
    if (cursor == nullptr) return std::optional<Slot>();
    cursor->set_prefetch_allowed(prefetch_);
    if (words_->disk_resident()) {
      QOF_RETURN_IF_ERROR(words_->EnsureLoaded(tokens[0].text));
    }
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(word);
    const uint64_t len = word.size();
    std::vector<Region> spans;
    spans.reserve(postings.size());
    for (TextPos p : postings) spans.push_back({p, p + len});
    RegionSet probe = RegionSet::FromSortedUnique(std::move(spans));

    if (stats != nullptr) ++stats->select_ops;
    const Clock::time_point start = Clock::now();
    Slot out;
    QOF_ASSIGN_OR_RETURN(out.owned, IntersectCursor(probe, *cursor));
    QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
    const CursorIoStats io = cursor->io_stats();
    AddTiming(node.op, MicrosSince(start), &io);
    return std::optional<Slot>(std::move(out));
  }

  // kIncluding/kIncluded/kProject: the other operand is the (typically
  // small) probe side; evaluate it first — it may itself take a cursor
  // path — then stream the loaded side. kProject keeps its engine-rung
  // contract: no stats, no charge.
  QOF_ASSIGN_OR_RETURN(const RegionSet* probe,
                       EvalNode(node.inputs[1], stats));
  QOF_ASSIGN_OR_RETURN(
      std::unique_ptr<RegionCursor> cursor,
      regions_->OpenCursor(program_->nodes[load_id].name));
  if (cursor == nullptr) return std::optional<Slot>();
  cursor->set_prefetch_allowed(prefetch_);
  if (stats != nullptr && node.op != IrOp::kProject) {
    ++stats->simple_incl_ops;
  }
  const Clock::time_point start = Clock::now();
  Slot out;
  QOF_ASSIGN_OR_RETURN(out.owned,
                       node.op == IrOp::kIncluding
                           ? IncludingCursor(*probe, *cursor)
                           : IncludedInCursor(*probe, *cursor));
  if (node.op != IrOp::kProject) {
    QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
  }
  const CursorIoStats io = cursor->io_stats();
  AddTiming(node.op, MicrosSince(start), &io);
  return std::optional<Slot>(std::move(out));
}

bool IrExecutor::MorselEligible(size_t driving_size) const {
  return pool_ != nullptr && workers_ > 1 && !tls_in_pool_task &&
         driving_size >= 2 * morsel_grain_;
}

Result<IrExecutor::Slot> IrExecutor::ComputeNode(int id, EvalStats* stats) {
  const IrNode& node = program_->nodes[id];
  {
    QOF_ASSIGN_OR_RETURN(std::optional<Slot> streamed,
                         TryCursorPath(id, stats));
    if (streamed.has_value()) return std::move(*streamed);
  }
  // Inputs are evaluated (and governed) before the operator's own work,
  // which alone counts toward the per-operator timings.
  std::vector<const RegionSet*> inputs;
  inputs.reserve(node.inputs.size());
  for (int input : node.inputs) {
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, EvalNode(input, stats));
    inputs.push_back(set);
  }

  if (node.op == IrOp::kFusedChain) return ComputeFused(node, stats);

  if (node.op == IrOp::kUnion || node.op == IrOp::kIntersect ||
      node.op == IrOp::kDifference) {
    size_t largest = 0;
    for (const RegionSet* in : inputs) {
      largest = std::max(largest, static_cast<size_t>(in->size()));
    }
    if (MorselEligible(largest)) return MorselSetFold(node, inputs, stats);
  }
  if (node.op == IrOp::kSelect && MorselEligible(inputs[0]->size())) {
    return MorselSelect(node, *inputs[0], stats);
  }

  const Clock::time_point start = Clock::now();
  Slot out;
  switch (node.op) {
    case IrOp::kUnion:
    case IrOp::kIntersect:
    case IrOp::kDifference: {
      // Left-fold of the binary kernel; every intermediate is charged,
      // so governance matches the binary tree the node replaced.
      for (size_t k = 1; k < inputs.size(); ++k) {
        const RegionSet& acc = k == 1 ? *inputs[0] : out.owned;
        if (stats != nullptr) ++stats->set_ops;
        out.owned = node.op == IrOp::kUnion        ? Union(acc, *inputs[k])
                    : node.op == IrOp::kIntersect  ? Intersect(acc, *inputs[k])
                                                   : Difference(acc, *inputs[k]);
        QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      }
      break;
    }
    case IrOp::kInnermost:
    case IrOp::kOutermost:
      if (stats != nullptr) ++stats->nest_ops;
      out.owned = node.op == IrOp::kInnermost ? Innermost(*inputs[0])
                                              : Outermost(*inputs[0]);
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kSelect: {
      if (stats != nullptr) ++stats->select_ops;
      uint64_t scanned = 0;
      QOF_ASSIGN_OR_RETURN(
          std::vector<Region> members,
          RunSelectKernel(node.select, *inputs[0], words_, corpus_,
                          &scanned, node.key));
      if (stats != nullptr) stats->bytes_scanned += scanned;
      out.owned = RegionSet::FromSortedUnique(std::move(members));
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    }
    case IrOp::kIncluding:
    case IrOp::kIncluded:
      if (stats != nullptr) ++stats->simple_incl_ops;
      out.owned = node.op == IrOp::kIncluding
                      ? Including(*inputs[0], *inputs[1])
                      : IncludedIn(*inputs[0], *inputs[1]);
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kDirectlyIncluding:
    case IrOp::kDirectlyIncluded:
      if (stats != nullptr) ++stats->direct_incl_ops;
      // Disk-backed indexes materialize every instance for the universe;
      // surface I/O errors before the infallible Universe() call.
      QOF_RETURN_IF_ERROR(regions_->EnsureResident());
      out.owned = node.op == IrOp::kDirectlyIncluding
                      ? DirectlyIncluding(*inputs[0], *inputs[1],
                                          regions_->Universe())
                      : DirectlyIncluded(*inputs[0], *inputs[1],
                                         regions_->Universe());
      QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
      break;
    case IrOp::kProject:
      // The engine's index-only projection rung: attrs within candidates,
      // uncharged — identical to the tree engine's post-evaluation step.
      out.owned = IncludedIn(*inputs[0], *inputs[1]);
      break;
    case IrOp::kJoin: {
      if (!join_fn_) {
        return Status::Internal("IR executor has no join callback");
      }
      QOF_ASSIGN_OR_RETURN(
          std::vector<Region> joined,
          join_fn_(*inputs[0], *inputs[1], *inputs[2]));
      out.owned = RegionSet::FromUnsorted(std::move(joined));
      break;
    }
    case IrOp::kLoad:
    case IrOp::kFusedChain:
      return Status::Internal("unreachable IR op in ComputeNode");
  }
  AddTiming(node.op, MicrosSince(start));
  return out;
}

Result<IrExecutor::Slot> IrExecutor::MorselSetFold(
    const IrNode& node, const std::vector<const RegionSet*>& inputs,
    EvalStats* stats) {
  const Clock::time_point start = Clock::now();
  const RegionSet* largest = inputs[0];
  for (const RegionSet* in : inputs) {
    if (in->size() > largest->size()) largest = in;
  }
  const size_t target = std::min<size_t>(
      std::max<size_t>(2, largest->size() / morsel_grain_),
      static_cast<size_t>(workers_) * 4);
  // Ranges partition the canonical key space, so ∪/∩/− (all decided per
  // element by exact equality) commute with the split: the per-range
  // folds concatenate to exactly the serial fold's result, and the k-th
  // intermediate's size is the sum of the per-range k-th sizes — which
  // is how the serial fold's per-step charges are replayed below.
  const std::vector<Region> bounds = PickBounds(*largest, target);
  const size_t ranges = bounds.size() + 1;
  const size_t steps = inputs.size() - 1;

  struct RangeOut {
    Status status = Status::OK();
    bool claimed = false;
    std::vector<uint64_t> step_sizes;
    std::vector<Region> result;
  };
  std::vector<RangeOut> outs(ranges);
  std::atomic<bool> stop{false};
  pool_->ParallelFor(
      ranges,
      [&](int /*worker*/, size_t r) {
        PoolTaskScope in_task;
        ExecContext::ThreadScope thread_scope(ctx_);
        Corpus::ScanCounterScope scan_scope(scan_counter_);
        RangeOut& ro = outs[r];
        ro.claimed = true;
        if (ctx_ != nullptr) {
          ro.status = ctx_->Check();
          if (!ro.status.ok()) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
        ro.step_sizes.resize(steps, 0);
        RegionSet acc = SubRangeSet(*inputs[0], bounds, r);
        for (size_t k = 1; k < inputs.size(); ++k) {
          const RegionSet rhs = SubRangeSet(*inputs[k], bounds, r);
          acc = node.op == IrOp::kUnion        ? Union(acc, rhs)
                : node.op == IrOp::kIntersect  ? Intersect(acc, rhs)
                                               : Difference(acc, rhs);
          ro.step_sizes[k - 1] = acc.size();
        }
        ro.result.assign(acc.regions().begin(), acc.regions().end());
      },
      &stop);

  // Deterministic outcome scan in range order (two-phase pattern):
  // unclaimed ranges mean a stop fired — surface its cause.
  for (size_t r = 0; r < ranges; ++r) {
    if (!outs[r].claimed) {
      if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
      return Status::Internal("set-op morsel skipped without a recorded cause");
    }
    QOF_RETURN_IF_ERROR(outs[r].status);
  }

  // Replay the serial fold's per-step accounting from per-range sizes.
  for (size_t k = 0; k < steps; ++k) {
    uint64_t total = 0;
    for (size_t r = 0; r < ranges; ++r) total += outs[r].step_sizes[k];
    if (stats != nullptr) {
      ++stats->set_ops;
      stats->regions_produced += total;
      stats->max_intermediate = std::max(stats->max_intermediate, total);
    }
    if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->ChargeRegions(total));
  }

  // Merge: concatenate per-range results in range order — already the
  // canonical order, no sort needed. The planted racy-merge bug drops
  // the first range, the lost-update outcome of an unsynchronized merge
  // (kept sorted/unique so the corruption reaches the oracle instead of
  // tripping a debug assert here).
  std::vector<Region> merged;
  const size_t first = inject_racy_merge_ && ranges > 1 ? 1 : 0;
  for (size_t r = first; r < ranges; ++r) {
    merged.insert(merged.end(), outs[r].result.begin(),
                  outs[r].result.end());
  }
  Slot out;
  out.owned = RegionSet::FromSortedUnique(std::move(merged));
  AddTiming(node.op, MicrosSince(start));
  return out;
}

Result<IrExecutor::Slot> IrExecutor::MorselSelect(const IrNode& node,
                                                  const RegionSet& child,
                                                  EvalStats* stats) {
  const Clock::time_point start = Clock::now();
  const std::vector<Region>& members = child.regions();
  const size_t target = std::min<size_t>(
      std::max<size_t>(2, members.size() / morsel_grain_),
      static_cast<size_t>(workers_) * 4);

  struct RangeOut {
    Status status = Status::OK();
    bool claimed = false;
    uint64_t scanned = 0;
    std::vector<Region> result;
  };
  std::vector<RangeOut> outs(target);
  std::atomic<bool> stop{false};
  pool_->ParallelFor(
      target,
      [&](int /*worker*/, size_t r) {
        PoolTaskScope in_task;
        ExecContext::ThreadScope thread_scope(ctx_);
        Corpus::ScanCounterScope scan_scope(scan_counter_);
        RangeOut& ro = outs[r];
        ro.claimed = true;
        if (ctx_ != nullptr) {
          ro.status = ctx_->Check();
          if (!ro.status.ok()) {
            stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
        // Index split: selection filters members independently, so each
        // morsel selects from a contiguous slice and the slices
        // concatenate in order.
        const size_t lo = r * members.size() / target;
        const size_t hi = (r + 1) * members.size() / target;
        RegionSet part = RegionSet::FromSortedUnique(
            std::vector<Region>(members.begin() + lo, members.begin() + hi));
        auto kept = RunSelectKernel(node.select, part, words_, corpus_,
                                    &ro.scanned, node.key);
        if (!kept.ok()) {
          ro.status = kept.status();
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        ro.result = std::move(kept).value();
      },
      &stop);

  for (size_t r = 0; r < target; ++r) {
    if (!outs[r].claimed) {
      if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
      return Status::Internal("select morsel skipped without a recorded cause");
    }
    QOF_RETURN_IF_ERROR(outs[r].status);
  }

  if (stats != nullptr) {
    ++stats->select_ops;
    // bytes_scanned is the one stat allowed to vary with the worker
    // count: the kernel's posting-vs-scan dispatch looks at child size,
    // and morsels present smaller children. Selected members are
    // identical regardless.
    for (const RangeOut& ro : outs) stats->bytes_scanned += ro.scanned;
  }
  std::vector<Region> merged;
  const size_t first = inject_racy_merge_ && target > 1 ? 1 : 0;
  for (size_t r = first; r < target; ++r) {
    merged.insert(merged.end(), outs[r].result.begin(),
                  outs[r].result.end());
  }
  Slot out;
  out.owned = RegionSet::FromSortedUnique(std::move(merged));
  QOF_RETURN_IF_ERROR(Charge(stats, out.owned));
  AddTiming(node.op, MicrosSince(start));
  return out;
}

Status IrExecutor::ScheduleParallel(int root, EvalStats* stats) {
  const size_t n = program_->nodes.size();
  cursor_elected_.assign(n, 0);
  std::vector<char> reach(n, 0);
  std::vector<int> pending;
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (id < 0 || reach[id] || slots_[id].done) continue;
    reach[id] = 1;
    pending.push_back(id);
    const IrNode& nd = program_->nodes[id];
    // Soft edge: a cursor-path candidate must NOT force its load input —
    // eagerly materializing the instance is exactly what the disk fast
    // path exists to avoid. The load is left unscheduled; if the cursor
    // path falls back at runtime it materializes the load inline under
    // slot_mu_ (see EvalNode's kLoad branch).
    const bool elect = CursorCandidate(nd) && !slots_[nd.inputs[0]].done;
    if (elect) cursor_elected_[id] = 1;
    for (size_t i = 0; i < nd.inputs.size(); ++i) {
      if (elect && i == 0) continue;
      stack.push_back(nd.inputs[i]);
    }
  }

  // Hard-dependency counts and reverse edges over the pending subgraph.
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<int>> dependents(n);
  for (int id : pending) {
    const IrNode& nd = program_->nodes[id];
    for (size_t i = 0; i < nd.inputs.size(); ++i) {
      if (cursor_elected_[id] && i == 0) continue;
      const int in = nd.inputs[i];
      if (in >= 0 && reach[in] && !slots_[in].done) {
        ++indeg[id];
        dependents[in].push_back(id);
      }
    }
  }

  std::vector<int> ready;
  for (int id : pending) {
    if (indeg[id] == 0) ready.push_back(id);
  }
  std::sort(ready.begin(), ready.end());

  parallel_active_ = true;
  Status result = Status::OK();
  while (!ready.empty() && result.ok()) {
    std::vector<int> wave = std::move(ready);
    ready.clear();
    if (wave.size() == 1) {
      // A lone ready node runs inline on the query thread — the pool is
      // then free for the node's own morsels (ParallelFor must not nest).
      EvalStats local;
      Result<const RegionSet*> r = EvalNode(wave[0], &local);
      MergeStats(stats, local);
      if (!r.ok()) result = r.status();
    } else {
      struct Outcome {
        Status status = Status::OK();
        bool claimed = false;
        EvalStats stats;
      };
      std::vector<Outcome> outcomes(wave.size());
      std::atomic<bool> stop{false};
      pool_->ParallelFor(
          wave.size(),
          [&](int /*worker*/, size_t i) {
            PoolTaskScope in_task;
            ExecContext::ThreadScope thread_scope(ctx_);
            Corpus::ScanCounterScope scan_scope(scan_counter_);
            Outcome& oc = outcomes[i];
            oc.claimed = true;
            Result<const RegionSet*> r = EvalNode(wave[i], &oc.stats);
            if (!r.ok()) {
              oc.status = r.status();
              stop.store(true, std::memory_order_relaxed);
            }
          },
          &stop);
      // Node-id order (waves are sorted) keeps stats merging and
      // first-error reporting deterministic, like two-phase execution.
      for (const Outcome& oc : outcomes) {
        if (oc.claimed) MergeStats(stats, oc.stats);
      }
      for (size_t i = 0; i < wave.size() && result.ok(); ++i) {
        if (!outcomes[i].claimed) {
          Status cause =
              ctx_ != nullptr ? ctx_->Check() : Status::OK();
          result = !cause.ok() ? cause
                               : Status::Internal(
                                     "IR node skipped without a recorded "
                                     "cause");
        } else {
          result = outcomes[i].status;
        }
      }
    }
    if (!result.ok()) break;
    for (int id : wave) {
      for (int dep : dependents[id]) {
        if (--indeg[dep] == 0) ready.push_back(dep);
      }
    }
    std::sort(ready.begin(), ready.end());
  }
  parallel_active_ = false;
  return result;
}

Result<IrExecutor::Slot> IrExecutor::ComputeFused(const IrNode& node,
                                                  EvalStats* stats) {
  const RegionSet& source = slots_[node.inputs[0]].set();
  const std::vector<std::string> stage_keys =
      FusedStageKeys(*program_, node);
  // Each stage is one logical operator however many batches run it.
  if (stats != nullptr) {
    for (const IrStage& stage : node.stages) {
      if (stage.kind == IrStage::Kind::kSelect) {
        ++stats->select_ops;
      } else {
        ++stats->simple_incl_ops;
      }
    }
  }
  const Clock::time_point start = Clock::now();

  std::vector<Region> out;
  const size_t batch_size = CostModel::kFusedBatch;
  const std::vector<Region>& members = source.regions();
  // An empty source still runs one (empty) batch so stage validation
  // errors (bad selection parameters) surface exactly as unfused.
  size_t begin = 0;
  do {
    if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
    const size_t end = std::min(members.size(), begin + batch_size);
    RegionSet current = RegionSet::FromSortedUnique(
        std::vector<Region>(members.begin() + begin, members.begin() + end));
    for (size_t j = 0; j < node.stages.size(); ++j) {
      const IrStage& stage = node.stages[j];
      switch (stage.kind) {
        case IrStage::Kind::kSelect: {
          uint64_t scanned = 0;
          QOF_ASSIGN_OR_RETURN(
              std::vector<Region> kept,
              RunSelectKernel(stage.select, current, words_, corpus_,
                              &scanned, stage_keys[j]));
          if (stats != nullptr) stats->bytes_scanned += scanned;
          current = RegionSet::FromSortedUnique(std::move(kept));
          break;
        }
        case IrStage::Kind::kIncluding:
          current = Including(current, slots_[stage.rhs].set());
          break;
        case IrStage::Kind::kIncluded:
          current = IncludedIn(current, slots_[stage.rhs].set());
          break;
      }
      // Per stage per batch; summed over batches this equals exactly
      // what the unfused chain would have charged per stage.
      QOF_RETURN_IF_ERROR(Charge(stats, current));
    }
    out.insert(out.end(), current.regions().begin(),
               current.regions().end());
    begin = end;
  } while (begin < members.size());

  Slot result;
  // Every stage keeps a canonically-ordered subset of its batch and the
  // batches partition the source in canonical order, so the
  // concatenation is already sorted and unique. No final re-charge: the
  // last stage's per-batch charges sum to this set's size.
  result.owned = RegionSet::FromSortedUnique(std::move(out));
  AddTiming(node.op, MicrosSince(start));
  return result;
}

}  // namespace qof
