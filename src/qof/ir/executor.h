#ifndef QOF_IR_EXECUTOR_H_
#define QOF_IR_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qof/algebra/evaluator.h"
#include "qof/cache/eval_cache.h"
#include "qof/exec/exec_context.h"
#include "qof/ir/ir.h"
#include "qof/region/region_index.h"
#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// Wall-time spent computing nodes of one IR operator kind (exclusive of
/// input evaluation), plus how many nodes of that kind ran.
struct IrOpTiming {
  uint64_t count = 0;
  uint64_t micros = 0;
};

/// Keyed by IrOpName(); std::map so renderings are deterministic.
using IrOpTimings = std::map<std::string, IrOpTiming>;

/// Evaluates an optimized IrProgram. Nodes are computed demand-driven
/// from a requested root and memoized in per-node slots that persist
/// across EvaluateRoot calls, so a subexpression shared between legs
/// (candidates / projection / join attributes) is computed once per
/// query regardless of cache state — the executor-level guarantee the
/// CSE pass creates.
///
/// Governance, caching and statistics mirror the tree evaluator
/// node-for-node: one ExecContext::Check() per operator, every composite
/// node looked up in / published to the shared EvalCache under its
/// canonical key (identical to the equivalent expression's ToString(),
/// so IR and tree share entries), cache hits charging their own result
/// size, and kLoad borrowing index instances uncharged. kProject/kJoin
/// are engine rungs, not algebra operators: never cached, checked or
/// charged — exactly like the tree engine's post-evaluation steps.
class IrExecutor {
 public:
  /// All pointers are borrowed. `words`/`corpus` may be null when no node
  /// needs them; `ctx`/`cache` follow the tree evaluator's contract.
  IrExecutor(const IrProgram* program, const RegionIndex* regions,
             const WordIndex* words, const Corpus* corpus,
             const ExecContext* ctx = nullptr, EvalCache* cache = nullptr,
             CacheEpoch epoch = {});

  /// Callback evaluating a kJoin node (candidates, lhs attrs, rhs attrs)
  /// — injected by the engine so qof_ir does not depend on qof_engine.
  using JoinFn = std::function<Result<std::vector<Region>>(
      const RegionSet& candidates, const RegionSet& lhs_attrs,
      const RegionSet& rhs_attrs)>;
  void SetJoinFn(JoinFn fn) { join_fn_ = std::move(fn); }

  /// Evaluates the node `root` (a root id from the program) and returns a
  /// copy of its result. Re-entrant across roots: previously computed
  /// nodes are served from their slots.
  Result<RegionSet> EvaluateRoot(int root, EvalStats* stats = nullptr);

  /// Per-operator timing counters accumulated over every node computed so
  /// far (slot-memoized re-reads do not re-count).
  const IrOpTimings& timings() const { return timings_; }

 private:
  /// Memoized per-node result; mirrors the tree evaluator's EvalResult
  /// ownership triple.
  struct Slot {
    bool done = false;
    RegionSet owned;
    const RegionSet* borrowed = nullptr;
    std::shared_ptr<const RegionSet> shared;
    const RegionSet& set() const {
      if (shared != nullptr) return *shared;
      return borrowed != nullptr ? *borrowed : owned;
    }
  };

  /// Ensures node `id`'s slot is filled; returns its set.
  Result<const RegionSet*> EvalNode(int id, EvalStats* stats);
  /// The uncached computation of one composite node.
  Result<Slot> ComputeNode(int id, EvalStats* stats);
  /// Disk fast path for kSelect/kIncluding/kIncluded/kProject whose bulk
  /// input is a load of a still-unmaterialized disk instance: probes the
  /// instance through a block-skipping RegionCursor instead of forcing it
  /// into memory, so a selective query pages in only the blocks its probe
  /// regions land in. Returns nullopt when inapplicable (the caller then
  /// computes the node normally); results are byte-identical either way.
  Result<std::optional<Slot>> TryCursorPath(const IrNode& node,
                                            EvalStats* stats);
  Result<Slot> ComputeFused(const IrNode& node, EvalStats* stats);
  Status Charge(EvalStats* stats, const RegionSet& produced) const;

  const IrProgram* program_;
  const RegionIndex* regions_;
  const WordIndex* words_;
  const Corpus* corpus_;
  const ExecContext* ctx_;
  EvalCache* cache_;
  CacheEpoch epoch_;
  JoinFn join_fn_;
  std::vector<Slot> slots_;
  IrOpTimings timings_;
};

}  // namespace qof

#endif  // QOF_IR_EXECUTOR_H_
