#ifndef QOF_IR_EXECUTOR_H_
#define QOF_IR_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "qof/algebra/evaluator.h"
#include "qof/cache/eval_cache.h"
#include "qof/exec/exec_context.h"
#include "qof/ir/ir.h"
#include "qof/region/region_cursor.h"
#include "qof/region/region_index.h"
#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// Wall-time spent computing nodes of one IR operator kind (exclusive of
/// input evaluation), how many nodes of that kind ran, and the disk I/O
/// their cursor-path kernels did (zeros for memory-resident execution).
struct IrOpTiming {
  uint64_t count = 0;
  uint64_t micros = 0;
  /// Pages actually pulled from disk for this operator's cursor reads.
  uint64_t pages_read = 0;
  /// VFS read invocations those pages took (batched prefetch makes this
  /// much smaller than pages_read).
  uint64_t read_calls = 0;
  /// Page fetches served by a frame the operator's own prefetch hints
  /// had already admitted.
  uint64_t prefetch_hits = 0;
};

/// Keyed by IrOpName(); std::map so renderings are deterministic.
using IrOpTimings = std::map<std::string, IrOpTiming>;

/// Evaluates an optimized IrProgram. Nodes are computed demand-driven
/// from a requested root and memoized in per-node slots that persist
/// across EvaluateRoot calls, so a subexpression shared between legs
/// (candidates / projection / join attributes) is computed once per
/// query regardless of cache state — the executor-level guarantee the
/// CSE pass creates.
///
/// Governance, caching and statistics mirror the tree evaluator
/// node-for-node: one ExecContext::Check() per operator, every composite
/// node looked up in / published to the shared EvalCache under its
/// canonical key (identical to the equivalent expression's ToString(),
/// so IR and tree share entries), cache hits charging their own result
/// size, and kLoad borrowing index instances uncharged. kProject/kJoin
/// are engine rungs, not algebra operators: never cached, checked or
/// charged — exactly like the tree engine's post-evaluation steps.
///
/// Parallel execution (SetThreadPool with workers > 1) is morsel-driven:
/// ready IR nodes — nodes whose hard inputs are all computed — run as a
/// wave on the pool, and within a node, large n-ary set folds and select
/// scans split into per-range morsels merged back in canonical order.
/// Results are byte-identical at every worker count; see DESIGN.md §5k
/// for the determinism argument. Charges and EvalStats for morselized
/// nodes are reconstructed from per-range sizes so they match the serial
/// fold exactly (bytes_scanned is the one exception: the select kernel's
/// scan/posting dispatch depends on child size, so per-morsel dispatch
/// may scan different byte totals while selecting identical members).
class IrExecutor {
 public:
  /// All pointers are borrowed. `words`/`corpus` may be null when no node
  /// needs them; `ctx`/`cache` follow the tree evaluator's contract.
  IrExecutor(const IrProgram* program, const RegionIndex* regions,
             const WordIndex* words, const Corpus* corpus,
             const ExecContext* ctx = nullptr, EvalCache* cache = nullptr,
             CacheEpoch epoch = {});

  /// Callback evaluating a kJoin node (candidates, lhs attrs, rhs attrs)
  /// — injected by the engine so qof_ir does not depend on qof_engine.
  using JoinFn = std::function<Result<std::vector<Region>>(
      const RegionSet& candidates, const RegionSet& lhs_attrs,
      const RegionSet& rhs_attrs)>;
  void SetJoinFn(JoinFn fn) { join_fn_ = std::move(fn); }

  /// Runs roots on `pool` with `workers` logical workers. Null pool or
  /// workers <= 1 keeps the exact serial path. The pool is borrowed and
  /// must outlive the executor; the executor is its only ParallelFor
  /// caller while a root evaluates (ParallelFor is not reentrant).
  void SetThreadPool(ThreadPool* pool, int workers) {
    pool_ = pool;
    workers_ = workers;
  }

  /// Per-query QueryOptions::prefetch: forwarded to every cursor the
  /// disk fast path opens. Affects I/O batching only, never results.
  void set_prefetch(bool prefetch) { prefetch_ = prefetch; }

  /// Minimum input size (regions) before a node's internal work is worth
  /// splitting into morsels; a node splits once its driving input holds
  /// at least two grains. Tests and the fuzzer lower this to exercise
  /// morsel merging on small corpora.
  void set_morsel_grain(size_t grain) { morsel_grain_ = grain > 0 ? grain : 1; }

  /// Planted bug for the fuzz harness (`--inject racy-merge`): the morsel
  /// merge "loses" the first range's results, modeling the lost-update
  /// outcome of an unsynchronized result merge. The damaged set keeps
  /// every RegionSet invariant (sorted, unique) so the corruption travels
  /// all the way to the differential oracle instead of tripping a debug
  /// assert at the merge site.
  void set_inject_racy_merge(bool inject) { inject_racy_merge_ = inject; }

  /// Evaluates the node `root` (a root id from the program) and returns a
  /// copy of its result. Re-entrant across roots: previously computed
  /// nodes are served from their slots.
  Result<RegionSet> EvaluateRoot(int root, EvalStats* stats = nullptr);

  /// Per-operator timing counters accumulated over every node computed so
  /// far (slot-memoized re-reads do not re-count).
  const IrOpTimings& timings() const { return timings_; }

 private:
  /// Memoized per-node result; mirrors the tree evaluator's EvalResult
  /// ownership triple.
  struct Slot {
    bool done = false;
    RegionSet owned;
    const RegionSet* borrowed = nullptr;
    std::shared_ptr<const RegionSet> shared;
    const RegionSet& set() const {
      if (shared != nullptr) return *shared;
      return borrowed != nullptr ? *borrowed : owned;
    }
  };

  /// Ensures node `id`'s slot is filled; returns its set.
  Result<const RegionSet*> EvalNode(int id, EvalStats* stats);
  /// The uncached computation of one composite node.
  Result<Slot> ComputeNode(int id, EvalStats* stats);
  /// Disk fast path for kSelect/kIncluding/kIncluded/kProject whose bulk
  /// input is a load of a still-unmaterialized disk instance: probes the
  /// instance through a block-skipping RegionCursor instead of forcing it
  /// into memory, so a selective query pages in only the blocks its probe
  /// regions land in. Returns nullopt when inapplicable (the caller then
  /// computes the node normally); results are byte-identical either way.
  Result<std::optional<Slot>> TryCursorPath(int id, EvalStats* stats);
  Result<Slot> ComputeFused(const IrNode& node, EvalStats* stats);
  Status Charge(EvalStats* stats, const RegionSet& produced) const;

  /// True when `node` matches TryCursorPath's statically decidable
  /// eligibility tests (runtime fallbacks — no cursor for the name —
  /// still possible).
  bool CursorCandidate(const IrNode& node) const;
  /// Whether node `id` should prefer the cursor path this evaluation.
  /// Serial mode reads the load slot live; parallel mode uses the
  /// snapshot ScheduleParallel took before dispatch, so the choice does
  /// not depend on wave timing.
  bool CursorPathWanted(int id, int load_id) const;

  /// Wavefront scheduler: computes every not-yet-done node reachable from
  /// `root` on the thread pool, wave by ready wave, merging worker stats
  /// and errors deterministically (node-id order). On success every
  /// reachable slot is done and EvalNode(root) is a slot read.
  Status ScheduleParallel(int root, EvalStats* stats);

  /// Morselized n-ary set fold (kUnion/kIntersect/kDifference): range-
  /// partitions the inputs by pivots from the largest input, folds each
  /// range independently, concatenates in range order, and replays the
  /// serial fold's per-step charges from the per-range sizes. Engages
  /// only from a thread that may call ParallelFor.
  Result<Slot> MorselSetFold(const IrNode& node,
                             const std::vector<const RegionSet*>& inputs,
                             EvalStats* stats);
  /// Morselized select: index-partitions the child (members are filtered
  /// independently), runs the kernel per range, concatenates in range
  /// order. One select_op and one charge, like the serial kernel.
  Result<Slot> MorselSelect(const IrNode& node, const RegionSet& child,
                            EvalStats* stats);
  /// True when morsel splitting may run here: pool configured, calling
  /// thread not already inside a ParallelFor task (ParallelFor is not
  /// reentrant), and the driving input spans at least two grains.
  bool MorselEligible(size_t driving_size) const;

  /// Thread-safe accumulation into timings_ (one lock per computed node;
  /// contention is trivial next to kernel work).
  void AddTiming(IrOp op, uint64_t micros,
                 const CursorIoStats* io = nullptr);

  const IrProgram* program_;
  const RegionIndex* regions_;
  const WordIndex* words_;
  const Corpus* corpus_;
  const ExecContext* ctx_;
  EvalCache* cache_;
  CacheEpoch epoch_;
  JoinFn join_fn_;
  std::vector<Slot> slots_;
  IrOpTimings timings_;

  ThreadPool* pool_ = nullptr;
  int workers_ = 1;
  bool prefetch_ = true;
  size_t morsel_grain_ = 2048;
  bool inject_racy_merge_ = false;

  /// True while ScheduleParallel is dispatching waves — switches the
  /// load-slot accesses below to their locked variants.
  bool parallel_active_ = false;
  /// Guards load slots only: a cursor-path fallback materializing its
  /// load input is the one slot write that can race (soft edges exclude
  /// loads from the wave ordering). Every other slot is written by
  /// exactly one wave task and read only after its wave's barrier.
  std::mutex slot_mu_;
  std::mutex timings_mu_;
  /// Schedule-time snapshot: node ids whose cursor path was elected when
  /// the wavefront was built (their load inputs get soft edges). Keeps
  /// the cursor-vs-kernel choice independent of wave timing.
  std::vector<char> cursor_elected_;
  /// Scan counter captured from the query thread at EvaluateRoot entry;
  /// installed on every pool worker so morsel text scans account like
  /// serial ones.
  std::atomic<uint64_t>* scan_counter_ = nullptr;
};

}  // namespace qof

#endif  // QOF_IR_EXECUTOR_H_
