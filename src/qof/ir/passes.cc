#include "qof/ir/passes.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "qof/region/cost_model.h"
#include "qof/text/tokenizer.h"

namespace qof {
namespace {

/// True when the selection never touches the corpus: single-token exact
/// and prefix forms, proximity and frequency search. Multi-token σ
/// degrades to phrase (verifying scans), as does contains with a
/// multi-token literal — those stay where they are so pushdown cannot
/// duplicate byte-budget charges across ∪ branches.
bool CorpusFreeSelect(const SelectSpec& spec) {
  switch (spec.kind) {
    case ExprKind::kSelectStartsWith:
    case ExprKind::kSelectContainsPrefix:
    case ExprKind::kSelectNear:
    case ExprKind::kSelectAtLeast:
      return true;
    case ExprKind::kSelectMatches:
    case ExprKind::kSelectContains:
      return Tokenizer::Tokenize(spec.word).size() == 1;
    default:
      return false;
  }
}

/// A selection the fusion pass may turn into a fused-chain stage: the
/// corpus-free per-member kinds over the word index alone.
bool FusableSelect(const SelectSpec& spec) {
  switch (spec.kind) {
    case ExprKind::kSelectMatches:
      return Tokenizer::Tokenize(spec.word).size() == 1;
    case ExprKind::kSelectStartsWith:
    case ExprKind::kSelectNear:
    case ExprKind::kSelectAtLeast:
      return true;
    default:
      return false;
  }
}

double LoadCardinality(const RegionIndex* regions, const std::string& name) {
  // Count-only: estimating a disk-backed load must not materialize it
  // (the whole point of the lazy tier is that planning is I/O-free).
  if (regions == nullptr) return 0;
  return static_cast<double>(regions->InstanceCount(name));
}

double SelectPostings(const WordIndex* words, const SelectSpec& spec) {
  if (words == nullptr) return 0;
  auto tokens = Tokenizer::Tokenize(spec.word);
  if (tokens.empty()) return 0;
  std::string word(tokens[0].text);
  if (spec.kind == ExprKind::kSelectStartsWith ||
      spec.kind == ExprKind::kSelectContainsPrefix) {
    return static_cast<double>(words->LookupPrefix(word).size());
  }
  return static_cast<double>(words->Lookup(word).size());
}

struct Est {
  double card = 0;
  double work = 0;
};

Est SelectEst(const Est& child, const SelectSpec& spec,
              const WordIndex* words) {
  Est est;
  est.card = std::min(child.card, SelectPostings(words, spec));
  est.work = child.work + child.card;
  if (spec.kind == ExprKind::kSelectPhrase) est.work += est.card * 8;
  return est;
}

Est InclusionEst(const Est& l, const Est& r, bool direct,
                 const RegionIndex* regions) {
  Est est;
  est.card = std::min(l.card, r.card);
  double merge = l.card + r.card;
  if (direct && regions != nullptr) {
    merge += static_cast<double>(regions->UniverseSize());
    merge *= CostModel::kDirectFactor;
  }
  est.work = l.work + r.work + merge;
  return est;
}

}  // namespace

void AnnotateIrCosts(IrProgram* program, const RegionIndex* regions,
                     const WordIndex* words) {
  // Mirrors CostEstimator::Estimate over the flattened form: n-ary nodes
  // cost like the left-fold of the binary operator they replaced.
  std::vector<Est> est(program->nodes.size());
  for (size_t i = 0; i < program->nodes.size(); ++i) {
    IrNode& n = program->nodes[i];
    Est& e = est[i];
    switch (n.op) {
      case IrOp::kLoad:
        e.card = LoadCardinality(regions, n.name);
        e.work = e.card;  // one pass over the instance
        break;
      case IrOp::kUnion:
      case IrOp::kIntersect:
      case IrOp::kDifference: {
        e = est[n.inputs[0]];
        for (size_t k = 1; k < n.inputs.size(); ++k) {
          const Est& r = est[n.inputs[k]];
          Est acc;
          acc.work = e.work + r.work + e.card + r.card;
          acc.card = n.op == IrOp::kUnion        ? e.card + r.card
                     : n.op == IrOp::kIntersect  ? std::min(e.card, r.card)
                                                 : e.card;
          e = acc;
        }
        break;
      }
      case IrOp::kInnermost:
      case IrOp::kOutermost: {
        const Est& c = est[n.inputs[0]];
        e.card = c.card;  // upper bound
        e.work = c.work + c.card * std::max(1.0, std::log2(c.card + 1));
        break;
      }
      case IrOp::kSelect:
        e = SelectEst(est[n.inputs[0]], n.select, words);
        break;
      case IrOp::kIncluding:
      case IrOp::kIncluded:
      case IrOp::kDirectlyIncluding:
      case IrOp::kDirectlyIncluded:
        e = InclusionEst(est[n.inputs[0]], est[n.inputs[1]],
                         n.op == IrOp::kDirectlyIncluding ||
                             n.op == IrOp::kDirectlyIncluded,
                         regions);
        break;
      case IrOp::kFusedChain: {
        e = est[n.inputs[0]];
        for (const IrStage& stage : n.stages) {
          switch (stage.kind) {
            case IrStage::Kind::kSelect:
              e = SelectEst(e, stage.select, words);
              break;
            case IrStage::Kind::kIncluding:
            case IrStage::Kind::kIncluded:
              e = InclusionEst(e, est[stage.rhs], /*direct=*/false,
                               regions);
              break;
          }
        }
        break;
      }
      case IrOp::kProject:
        e = InclusionEst(est[n.inputs[0]], est[n.inputs[1]],
                         /*direct=*/false, regions);
        break;
      case IrOp::kJoin: {
        const Est& c = est[n.inputs[0]];
        const Est& l = est[n.inputs[1]];
        const Est& r = est[n.inputs[2]];
        e.card = c.card;
        // Sort-merge: sort both attribute sides, sweep the candidates.
        double pairs = l.card + r.card;
        e.work = c.work + l.work + r.work + c.card +
                 pairs * std::max(1.0, std::log2(pairs + 1));
        break;
      }
    }
    n.est_cardinality = e.card;
    n.est_work = e.work;
  }
}

void PassCse(IrProgram* program, bool inject_bad_cse) {
  std::unordered_map<std::string, int> seen;
  std::vector<int> repl(program->nodes.size());
  for (size_t i = 0; i < program->nodes.size(); ++i) {
    IrNode& n = program->nodes[i];
    for (int& input : n.inputs) input = repl[input];
    for (IrStage& stage : n.stages) {
      if (stage.rhs >= 0) stage.rhs = repl[stage.rhs];
    }
    n.key = ComputeNodeKey(*program, n);
    std::string cse_key = n.key;
    if (inject_bad_cse && n.op == IrOp::kSelect) {
      // Planted bug (--inject bad-cse): hash selections without their
      // word operands, merging non-identical nodes. The differential
      // fuzzer must catch the resulting wrong answers.
      cse_key = "select#" +
                std::to_string(static_cast<int>(n.select.kind)) + "#" +
                std::to_string(n.select.param) + "(" +
                program->nodes[n.inputs[0]].key + ")";
    }
    auto [it, inserted] = seen.emplace(std::move(cse_key),
                                       static_cast<int>(i));
    repl[i] = inserted ? static_cast<int>(i) : it->second;
  }
  auto fix = [&](int& root) {
    if (root >= 0) root = repl[root];
  };
  fix(program->candidates);
  fix(program->projection);
  fix(program->project);
  fix(program->join_lhs);
  fix(program->join_rhs);
  fix(program->join);
  Canonicalize(program);
}

namespace {

/// One pushdown sweep. Rewrites each pushable select in place into its
/// child's operator applied over new, deeper selects; appended nodes get
/// valid keys immediately (their inputs are older nodes). Returns whether
/// anything moved; the caller canonicalizes and re-annotates per round.
bool PushdownSweep(IrProgram* p) {
  bool changed = false;
  size_t original = p->nodes.size();
  for (size_t i = 0; i < original; ++i) {
    if (p->nodes[i].op != IrOp::kSelect) continue;
    const int child_id = p->nodes[i].inputs[0];
    const IrOp child_op = p->nodes[child_id].op;
    SelectSpec spec = p->nodes[i].select;

    auto make_select = [&](int over) {
      IrNode s;
      s.op = IrOp::kSelect;
      s.select = spec;
      s.inputs.push_back(over);
      s.key = spec.Describe(p->nodes[over].key);
      p->nodes.push_back(std::move(s));
      return static_cast<int>(p->nodes.size()) - 1;
    };
    // The child node is never mutated (it may have other consumers); the
    // select node itself is rewritten into a copy of the child with the
    // selection moved into the chosen operand(s). A child left without
    // consumers is dropped by the canonicalize step.
    auto rewrite_as_child_with = [&](std::vector<int> inputs) {
      IrNode replacement = p->nodes[child_id];
      replacement.inputs = std::move(inputs);
      replacement.est_cardinality = -1;
      replacement.est_work = -1;
      replacement.key = ComputeNodeKey(*p, replacement);
      p->nodes[i] = std::move(replacement);
      changed = true;
    };

    const std::vector<int>& operands = p->nodes[child_id].inputs;
    switch (child_op) {
      case IrOp::kIntersect: {
        // σ(A ∩ B ∩ …) = σ(X) ∩ rest — member predicates commute with
        // span intersection; the cheapest operand takes the filter.
        size_t best = 0;
        for (size_t k = 1; k < operands.size(); ++k) {
          if (p->nodes[operands[k]].est_cardinality <
              p->nodes[operands[best]].est_cardinality) {
            best = k;
          }
        }
        std::vector<int> inputs = operands;
        inputs[best] = make_select(operands[best]);
        rewrite_as_child_with(std::move(inputs));
        break;
      }
      case IrOp::kDifference: {
        // σ(A − B − …) = σ(A) − B − …
        std::vector<int> inputs = operands;
        inputs[0] = make_select(operands[0]);
        rewrite_as_child_with(std::move(inputs));
        break;
      }
      case IrOp::kUnion: {
        // σ(A ∪ B) = σ(A) ∪ σ(B): only for corpus-free selections, so
        // distributing cannot re-verify overlap members against the text
        // (which would inflate byte-budget charges).
        if (!CorpusFreeSelect(spec)) break;
        std::vector<int> inputs;
        inputs.reserve(operands.size());
        for (int operand : operands) inputs.push_back(make_select(operand));
        rewrite_as_child_with(std::move(inputs));
        break;
      }
      case IrOp::kIncluding:
      case IrOp::kIncluded:
      case IrOp::kDirectlyIncluding:
      case IrOp::kDirectlyIncluded: {
        // Results are drawn from the left operand, so the member filter
        // commutes with the containment test (and with ⊃d/⊂d, whose
        // separators come from the index universe, not the operands).
        std::vector<int> inputs = operands;
        inputs[0] = make_select(operands[0]);
        rewrite_as_child_with(std::move(inputs));
        break;
      }
      default:
        // Loads, ι/ω (whole-set semantics), other selections, fused
        // chains: the selection stays put.
        break;
    }
  }
  return changed;
}

}  // namespace

void PassPushdown(IrProgram* program, const RegionIndex* regions,
                  const WordIndex* words) {
  // Each round moves every pushable selection one operator deeper, so the
  // bound only guards against pathological inputs.
  for (int round = 0; round < 64; ++round) {
    AnnotateIrCosts(program, regions, words);
    bool changed = PushdownSweep(program);
    Canonicalize(program);
    if (!changed) break;
  }
}

void PassOrderOperands(IrProgram* program, const RegionIndex* regions,
                       const WordIndex* words) {
  AnnotateIrCosts(program, regions, words);
  for (IrNode& n : program->nodes) {
    if (n.op != IrOp::kIntersect && n.op != IrOp::kUnion) continue;
    // Cheapest operand first keeps the left-fold's intermediates small;
    // the key tie-break keeps plans deterministic when estimates agree.
    std::stable_sort(n.inputs.begin(), n.inputs.end(), [&](int a, int b) {
      const IrNode& na = program->nodes[a];
      const IrNode& nb = program->nodes[b];
      if (na.est_cardinality != nb.est_cardinality) {
        return na.est_cardinality < nb.est_cardinality;
      }
      return na.key < nb.key;
    });
  }
  Canonicalize(program);
}

void PassFuse(IrProgram* program) {
  // Consumer counts decide which intermediates may disappear into a
  // chain: only single-use, non-root nodes (a shared or rooted node must
  // stay materialized — fusing it would recompute it per consumer).
  std::vector<int> consumers(program->nodes.size(), 0);
  for (const IrNode& n : program->nodes) {
    for (int input : n.inputs) ++consumers[input];
  }
  std::vector<char> is_root(program->nodes.size(), 0);
  for (int root : {program->candidates, program->projection,
                   program->project, program->join_lhs, program->join_rhs,
                   program->join}) {
    if (root >= 0) is_root[root] = 1;
  }
  auto fusable = [&](int id) {
    const IrNode& n = program->nodes[id];
    if (n.op == IrOp::kIncluding || n.op == IrOp::kIncluded) return true;
    return n.op == IrOp::kSelect && FusableSelect(n.select);
  };
  std::vector<char> absorbed(program->nodes.size(), 0);
  for (int i = static_cast<int>(program->nodes.size()) - 1; i >= 0; --i) {
    if (absorbed[i] || !fusable(i)) continue;
    // Walk down the chain of single-use fusable ops below the top node.
    std::vector<int> chain = {i};
    int cursor = program->nodes[i].inputs[0];
    while (fusable(cursor) && consumers[cursor] == 1 && !is_root[cursor]) {
      chain.push_back(cursor);
      cursor = program->nodes[cursor].inputs[0];
    }
    if (chain.size() < 2) continue;
    // chain holds top→bottom; stages run bottom→top over source `cursor`.
    IrNode fused;
    fused.op = IrOp::kFusedChain;
    fused.inputs.push_back(cursor);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const IrNode& link = program->nodes[*it];
      IrStage stage;
      if (link.op == IrOp::kSelect) {
        stage.kind = IrStage::Kind::kSelect;
        stage.select = link.select;
      } else {
        stage.kind = link.op == IrOp::kIncluding ? IrStage::Kind::kIncluding
                                                 : IrStage::Kind::kIncluded;
        stage.rhs = link.inputs[1];
        fused.inputs.push_back(link.inputs[1]);
      }
      fused.stages.push_back(std::move(stage));
      if (*it != chain.front()) absorbed[*it] = 1;
    }
    program->nodes[i] = std::move(fused);
  }
  Canonicalize(program);
}

void PassManager::Run(IrProgram* program,
                      std::vector<PassTrace>* trace) const {
  if (trace != nullptr) trace->push_back({"lower", program->Dump()});
  for (const Entry& entry : passes_) {
    entry.pass(program);
    if (trace != nullptr) trace->push_back({entry.name, program->Dump()});
  }
}

void RunPasses(IrProgram* program, const IrPlanOptions& options,
               const RegionIndex* regions, const WordIndex* words,
               std::vector<PassTrace>* trace) {
  PassManager manager;
  if (options.enable_cse) {
    manager.Add("cse", [&](IrProgram* p) {
      PassCse(p, options.inject_bad_cse);
    });
  }
  if (options.enable_pushdown) {
    manager.Add("pushdown",
                [&](IrProgram* p) { PassPushdown(p, regions, words); });
  }
  if (options.enable_ordering) {
    manager.Add("order",
                [&](IrProgram* p) { PassOrderOperands(p, regions, words); });
  }
  if (options.enable_fusion) {
    manager.Add("fuse", [](IrProgram* p) { PassFuse(p); });
  }
  // Final annotation so dumps and --explain show the costs the executor
  // will actually see.
  manager.Add("annotate",
              [&](IrProgram* p) { AnnotateIrCosts(p, regions, words); });
  manager.Run(program, trace);
}

}  // namespace qof
