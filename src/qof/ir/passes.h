#ifndef QOF_IR_PASSES_H_
#define QOF_IR_PASSES_H_

#include <functional>
#include <string>
#include <vector>

#include "qof/ir/ir.h"
#include "qof/region/region_index.h"
#include "qof/text/word_index.h"

namespace qof {

/// Knobs for the optimizer pass pipeline. All passes are on by default;
/// the per-pass switches exist for the golden tests and ablation benches.
/// `inject_bad_cse` is a planted bug for the differential fuzzer: CSE
/// merges selection nodes while ignoring their word operands, so two
/// non-identical selections collapse into one.
struct IrPlanOptions {
  bool enable_cse = true;
  bool enable_pushdown = true;
  bool enable_ordering = true;
  bool enable_fusion = true;
  bool inject_bad_cse = false;
  /// Executor knobs carried alongside the pass switches so tests and the
  /// fuzzer can reach them through FileQuerySystem::SetIrOptions.
  /// morsel_grain = 0 keeps the executor default; inject_racy_merge is
  /// the planted `--inject racy-merge` bug (see IrExecutor).
  size_t morsel_grain = 0;
  bool inject_racy_merge = false;
};

/// One recorded pipeline step: the program dump after the named pass ran
/// ("lower" records the pre-pass state).
struct PassTrace {
  std::string name;
  std::string dump;
};

/// Runs small composable passes over an IrProgram in registration order,
/// canonicalizing (topo order, dead-node removal, fresh keys) after each
/// one and optionally recording per-pass dumps for --explain and goldens.
class PassManager {
 public:
  void Add(std::string name, std::function<void(IrProgram*)> pass) {
    passes_.push_back({std::move(name), std::move(pass)});
  }

  void Run(IrProgram* program, std::vector<PassTrace>* trace) const;

 private:
  struct Entry {
    std::string name;
    std::function<void(IrProgram*)> pass;
  };
  std::vector<Entry> passes_;
};

/// The standard pipeline: cse → pushdown → order → fuse, honoring
/// `options`. `regions`/`words` feed the cost annotations (null is
/// allowed: every cardinality then estimates as zero and ordering falls
/// back to the deterministic key tie-break). Cost annotations are
/// refreshed after the last pass so dumps and --explain stay annotated.
void RunPasses(IrProgram* program, const IrPlanOptions& options,
               const RegionIndex* regions, const WordIndex* words,
               std::vector<PassTrace>* trace = nullptr);

// --- individual passes (exposed for the per-pass golden tests) ---------

/// Common-subexpression elimination: structurally identical nodes (equal
/// canonical keys) merge into the lowest-id occurrence, across all of the
/// program's roots. A shared node then evaluates once per query
/// regardless of cache state.
void PassCse(IrProgram* program, bool inject_bad_cse = false);

/// Pushes selections toward the loads: through n-ary ∩ (into the
/// cheapest operand), − (into the minuend) and the left operand of
/// ⊃/⊂/⊃d/⊂d; corpus-free selections additionally distribute over ∪.
/// Never through ι/ω, whose semantics depend on the whole member set.
void PassPushdown(IrProgram* program, const RegionIndex* regions,
                  const WordIndex* words);

/// Cost-based operand ordering for n-ary ∩/∪: operands sort by estimated
/// cardinality ascending with the canonical key as deterministic
/// tie-break, so the left-fold keeps intermediates small.
void PassOrderOperands(IrProgram* program, const RegionIndex* regions,
                       const WordIndex* words);

/// Fuses chains of per-member stages (fusable selections, ⊃, ⊂) into
/// single kFusedChain nodes executed over batched region runs.
void PassFuse(IrProgram* program);

/// Annotates every node with CostEstimator-equivalent cardinality/work
/// estimates over the shared CostModel table.
void AnnotateIrCosts(IrProgram* program, const RegionIndex* regions,
                     const WordIndex* words);

}  // namespace qof

#endif  // QOF_IR_PASSES_H_
