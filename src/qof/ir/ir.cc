#include "qof/ir/ir.h"

#include <algorithm>

namespace qof {
namespace {

std::string Ref(int id) { return "%" + std::to_string(id); }

/// Folds an n-ary node's input keys back into the equivalent binary
/// tree's serialization, so keys match RegionExpr::ToString() exactly.
std::string FoldKey(const IrProgram& p, const std::vector<int>& inputs,
                    const char* infix) {
  std::string acc = p.nodes[inputs[0]].key;
  for (size_t i = 1; i < inputs.size(); ++i) {
    acc = "(" + acc + " " + infix + " " + p.nodes[inputs[i]].key + ")";
  }
  return acc;
}

std::string StageKey(const IrProgram& p, const IrStage& stage,
                     std::string acc) {
  switch (stage.kind) {
    case IrStage::Kind::kSelect:
      return stage.select.Describe(acc);
    case IrStage::Kind::kIncluding:
      return "(" + acc + " > " + p.nodes[stage.rhs].key + ")";
    case IrStage::Kind::kIncluded:
      return "(" + acc + " < " + p.nodes[stage.rhs].key + ")";
  }
  return acc;
}

}  // namespace

std::string ComputeNodeKey(const IrProgram& p, const IrNode& n) {
  switch (n.op) {
    case IrOp::kLoad:
      return n.name;
    case IrOp::kUnion:
      return FoldKey(p, n.inputs, "|");
    case IrOp::kIntersect:
      return FoldKey(p, n.inputs, "&");
    case IrOp::kDifference:
      return FoldKey(p, n.inputs, "-");
    case IrOp::kInnermost:
      return "innermost(" + p.nodes[n.inputs[0]].key + ")";
    case IrOp::kOutermost:
      return "outermost(" + p.nodes[n.inputs[0]].key + ")";
    case IrOp::kIncluding:
      return "(" + p.nodes[n.inputs[0]].key + " > " +
             p.nodes[n.inputs[1]].key + ")";
    case IrOp::kIncluded:
      return "(" + p.nodes[n.inputs[0]].key + " < " +
             p.nodes[n.inputs[1]].key + ")";
    case IrOp::kDirectlyIncluding:
      return "(" + p.nodes[n.inputs[0]].key + " >> " +
             p.nodes[n.inputs[1]].key + ")";
    case IrOp::kDirectlyIncluded:
      return "(" + p.nodes[n.inputs[0]].key + " << " +
             p.nodes[n.inputs[1]].key + ")";
    case IrOp::kSelect:
      return n.select.Describe(p.nodes[n.inputs[0]].key);
    case IrOp::kFusedChain: {
      // The composition of the stages over the source — identical to the
      // serialization of the chain before fusion, so a fused node still
      // shares EvalCache entries with its unfused (or tree) equivalent.
      std::string acc = p.nodes[n.inputs[0]].key;
      for (const IrStage& stage : n.stages) acc = StageKey(p, stage, acc);
      return acc;
    }
    case IrOp::kProject:
      return "project(" + p.nodes[n.inputs[0]].key + ", " +
             p.nodes[n.inputs[1]].key + ")";
    case IrOp::kJoin:
      return "join(" + p.nodes[n.inputs[0]].key + ", " +
             p.nodes[n.inputs[1]].key + ", " + p.nodes[n.inputs[2]].key +
             ")";
  }
  return "<invalid>";
}

std::vector<std::string> FusedStageKeys(const IrProgram& program,
                                        const IrNode& node) {
  std::vector<std::string> out;
  std::string acc = program.nodes[node.inputs[0]].key;
  for (const IrStage& stage : node.stages) {
    acc = StageKey(program, stage, acc);
    out.push_back(acc);
  }
  return out;
}

const char* IrOpName(IrOp op) {
  switch (op) {
    case IrOp::kLoad:
      return "load";
    case IrOp::kUnion:
      return "union";
    case IrOp::kIntersect:
      return "intersect";
    case IrOp::kDifference:
      return "difference";
    case IrOp::kInnermost:
      return "innermost";
    case IrOp::kOutermost:
      return "outermost";
    case IrOp::kIncluding:
      return "including";
    case IrOp::kIncluded:
      return "included";
    case IrOp::kDirectlyIncluding:
      return "directly-including";
    case IrOp::kDirectlyIncluded:
      return "directly-included";
    case IrOp::kSelect:
      return "select";
    case IrOp::kFusedChain:
      return "fuse";
    case IrOp::kProject:
      return "project";
    case IrOp::kJoin:
      return "join";
  }
  return "<invalid>";
}

void RecomputeKeys(IrProgram* program) {
  // Topological order makes one ascending sweep sufficient.
  for (size_t i = 0; i < program->nodes.size(); ++i) {
    program->nodes[i].key = ComputeNodeKey(*program, program->nodes[i]);
  }
}

std::string IrProgram::Dump() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const IrNode& n = nodes[i];
    out += Ref(static_cast<int>(i)) + " = " + IrOpName(n.op);
    switch (n.op) {
      case IrOp::kLoad:
        out += " " + n.name;
        break;
      case IrOp::kSelect:
        out += " " + n.select.Describe(Ref(n.inputs[0]));
        break;
      case IrOp::kFusedChain: {
        out += " " + Ref(n.inputs[0]);
        for (const IrStage& stage : n.stages) {
          out += " :: ";
          switch (stage.kind) {
            case IrStage::Kind::kSelect:
              out += stage.select.Describe("_");
              break;
            case IrStage::Kind::kIncluding:
              out += "(_ > " + Ref(stage.rhs) + ")";
              break;
            case IrStage::Kind::kIncluded:
              out += "(_ < " + Ref(stage.rhs) + ")";
              break;
          }
        }
        break;
      }
      default:
        for (int input : n.inputs) out += " " + Ref(input);
        break;
    }
    if (n.est_cardinality >= 0) {
      out += "  ; card~" +
             std::to_string(static_cast<long long>(n.est_cardinality)) +
             " work~" + std::to_string(static_cast<long long>(n.est_work));
    }
    out += "\n";
  }
  out += "roots:";
  if (candidates >= 0) out += " candidates=" + Ref(candidates);
  if (projection >= 0) out += " projection=" + Ref(projection);
  if (project >= 0) out += " project=" + Ref(project);
  if (join_lhs >= 0) out += " join_lhs=" + Ref(join_lhs);
  if (join_rhs >= 0) out += " join_rhs=" + Ref(join_rhs);
  if (join >= 0) out += " join=" + Ref(join);
  out += "\n";
  return out;
}

void Canonicalize(IrProgram* program) {
  // Deterministic DFS post-order from the roots in fixed root order:
  // inputs land before their consumers, unreachable nodes are dropped,
  // and the result depends only on the program's structure.
  std::vector<int> order;
  std::vector<int> remap(program->nodes.size(), -1);
  std::vector<char> visiting(program->nodes.size(), 0);
  auto visit = [&](int root, auto&& self) -> void {
    if (root < 0 || remap[root] >= 0 || visiting[root]) return;
    visiting[root] = 1;
    for (int input : program->nodes[root].inputs) self(input, self);
    visiting[root] = 0;
    remap[root] = static_cast<int>(order.size());
    order.push_back(root);
  };
  for (int root : {program->candidates, program->projection,
                   program->project, program->join_lhs, program->join_rhs,
                   program->join}) {
    visit(root, visit);
  }
  std::vector<IrNode> nodes;
  nodes.reserve(order.size());
  for (int old_id : order) {
    IrNode n = std::move(program->nodes[old_id]);
    for (int& input : n.inputs) input = remap[input];
    for (IrStage& stage : n.stages) {
      if (stage.rhs >= 0) stage.rhs = remap[stage.rhs];
    }
    nodes.push_back(std::move(n));
  }
  program->nodes = std::move(nodes);
  auto fix = [&](int& root) {
    if (root >= 0) root = remap[root];
  };
  fix(program->candidates);
  fix(program->projection);
  fix(program->project);
  fix(program->join_lhs);
  fix(program->join_rhs);
  fix(program->join);
  RecomputeKeys(program);
}

namespace {

int LowerExpr(const RegionExpr& e, IrProgram* p);

/// Flattens a same-kind spine of binary ∪/∩ into n-ary operands in
/// left-to-right order (− flattens only its left spine: a−b−c parses as
/// (a−b)−c, so the operand list is [a, b, c]).
void FlattenOperands(const RegionExpr& e, ExprKind kind, bool left_only,
                     IrProgram* p, std::vector<int>* operands) {
  if (e.kind() == kind) {
    FlattenOperands(*e.left(), kind, left_only, p, operands);
    if (left_only) {
      operands->push_back(LowerExpr(*e.right(), p));
    } else {
      FlattenOperands(*e.right(), kind, left_only, p, operands);
    }
    return;
  }
  operands->push_back(LowerExpr(e, p));
}

int Emit(IrProgram* p, IrNode node) {
  p->nodes.push_back(std::move(node));
  return static_cast<int>(p->nodes.size()) - 1;
}

int LowerExpr(const RegionExpr& e, IrProgram* p) {
  IrNode node;
  switch (e.kind()) {
    case ExprKind::kName:
      node.op = IrOp::kLoad;
      node.name = e.name();
      return Emit(p, std::move(node));
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      node.op = e.kind() == ExprKind::kUnion        ? IrOp::kUnion
                : e.kind() == ExprKind::kIntersect  ? IrOp::kIntersect
                                                    : IrOp::kDifference;
      FlattenOperands(e, e.kind(),
                      /*left_only=*/e.kind() == ExprKind::kDifference, p,
                      &node.inputs);
      return Emit(p, std::move(node));
    }
    case ExprKind::kInnermost:
    case ExprKind::kOutermost:
      node.op = e.kind() == ExprKind::kInnermost ? IrOp::kInnermost
                                                 : IrOp::kOutermost;
      node.inputs.push_back(LowerExpr(*e.child(), p));
      return Emit(p, std::move(node));
    case ExprKind::kIncluding:
    case ExprKind::kIncluded:
    case ExprKind::kDirectlyIncluding:
    case ExprKind::kDirectlyIncluded:
      node.op = e.kind() == ExprKind::kIncluding ? IrOp::kIncluding
                : e.kind() == ExprKind::kIncluded ? IrOp::kIncluded
                : e.kind() == ExprKind::kDirectlyIncluding
                    ? IrOp::kDirectlyIncluding
                    : IrOp::kDirectlyIncluded;
      node.inputs.push_back(LowerExpr(*e.left(), p));
      node.inputs.push_back(LowerExpr(*e.right(), p));
      return Emit(p, std::move(node));
    default:
      // The remaining kinds are all selections.
      node.op = IrOp::kSelect;
      node.select.kind = e.kind();
      node.select.word = e.word();
      node.select.word2 = e.word2();
      node.select.param = e.param();
      node.inputs.push_back(LowerExpr(*e.child(), p));
      return Emit(p, std::move(node));
  }
}

}  // namespace

IrProgram LowerToIr(const RegionExpr* candidates,
                    const RegionExpr* projection,
                    const RegionExpr* join_lhs, const RegionExpr* join_rhs) {
  IrProgram p;
  if (candidates != nullptr) p.candidates = LowerExpr(*candidates, &p);
  if (projection != nullptr) p.projection = LowerExpr(*projection, &p);
  if (p.projection >= 0 && p.candidates >= 0) {
    IrNode project;
    project.op = IrOp::kProject;
    project.inputs = {p.projection, p.candidates};
    p.project = Emit(&p, std::move(project));
  }
  if (join_lhs != nullptr) p.join_lhs = LowerExpr(*join_lhs, &p);
  if (join_rhs != nullptr) p.join_rhs = LowerExpr(*join_rhs, &p);
  if (p.candidates >= 0 && p.join_lhs >= 0 && p.join_rhs >= 0) {
    IrNode join;
    join.op = IrOp::kJoin;
    join.inputs = {p.candidates, p.join_lhs, p.join_rhs};
    p.join = Emit(&p, std::move(join));
  }
  RecomputeKeys(&p);
  return p;
}

}  // namespace qof
