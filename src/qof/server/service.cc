#include "qof/server/service.h"

#include <algorithm>
#include <future>
#include <utility>

namespace qof {
namespace {

/// min over "0 = unlimited" values: the tighter of two ceilings.
uint64_t TightenLimit(uint64_t requested, uint64_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0) return ceiling;
  return std::min(requested, ceiling);
}

}  // namespace

QueryService::QueryService(FileQuerySystem* system, ServiceOptions options)
    : system_(system),
      options_(options),
      queue_(options.workers, options.max_queued) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { queue_.Shutdown(); }

Result<uint64_t> QueryService::OpenSession() {
  QOF_ASSIGN_OR_RETURN(SnapshotRef snapshot, system_->AcquireSnapshot());
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_id_++;
  sessions_.emplace(
      id, std::make_shared<ClientSession>(id, std::move(snapshot)));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.sessions_opened;
    stats_.sessions_open = sessions_.size();
  }
  return id;
}

Status QueryService::CloseSession(uint64_t session_id) {
  std::shared_ptr<ClientSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(session_id));
    }
    session = std::move(it->second);
    sessions_.erase(it);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.sessions_open = sessions_.size();
  }
  // In-flight queries hold their own SnapshotRef + session reference;
  // the pin releases when the last of them finishes.
  return Status::OK();
}

std::shared_ptr<ClientSession> QueryService::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

QueryOptions QueryService::EffectiveOptions(const ClientSession& session,
                                            QueryOptions options) const {
  const QueryOptions& limits = options_.limits;
  options.deadline_ms = TightenLimit(options.deadline_ms, limits.deadline_ms);
  options.max_bytes = TightenLimit(options.max_bytes, limits.max_bytes);
  options.max_regions = TightenLimit(options.max_regions, limits.max_regions);
  // Thread-budget composition: each service worker may fan a query out
  // onto exec workers, so total threads ≈ workers × exec_workers. The
  // ceiling (limits.exec_workers, default 1 = serial queries) keeps that
  // product under operator control; 0 on either side means "one per
  // hardware thread" before the min is taken.
  options.exec_workers =
      std::min(EffectiveParallelism(options.exec_workers),
               EffectiveParallelism(limits.exec_workers));
  if (options.cancel == nullptr) {
    options.cancel = session.cancel_token();
  }
  return options;
}

Status QueryService::SubmitQuery(
    uint64_t session_id, std::string fql, const QueryOptions& options,
    std::function<void(Result<QueryResult>)> done) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  QueryOptions effective = EffectiveOptions(*session, options);
  // Snapshot captured at submit time: a repin (mutation / refresh)
  // between submit and execution must not retroactively move the query.
  SnapshotRef snapshot = session->snapshot();
  bool accepted = queue_.TrySubmit(
      [this, session = std::move(session), snapshot = std::move(snapshot),
       fql = std::move(fql), effective, done = std::move(done)]() {
        SnapshotRef target = snapshot;
        if (options_.inject_stale_snapshot) {
          // Planted bug: serve the query from the *live* state, breaking
          // the session's repeatable-read pin.
          auto fresh = system_->AcquireSnapshot();
          if (fresh.ok()) target = *std::move(fresh);
        }
        Result<QueryResult> result = system_->ExecuteOnSnapshot(
            *target, fql, ExecutionMode::kAuto, effective);
        session->RecordQuery();
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.queries_executed;
          if (!result.ok()) ++stats_.queries_failed;
        }
        if (done) done(std::move(result));
      });
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  if (!accepted) {
    ++stats_.queries_rejected;
    return Status::Unavailable(
        "query queue full (" + std::to_string(queue_.queued()) +
        " queued); retry");
  }
  ++stats_.queries_submitted;
  return Status::OK();
}

Result<QueryResult> QueryService::Query(uint64_t session_id,
                                        std::string_view fql,
                                        const QueryOptions& options) {
  auto promise = std::make_shared<std::promise<Result<QueryResult>>>();
  std::future<Result<QueryResult>> future = promise->get_future();
  Status submitted = SubmitQuery(
      session_id, std::string(fql), options,
      [promise](Result<QueryResult> result) {
        promise->set_value(std::move(result));
      });
  if (!submitted.ok()) return submitted;
  return future.get();
}

Status QueryService::RepinToCurrent(ClientSession& session) {
  QOF_ASSIGN_OR_RETURN(SnapshotRef snapshot, system_->AcquireSnapshot());
  session.Repin(std::move(snapshot));
  return Status::OK();
}

Status QueryService::AddFile(uint64_t session_id, std::string name,
                             std::string_view text) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  QOF_RETURN_IF_ERROR(system_->AddFile(std::move(name), text));
  session->RecordMutation();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.mutations;
  }
  return RepinToCurrent(*session);
}

Status QueryService::UpdateFile(uint64_t session_id, std::string_view name,
                                std::string_view text) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  QOF_RETURN_IF_ERROR(system_->UpdateFile(name, text));
  session->RecordMutation();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.mutations;
  }
  return RepinToCurrent(*session);
}

Status QueryService::RemoveFile(uint64_t session_id, std::string_view name) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  QOF_RETURN_IF_ERROR(system_->RemoveFile(name));
  session->RecordMutation();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.mutations;
  }
  return RepinToCurrent(*session);
}

Status QueryService::Compact(uint64_t session_id) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  QOF_RETURN_IF_ERROR(system_->CompactIndexes());
  session->RecordMutation();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.mutations;
  }
  return RepinToCurrent(*session);
}

Status QueryService::Refresh(uint64_t session_id) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.refreshes;
  }
  return RepinToCurrent(*session);
}

Status QueryService::CancelActive(uint64_t session_id) {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  session->CancelActive();
  return Status::OK();
}

Result<uint64_t> QueryService::SessionGeneration(uint64_t session_id) const {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  return session->pinned_generation();
}

Result<CacheEpoch> QueryService::SessionEpoch(uint64_t session_id) const {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  return session->pinned_epoch();
}

Result<uint64_t> QueryService::SessionQueryCount(uint64_t session_id) const {
  std::shared_ptr<ClientSession> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id));
  }
  return session->queries();
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace qof
