#ifndef QOF_SERVER_PROTOCOL_H_
#define QOF_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// The qof_serve line protocol. One command per line, one or more
/// response lines per command, every response line tagged with the
/// session id it answers so interleaved async responses stay
/// attributable:
///
///   OPEN                          -> OK 0 session=<sid> generation=<g>
///   QUERY <sid> <fql...>          -> ROW <sid> <escaped-row>*
///                                    OK <sid> rows=<n> strategy=<s> ...
///   ADD <sid> <name> <escaped>    -> OK <sid> generation=<g>
///   UPDATE <sid> <name> <escaped> -> OK <sid> generation=<g>
///   REMOVE <sid> <name>           -> OK <sid> generation=<g>
///   COMPACT <sid>                 -> OK <sid> generation=<g>
///   REFRESH <sid>                 -> OK <sid> generation=<g>
///   STATS <sid>                   -> OK <sid> <key=value...>
///   CANCEL <sid>                  -> OK <sid> cancelled
///   CLOSE <sid>                   -> OK <sid> closed
///   QUIT                          -> OK 0 bye
///
/// Errors answer `ERR <sid> <status-code> <escaped-message>`. File text
/// payloads (and row/message fields on the way out) are escaped so every
/// command and response stays a single line: backslash, newline, carriage
/// return map to `\\`, `\n`, `\r`. File names and FQL must not contain
/// newlines; names must not contain spaces (they delimit the text field).
enum class CommandKind {
  kOpen,
  kQuery,
  kAdd,
  kUpdate,
  kRemove,
  kCompact,
  kRefresh,
  kStats,
  kCancel,
  kClose,
  kQuit,
};

struct Command {
  CommandKind kind = CommandKind::kQuit;
  uint64_t session = 0;  // 0 for OPEN / QUIT
  std::string name;      // ADD / UPDATE / REMOVE file name
  std::string text;      // ADD / UPDATE payload (unescaped); QUERY fql
};

/// Escapes a payload to one protocol line field (`\\`, `\n`, `\r`).
std::string EscapeField(std::string_view text);

/// Inverse of EscapeField. Rejects dangling or unknown escapes.
Result<std::string> UnescapeField(std::string_view field);

/// Parses one command line. Unknown verbs, missing fields, malformed
/// session ids and bad escapes all return kInvalidArgument.
Result<Command> ParseCommand(std::string_view line);

/// Response formatting, newline included.
std::string FormatOk(uint64_t session, std::string_view detail);
std::string FormatErr(uint64_t session, const Status& status);
std::string FormatRow(uint64_t session, std::string_view row);

}  // namespace qof

#endif  // QOF_SERVER_PROTOCOL_H_
