#ifndef QOF_SERVER_SESSION_H_
#define QOF_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "qof/engine/snapshot.h"
#include "qof/exec/exec_context.h"

namespace qof {

/// One client's view of the query service: a pinned index snapshot
/// (repeatable reads — the session sees one generation until it mutates
/// or refreshes), a cancellation handle for its in-flight queries, and
/// per-session counters. Thread-safe: the connection thread repins /
/// cancels while worker threads read the snapshot and finish queries.
class ClientSession {
 public:
  ClientSession(uint64_t id, SnapshotRef snapshot)
      : id_(id),
        snapshot_(std::move(snapshot)),
        cancel_(std::make_shared<CancelToken>()) {}

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  uint64_t id() const { return id_; }

  /// The snapshot queries submitted right now will run against.
  SnapshotRef snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  /// Points the session at a newer snapshot (after its own mutation —
  /// read-your-writes — or an explicit REFRESH). Queries already in
  /// flight keep the snapshot they captured at submit time.
  void Repin(SnapshotRef snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = std::move(snapshot);
  }

  uint64_t pinned_generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_->maintain.generation;
  }

  CacheEpoch pinned_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_->epoch;
  }

  /// The token queries submitted right now carry (unless the caller
  /// supplied its own). CancelActive swaps in a fresh token, so
  /// cancellation hits exactly the queries in flight at that moment.
  std::shared_ptr<CancelToken> cancel_token() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancel_;
  }

  /// Cancels every query currently carrying the session token; later
  /// submissions get a fresh, uncancelled token.
  void CancelActive() {
    std::shared_ptr<CancelToken> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      old = std::move(cancel_);
      cancel_ = std::make_shared<CancelToken>();
    }
    old->Cancel();
  }

  void RecordQuery() { queries_.fetch_add(1, std::memory_order_relaxed); }
  void RecordMutation() {
    mutations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  uint64_t mutations() const {
    return mutations_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  const uint64_t id_;
  SnapshotRef snapshot_;
  std::shared_ptr<CancelToken> cancel_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> mutations_{0};
};

}  // namespace qof

#endif  // QOF_SERVER_SESSION_H_
