#ifndef QOF_SERVER_SERVICE_H_
#define QOF_SERVER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "qof/engine/system.h"
#include "qof/server/session.h"
#include "qof/util/result.h"
#include "qof/util/status.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// Service configuration. `limits` are per-query ceilings: a session may
/// ask for less, never for more — each nonzero field clamps the
/// corresponding QueryOptions field of every submitted query, so one
/// client cannot exhaust the service however generous its own options.
struct ServiceOptions {
  /// Query worker threads (resolved via EffectiveParallelism; 0 = one
  /// per hardware thread).
  int workers = 2;
  /// Queries accepted but not yet running; beyond this SubmitQuery
  /// refuses with kUnavailable (admission control). 0 = unbounded.
  size_t max_queued = 64;
  /// Per-query governance ceilings (deadline_ms / max_bytes /
  /// max_regions; zero fields impose no ceiling). limits.exec_workers
  /// additionally caps each query's parallel-execution fan-out (default
  /// 1: service queries run serial unless the operator raises it — the
  /// thread budget is roughly workers × exec_workers).
  QueryOptions limits;
  /// Planted bug for the fuzzer (`--inject stale-snapshot`): queries run
  /// against a freshly acquired live snapshot instead of the session's
  /// pin, silently breaking repeatable reads. Never enable outside
  /// fuzzing/tests.
  bool inject_stale_snapshot = false;
};

struct ServiceStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_open = 0;
  uint64_t queries_submitted = 0;  // accepted by admission control
  uint64_t queries_rejected = 0;   // kUnavailable at the queue
  uint64_t queries_executed = 0;   // completed (ok or error)
  uint64_t queries_failed = 0;     // completed with a non-OK status
  uint64_t mutations = 0;
  uint64_t refreshes = 0;
};

/// The multi-client query service: sessions with generation-snapshot
/// isolation over one FileQuerySystem, a bounded worker pool for query
/// execution, and admission control at the queue.
///
/// Concurrency model (see FileQuerySystem's snapshot contract):
///  - Every query runs on a worker thread against the snapshot its
///    session had pinned at submit time — never against live state — so
///    queries from any number of sessions run concurrently with each
///    other and with mutations.
///  - Mutations are serialized by the engine. After a session's own
///    mutation the service repins that session to the new state
///    (read-your-writes); other sessions keep their pins until they
///    mutate, REFRESH, or close (repeatable reads).
///  - CancelActive(sid) cancels that session's in-flight queries from
///    any thread; they unwind with kCancelled at the next governance
///    checkpoint.
///
/// The system must outlive the service. The service takes over all
/// mutation traffic: callers must not mutate the system directly while
/// the service runs (live Execute on the system is likewise unsafe).
class QueryService {
 public:
  /// The system must have built indexes (snapshots require them).
  QueryService(FileQuerySystem* system, ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a session pinned to the current index state.
  Result<uint64_t> OpenSession();

  /// Drops the session and its pin (freeing copy-on-write state its
  /// snapshot kept alive, once in-flight queries finish).
  Status CloseSession(uint64_t session_id);

  /// Submits `fql` for asynchronous execution on the session's pinned
  /// snapshot; `done` runs on a worker thread with the result. Returns
  /// kUnavailable (without calling `done`) when the queue is full, and
  /// kNotFound for unknown sessions. `options` are clamped to the
  /// service limits; when `options.cancel` is null the session's cancel
  /// token is attached, so CancelActive reaches the query.
  Status SubmitQuery(uint64_t session_id, std::string fql,
                     const QueryOptions& options,
                     std::function<void(Result<QueryResult>)> done);

  /// Blocking convenience wrapper around SubmitQuery.
  Result<QueryResult> Query(uint64_t session_id, std::string_view fql,
                            const QueryOptions& options = {});

  /// Mutations: applied to the live system (serialized internally),
  /// then the mutating session is repinned to the post-mutation state.
  Status AddFile(uint64_t session_id, std::string name,
                 std::string_view text);
  Status UpdateFile(uint64_t session_id, std::string_view name,
                    std::string_view text);
  Status RemoveFile(uint64_t session_id, std::string_view name);
  Status Compact(uint64_t session_id);

  /// Repins the session to the current index state without mutating.
  Status Refresh(uint64_t session_id);

  /// Cancels the session's in-flight queries (cross-thread safe).
  Status CancelActive(uint64_t session_id);

  /// The generation / epoch the session's queries currently see.
  Result<uint64_t> SessionGeneration(uint64_t session_id) const;
  Result<CacheEpoch> SessionEpoch(uint64_t session_id) const;
  Result<uint64_t> SessionQueryCount(uint64_t session_id) const;

  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }
  FileQuerySystem* system() const { return system_; }

  /// Stops intake, drains accepted queries, joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

 private:
  std::shared_ptr<ClientSession> FindSession(uint64_t session_id) const;

  /// Applies the clamp + session cancel token to one query's options.
  QueryOptions EffectiveOptions(const ClientSession& session,
                                QueryOptions options) const;

  /// Repins `session` to the current state; shared by mutations
  /// (read-your-writes) and Refresh.
  Status RepinToCurrent(ClientSession& session);

  FileQuerySystem* const system_;
  const ServiceOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ClientSession>> sessions_;
  uint64_t next_session_id_ = 1;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;

  /// Last: destroyed first, so draining workers still find the maps.
  TaskQueue queue_;
};

}  // namespace qof

#endif  // QOF_SERVER_SERVICE_H_
