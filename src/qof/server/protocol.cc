#include "qof/server/protocol.h"

#include <cstdlib>
#include <utility>
#include <vector>

namespace qof {
namespace {

/// Single-token code names so ERR lines split on spaces cleanly
/// (StatusCodeToString's display names contain spaces).
std::string_view CodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kNotImplemented: return "not-implemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kBudgetExhausted: return "budget-exhausted";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "internal";
}

/// Splits off the next space-delimited token; empty when exhausted.
std::string_view NextToken(std::string_view* rest) {
  while (!rest->empty() && rest->front() == ' ') rest->remove_prefix(1);
  size_t end = rest->find(' ');
  std::string_view token = rest->substr(0, end);
  rest->remove_prefix(end == std::string_view::npos ? rest->size() : end);
  return token;
}

Result<uint64_t> ParseSession(std::string_view token) {
  if (token.empty()) {
    return Status::InvalidArgument("missing session id");
  }
  uint64_t value = 0;
  for (char ch : token) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument("bad session id: " +
                                     std::string(token));
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  return value;
}

}  // namespace

std::string EscapeField(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += ch; break;
    }
  }
  return out;
}

Result<std::string> UnescapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      out += field[i];
      continue;
    }
    if (i + 1 >= field.size()) {
      return Status::InvalidArgument("dangling escape in field");
    }
    switch (field[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        return Status::InvalidArgument("unknown escape \\" +
                                       std::string(1, field[i]));
    }
  }
  return out;
}

Result<Command> ParseCommand(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::string_view rest = line;
  std::string_view verb = NextToken(&rest);
  if (verb.empty()) {
    return Status::InvalidArgument("empty command");
  }

  Command command;
  if (verb == "OPEN") {
    command.kind = CommandKind::kOpen;
    return command;
  }
  if (verb == "QUIT") {
    command.kind = CommandKind::kQuit;
    return command;
  }

  QOF_ASSIGN_OR_RETURN(command.session, ParseSession(NextToken(&rest)));

  if (verb == "QUERY") {
    command.kind = CommandKind::kQuery;
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) {
      return Status::InvalidArgument("QUERY needs an FQL string");
    }
    command.text = std::string(rest);
    return command;
  }
  if (verb == "ADD" || verb == "UPDATE") {
    command.kind =
        verb == "ADD" ? CommandKind::kAdd : CommandKind::kUpdate;
    command.name = std::string(NextToken(&rest));
    if (command.name.empty()) {
      return Status::InvalidArgument(std::string(verb) +
                                     " needs a file name");
    }
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    QOF_ASSIGN_OR_RETURN(command.text, UnescapeField(rest));
    return command;
  }
  if (verb == "REMOVE") {
    command.kind = CommandKind::kRemove;
    command.name = std::string(NextToken(&rest));
    if (command.name.empty()) {
      return Status::InvalidArgument("REMOVE needs a file name");
    }
    return command;
  }
  if (verb == "COMPACT") { command.kind = CommandKind::kCompact; return command; }
  if (verb == "REFRESH") { command.kind = CommandKind::kRefresh; return command; }
  if (verb == "STATS") { command.kind = CommandKind::kStats; return command; }
  if (verb == "CANCEL") { command.kind = CommandKind::kCancel; return command; }
  if (verb == "CLOSE") { command.kind = CommandKind::kClose; return command; }
  return Status::InvalidArgument("unknown command: " + std::string(verb));
}

std::string FormatOk(uint64_t session, std::string_view detail) {
  std::string out = "OK " + std::to_string(session);
  if (!detail.empty()) {
    out += ' ';
    out += detail;
  }
  out += '\n';
  return out;
}

std::string FormatErr(uint64_t session, const Status& status) {
  std::string out = "ERR " + std::to_string(session) + ' ';
  out += CodeToken(status.code());
  out += ' ';
  out += EscapeField(status.message());
  out += '\n';
  return out;
}

std::string FormatRow(uint64_t session, std::string_view row) {
  return "ROW " + std::to_string(session) + ' ' + EscapeField(row) + '\n';
}

}  // namespace qof
