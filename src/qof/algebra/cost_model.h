#ifndef QOF_ALGEBRA_COST_MODEL_H_
#define QOF_ALGEBRA_COST_MODEL_H_

#include <string>

#include "qof/algebra/expr.h"
#include "qof/region/cost_model.h"
#include "qof/region/region_index.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// Estimated execution profile of a region expression.
struct CostEstimate {
  /// Estimated result cardinality (regions).
  double cardinality = 0;
  /// Estimated work units (≈ regions touched, with direct-inclusion
  /// operations weighted by kDirectFactor to reflect §3.1's "significantly
  /// more expensive" ⊃d).
  double work = 0;

  std::string ToString() const;
};

/// A simple cardinality/work estimator over the region algebra, driven by
/// index statistics (instance sizes, posting counts). The paper orders
/// expressions by operator count and kind (Def. 3.4); this model refines
/// that ordering with sizes so the engine can explain *why* the optimized
/// form wins, and ablation benches can check the rewrite direction agrees
/// with estimated cost.
///
/// Estimates are upper-bound-flavoured and deliberately crude (uniformity
/// assumptions, no containment correlation); they are for plan
/// explanation and ablation, not admission control.
class CostEstimator {
 public:
  /// Weight of a ⊃d/⊂d relative to ⊃/⊂ on the same operands; aliased
  /// from the shared CostModel table (see qof/region/cost_model.h).
  static constexpr double kDirectFactor = CostModel::kDirectFactor;

  CostEstimator(const RegionIndex* regions, const WordIndex* words)
      : regions_(regions), words_(words) {}

  /// Direction decision for the adaptive selection kernels: iterating the
  /// word's postings and probing the child set costs O(P log C), scanning
  /// the child and probing the postings costs O(C log P). Both probe
  /// factors are logarithmic, so the linear term decides; the region
  /// kernels' crossover ratio keeps the policy consistent across layers.
  static bool PreferPostingDriven(uint64_t posting_count,
                                  uint64_t child_size) {
    return CostModel::PreferPostingDriven(posting_count, child_size);
  }

  /// Estimates `expr`; unknown region names estimate as empty.
  Result<CostEstimate> Estimate(const RegionExpr& expr) const;

 private:
  const RegionIndex* regions_;
  const WordIndex* words_;
};

}  // namespace qof

#endif  // QOF_ALGEBRA_COST_MODEL_H_
