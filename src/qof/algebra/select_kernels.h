#ifndef QOF_ALGEBRA_SELECT_KERNELS_H_
#define QOF_ALGEBRA_SELECT_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qof/algebra/expr.h"
#include "qof/region/region.h"
#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// A selection's parameters, independent of how the query reached them
/// (tree expression node or IR node). `kind` must be one of the
/// ExprKind::kSelect* kinds.
struct SelectSpec {
  ExprKind kind = ExprKind::kSelectContains;
  std::string word;
  std::string word2;  // kSelectNear only
  uint64_t param = 0;  // kSelectNear distance / kSelectAtLeast count

  /// The serialized form of the equivalent expression node applied to
  /// `child` — used in error messages (mirrors RegionExpr::ToString).
  std::string Describe(const std::string& child) const;
};

/// Runs one selection over `child`, returning the matching members in
/// canonical order (a subset of `child` except for posting-driven
/// kSelectMatches, which synthesizes the spans — still canonical).
///
/// This is THE selection implementation: the tree evaluator and the IR
/// executor both call it, so their results are byte-identical by
/// construction. Dispatch between posting-driven and child-driven
/// directions follows kernel_policy() and the shared CostModel table.
///
/// `words` must be non-null; `corpus` may be null unless the spec needs
/// phrase verification. Text bytes read during phrase verification are
/// added to `*bytes_scanned` when non-null. `context` supplies the
/// expression rendering for error messages.
Result<std::vector<Region>> RunSelectKernel(const SelectSpec& spec,
                                            const RegionSet& child,
                                            const WordIndex* words,
                                            const Corpus* corpus,
                                            uint64_t* bytes_scanned,
                                            const std::string& context);

}  // namespace qof

#endif  // QOF_ALGEBRA_SELECT_KERNELS_H_
