#include "qof/algebra/inclusion_chain.h"

namespace qof {
namespace {

// Peels selections off a leaf; fails when the underlying node is not a
// plain region name (chains cannot nest arbitrary subexpressions).
Status PeelLeaf(const RegionExpr& expr, std::string* name,
                std::optional<ChainSelection>* sel) {
  const RegionExpr* e = &expr;
  *sel = std::nullopt;
  while (IsSelectKind(e->kind())) {
    if (sel->has_value()) {
      return Status::InvalidArgument(
          "inclusion chain position with stacked selections: " +
          expr.ToString());
    }
    *sel = ChainSelection{e->kind(), e->word(), e->word2(), e->param()};
    e = e->child().get();
  }
  if (e->kind() != ExprKind::kName) {
    return Status::InvalidArgument(
        "inclusion chain operand is not a region name: " + expr.ToString());
  }
  *name = e->name();
  return Status::OK();
}

bool IsContainsKind(ExprKind k) {
  return k == ExprKind::kIncluding || k == ExprKind::kDirectlyIncluding;
}

}  // namespace

std::pair<std::string, std::string> InclusionChain::Link(size_t i) const {
  if (orientation == Orientation::kContains) {
    return {names[i], names[i + 1]};
  }
  return {names[i + 1], names[i]};
}

Result<InclusionChain> InclusionChain::FromExpr(const RegionExpr& expr) {
  InclusionChain chain;
  const RegionExpr* e = &expr;

  if (!IsInclusionKind(e->kind())) {
    // A chain of length one: a bare (possibly selected) name.
    std::string name;
    std::optional<ChainSelection> sel;
    QOF_RETURN_IF_ERROR(PeelLeaf(*e, &name, &sel));
    chain.names.push_back(std::move(name));
    chain.sels.push_back(std::move(sel));
    return chain;
  }

  chain.orientation = IsContainsKind(e->kind()) ? Orientation::kContains
                                                : Orientation::kContained;
  // Walk the right spine: each node contributes its left operand as a
  // chain position; the final right operand closes the chain.
  while (IsInclusionKind(e->kind())) {
    bool contains_kind = IsContainsKind(e->kind());
    if (contains_kind !=
        (chain.orientation == Orientation::kContains)) {
      return Status::InvalidArgument(
          "inclusion chain mixes ⊃ and ⊂ orientations: " + expr.ToString());
    }
    std::string name;
    std::optional<ChainSelection> sel;
    if (IsInclusionKind(e->left()->kind())) {
      return Status::InvalidArgument(
          "inclusion chain is not right-grouped: " + expr.ToString());
    }
    QOF_RETURN_IF_ERROR(PeelLeaf(*e->left(), &name, &sel));
    chain.names.push_back(std::move(name));
    chain.sels.push_back(std::move(sel));
    chain.direct.push_back(e->kind() == ExprKind::kDirectlyIncluding ||
                           e->kind() == ExprKind::kDirectlyIncluded);
    e = e->right().get();
  }
  std::string name;
  std::optional<ChainSelection> sel;
  QOF_RETURN_IF_ERROR(PeelLeaf(*e, &name, &sel));
  chain.names.push_back(std::move(name));
  chain.sels.push_back(std::move(sel));
  return chain;
}

RegionExprPtr InclusionChain::ToExpr() const {
  auto leaf = [this](size_t i) -> RegionExprPtr {
    RegionExprPtr e = RegionExpr::Name(names[i]);
    if (sels[i].has_value()) {
      switch (sels[i]->kind) {
        case ExprKind::kSelectMatches:
          e = RegionExpr::SelectMatches(sels[i]->word, std::move(e));
          break;
        case ExprKind::kSelectContains:
          e = RegionExpr::SelectContains(sels[i]->word, std::move(e));
          break;
        case ExprKind::kSelectStartsWith:
          e = RegionExpr::SelectStartsWith(sels[i]->word, std::move(e));
          break;
        case ExprKind::kSelectContainsPrefix:
          e = RegionExpr::SelectContainsPrefix(sels[i]->word,
                                               std::move(e));
          break;
        case ExprKind::kSelectNear:
          e = RegionExpr::SelectNear(sels[i]->word, sels[i]->word2,
                                     sels[i]->param, std::move(e));
          break;
        case ExprKind::kSelectAtLeast:
          e = RegionExpr::SelectAtLeast(sels[i]->word, sels[i]->param,
                                        std::move(e));
          break;
        default:
          e = RegionExpr::SelectPhrase(sels[i]->word, std::move(e));
          break;
      }
    }
    return e;
  };

  RegionExprPtr expr = leaf(names.size() - 1);
  for (size_t i = names.size() - 1; i-- > 0;) {
    bool d = direct[i];
    if (orientation == Orientation::kContains) {
      expr = d ? RegionExpr::DirectlyIncluding(leaf(i), std::move(expr))
               : RegionExpr::Including(leaf(i), std::move(expr));
    } else {
      expr = d ? RegionExpr::DirectlyIncluded(leaf(i), std::move(expr))
               : RegionExpr::Included(leaf(i), std::move(expr));
    }
  }
  return expr;
}

size_t InclusionChain::CountDirectOps() const {
  size_t n = 0;
  for (bool d : direct) n += d ? 1 : 0;
  return n;
}

std::string InclusionChain::ToString() const {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) {
      bool d = direct[i - 1];
      if (orientation == Orientation::kContains) {
        out += d ? " >> " : " > ";
      } else {
        out += d ? " << " : " < ";
      }
    }
    if (sels[i].has_value()) {
      // Render through the expression printer so every selection kind
      // (including near/atleast with their extra operands) prints once.
      InclusionChain one;
      one.names = {names[i]};
      one.sels = {sels[i]};
      out += one.ToExpr()->ToString();
    } else {
      out += names[i];
    }
  }
  return out;
}

}  // namespace qof
