#ifndef QOF_ALGEBRA_INCLUSION_CHAIN_H_
#define QOF_ALGEBRA_INCLUSION_CHAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "qof/algebra/expr.h"
#include "qof/util/result.h"

namespace qof {

/// A selection attached to one position of an inclusion chain.
struct ChainSelection {
  ExprKind kind;  // any kSelect* kind
  std::string word;
  std::string word2;   // kSelectNear
  uint64_t param = 0;  // kSelectNear / kSelectAtLeast

  friend bool operator==(const ChainSelection& a, const ChainSelection& b) {
    return a.kind == b.kind && a.word == b.word && a.word2 == b.word2 &&
           a.param == b.param;
  }
};

/// The paper's *inclusion expressions* (§3.2): right-grouped chains
///   R1 o1 R2 o2 ... on-1 Rn      with oi ∈ {⊃, ⊃d}   (kContains), or
///   R1 o1 R2 o2 ... on-1 Rn      with oi ∈ {⊂, ⊂d}   (kContained),
/// where any position may carry a σ/contains/phrase selection. This is the
/// normal form the optimizer rewrites; FromExpr/ToExpr convert to and from
/// general expression trees.
struct InclusionChain {
  enum class Orientation {
    kContains,   // ⊃ chains: names run outermost → innermost
    kContained,  // ⊂ chains: names run innermost → outermost
  };

  Orientation orientation = Orientation::kContains;
  std::vector<std::string> names;
  /// direct[i] == true means the operator between names[i] and names[i+1]
  /// is the direct variant (⊃d / ⊂d). Size: names.size() - 1.
  std::vector<bool> direct;
  /// sels[i] is the selection applied to names[i], if any. Size: names.
  std::vector<std::optional<ChainSelection>> sels;

  size_t length() const { return names.size(); }

  /// In RIG orientation (container, containee) for link i: the pair whose
  /// edge/path the optimizer must consult. For kContains chains this is
  /// (names[i], names[i+1]); for kContained it is flipped, because a
  /// ⊂-chain lists the contained side first.
  std::pair<std::string, std::string> Link(size_t i) const;

  /// Extracts a chain from an expression tree; fails if the tree is not a
  /// right-grouped single-orientation inclusion chain over (optionally
  /// selected) region names.
  static Result<InclusionChain> FromExpr(const RegionExpr& expr);

  /// Rebuilds the right-grouped expression tree.
  RegionExprPtr ToExpr() const;

  /// Number of direct operators (the dominant cost, §3.1–3.2).
  size_t CountDirectOps() const;

  std::string ToString() const;

  friend bool operator==(const InclusionChain& a, const InclusionChain& b) {
    return a.orientation == b.orientation && a.names == b.names &&
           a.direct == b.direct && a.sels == b.sels;
  }
};

}  // namespace qof

#endif  // QOF_ALGEBRA_INCLUSION_CHAIN_H_
