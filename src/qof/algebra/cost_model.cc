#include "qof/algebra/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qof {

std::string CostEstimate::ToString() const {
  std::string out = "~";
  out += std::to_string(static_cast<long long>(cardinality));
  out += " regions, ~";
  out += std::to_string(static_cast<long long>(work));
  out += " work units";
  return out;
}

Result<CostEstimate> CostEstimator::Estimate(const RegionExpr& expr) const {
  switch (expr.kind()) {
    case ExprKind::kName: {
      CostEstimate est;
      if (regions_ != nullptr) {
        // Count-only: a disk-backed instance's cardinality comes from
        // the store dictionary, not from materializing it.
        est.cardinality =
            static_cast<double>(regions_->InstanceCount(expr.name()));
      }
      est.work = est.cardinality;  // one pass over the instance
      return est;
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      QOF_ASSIGN_OR_RETURN(CostEstimate l, Estimate(*expr.left()));
      QOF_ASSIGN_OR_RETURN(CostEstimate r, Estimate(*expr.right()));
      CostEstimate est;
      est.work = l.work + r.work + l.cardinality + r.cardinality;
      switch (expr.kind()) {
        case ExprKind::kUnion:
          est.cardinality = l.cardinality + r.cardinality;
          break;
        case ExprKind::kIntersect:
          est.cardinality = std::min(l.cardinality, r.cardinality);
          break;
        default:  // difference
          est.cardinality = l.cardinality;
          break;
      }
      return est;
    }
    case ExprKind::kInnermost:
    case ExprKind::kOutermost: {
      QOF_ASSIGN_OR_RETURN(CostEstimate c, Estimate(*expr.child()));
      CostEstimate est;
      est.cardinality = c.cardinality;  // upper bound
      est.work = c.work + c.cardinality * std::max(
                                              1.0,
                                              std::log2(c.cardinality + 1));
      return est;
    }
    case ExprKind::kSelectMatches:
    case ExprKind::kSelectContains:
    case ExprKind::kSelectPhrase:
    case ExprKind::kSelectStartsWith:
    case ExprKind::kSelectContainsPrefix:
    case ExprKind::kSelectNear:
    case ExprKind::kSelectAtLeast: {
      QOF_ASSIGN_OR_RETURN(CostEstimate c, Estimate(*expr.child()));
      double postings = 0;
      if (words_ != nullptr) {
        // Phrases filter on their first word; prefix forms on the merged
        // postings of all matching words.
        auto tokens = Tokenizer::Tokenize(expr.word());
        if (!tokens.empty()) {
          std::string word(tokens[0].text);
          if (expr.kind() == ExprKind::kSelectStartsWith ||
              expr.kind() == ExprKind::kSelectContainsPrefix) {
            postings =
                static_cast<double>(words_->LookupPrefix(word).size());
          } else {
            postings = static_cast<double>(words_->Lookup(word).size());
          }
        }
      }
      CostEstimate est;
      est.cardinality = std::min(c.cardinality, postings);
      est.work = c.work + c.cardinality;
      if (expr.kind() == ExprKind::kSelectPhrase) {
        // Verification reads candidate text.
        est.work += est.cardinality * 8;
      }
      return est;
    }
    case ExprKind::kIncluding:
    case ExprKind::kIncluded:
    case ExprKind::kDirectlyIncluding:
    case ExprKind::kDirectlyIncluded: {
      QOF_ASSIGN_OR_RETURN(CostEstimate l, Estimate(*expr.left()));
      QOF_ASSIGN_OR_RETURN(CostEstimate r, Estimate(*expr.right()));
      CostEstimate est;
      // The result is a subset of the left operand, bounded by the right
      // operand's size (each right region certifies at most a handful of
      // lefts; min is the classic upper bound).
      est.cardinality = std::min(l.cardinality, r.cardinality);
      double merge = l.cardinality + r.cardinality;
      bool direct = expr.kind() == ExprKind::kDirectlyIncluding ||
                    expr.kind() == ExprKind::kDirectlyIncluded;
      if (direct && regions_ != nullptr) {
        // ⊃d consults the whole indexed universe for separators.
        merge += static_cast<double>(regions_->UniverseSize());
        merge *= kDirectFactor;
      }
      est.work = l.work + r.work + merge;
      return est;
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace qof
