#include "qof/algebra/select_kernels.h"

#include <algorithm>

#include "qof/region/cost_model.h"
#include "qof/text/tokenizer.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

/// Whether an exact-match selection should iterate the posting list and
/// probe the child set, instead of iterating the child and probing the
/// postings. The forced kernel policy pins the direction (the fuzzer
/// cross-checks both); adaptively, posting-driven wins when the posting
/// list is much smaller than the child.
bool PostingDriven(size_t posting_count, size_t child_size) {
  if (posting_count == 0) return false;
  switch (kernel_policy()) {
    case KernelPolicy::kGalloping:
      return true;
    case KernelPolicy::kLinear:
      return false;
    case KernelPolicy::kAdaptive:
      break;
  }
  return CostModel::PreferPostingDriven(posting_count, child_size);
}

}  // namespace

std::string SelectSpec::Describe(const std::string& child) const {
  switch (kind) {
    case ExprKind::kSelectMatches:
      return "sigma(\"" + word + "\", " + child + ")";
    case ExprKind::kSelectContains:
      return "contains(\"" + word + "\", " + child + ")";
    case ExprKind::kSelectPhrase:
      return "phrase(\"" + word + "\", " + child + ")";
    case ExprKind::kSelectStartsWith:
      return "starts(\"" + word + "\", " + child + ")";
    case ExprKind::kSelectContainsPrefix:
      return "hasprefix(\"" + word + "\", " + child + ")";
    case ExprKind::kSelectNear:
      return "near(\"" + word + "\", \"" + word2 + "\", " +
             std::to_string(param) + ", " + child + ")";
    case ExprKind::kSelectAtLeast:
      return "atleast(\"" + word + "\", " + std::to_string(param) + ", " +
             child + ")";
    default:
      return "<not-a-selection>";
  }
}

Result<std::vector<Region>> RunSelectKernel(const SelectSpec& spec,
                                            const RegionSet& child,
                                            const WordIndex* words,
                                            const Corpus* corpus,
                                            uint64_t* bytes_scanned,
                                            const std::string& context) {
  if (words == nullptr) {
    return Status::InvalidArgument("selection requires a word index: " +
                                   context);
  }
  const std::string& literal = spec.word;
  if (literal.empty()) {
    return Status::InvalidArgument("selection with empty word");
  }

  // Multi-word σ degenerates to phrase semantics.
  ExprKind kind = spec.kind;
  auto tokens = Tokenizer::Tokenize(literal);
  if (tokens.empty()) {
    return Status::InvalidArgument("selection word has no indexable token: " +
                                   literal);
  }
  if (kind == ExprKind::kSelectMatches && tokens.size() > 1) {
    kind = ExprKind::kSelectPhrase;
  }

  // Disk-resident indexes page posting lists in lazily; materialize the
  // words this selection will probe up front so an I/O failure surfaces
  // as a typed error here (the infallible Lookup answers empty) and the
  // kAuto ladder can degrade to a scan-based strategy.
  if (words->disk_resident()) {
    for (const auto& t : tokens) {
      QOF_RETURN_IF_ERROR(words->EnsureLoaded(t.text));
    }
    if (kind == ExprKind::kSelectNear) {
      for (const auto& t : Tokenizer::Tokenize(spec.word2)) {
        QOF_RETURN_IF_ERROR(words->EnsureLoaded(t.text));
      }
    }
  }

  std::vector<Region> out;
  if (kind == ExprKind::kSelectNear) {
    // PAT proximity: the region holds an occurrence of each word at most
    // `param` bytes apart (start-to-start distance).
    auto t2 = Tokenizer::Tokenize(spec.word2);
    if (tokens.size() != 1 || t2.size() != 1) {
      return Status::InvalidArgument("near expects two single words: " +
                                     context);
    }
    const std::vector<TextPos>& p1 =
        words->Lookup(std::string(tokens[0].text));
    const std::vector<TextPos>& p2 = words->Lookup(std::string(t2[0].text));
    const uint64_t d = spec.param;
    const uint64_t len1 = tokens[0].text.size();
    const uint64_t len2 = t2[0].text.size();
    for (const Region& r : child) {
      // Both occurrences must lie fully inside the region — a word whose
      // start fits but whose tail overhangs r.end is not "in" r (the
      // same clamp bug class as kSelectAtLeast below).
      auto lo1 = std::lower_bound(p1.begin(), p1.end(), r.start);
      bool hit = false;
      for (auto it = lo1; !hit && it != p1.end() && *it + len1 <= r.end;
           ++it) {
        // Closest w2 occurrence inside r to *it.
        auto lo2 = std::lower_bound(p2.begin(), p2.end(),
                                    *it >= d ? *it - d : 0);
        for (auto jt = lo2; jt != p2.end() && *jt <= *it + d; ++jt) {
          if (*jt >= r.start && *jt + len2 <= r.end) {
            hit = true;
            break;
          }
        }
      }
      if (hit) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectAtLeast) {
    // PAT frequency: at least `param` occurrences of the word inside.
    if (tokens.size() != 1) {
      return Status::InvalidArgument("atleast expects a single word: " +
                                     context);
    }
    const std::vector<TextPos>& postings =
        words->Lookup(std::string(tokens[0].text));
    const uint64_t len = tokens[0].text.size();
    const uint64_t need = spec.param;
    for (const Region& r : child) {
      // A region shorter than the word holds no occurrence at all; the
      // old `r.end >= len ? r.end - len : 0` clamp let a posting at
      // position 0 count for such a region when r.start == 0.
      if (r.length() < len) continue;
      auto lo = std::lower_bound(postings.begin(), postings.end(), r.start);
      auto hi = std::upper_bound(lo, postings.end(), r.end - len);
      if (static_cast<uint64_t>(hi - lo) >= need) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectStartsWith ||
             kind == ExprKind::kSelectContainsPrefix) {
    // PAT-style lexical search: all postings of words with the prefix.
    if (tokens.size() != 1) {
      return Status::InvalidArgument(
          "prefix selection expects a single word fragment: " + literal);
    }
    const std::string prefix(tokens[0].text);
    std::vector<TextPos> postings = words->LookupPrefix(prefix);
    if (kind == ExprKind::kSelectStartsWith) {
      // A prefixed word begins exactly where the region begins — and the
      // region must be long enough to hold the prefix (a shorter region
      // cannot start with it, whatever word starts at its first byte).
      const uint64_t len = prefix.size();
      if (PostingDriven(postings.size(), child.size())) {
        // Posting-driven direction: each posting names the only start a
        // matching region can have; probe the child's start group.
        // Postings ascend and group members keep their in-set order, so
        // the output is already canonical.
        const std::vector<Region>& cv = child.regions();
        for (TextPos p : postings) {
          auto it = std::lower_bound(
              cv.begin(), cv.end(), p,
              [](const Region& r, TextPos s) { return r.start < s; });
          // Within a start group ends descend, so the members long
          // enough for the prefix are a prefix of the group.
          for (; it != cv.end() && it->start == p && it->end >= p + len;
               ++it) {
            out.push_back(*it);
          }
        }
      } else {
        for (const Region& r : child) {
          if (r.length() < len) continue;
          if (std::binary_search(postings.begin(), postings.end(),
                                 r.start)) {
            out.push_back(r);
          }
        }
      }
    } else {
      const uint64_t len = prefix.size();
      for (const Region& r : child) {
        if (r.length() < len) continue;
        auto it =
            std::lower_bound(postings.begin(), postings.end(), r.start);
        if (it != postings.end() && *it + len <= r.end) out.push_back(r);
      }
    }
  } else if (kind == ExprKind::kSelectMatches) {
    // Region spans that coincide with an occurrence of the word.
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words->Lookup(word);
    const uint64_t len = word.size();
    if (PostingDriven(postings.size(), child.size())) {
      // Posting-driven: each posting determines the single span {p, p+len}
      // a match can have; probe the child for it. Postings ascend and a
      // set holds each span at most once, so the output is canonical.
      for (TextPos p : postings) {
        if (child.ContainsRegion(Region{p, p + len})) {
          out.push_back(Region{p, p + len});
        }
      }
    } else {
      for (const Region& r : child) {
        if (r.length() != len) continue;
        if (std::binary_search(postings.begin(), postings.end(), r.start)) {
          out.push_back(r);
        }
      }
    }
  } else if (kind == ExprKind::kSelectContains && tokens.size() == 1) {
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words->Lookup(word);
    const uint64_t len = word.size();
    for (const Region& r : child) {
      if (r.length() < len) continue;
      auto it = std::lower_bound(postings.begin(), postings.end(), r.start);
      if (it != postings.end() && *it + len <= r.end) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectContains) {
    // Phrase containment: an occurrence of the whole literal inside the
    // region, anchored at the first word's postings and verified against
    // the text (the verification scan is charged, as for kSelectPhrase).
    if (corpus == nullptr) {
      return Status::InvalidArgument(
          "phrase containment requires corpus access: " + context);
    }
    std::string trimmed(TrimView(literal));
    const std::string first(tokens[0].text);
    const std::vector<TextPos>& postings = words->Lookup(first);
    const uint64_t first_off = tokens[0].start;
    const uint64_t len = trimmed.size();
    for (const Region& r : child) {
      if (r.length() < len) continue;
      auto it = std::lower_bound(postings.begin(), postings.end(),
                                 r.start + first_off);
      bool hit = false;
      for (; !hit && it != postings.end() && *it + len - first_off <= r.end;
           ++it) {
        TextPos begin = *it - first_off;
        if (begin < r.start) continue;
        std::string_view text = corpus->ScanText(begin, begin + len);
        if (bytes_scanned) *bytes_scanned += text.size();
        hit = text == trimmed;
      }
      if (hit) out.push_back(r);
    }
  } else {
    // Phrase: candidate regions start at an occurrence of the first word
    // (index-located), then the full span is verified against the text.
    // The verification scan is the only text access in the algebra.
    if (corpus == nullptr) {
      return Status::InvalidArgument(
          "phrase selection requires corpus access: " + context);
    }
    const std::string first(tokens[0].text);
    const std::vector<TextPos>& postings = words->Lookup(first);
    for (const Region& r : child) {
      if (r.length() != literal.size()) continue;
      // The first word starts where the region starts (field spans are
      // trimmed by the parser, as are phrase literals by convention).
      TextPos word_start = r.start + tokens[0].start;
      if (!std::binary_search(postings.begin(), postings.end(),
                              word_start)) {
        continue;
      }
      std::string_view text = corpus->ScanText(r.start, r.end);
      if (bytes_scanned) *bytes_scanned += text.size();
      if (text == literal) out.push_back(r);
    }
  }
  return out;
}

}  // namespace qof
