#include "qof/algebra/parser.h"

#include <cctype>
#include <string>

namespace qof {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<RegionExprPtr> Parse() {
    QOF_ASSIGN_OR_RETURN(RegionExprPtr e, ParseExpr());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("trailing input after expression");
    }
    return e;
  }

 private:
  Status Error(std::string msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in region expression");
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Both '(' groups / function forms (through ParseExpr) and the
  // right-recursive inclusion chain (ParseIncl calling itself) nest one
  // C++ stack frame per source token, so adversarial input controls the
  // recursion depth; fail before it reaches the stack guard page.
  Status EnterNesting() {
    if (++depth_ > kMaxNestingDepth) {
      --depth_;
      return Error("expression too deeply nested");
    }
    return Status::OK();
  }

  // expr ::= incl (('|' | '&' | '-') incl)*
  Result<RegionExprPtr> ParseExpr() {
    QOF_RETURN_IF_ERROR(EnterNesting());
    Result<RegionExprPtr> out = ParseExprInner();
    --depth_;
    return out;
  }

  Result<RegionExprPtr> ParseExprInner() {
    QOF_ASSIGN_OR_RETURN(RegionExprPtr lhs, ParseIncl());
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (c != '|' && c != '&' && c != '-') break;
      ++pos_;
      QOF_ASSIGN_OR_RETURN(RegionExprPtr rhs, ParseIncl());
      if (c == '|') {
        lhs = RegionExpr::Union(std::move(lhs), std::move(rhs));
      } else if (c == '&') {
        lhs = RegionExpr::Intersect(std::move(lhs), std::move(rhs));
      } else {
        lhs = RegionExpr::Difference(std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  // incl ::= primary (op incl)?  — right-associative.
  Result<RegionExprPtr> ParseIncl() {
    QOF_RETURN_IF_ERROR(EnterNesting());
    Result<RegionExprPtr> out = ParseInclInner();
    --depth_;
    return out;
  }

  Result<RegionExprPtr> ParseInclInner() {
    QOF_ASSIGN_OR_RETURN(RegionExprPtr lhs, ParsePrimary());
    SkipSpace();
    if (pos_ >= input_.size()) return lhs;
    char c = input_[pos_];
    if (c != '>' && c != '<') return lhs;
    bool direct = pos_ + 1 < input_.size() && input_[pos_ + 1] == c;
    pos_ += direct ? 2 : 1;
    QOF_ASSIGN_OR_RETURN(RegionExprPtr rhs, ParseIncl());
    if (c == '>') {
      return direct
                 ? RegionExpr::DirectlyIncluding(std::move(lhs),
                                                 std::move(rhs))
                 : RegionExpr::Including(std::move(lhs), std::move(rhs));
    }
    return direct ? RegionExpr::DirectlyIncluded(std::move(lhs),
                                                 std::move(rhs))
                  : RegionExpr::Included(std::move(lhs), std::move(rhs));
  }

  Result<uint64_t> ParseNumber() {
    SkipSpace();
    size_t b = pos_;
    while (pos_ < input_.size() && input_[pos_] >= '0' &&
           input_[pos_] <= '9') {
      ++pos_;
    }
    if (b == pos_) return Error("expected number");
    uint64_t v = 0;
    for (size_t i = b; i < pos_; ++i) {
      v = v * 10 + static_cast<uint64_t>(input_[i] - '0');
    }
    return v;
  }

  Result<RegionExprPtr> ParsePrimary() {
    SkipSpace();
    if (pos_ >= input_.size()) return Error("expected expression");
    if (input_[pos_] == '(') {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(RegionExprPtr e, ParseExpr());
      if (!ConsumeChar(')')) return Error("expected ')'");
      return e;
    }
    QOF_ASSIGN_OR_RETURN(std::string name, ParseName());
    // Function forms.
    if (name == "sigma" || name == "matches" || name == "contains" ||
        name == "phrase" || name == "starts" || name == "hasprefix") {
      if (!ConsumeChar('(')) return Error("expected '(' after " + name);
      QOF_ASSIGN_OR_RETURN(std::string word, ParseString());
      if (!ConsumeChar(',')) return Error("expected ',' in " + name);
      QOF_ASSIGN_OR_RETURN(RegionExprPtr child, ParseExpr());
      if (!ConsumeChar(')')) return Error("expected ')' closing " + name);
      if (name == "contains") {
        return RegionExpr::SelectContains(std::move(word),
                                          std::move(child));
      }
      if (name == "phrase") {
        return RegionExpr::SelectPhrase(std::move(word), std::move(child));
      }
      if (name == "starts") {
        return RegionExpr::SelectStartsWith(std::move(word),
                                            std::move(child));
      }
      if (name == "hasprefix") {
        return RegionExpr::SelectContainsPrefix(std::move(word),
                                                std::move(child));
      }
      return RegionExpr::SelectMatches(std::move(word), std::move(child));
    }
    if (name == "near") {
      // near("w1", "w2", distance, expr)
      if (!ConsumeChar('(')) return Error("expected '(' after near");
      QOF_ASSIGN_OR_RETURN(std::string w1, ParseString());
      if (!ConsumeChar(',')) return Error("expected ',' in near");
      QOF_ASSIGN_OR_RETURN(std::string w2, ParseString());
      if (!ConsumeChar(',')) return Error("expected ',' in near");
      QOF_ASSIGN_OR_RETURN(uint64_t distance, ParseNumber());
      if (!ConsumeChar(',')) return Error("expected ',' in near");
      QOF_ASSIGN_OR_RETURN(RegionExprPtr child, ParseExpr());
      if (!ConsumeChar(')')) return Error("expected ')' closing near");
      return RegionExpr::SelectNear(std::move(w1), std::move(w2),
                                    distance, std::move(child));
    }
    if (name == "atleast") {
      // atleast("w", count, expr)
      if (!ConsumeChar('(')) return Error("expected '(' after atleast");
      QOF_ASSIGN_OR_RETURN(std::string word, ParseString());
      if (!ConsumeChar(',')) return Error("expected ',' in atleast");
      QOF_ASSIGN_OR_RETURN(uint64_t count, ParseNumber());
      if (!ConsumeChar(',')) return Error("expected ',' in atleast");
      QOF_ASSIGN_OR_RETURN(RegionExprPtr child, ParseExpr());
      if (!ConsumeChar(')')) return Error("expected ')' closing atleast");
      return RegionExpr::SelectAtLeast(std::move(word), count,
                                       std::move(child));
    }
    if (name == "innermost" || name == "outermost") {
      if (!ConsumeChar('(')) return Error("expected '(' after " + name);
      QOF_ASSIGN_OR_RETURN(RegionExprPtr child, ParseExpr());
      if (!ConsumeChar(')')) return Error("expected ')' closing " + name);
      return name == "innermost" ? RegionExpr::Innermost(std::move(child))
                                 : RegionExpr::Outermost(std::move(child));
    }
    return RegionExpr::Name(std::move(name));
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t b = pos_;
    if (pos_ < input_.size() &&
        (std::isalpha(static_cast<unsigned char>(input_[pos_])) ||
         input_[pos_] == '_')) {
      ++pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
    }
    if (b == pos_) return Error("expected region name");
    return std::string(input_.substr(b, pos_ - b));
  }

  Result<std::string> ParseString() {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Error("expected string literal");
    }
    ++pos_;
    size_t b = pos_;
    while (pos_ < input_.size() && input_[pos_] != '"') ++pos_;
    if (pos_ >= input_.size()) return Error("unterminated string literal");
    std::string s(input_.substr(b, pos_ - b));
    ++pos_;
    return s;
  }

  static constexpr int kMaxNestingDepth = 256;

  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<RegionExprPtr> ParseRegionExpr(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace qof
