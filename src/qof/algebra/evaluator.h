#ifndef QOF_ALGEBRA_EVALUATOR_H_
#define QOF_ALGEBRA_EVALUATOR_H_

#include <cstdint>
#include <string>

#include <memory>

#include "qof/algebra/expr.h"
#include "qof/cache/eval_cache.h"
#include "qof/exec/exec_context.h"
#include "qof/region/region_index.h"
#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"

namespace qof {

/// Execution statistics of one expression evaluation; the experiments
/// report these alongside wall time.
struct EvalStats {
  uint64_t set_ops = 0;        // ∪ ∩ −
  uint64_t select_ops = 0;     // σ / contains / phrase
  uint64_t nest_ops = 0;       // ι ω
  uint64_t simple_incl_ops = 0;  // ⊃ ⊂
  uint64_t direct_incl_ops = 0;  // ⊃d ⊂d
  uint64_t regions_produced = 0;   // summed over all intermediate results
  uint64_t max_intermediate = 0;   // largest intermediate result
  uint64_t bytes_scanned = 0;      // text bytes read (phrase verification)
  uint64_t cache_hits = 0;         // subexpressions served by the EvalCache
  uint64_t cache_misses = 0;       // subexpressions computed then cached

  uint64_t total_ops() const {
    return set_ops + select_ops + nest_ops + simple_incl_ops +
           direct_incl_ops;
  }
};

/// How ⊃d/⊂d are computed.
enum class DirectAlgorithm {
  /// Innermost-strict-encloser sweep (see region_set.h) — the default.
  kFast,
  /// The paper's §3.1 layer-by-layer ω program; kept for the E3 cost
  /// experiment. Assumes the right operand's region name is not
  /// self-nested (true for every natural structuring schema here).
  kLayered,
};

/// Evaluates region-algebra expressions against a region index, word index
/// and (for phrase verification only) the corpus. The evaluator itself
/// never scans file text except in kSelectPhrase, which is exactly the
/// engine's contract: queries run on indices, not on files.
class ExprEvaluator {
 public:
  /// `word_index` may be null if the expression uses no selections;
  /// `corpus` may be null if it uses no phrase selections. `ctx`
  /// (optional, borrowed) is polled once per operator and charged for
  /// every intermediate region produced, making index-plan evaluation
  /// deadline-aware and budget-bounded.
  /// `cache` (optional, borrowed) shares computed subexpression results
  /// across evaluations: every composite node is looked up by its
  /// serialized form under `epoch` before being computed, and published
  /// after. Cached hits still charge the region budget, so governance is
  /// identical with and without the cache.
  ExprEvaluator(const RegionIndex* region_index,
                const WordIndex* word_index, const Corpus* corpus,
                DirectAlgorithm direct = DirectAlgorithm::kFast,
                const ExecContext* ctx = nullptr,
                EvalCache* cache = nullptr, CacheEpoch epoch = {})
      : index_(region_index),
        words_(word_index),
        corpus_(corpus),
        direct_(direct),
        ctx_(ctx),
        cache_(cache),
        epoch_(epoch) {}

  /// Evaluates `expr`; accumulates statistics into `stats` if non-null.
  Result<RegionSet> Evaluate(const RegionExpr& expr,
                             EvalStats* stats = nullptr) const;

 private:
  /// Internal evaluation result: a computed set (owned), a borrowed view
  /// of an index instance, or a shared immutable set from the EvalCache.
  /// kName leaves borrow, so looking a leaf up costs O(1) instead of
  /// copying the whole instance; cache hits share, so a repeated
  /// subexpression costs a hash lookup — only the public Evaluate()
  /// boundary copies.
  struct EvalResult {
    RegionSet owned;
    const RegionSet* borrowed = nullptr;
    std::shared_ptr<const RegionSet> shared;
    const RegionSet& set() const {
      if (shared != nullptr) return *shared;
      return borrowed ? *borrowed : owned;
    }
    static EvalResult Owned(RegionSet s) {
      return {std::move(s), nullptr, nullptr};
    }
    static EvalResult Borrowed(const RegionSet* s) { return {{}, s, nullptr}; }
    static EvalResult Shared(std::shared_ptr<const RegionSet> s) {
      return {{}, nullptr, std::move(s)};
    }
  };

  Result<EvalResult> Eval(const RegionExpr& expr, EvalStats* stats) const;
  /// Cache-aware wrapper around the computation of one composite node.
  Result<EvalResult> EvalCached(const RegionExpr& expr,
                                EvalStats* stats) const;
  /// The actual per-node computation (no cache involvement).
  Result<EvalResult> EvalNode(const RegionExpr& expr,
                              EvalStats* stats) const;
  /// Records `produced` into stats and charges it against the region
  /// budget; fails with kBudgetExhausted once the budget is blown.
  Status Charge(EvalStats* stats, const RegionSet& produced) const;
  Result<EvalResult> EvalSelect(const RegionExpr& expr,
                                EvalStats* stats) const;
  Result<EvalResult> EvalDirect(const RegionExpr& expr,
                                const RegionSet& left,
                                const RegionSet& right,
                                EvalStats* stats) const;

  /// The region name feeding `expr` through selections, or "" when the
  /// operand is composite (needed by the layered ⊃d program's "I − {S}").
  static std::string SourceName(const RegionExpr& expr);

  const RegionIndex* index_;
  const WordIndex* words_;
  const Corpus* corpus_;
  DirectAlgorithm direct_;
  const ExecContext* ctx_ = nullptr;
  EvalCache* cache_ = nullptr;
  CacheEpoch epoch_;
};

}  // namespace qof

#endif  // QOF_ALGEBRA_EVALUATOR_H_
