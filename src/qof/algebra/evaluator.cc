#include "qof/algebra/evaluator.h"

#include <algorithm>

#include "qof/algebra/cost_model.h"
#include "qof/exec/fault_injector.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

void Record(EvalStats* stats, const RegionSet& produced) {
  if (!stats) return;
  stats->regions_produced += produced.size();
  stats->max_intermediate =
      std::max<uint64_t>(stats->max_intermediate, produced.size());
}

/// Whether an exact-match selection should iterate the posting list and
/// probe the child set, instead of iterating the child and probing the
/// postings. The forced kernel policy pins the direction (the fuzzer
/// cross-checks both); adaptively, posting-driven wins when the posting
/// list is much smaller than the child.
bool PostingDriven(size_t posting_count, size_t child_size) {
  if (posting_count == 0) return false;
  switch (kernel_policy()) {
    case KernelPolicy::kGalloping:
      return true;
    case KernelPolicy::kLinear:
      return false;
    case KernelPolicy::kAdaptive:
      break;
  }
  return CostEstimator::PreferPostingDriven(posting_count, child_size);
}

}  // namespace

Status ExprEvaluator::Charge(EvalStats* stats,
                             const RegionSet& produced) const {
  Record(stats, produced);
  if (ctx_ != nullptr) return ctx_->ChargeRegions(produced.size());
  return Status::OK();
}

Result<RegionSet> ExprEvaluator::Evaluate(const RegionExpr& expr,
                                          EvalStats* stats) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument("evaluator has no region index");
  }
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kAlgebraEval));
  QOF_ASSIGN_OR_RETURN(EvalResult result, Eval(expr, stats));
  // A borrowed result (the expression was a bare region name) or a shared
  // cache hit is copied once here at the API boundary; every internal
  // leaf lookup and cache hit is free.
  if (result.shared != nullptr) return *result.shared;
  if (result.borrowed != nullptr) return *result.borrowed;
  return std::move(result.owned);
}

std::string ExprEvaluator::SourceName(const RegionExpr& expr) {
  const RegionExpr* e = &expr;
  while (IsSelectKind(e->kind()) || e->kind() == ExprKind::kInnermost ||
         e->kind() == ExprKind::kOutermost) {
    e = e->child().get();
  }
  return e->kind() == ExprKind::kName ? e->name() : std::string();
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::Eval(
    const RegionExpr& expr, EvalStats* stats) const {
  // One governance checkpoint per algebra operator: operators are the
  // natural unit of progress for index plans.
  if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
  if (expr.kind() == ExprKind::kName) {
    // Leaves borrow the index instance directly — never cached (a cache
    // entry would only duplicate what the index already holds).
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, index_->Get(expr.name()));
    return EvalResult::Borrowed(set);
  }
  return EvalCached(expr, stats);
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalCached(
    const RegionExpr& expr, EvalStats* stats) const {
  if (cache_ == nullptr) return EvalNode(expr, stats);
  // Serialized expressions are canonical and re-parseable (and the
  // compiler emits Thm 3.6 normal forms), so the string is a perfect key.
  std::string key = expr.ToString();
  if (auto hit = cache_->Lookup(key, epoch_)) {
    if (stats) ++stats->cache_hits;
    // A hit charges exactly what computing the node would have charged
    // for its own result, keeping governance behavior cache-independent.
    QOF_RETURN_IF_ERROR(Charge(stats, *hit));
    return EvalResult::Shared(std::move(hit));
  }
  if (stats) ++stats->cache_misses;
  QOF_ASSIGN_OR_RETURN(EvalResult computed, EvalNode(expr, stats));
  // Composite nodes always own their result (only kName leaves borrow).
  auto shared = std::make_shared<const RegionSet>(std::move(computed.owned));
  cache_->Insert(key, epoch_, shared);
  return EvalResult::Shared(std::move(shared));
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalNode(
    const RegionExpr& expr, EvalStats* stats) const {
  switch (expr.kind()) {
    case ExprKind::kName: {
      QOF_ASSIGN_OR_RETURN(const RegionSet* set, index_->Get(expr.name()));
      return EvalResult::Borrowed(set);
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      if (stats) ++stats->set_ops;
      RegionSet out = expr.kind() == ExprKind::kUnion
                          ? Union(l.set(), r.set())
                      : expr.kind() == ExprKind::kIntersect
                          ? Intersect(l.set(), r.set())
                          : Difference(l.set(), r.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kInnermost:
    case ExprKind::kOutermost: {
      QOF_ASSIGN_OR_RETURN(EvalResult c, Eval(*expr.child(), stats));
      if (stats) ++stats->nest_ops;
      RegionSet out = expr.kind() == ExprKind::kInnermost
                          ? Innermost(c.set())
                          : Outermost(c.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kSelectMatches:
    case ExprKind::kSelectContains:
    case ExprKind::kSelectPhrase:
    case ExprKind::kSelectStartsWith:
    case ExprKind::kSelectContainsPrefix:
    case ExprKind::kSelectNear:
    case ExprKind::kSelectAtLeast:
      return EvalSelect(expr, stats);
    case ExprKind::kIncluding:
    case ExprKind::kIncluded: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      if (stats) ++stats->simple_incl_ops;
      RegionSet out = expr.kind() == ExprKind::kIncluding
                          ? Including(l.set(), r.set())
                          : IncludedIn(l.set(), r.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kDirectlyIncluding:
    case ExprKind::kDirectlyIncluded: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      return EvalDirect(expr, l.set(), r.set(), stats);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalDirect(
    const RegionExpr& expr, const RegionSet& left, const RegionSet& right,
    EvalStats* stats) const {
  if (stats) ++stats->direct_incl_ops;
  const bool including = expr.kind() == ExprKind::kDirectlyIncluding;
  RegionSet out;
  if (direct_ == DirectAlgorithm::kLayered && including) {
    // "I − {S}": every indexed instance except the one the right operand
    // was drawn from.
    std::vector<const RegionSet*> others =
        index_->AllExcept(SourceName(*expr.right()));
    out = DirectlyIncludingLayered(left, right, others);
  } else if (direct_ == DirectAlgorithm::kLayered) {
    // ⊂d via the layered program for the mirrored operands: r ⊂d s holds
    // iff s ⊃d r; compute the s-side and map back.
    std::vector<const RegionSet*> others =
        index_->AllExcept(SourceName(*expr.left()));
    RegionSet direct_parents = DirectlyIncludingLayered(right, left, others);
    // Keep the left members whose innermost strict encloser is a selected
    // parent; equivalent to the fast path but reusing its sweep.
    out = DirectlyIncluded(left, direct_parents, index_->Universe());
  } else {
    out = including ? DirectlyIncluding(left, right, index_->Universe())
                    : DirectlyIncluded(left, right, index_->Universe());
  }
  QOF_RETURN_IF_ERROR(Charge(stats, out));
  return EvalResult::Owned(std::move(out));
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalSelect(
    const RegionExpr& expr, EvalStats* stats) const {
  QOF_ASSIGN_OR_RETURN(EvalResult child_result, Eval(*expr.child(), stats));
  const RegionSet& child = child_result.set();
  if (stats) ++stats->select_ops;
  if (words_ == nullptr) {
    return Status::InvalidArgument(
        "selection requires a word index: " + expr.ToString());
  }
  const std::string& literal = expr.word();
  if (literal.empty()) {
    return Status::InvalidArgument("selection with empty word");
  }

  // Multi-word σ degenerates to phrase semantics.
  ExprKind kind = expr.kind();
  auto tokens = Tokenizer::Tokenize(literal);
  if (tokens.empty()) {
    return Status::InvalidArgument("selection word has no indexable token: " +
                                   literal);
  }
  if (kind == ExprKind::kSelectMatches && tokens.size() > 1) {
    kind = ExprKind::kSelectPhrase;
  }

  std::vector<Region> out;
  if (kind == ExprKind::kSelectNear) {
    // PAT proximity: the region holds an occurrence of each word at most
    // `param` bytes apart (start-to-start distance).
    auto t2 = Tokenizer::Tokenize(expr.word2());
    if (tokens.size() != 1 || t2.size() != 1) {
      return Status::InvalidArgument(
          "near expects two single words: " + expr.ToString());
    }
    const std::vector<TextPos>& p1 =
        words_->Lookup(std::string(tokens[0].text));
    const std::vector<TextPos>& p2 =
        words_->Lookup(std::string(t2[0].text));
    const uint64_t d = expr.param();
    const uint64_t len1 = tokens[0].text.size();
    const uint64_t len2 = t2[0].text.size();
    for (const Region& r : child) {
      // Both occurrences must lie fully inside the region — a word whose
      // start fits but whose tail overhangs r.end is not "in" r (the
      // same clamp bug class as kSelectAtLeast below).
      auto lo1 = std::lower_bound(p1.begin(), p1.end(), r.start);
      bool hit = false;
      for (auto it = lo1; !hit && it != p1.end() && *it + len1 <= r.end;
           ++it) {
        // Closest w2 occurrence inside r to *it.
        auto lo2 = std::lower_bound(p2.begin(), p2.end(),
                                    *it >= d ? *it - d : 0);
        for (auto jt = lo2; jt != p2.end() && *jt <= *it + d; ++jt) {
          if (*jt >= r.start && *jt + len2 <= r.end) {
            hit = true;
            break;
          }
        }
      }
      if (hit) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectAtLeast) {
    // PAT frequency: at least `param` occurrences of the word inside.
    if (tokens.size() != 1) {
      return Status::InvalidArgument(
          "atleast expects a single word: " + expr.ToString());
    }
    const std::vector<TextPos>& postings =
        words_->Lookup(std::string(tokens[0].text));
    const uint64_t len = tokens[0].text.size();
    const uint64_t need = expr.param();
    for (const Region& r : child) {
      // A region shorter than the word holds no occurrence at all; the
      // old `r.end >= len ? r.end - len : 0` clamp let a posting at
      // position 0 count for such a region when r.start == 0.
      if (r.length() < len) continue;
      auto lo = std::lower_bound(postings.begin(), postings.end(),
                                 r.start);
      auto hi = std::upper_bound(lo, postings.end(), r.end - len);
      if (static_cast<uint64_t>(hi - lo) >= need) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectStartsWith ||
      kind == ExprKind::kSelectContainsPrefix) {
    // PAT-style lexical search: all postings of words with the prefix.
    if (tokens.size() != 1) {
      return Status::InvalidArgument(
          "prefix selection expects a single word fragment: " + literal);
    }
    const std::string prefix(tokens[0].text);
    std::vector<TextPos> postings = words_->LookupPrefix(prefix);
    if (kind == ExprKind::kSelectStartsWith) {
      // A prefixed word begins exactly where the region begins — and the
      // region must be long enough to hold the prefix (a shorter region
      // cannot start with it, whatever word starts at its first byte).
      const uint64_t len = prefix.size();
      if (PostingDriven(postings.size(), child.size())) {
        // Posting-driven direction: each posting names the only start a
        // matching region can have; probe the child's start group.
        // Postings ascend and group members keep their in-set order, so
        // the output is already canonical.
        const std::vector<Region>& cv = child.regions();
        for (TextPos p : postings) {
          auto it = std::lower_bound(
              cv.begin(), cv.end(), p,
              [](const Region& r, TextPos s) { return r.start < s; });
          // Within a start group ends descend, so the members long
          // enough for the prefix are a prefix of the group.
          for (; it != cv.end() && it->start == p && it->end >= p + len;
               ++it) {
            out.push_back(*it);
          }
        }
      } else {
        for (const Region& r : child) {
          if (r.length() < len) continue;
          if (std::binary_search(postings.begin(), postings.end(),
                                 r.start)) {
            out.push_back(r);
          }
        }
      }
    } else {
      const uint64_t len = prefix.size();
      for (const Region& r : child) {
        if (r.length() < len) continue;
        auto it =
            std::lower_bound(postings.begin(), postings.end(), r.start);
        if (it != postings.end() && *it + len <= r.end) out.push_back(r);
      }
    }
  } else if (kind == ExprKind::kSelectMatches) {
    // Region spans that coincide with an occurrence of the word.
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(word);
    const uint64_t len = word.size();
    if (PostingDriven(postings.size(), child.size())) {
      // Posting-driven: each posting determines the single span {p, p+len}
      // a match can have; probe the child for it. Postings ascend and a
      // set holds each span at most once, so the output is canonical.
      for (TextPos p : postings) {
        if (child.ContainsRegion(Region{p, p + len})) {
          out.push_back(Region{p, p + len});
        }
      }
    } else {
      for (const Region& r : child) {
        if (r.length() != len) continue;
        if (std::binary_search(postings.begin(), postings.end(), r.start)) {
          out.push_back(r);
        }
      }
    }
  } else if (kind == ExprKind::kSelectContains && tokens.size() == 1) {
    const std::string word(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(word);
    const uint64_t len = word.size();
    for (const Region& r : child) {
      if (r.length() < len) continue;
      auto it = std::lower_bound(postings.begin(), postings.end(), r.start);
      if (it != postings.end() && *it + len <= r.end) out.push_back(r);
    }
  } else if (kind == ExprKind::kSelectContains) {
    // Phrase containment: an occurrence of the whole literal inside the
    // region, anchored at the first word's postings and verified against
    // the text (the verification scan is charged, as for kSelectPhrase).
    if (corpus_ == nullptr) {
      return Status::InvalidArgument(
          "phrase containment requires corpus access: " + expr.ToString());
    }
    std::string trimmed(TrimView(literal));
    const std::string first(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(first);
    const uint64_t first_off = tokens[0].start;
    const uint64_t len = trimmed.size();
    for (const Region& r : child) {
      if (r.length() < len) continue;
      auto it = std::lower_bound(postings.begin(), postings.end(),
                                 r.start + first_off);
      bool hit = false;
      for (; !hit && it != postings.end() && *it + len - first_off <= r.end;
           ++it) {
        TextPos begin = *it - first_off;
        if (begin < r.start) continue;
        std::string_view text = corpus_->ScanText(begin, begin + len);
        if (stats) stats->bytes_scanned += text.size();
        hit = text == trimmed;
      }
      if (hit) out.push_back(r);
    }
  } else {
    // Phrase: candidate regions start at an occurrence of the first word
    // (index-located), then the full span is verified against the text.
    // The verification scan is the only text access in the algebra.
    if (corpus_ == nullptr) {
      return Status::InvalidArgument(
          "phrase selection requires corpus access: " + expr.ToString());
    }
    const std::string first(tokens[0].text);
    const std::vector<TextPos>& postings = words_->Lookup(first);
    for (const Region& r : child) {
      if (r.length() != literal.size()) continue;
      // The first word starts where the region starts (field spans are
      // trimmed by the parser, as are phrase literals by convention).
      TextPos word_start = r.start + tokens[0].start;
      if (!std::binary_search(postings.begin(), postings.end(),
                              word_start)) {
        continue;
      }
      std::string_view text = corpus_->ScanText(r.start, r.end);
      if (stats) stats->bytes_scanned += text.size();
      if (text == literal) out.push_back(r);
    }
  }
  RegionSet result = RegionSet::FromSortedUnique(std::move(out));
  QOF_RETURN_IF_ERROR(Charge(stats, result));
  return EvalResult::Owned(std::move(result));
}

}  // namespace qof
