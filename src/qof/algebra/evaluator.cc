#include "qof/algebra/evaluator.h"

#include <algorithm>

#include "qof/algebra/cost_model.h"
#include "qof/algebra/select_kernels.h"
#include "qof/exec/fault_injector.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

void Record(EvalStats* stats, const RegionSet& produced) {
  if (!stats) return;
  stats->regions_produced += produced.size();
  stats->max_intermediate =
      std::max<uint64_t>(stats->max_intermediate, produced.size());
}

}  // namespace

Status ExprEvaluator::Charge(EvalStats* stats,
                             const RegionSet& produced) const {
  Record(stats, produced);
  if (ctx_ != nullptr) return ctx_->ChargeRegions(produced.size());
  return Status::OK();
}

Result<RegionSet> ExprEvaluator::Evaluate(const RegionExpr& expr,
                                          EvalStats* stats) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument("evaluator has no region index");
  }
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kAlgebraEval));
  QOF_ASSIGN_OR_RETURN(EvalResult result, Eval(expr, stats));
  // A borrowed result (the expression was a bare region name) or a shared
  // cache hit is copied once here at the API boundary; every internal
  // leaf lookup and cache hit is free.
  if (result.shared != nullptr) return *result.shared;
  if (result.borrowed != nullptr) return *result.borrowed;
  return std::move(result.owned);
}

std::string ExprEvaluator::SourceName(const RegionExpr& expr) {
  const RegionExpr* e = &expr;
  while (IsSelectKind(e->kind()) || e->kind() == ExprKind::kInnermost ||
         e->kind() == ExprKind::kOutermost) {
    e = e->child().get();
  }
  return e->kind() == ExprKind::kName ? e->name() : std::string();
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::Eval(
    const RegionExpr& expr, EvalStats* stats) const {
  // One governance checkpoint per algebra operator: operators are the
  // natural unit of progress for index plans.
  if (ctx_ != nullptr) QOF_RETURN_IF_ERROR(ctx_->Check());
  if (expr.kind() == ExprKind::kName) {
    // Leaves borrow the index instance directly — never cached (a cache
    // entry would only duplicate what the index already holds).
    QOF_ASSIGN_OR_RETURN(const RegionSet* set, index_->Get(expr.name()));
    return EvalResult::Borrowed(set);
  }
  return EvalCached(expr, stats);
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalCached(
    const RegionExpr& expr, EvalStats* stats) const {
  if (cache_ == nullptr) return EvalNode(expr, stats);
  // Serialized expressions are canonical and re-parseable (and the
  // compiler emits Thm 3.6 normal forms), so the string is a perfect key.
  std::string key = expr.ToString();
  if (auto hit = cache_->Lookup(key, epoch_)) {
    if (stats) ++stats->cache_hits;
    // A hit charges exactly what computing the node would have charged
    // for its own result, keeping governance behavior cache-independent.
    QOF_RETURN_IF_ERROR(Charge(stats, *hit));
    return EvalResult::Shared(std::move(hit));
  }
  if (stats) ++stats->cache_misses;
  QOF_ASSIGN_OR_RETURN(EvalResult computed, EvalNode(expr, stats));
  // Composite nodes always own their result (only kName leaves borrow).
  auto shared = std::make_shared<const RegionSet>(std::move(computed.owned));
  cache_->Insert(key, epoch_, shared);
  return EvalResult::Shared(std::move(shared));
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalNode(
    const RegionExpr& expr, EvalStats* stats) const {
  switch (expr.kind()) {
    case ExprKind::kName: {
      QOF_ASSIGN_OR_RETURN(const RegionSet* set, index_->Get(expr.name()));
      return EvalResult::Borrowed(set);
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      if (stats) ++stats->set_ops;
      RegionSet out = expr.kind() == ExprKind::kUnion
                          ? Union(l.set(), r.set())
                      : expr.kind() == ExprKind::kIntersect
                          ? Intersect(l.set(), r.set())
                          : Difference(l.set(), r.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kInnermost:
    case ExprKind::kOutermost: {
      QOF_ASSIGN_OR_RETURN(EvalResult c, Eval(*expr.child(), stats));
      if (stats) ++stats->nest_ops;
      RegionSet out = expr.kind() == ExprKind::kInnermost
                          ? Innermost(c.set())
                          : Outermost(c.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kSelectMatches:
    case ExprKind::kSelectContains:
    case ExprKind::kSelectPhrase:
    case ExprKind::kSelectStartsWith:
    case ExprKind::kSelectContainsPrefix:
    case ExprKind::kSelectNear:
    case ExprKind::kSelectAtLeast:
      return EvalSelect(expr, stats);
    case ExprKind::kIncluding:
    case ExprKind::kIncluded: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      if (stats) ++stats->simple_incl_ops;
      RegionSet out = expr.kind() == ExprKind::kIncluding
                          ? Including(l.set(), r.set())
                          : IncludedIn(l.set(), r.set());
      QOF_RETURN_IF_ERROR(Charge(stats, out));
      return EvalResult::Owned(std::move(out));
    }
    case ExprKind::kDirectlyIncluding:
    case ExprKind::kDirectlyIncluded: {
      QOF_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), stats));
      QOF_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), stats));
      return EvalDirect(expr, l.set(), r.set(), stats);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalDirect(
    const RegionExpr& expr, const RegionSet& left, const RegionSet& right,
    EvalStats* stats) const {
  if (stats) ++stats->direct_incl_ops;
  // ⊃d consults the whole indexed universe; a disk-backed index must
  // materialize every instance first, and an I/O failure has to surface
  // here (Universe() itself is infallible and would answer short).
  QOF_RETURN_IF_ERROR(index_->EnsureResident());
  const bool including = expr.kind() == ExprKind::kDirectlyIncluding;
  RegionSet out;
  if (direct_ == DirectAlgorithm::kLayered && including) {
    // "I − {S}": every indexed instance except the one the right operand
    // was drawn from.
    std::vector<const RegionSet*> others =
        index_->AllExcept(SourceName(*expr.right()));
    out = DirectlyIncludingLayered(left, right, others);
  } else if (direct_ == DirectAlgorithm::kLayered) {
    // ⊂d via the layered program for the mirrored operands: r ⊂d s holds
    // iff s ⊃d r; compute the s-side and map back.
    std::vector<const RegionSet*> others =
        index_->AllExcept(SourceName(*expr.left()));
    RegionSet direct_parents = DirectlyIncludingLayered(right, left, others);
    // Keep the left members whose innermost strict encloser is a selected
    // parent; equivalent to the fast path but reusing its sweep.
    out = DirectlyIncluded(left, direct_parents, index_->Universe());
  } else {
    out = including ? DirectlyIncluding(left, right, index_->Universe())
                    : DirectlyIncluded(left, right, index_->Universe());
  }
  QOF_RETURN_IF_ERROR(Charge(stats, out));
  return EvalResult::Owned(std::move(out));
}

Result<ExprEvaluator::EvalResult> ExprEvaluator::EvalSelect(
    const RegionExpr& expr, EvalStats* stats) const {
  QOF_ASSIGN_OR_RETURN(EvalResult child_result, Eval(*expr.child(), stats));
  const RegionSet& child = child_result.set();
  if (stats) ++stats->select_ops;
  // The selection itself lives in the shared kernel (select_kernels.h) so
  // the tree evaluator and the IR executor run the exact same code.
  SelectSpec spec;
  spec.kind = expr.kind();
  spec.word = expr.word();
  spec.word2 = expr.word2();
  spec.param = expr.param();
  uint64_t scanned = 0;
  QOF_ASSIGN_OR_RETURN(
      std::vector<Region> out,
      RunSelectKernel(spec, child, words_, corpus_, &scanned,
                      expr.ToString()));
  if (stats) stats->bytes_scanned += scanned;
  RegionSet result = RegionSet::FromSortedUnique(std::move(out));
  QOF_RETURN_IF_ERROR(Charge(stats, result));
  return EvalResult::Owned(std::move(result));
}

}  // namespace qof
