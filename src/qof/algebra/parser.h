#ifndef QOF_ALGEBRA_PARSER_H_
#define QOF_ALGEBRA_PARSER_H_

#include <string_view>

#include "qof/algebra/expr.h"
#include "qof/util/result.h"

namespace qof {

/// Parses the textual form of region-algebra expressions. Grammar
/// (ASCII rendering of the paper's operators):
///
///   expr    ::= incl (('|' | '&' | '-') incl)*          (left-assoc)
///   incl    ::= primary (('>' | '>>' | '<' | '<<') incl)?   (right-assoc,
///               matching the paper's "operations are grouped from the
///               right")
///   primary ::= NAME
///             | 'sigma'    '(' STRING ',' expr ')'   — σw, region is w
///             | 'matches'  '(' STRING ',' expr ')'   — alias of sigma
///             | 'contains' '(' STRING ',' expr ')'   — region contains w
///             | 'phrase'   '(' STRING ',' expr ')'   — region text == lit
///             | 'starts'   '(' STRING ',' expr ')'   — region begins with
///                                                      a word having the
///                                                      given prefix
///             | 'hasprefix' '(' STRING ',' expr ')'  — region contains a
///                                                      word with prefix
///             | 'innermost' '(' expr ')' | 'outermost' '(' expr ')'
///             | '(' expr ')'
///   NAME    ::= [A-Za-z_][A-Za-z0-9_]*
///   STRING  ::= '"' chars '"'  (no escapes; quotes cannot be queried)
///
/// '>' is ⊃ (including), '>>' is ⊃d, '<' is ⊂, '<<' is ⊂d.
/// Example (§3.2 e1):
///   Reference >> Authors >> Name >> sigma("Chang", Last_Name)
Result<RegionExprPtr> ParseRegionExpr(std::string_view input);

}  // namespace qof

#endif  // QOF_ALGEBRA_PARSER_H_
