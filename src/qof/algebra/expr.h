#ifndef QOF_ALGEBRA_EXPR_H_
#define QOF_ALGEBRA_EXPR_H_

#include <memory>
#include <string>
#include <string_view>

namespace qof {

/// Node kinds of the region algebra (paper §3.1):
///   e ::= Ri | e ∪ e | e ∩ e | e − e | σw(e) | ι(e) | ω(e)
///       | e ⊃ e | e ⊂ e | e ⊃d e | e ⊂d e
/// plus engineering extensions used by the query compiler:
///   kSelectContains — regions containing an occurrence of w anywhere
///     (σw proper selects regions that *are* the word w);
///   kSelectPhrase — regions whose whole text equals a multi-word literal
///     (resolved via the word index for the first word, then a verifying
///     scan; the scan is charged to the query's byte budget);
///   kSelectStartsWith / kSelectContainsPrefix — PAT-style lexical
///     (prefix) search, resolved via the word index's sorted directory;
///   kSelectNear / kSelectAtLeast — PAT's proximity and frequency search
///     over a region set's members.
enum class ExprKind {
  kName,
  kUnion,
  kIntersect,
  kDifference,
  kSelectMatches,   // σw: region text is exactly the word w
  kSelectContains,  // region contains the word w
  kSelectPhrase,    // region text equals a (possibly multi-word) literal
  kSelectStartsWith,      // region text begins with a word having prefix w
  kSelectContainsPrefix,  // region contains a word having prefix w
  kSelectNear,     // region contains w and w2 within `param` bytes (PAT
                   // proximity search)
  kSelectAtLeast,  // region contains >= `param` occurrences of w (PAT
                   // frequency search)
  kInnermost,       // ι
  kOutermost,       // ω
  kIncluding,          // ⊃
  kIncluded,           // ⊂
  kDirectlyIncluding,  // ⊃d
  kDirectlyIncluded,   // ⊂d
};

bool IsBinaryKind(ExprKind kind);
bool IsSelectKind(ExprKind kind);
bool IsInclusionKind(ExprKind kind);

class RegionExpr;
using RegionExprPtr = std::shared_ptr<const RegionExpr>;

/// An immutable region-algebra expression tree. Shared subtrees are
/// permitted (common-subexpression reuse, §5.2).
class RegionExpr {
 public:
  static RegionExprPtr Name(std::string name);

  static RegionExprPtr Union(RegionExprPtr l, RegionExprPtr r);
  static RegionExprPtr Intersect(RegionExprPtr l, RegionExprPtr r);
  static RegionExprPtr Difference(RegionExprPtr l, RegionExprPtr r);

  static RegionExprPtr Including(RegionExprPtr l, RegionExprPtr r);
  static RegionExprPtr Included(RegionExprPtr l, RegionExprPtr r);
  static RegionExprPtr DirectlyIncluding(RegionExprPtr l, RegionExprPtr r);
  static RegionExprPtr DirectlyIncluded(RegionExprPtr l, RegionExprPtr r);

  static RegionExprPtr SelectMatches(std::string word, RegionExprPtr child);
  static RegionExprPtr SelectContains(std::string word, RegionExprPtr child);
  static RegionExprPtr SelectPhrase(std::string phrase, RegionExprPtr child);
  static RegionExprPtr SelectStartsWith(std::string prefix,
                                        RegionExprPtr child);
  static RegionExprPtr SelectContainsPrefix(std::string prefix,
                                            RegionExprPtr child);
  static RegionExprPtr SelectNear(std::string word, std::string word2,
                                  uint64_t distance, RegionExprPtr child);
  static RegionExprPtr SelectAtLeast(std::string word, uint64_t count,
                                     RegionExprPtr child);

  static RegionExprPtr Innermost(RegionExprPtr child);
  static RegionExprPtr Outermost(RegionExprPtr child);

  ExprKind kind() const { return kind_; }

  /// For kName nodes.
  const std::string& name() const { return text_; }
  /// For selection nodes: the word / phrase operand.
  const std::string& word() const { return text_; }
  /// kSelectNear: the second word.
  const std::string& word2() const { return text2_; }
  /// kSelectNear: byte distance; kSelectAtLeast: occurrence count.
  uint64_t param() const { return param_; }

  /// Children: binary nodes use left()/right(); unary nodes use child().
  const RegionExprPtr& left() const { return left_; }
  const RegionExprPtr& right() const { return right_; }
  const RegionExprPtr& child() const { return left_; }

  /// Structural equality.
  bool Equals(const RegionExpr& other) const;

  /// Number of nodes in the tree.
  size_t Size() const;

  /// Number of inclusion operators, counting ⊃d/⊂d separately (the
  /// optimizer's efficiency measure: fewer operators, fewer direct ones).
  size_t CountInclusionOps(bool direct_only) const;

  /// Re-parseable textual form using the parser's surface syntax
  /// (see algebra/parser.h).
  std::string ToString() const;

 private:
  RegionExpr(ExprKind kind, std::string text, RegionExprPtr l,
             RegionExprPtr r)
      : kind_(kind),
        text_(std::move(text)),
        left_(std::move(l)),
        right_(std::move(r)) {}

  ExprKind kind_;
  std::string text_;
  std::string text2_;   // kSelectNear only
  uint64_t param_ = 0;  // kSelectNear / kSelectAtLeast
  RegionExprPtr left_;
  RegionExprPtr right_;
};

}  // namespace qof

#endif  // QOF_ALGEBRA_EXPR_H_
