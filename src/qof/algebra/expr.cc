#include "qof/algebra/expr.h"

namespace qof {

#define QOF_EXPR_NEW(kind, text, l, r) \
  RegionExprPtr(new RegionExpr((kind), (text), (l), (r)))

RegionExprPtr RegionExpr::Name(std::string name) {
  return QOF_EXPR_NEW(ExprKind::kName, std::move(name), nullptr, nullptr);
}

RegionExprPtr RegionExpr::Union(RegionExprPtr l, RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kUnion, "", std::move(l), std::move(r));
}

RegionExprPtr RegionExpr::Intersect(RegionExprPtr l, RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kIntersect, "", std::move(l), std::move(r));
}

RegionExprPtr RegionExpr::Difference(RegionExprPtr l, RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kDifference, "", std::move(l),
                      std::move(r));
}

RegionExprPtr RegionExpr::Including(RegionExprPtr l, RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kIncluding, "", std::move(l), std::move(r));
}

RegionExprPtr RegionExpr::Included(RegionExprPtr l, RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kIncluded, "", std::move(l), std::move(r));
}

RegionExprPtr RegionExpr::DirectlyIncluding(RegionExprPtr l,
                                            RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kDirectlyIncluding, "", std::move(l),
                      std::move(r));
}

RegionExprPtr RegionExpr::DirectlyIncluded(RegionExprPtr l,
                                           RegionExprPtr r) {
  return QOF_EXPR_NEW(ExprKind::kDirectlyIncluded, "", std::move(l),
                      std::move(r));
}

RegionExprPtr RegionExpr::SelectMatches(std::string word,
                                        RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kSelectMatches, std::move(word),
                      std::move(child), nullptr);
}

RegionExprPtr RegionExpr::SelectContains(std::string word,
                                         RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kSelectContains, std::move(word),
                      std::move(child), nullptr);
}

RegionExprPtr RegionExpr::SelectPhrase(std::string phrase,
                                       RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kSelectPhrase, std::move(phrase),
                      std::move(child), nullptr);
}

RegionExprPtr RegionExpr::SelectStartsWith(std::string prefix,
                                           RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kSelectStartsWith, std::move(prefix),
                      std::move(child), nullptr);
}

RegionExprPtr RegionExpr::SelectContainsPrefix(std::string prefix,
                                               RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kSelectContainsPrefix, std::move(prefix),
                      std::move(child), nullptr);
}

RegionExprPtr RegionExpr::SelectNear(std::string word, std::string word2,
                                     uint64_t distance,
                                     RegionExprPtr child) {
  auto* e = new RegionExpr(ExprKind::kSelectNear, std::move(word),
                           std::move(child), nullptr);
  e->text2_ = std::move(word2);
  e->param_ = distance;
  return RegionExprPtr(e);
}

RegionExprPtr RegionExpr::SelectAtLeast(std::string word, uint64_t count,
                                        RegionExprPtr child) {
  auto* e = new RegionExpr(ExprKind::kSelectAtLeast, std::move(word),
                           std::move(child), nullptr);
  e->param_ = count;
  return RegionExprPtr(e);
}

RegionExprPtr RegionExpr::Innermost(RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kInnermost, "", std::move(child), nullptr);
}

RegionExprPtr RegionExpr::Outermost(RegionExprPtr child) {
  return QOF_EXPR_NEW(ExprKind::kOutermost, "", std::move(child), nullptr);
}

#undef QOF_EXPR_NEW

bool IsBinaryKind(ExprKind kind) {
  switch (kind) {
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kIncluding:
    case ExprKind::kIncluded:
    case ExprKind::kDirectlyIncluding:
    case ExprKind::kDirectlyIncluded:
      return true;
    default:
      return false;
  }
}

bool IsSelectKind(ExprKind kind) {
  return kind == ExprKind::kSelectMatches ||
         kind == ExprKind::kSelectContains ||
         kind == ExprKind::kSelectPhrase ||
         kind == ExprKind::kSelectStartsWith ||
         kind == ExprKind::kSelectContainsPrefix ||
         kind == ExprKind::kSelectNear ||
         kind == ExprKind::kSelectAtLeast;
}

bool IsInclusionKind(ExprKind kind) {
  return kind == ExprKind::kIncluding || kind == ExprKind::kIncluded ||
         kind == ExprKind::kDirectlyIncluding ||
         kind == ExprKind::kDirectlyIncluded;
}

bool RegionExpr::Equals(const RegionExpr& other) const {
  if (kind_ != other.kind_ || text_ != other.text_ ||
      text2_ != other.text2_ || param_ != other.param_) {
    return false;
  }
  if ((left_ == nullptr) != (other.left_ == nullptr)) return false;
  if ((right_ == nullptr) != (other.right_ == nullptr)) return false;
  if (left_ && !left_->Equals(*other.left_)) return false;
  if (right_ && !right_->Equals(*other.right_)) return false;
  return true;
}

size_t RegionExpr::Size() const {
  size_t n = 1;
  if (left_) n += left_->Size();
  if (right_) n += right_->Size();
  return n;
}

size_t RegionExpr::CountInclusionOps(bool direct_only) const {
  size_t n = 0;
  if (kind_ == ExprKind::kDirectlyIncluding ||
      kind_ == ExprKind::kDirectlyIncluded) {
    n = 1;
  } else if (!direct_only && IsInclusionKind(kind_)) {
    n = 1;
  }
  if (left_) n += left_->CountInclusionOps(direct_only);
  if (right_) n += right_->CountInclusionOps(direct_only);
  return n;
}

std::string RegionExpr::ToString() const {
  switch (kind_) {
    case ExprKind::kName:
      return text_;
    case ExprKind::kUnion:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case ExprKind::kIntersect:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case ExprKind::kDifference:
      return "(" + left_->ToString() + " - " + right_->ToString() + ")";
    case ExprKind::kIncluding:
      return "(" + left_->ToString() + " > " + right_->ToString() + ")";
    case ExprKind::kIncluded:
      return "(" + left_->ToString() + " < " + right_->ToString() + ")";
    case ExprKind::kDirectlyIncluding:
      return "(" + left_->ToString() + " >> " + right_->ToString() + ")";
    case ExprKind::kDirectlyIncluded:
      return "(" + left_->ToString() + " << " + right_->ToString() + ")";
    case ExprKind::kSelectMatches:
      return "sigma(\"" + text_ + "\", " + left_->ToString() + ")";
    case ExprKind::kSelectContains:
      return "contains(\"" + text_ + "\", " + left_->ToString() + ")";
    case ExprKind::kSelectPhrase:
      return "phrase(\"" + text_ + "\", " + left_->ToString() + ")";
    case ExprKind::kSelectStartsWith:
      return "starts(\"" + text_ + "\", " + left_->ToString() + ")";
    case ExprKind::kSelectContainsPrefix:
      return "hasprefix(\"" + text_ + "\", " + left_->ToString() + ")";
    case ExprKind::kSelectNear:
      return "near(\"" + text_ + "\", \"" + text2_ + "\", " +
             std::to_string(param_) + ", " + left_->ToString() + ")";
    case ExprKind::kSelectAtLeast:
      return "atleast(\"" + text_ + "\", " + std::to_string(param_) +
             ", " + left_->ToString() + ")";
    case ExprKind::kInnermost:
      return "innermost(" + left_->ToString() + ")";
    case ExprKind::kOutermost:
      return "outermost(" + left_->ToString() + ")";
  }
  return "<invalid>";
}

}  // namespace qof
