#include "qof/compiler/exactness.h"

#include <vector>

namespace qof {
namespace {

// When a selected name is dropped from the chain, its selection weakens
// to a containment test on the surviving ancestor: word/phrase equality
// becomes word containment, prefix forms become contains-prefix.
ChainSelection Degrade(const ChainSelection& sel) {
  if (sel.kind == ExprKind::kSelectStartsWith ||
      sel.kind == ExprKind::kSelectContainsPrefix) {
    return ChainSelection{ExprKind::kSelectContainsPrefix, sel.word};
  }
  return ChainSelection{ExprKind::kSelectContains, sel.word};
}

}  // namespace

Result<ChainProjection> ProjectChain(
    const Rig& full_rig, const std::set<std::string>& indexed_names,
    const InclusionChain& chain,
    const std::map<std::string, std::string>& within) {
  if (chain.orientation != InclusionChain::Orientation::kContains) {
    return Status::InvalidArgument(
        "ProjectChain expects a ⊃-oriented chain");
  }
  ChainProjection out;
  if (chain.names.empty()) {
    return Status::InvalidArgument("empty chain");
  }
  // A name is usable at position i when it is indexed and any contextual
  // restriction (§7) is discharged by an earlier chain name.
  auto usable = [&](size_t i) {
    const std::string& name = chain.names[i];
    if (indexed_names.count(name) == 0) return false;
    auto it = within.find(name);
    if (it == within.end()) return true;
    for (size_t j = 0; j < i; ++j) {
      if (chain.names[j] == it->second) return true;
    }
    return false;
  };
  if (!usable(0)) {
    out.view_indexed = false;
    out.exact = false;
    return out;
  }

  // Indices of kept (usable) positions.
  std::vector<size_t> kept;
  for (size_t i = 0; i < chain.names.size(); ++i) {
    if (usable(i)) kept.push_back(i);
  }

  InclusionChain projected;
  projected.orientation = InclusionChain::Orientation::kContains;
  // Only names indexed *everywhere* are reliable separators; a
  // contextually-restricted name may be absent between two regions even
  // when the derivation passes through it (conservative for exactness).
  auto unindexed_interior = [&](Rig::NodeId v) {
    const std::string& name = full_rig.name(v);
    if (indexed_names.find(name) == indexed_names.end()) return true;
    return within.find(name) != within.end();
  };

  for (size_t k = 0; k < kept.size(); ++k) {
    size_t idx = kept[k];
    projected.names.push_back(chain.names[idx]);
    projected.sels.push_back(chain.sels[idx]);
    if (k == 0) continue;
    size_t prev = kept[k - 1];
    bool all_direct = true;
    for (size_t op = prev; op < idx; ++op) {
      all_direct = all_direct && chain.direct[op];
    }
    // Any selection on a dropped interior position cannot be represented
    // on the indices; degrade it to containment on the segment's deeper
    // endpoint (superset semantics).
    for (size_t mid = prev + 1; mid < idx; ++mid) {
      if (chain.sels[mid].has_value()) {
        projected.sels.back() = Degrade(*chain.sels[mid]);
        out.exact = false;
      }
    }
    projected.direct.push_back(all_direct);
    if (all_direct) {
      // §6.3: the candidate link is exact iff the segment matches a
      // unique derivation through unindexed names. idx - prev == 1 means
      // no name was dropped; then the link is exact iff the edge is the
      // only unindexed-interior path as well (a bypass through unindexed
      // names would admit extra pairs).
      Rig::NodeId a = full_rig.FindNode(chain.names[prev]);
      Rig::NodeId b = full_rig.FindNode(chain.names[idx]);
      if (a == Rig::kInvalidNode || b == Rig::kInvalidNode ||
          full_rig.PathMultiplicity(a, b, unindexed_interior) != 1) {
        out.exact = false;
      }
    } else if (idx - prev > 1) {
      // A wildcard combined with dropped names: conservative.
      out.exact = false;
    }
    // A pure wildcard link (idx - prev == 1, simple) is exact by
    // definition: ⊃ is precisely "any derivation".
  }

  // Selection on a dropped *final* position (the common partial-index
  // case: the compared attribute itself is unindexed).
  if (kept.back() != chain.names.size() - 1) {
    out.exact = false;
    for (size_t mid = kept.back() + 1; mid < chain.names.size(); ++mid) {
      if (chain.sels[mid].has_value()) {
        projected.sels.back() = Degrade(*chain.sels[mid]);
      }
    }
  }

  out.chain = std::move(projected);
  return out;
}

}  // namespace qof
