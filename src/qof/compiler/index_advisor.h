#ifndef QOF_COMPILER_INDEX_ADVISOR_H_
#define QOF_COMPILER_INDEX_ADVISOR_H_

#include <set>
#include <string>
#include <vector>

#include "qof/algebra/inclusion_chain.h"
#include "qof/query/ast.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// Output of the §7 index-selection procedure.
struct IndexAdvice {
  /// Region names to index: sufficient for the workload's full
  /// computation on the indices, usually far fewer than full indexing.
  std::set<std::string> names;
  std::vector<std::string> notes;
};

/// The paper's §7 guideline, mechanized. For each workload chain,
/// optimized as under full indexing:
///   (i)  index every name the optimized expression mentions, and
///   (ii) for every remaining ⊃d link (Ai, Aj), index one interior name on
///        each full-RIG path Ai ⇝ Aj, so that foreign derivations are
///        blocked and the direct-inclusion test stays faithful.
/// Interior picks are greedy (cover as many alternate paths as possible).
/// The result is verified with the §6.3 exactness test; if a chain would
/// still be inexact, its remaining names are added outright.
Result<IndexAdvice> AdviseIndexes(const Rig& full_rig,
                                  const std::string& view_region,
                                  const std::vector<InclusionChain>& workload);

/// Convenience wrapper: maps each FQL query's WHERE paths onto chains
/// (including wildcard expansion and join predicates' two sides) and
/// advises for the combined workload.
Result<IndexAdvice> AdviseIndexesForQueries(
    const Rig& full_rig, const std::string& view_region,
    const std::vector<SelectQuery>& queries);

}  // namespace qof

#endif  // QOF_COMPILER_INDEX_ADVISOR_H_
