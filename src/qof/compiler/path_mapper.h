#ifndef QOF_COMPILER_PATH_MAPPER_H_
#define QOF_COMPILER_PATH_MAPPER_H_

#include <optional>
#include <string>
#include <vector>

#include "qof/algebra/inclusion_chain.h"
#include "qof/db/evaluator.h"
#include "qof/query/ast.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// Mapping of FQL paths onto the RIG (paper §5.1/§5.3). Under a natural
/// structuring schema, attribute names coincide with non-terminal names,
/// so a path expression matches path(s) in the RIG:
///  - an attribute step must follow a RIG edge → one ⊃d link;
///  - `*X` (any sequence) → one plain ⊃ link to the next attribute —
///    this is the case where files make wildcards *cheaper* than OODBs;
///  - a run of k `?X` steps followed by attribute A → every RIG path of
///    length k+1 from the current name to A, one all-direct chain each
///    (the union of alternatives implements "exactly k nested regions").
struct MappedPath {
  /// One inclusion chain per RIG-path alternative; the query result is
  /// their union. Chains run view → attribute (kContains orientation).
  std::vector<InclusionChain> alternatives;
};

/// Options bounding wildcard expansion.
struct PathMapOptions {
  /// Maximum number of `?X`-expansion alternatives before giving up.
  size_t max_alternatives = 64;
};

/// Maps `path` (rooted at the view's non-terminal `view_name`) onto RIG
/// chains, attaching `selection` to each chain's final position.
/// InvalidArgument when an attribute step does not follow a RIG edge, or a
/// wildcard has no following attribute.
Result<MappedPath> MapPathToChains(
    const Rig& full_rig, const std::string& view_name, const PathExpr& path,
    std::optional<ChainSelection> selection,
    const PathMapOptions& options = {});

/// Translates `path` into database navigation steps for residual / baseline
/// evaluation, expanding `?X` runs through the RIG (each alternative is one
/// NavStep sequence).
Result<std::vector<std::vector<NavStep>>> MapPathToNavSteps(
    const Rig& full_rig, const std::string& view_name, const PathExpr& path,
    const PathMapOptions& options = {});

}  // namespace qof

#endif  // QOF_COMPILER_PATH_MAPPER_H_
