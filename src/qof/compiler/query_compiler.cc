#include "qof/compiler/query_compiler.h"

#include <algorithm>

#include "qof/schema/rig_derivation.h"
#include "qof/text/tokenizer.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

// Equality literals become σw for single whole words and phrase
// verification otherwise (§5.1's σ only handles words).
Result<ChainSelection> SelectionForEquality(const std::string& literal) {
  std::string trimmed(TrimView(literal));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty comparison literal");
  }
  auto tokens = Tokenizer::Tokenize(trimmed);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "comparison literal has no indexable word: \"" + literal + "\"");
  }
  if (tokens.size() == 1 && tokens[0].start == 0 &&
      tokens[0].end == trimmed.size()) {
    return ChainSelection{ExprKind::kSelectMatches, trimmed};
  }
  return ChainSelection{ExprKind::kSelectPhrase, trimmed};
}

RegionExprPtr UnionAll(std::vector<RegionExprPtr> exprs) {
  if (exprs.empty()) return nullptr;
  RegionExprPtr out = exprs[0];
  for (size_t i = 1; i < exprs.size(); ++i) {
    out = RegionExpr::Union(std::move(out), exprs[i]);
  }
  return out;
}

}  // namespace

QueryCompiler::QueryCompiler(const Rig* full_rig,
                             std::set<std::string> indexed_names,
                             std::string view_region,
                             std::map<std::string, std::string> within)
    : full_rig_(full_rig),
      indexed_names_(std::move(indexed_names)),
      view_region_(std::move(view_region)),
      within_(std::move(within)) {
  std::set<std::string> blocking;
  for (const std::string& name : indexed_names_) {
    if (within_.find(name) == within_.end()) blocking.insert(name);
  }
  partial_rig_ = DerivePartialRig(*full_rig, indexed_names_, blocking);
}

Result<QueryCompiler::Leaf> QueryCompiler::CompilePathLeaf(
    const PathExpr& path, std::optional<ChainSelection> selection,
    std::vector<std::string>* notes) const {
  QOF_ASSIGN_OR_RETURN(
      MappedPath mapped,
      MapPathToChains(*full_rig_, view_region_, path, selection));
  ChainOptimizer optimizer(&partial_rig_);
  Leaf leaf;
  std::vector<RegionExprPtr> exprs;
  for (const InclusionChain& full_chain : mapped.alternatives) {
    QOF_ASSIGN_OR_RETURN(
        ChainProjection projection,
        ProjectChain(*full_rig_, indexed_names_, full_chain, within_));
    if (!projection.view_indexed) {
      return Status::Internal("view region must be indexed here");
    }
    QOF_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                         optimizer.Optimize(projection.chain));
    if (outcome.trivially_empty) {
      notes->push_back("alternative trivially empty: " +
                       full_chain.ToString());
      continue;
    }
    notes->push_back("leaf " + full_chain.ToString() + "  =>  " +
                     outcome.chain.ToString() +
                     (projection.exact ? "  [exact]" : "  [superset]"));
    leaf.exact = leaf.exact && projection.exact;
    exprs.push_back(outcome.chain.ToExpr());
  }
  leaf.expr = UnionAll(std::move(exprs));
  if (leaf.expr == nullptr) leaf.exact = true;  // provably empty is exact
  return leaf;
}

Result<RegionExprPtr> QueryCompiler::CompileAttrRegions(
    const PathExpr& path, std::vector<std::string>* notes) const {
  QOF_ASSIGN_OR_RETURN(
      MappedPath mapped,
      MapPathToChains(*full_rig_, view_region_, path, std::nullopt));
  ChainOptimizer optimizer(&partial_rig_);
  std::vector<RegionExprPtr> exprs;
  for (const InclusionChain& full_chain : mapped.alternatives) {
    // Attribute regions are recovered by an innermost-strict-encloser
    // sweep against the candidate view regions. When any chain node lies
    // on a RIG cycle (a self-nested schema), a nested instance's
    // attributes sit inside *several* view regions and the sweep assigns
    // them to whichever candidate survives filtering — wrong once the
    // candidate set is a strict subset. Fall back to database
    // navigation, which walks the parse structure and cannot confuse
    // nesting levels.
    for (const std::string& name : full_chain.names) {
      Rig::NodeId id = full_rig_->FindNode(name);
      if (id != Rig::kInvalidNode && full_rig_->Reachable(id, id)) {
        notes->push_back("attr path touches self-nested region '" + name +
                         "': database navigation");
        return RegionExprPtr(nullptr);
      }
    }
    QOF_ASSIGN_OR_RETURN(
        ChainProjection projection,
        ProjectChain(*full_rig_, indexed_names_, full_chain, within_));
    // The attribute itself must be indexed and the chain exact, or the
    // regions would not be the true attribute instances.
    if (!projection.exact ||
        projection.chain.names.back() != full_chain.names.back()) {
      return RegionExprPtr(nullptr);
    }
    // Reverse into a ⊂-oriented chain yielding the attribute regions.
    InclusionChain reversed;
    reversed.orientation = InclusionChain::Orientation::kContained;
    reversed.names.assign(projection.chain.names.rbegin(),
                          projection.chain.names.rend());
    reversed.direct.assign(projection.chain.direct.rbegin(),
                           projection.chain.direct.rend());
    reversed.sels.resize(reversed.names.size());
    QOF_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                         optimizer.Optimize(reversed));
    if (outcome.trivially_empty) continue;
    notes->push_back("attr regions " + reversed.ToString() + "  =>  " +
                     outcome.chain.ToString());
    exprs.push_back(outcome.chain.ToExpr());
  }
  return UnionAll(std::move(exprs));
}

Result<QueryCompiler::Leaf> QueryCompiler::CompileCondition(
    const Condition& cond, std::vector<std::string>* notes) const {
  switch (cond.kind()) {
    case Condition::Kind::kEqualsLiteral: {
      QOF_ASSIGN_OR_RETURN(ChainSelection sel,
                           SelectionForEquality(cond.literal()));
      return CompilePathLeaf(cond.path(), sel, notes);
    }
    case Condition::Kind::kContainsWord: {
      std::string trimmed(TrimView(cond.literal()));
      auto tokens = Tokenizer::Tokenize(trimmed);
      if (tokens.empty()) {
        return Status::InvalidArgument(
            "CONTAINS needs an indexable word, got: \"" +
            cond.literal() + "\"");
      }
      // Single words select via postings alone; multi-word literals use
      // phrase containment (first-word anchor + verifying scan).
      ChainSelection sel{ExprKind::kSelectContains,
                         tokens.size() == 1 ? std::string(tokens[0].text)
                                            : trimmed};
      return CompilePathLeaf(cond.path(), sel, notes);
    }
    case Condition::Kind::kStartsWith: {
      std::string trimmed(TrimView(cond.literal()));
      auto tokens = Tokenizer::Tokenize(trimmed);
      // The prefix must be one word fragment covering the whole literal
      // (the index anchors it at a single token).
      if (tokens.size() != 1 || tokens[0].start != 0) {
        return Status::InvalidArgument(
            "STARTS expects a single word prefix, got: \"" +
            cond.literal() + "\"");
      }
      ChainSelection sel{ExprKind::kSelectStartsWith, trimmed};
      return CompilePathLeaf(cond.path(), sel, notes);
    }
    case Condition::Kind::kEqualsPath: {
      QOF_ASSIGN_OR_RETURN(
          Leaf lhs, CompilePathLeaf(cond.path(), std::nullopt, notes));
      QOF_ASSIGN_OR_RETURN(
          Leaf rhs,
          CompilePathLeaf(cond.rhs_path(), std::nullopt, notes));
      if (lhs.expr == nullptr || rhs.expr == nullptr) {
        return Leaf{nullptr, true};
      }
      // Candidates: view regions holding both attributes; the content
      // comparison itself is beyond the region algebra (§5.2).
      return Leaf{RegionExpr::Intersect(lhs.expr, rhs.expr), false};
    }
    case Condition::Kind::kAnd: {
      QOF_ASSIGN_OR_RETURN(Leaf l, CompileCondition(*cond.left(), notes));
      QOF_ASSIGN_OR_RETURN(Leaf r,
                           CompileCondition(*cond.right(), notes));
      if (l.expr == nullptr || r.expr == nullptr) {
        return Leaf{nullptr, true};
      }
      return Leaf{RegionExpr::Intersect(l.expr, r.expr),
                  l.exact && r.exact};
    }
    case Condition::Kind::kOr: {
      QOF_ASSIGN_OR_RETURN(Leaf l, CompileCondition(*cond.left(), notes));
      QOF_ASSIGN_OR_RETURN(Leaf r,
                           CompileCondition(*cond.right(), notes));
      if (l.expr == nullptr) return r;
      if (r.expr == nullptr) return l;
      return Leaf{RegionExpr::Union(l.expr, r.expr), l.exact && r.exact};
    }
    case Condition::Kind::kNot: {
      QOF_ASSIGN_OR_RETURN(Leaf child,
                           CompileCondition(*cond.child(), notes));
      RegionExprPtr all = RegionExpr::Name(view_region_);
      if (child.expr == nullptr) {
        // NOT(provably empty) = every view region.
        return Leaf{all, true};
      }
      if (child.exact) {
        return Leaf{RegionExpr::Difference(all, child.expr), true};
      }
      // The complement of a superset is not a superset; the only safe
      // candidate set is every view region.
      notes->push_back(
          "NOT over inexact child: falling back to all view regions");
      return Leaf{all, false};
    }
  }
  return Status::Internal("unhandled condition kind");
}

Result<QueryPlan> QueryCompiler::Compile(const SelectQuery& query) const {
  QueryPlan plan;
  plan.query = query;
  plan.view_region = view_region_;

  if (indexed_names_.count(view_region_) == 0) {
    plan.view_indexed = false;
    plan.exact = false;
    plan.notes.push_back("view region '" + view_region_ +
                         "' is not indexed: full scan required");
    return plan;
  }

  Leaf leaf;
  if (query.where == nullptr) {
    leaf = Leaf{RegionExpr::Name(view_region_), true};
    plan.notes.push_back("no WHERE clause: all view regions");
  } else {
    QOF_ASSIGN_OR_RETURN(leaf,
                         CompileCondition(*query.where, &plan.notes));
  }
  if (leaf.expr == nullptr) {
    plan.trivially_empty = true;
    plan.exact = true;
    plan.notes.push_back("query is trivially empty (Prop. 3.3)");
    return plan;
  }
  plan.candidates = leaf.expr;
  plan.exact = leaf.exact;

  if (query.IsProjection()) {
    QOF_ASSIGN_OR_RETURN(plan.projection,
                         CompileAttrRegions(query.target, &plan.notes));
    plan.projection_exact = plan.projection != nullptr;
    if (!plan.projection_exact) {
      plan.notes.push_back(
          "projection target not index-computable: database projection");
    }
  }

  if (query.where != nullptr &&
      query.where->kind() == Condition::Kind::kEqualsPath &&
      plan.candidates != nullptr) {
    QOF_ASSIGN_OR_RETURN(
        plan.join_lhs_attrs,
        CompileAttrRegions(query.where->path(), &plan.notes));
    QOF_ASSIGN_OR_RETURN(
        plan.join_rhs_attrs,
        CompileAttrRegions(query.where->rhs_path(), &plan.notes));
    plan.index_join =
        plan.join_lhs_attrs != nullptr && plan.join_rhs_attrs != nullptr;
    if (plan.index_join) {
      plan.notes.push_back(
          "join predicate served by index-assisted join (§5.2)");
    }
  }
  return plan;
}

}  // namespace qof
