#ifndef QOF_COMPILER_EXACTNESS_H_
#define QOF_COMPILER_EXACTNESS_H_

#include <map>
#include <set>
#include <string>

#include "qof/algebra/inclusion_chain.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// Result of projecting a full-RIG inclusion chain onto a partial index
/// (paper §6.1) together with the §6.3 exactness verdict.
struct ChainProjection {
  /// The candidate chain over indexed names only. When the chain's final
  /// (selected) name is unindexed, the selection degrades to a
  /// word-containment test on the deepest indexed name — still a valid
  /// superset, never exact.
  InclusionChain chain;

  /// False when the view (first) name is unindexed: the index cannot even
  /// locate candidates and the engine must fall back to a full scan.
  bool view_indexed = true;

  /// §6.3: true iff evaluating `chain` on the indices yields exactly the
  /// original chain's result — every all-direct segment between kept
  /// names matches a *unique* full-RIG path through unindexed interiors,
  /// and the selection was not degraded.
  bool exact = true;
};

/// Projects `chain` (orientation kContains, names from the full RIG) onto
/// `indexed_names`. Segments between consecutive kept names become one
/// link: direct iff the whole segment was direct, plain otherwise.
///
/// `within` carries contextual indexing restrictions (§7): a name with
/// `within[N] = A` is only indexed inside A regions, so it counts as
/// indexed at a chain position only when A appears *earlier in the
/// chain* — the chain then guarantees every touched N region lies in an
/// A region, where the instance is complete. Elsewhere the name is
/// treated as unindexed (the instance would be missing out-of-context
/// regions and produce undersets).
Result<ChainProjection> ProjectChain(
    const Rig& full_rig, const std::set<std::string>& indexed_names,
    const InclusionChain& chain,
    const std::map<std::string, std::string>& within = {});

}  // namespace qof

#endif  // QOF_COMPILER_EXACTNESS_H_
