#ifndef QOF_COMPILER_QUERY_COMPILER_H_
#define QOF_COMPILER_QUERY_COMPILER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "qof/algebra/expr.h"
#include "qof/compiler/exactness.h"
#include "qof/compiler/path_mapper.h"
#include "qof/optimizer/optimizer.h"
#include "qof/query/ast.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// The compiled form of an FQL query (paper §5–§6): a region expression
/// locating *candidate* view regions, exactness information deciding
/// whether a second (parse + database filter) phase is needed, and
/// optional index-level projection / join expressions.
struct QueryPlan {
  SelectQuery query;

  /// The view's region name (the non-terminal whose regions are answers).
  std::string view_region;

  /// Candidate expression over the region indices; null when the view
  /// itself is unindexed (full scan required) or the query is trivially
  /// empty.
  RegionExprPtr candidates;

  /// Candidates are exactly the answer (§6.3 holds for every leaf and no
  /// residual comparison remains).
  bool exact = false;

  /// The RIG proves the result empty on every conforming file
  /// (Prop. 3.3 at some mandatory leaf).
  bool trivially_empty = false;

  /// View region name is indexed — candidates can be located at all.
  bool view_indexed = true;

  /// Set when WHERE is exactly one path = path predicate whose two
  /// attribute chains are index-computable: the engine can run the §5.2
  /// index-assisted join (read only the attribute regions' text).
  bool index_join = false;
  RegionExprPtr join_lhs_attrs;  // ⊂-chains yielding lhs attribute regions
  RegionExprPtr join_rhs_attrs;

  /// Index-level projection for SELECT r.path: an expression yielding the
  /// target attribute regions (to be intersected with candidates); null
  /// when the target is unindexed or inexact.
  RegionExprPtr projection;
  bool projection_exact = false;

  /// Human-readable compilation trace (optimizations applied, fallbacks).
  std::vector<std::string> notes;
};

/// Compiles FQL queries against a schema's full RIG and a concrete set of
/// indexed region names. Each WHERE leaf becomes optimized inclusion
/// chains (§5.1), projected onto the indices (§6.1), with AND/OR/NOT
/// combined by ∩/∪/− (§5.2).
class QueryCompiler {
 public:
  /// `view_region` is the non-terminal whose regions answer the query
  /// (schema view symbol); `indexed_names` the region names actually
  /// indexed; `within` any contextual restrictions on them (§7).
  QueryCompiler(const Rig* full_rig, std::set<std::string> indexed_names,
                std::string view_region,
                std::map<std::string, std::string> within = {});

  Result<QueryPlan> Compile(const SelectQuery& query) const;

  const Rig& partial_rig() const { return partial_rig_; }

 private:
  struct Leaf {
    RegionExprPtr expr;  // null means "provably empty"
    bool exact = true;
  };

  /// Locates view regions satisfying a path selection; `selection`
  /// nullopt locates view regions merely *containing* the attribute.
  Result<Leaf> CompilePathLeaf(const PathExpr& path,
                               std::optional<ChainSelection> selection,
                               std::vector<std::string>* notes) const;

  /// Builds the reversed (⊂-oriented) attribute-region expression for a
  /// path, used by projections and index joins; null when not
  /// index-computable exactly.
  Result<RegionExprPtr> CompileAttrRegions(
      const PathExpr& path, std::vector<std::string>* notes) const;

  Result<Leaf> CompileCondition(const Condition& cond,
                                std::vector<std::string>* notes) const;

  const Rig* full_rig_;
  std::set<std::string> indexed_names_;
  std::string view_region_;
  std::map<std::string, std::string> within_;
  Rig partial_rig_;
};

}  // namespace qof

#endif  // QOF_COMPILER_QUERY_COMPILER_H_
