#include "qof/compiler/index_advisor.h"

#include <algorithm>
#include <map>

#include "qof/compiler/exactness.h"
#include "qof/compiler/path_mapper.h"
#include "qof/optimizer/optimizer.h"

namespace qof {
namespace {

// All simple paths from `from` to `to` (interior node lists), capped.
void SimplePaths(const Rig& rig, Rig::NodeId cur, Rig::NodeId to,
                 std::vector<Rig::NodeId>* interior,
                 std::vector<bool>* on_path,
                 std::vector<std::vector<Rig::NodeId>>* out, size_t cap) {
  if (out->size() >= cap) return;
  for (Rig::NodeId next : rig.out_edges(cur)) {
    if (next == to) {
      out->push_back(*interior);
      if (out->size() >= cap) return;
      continue;
    }
    if ((*on_path)[next]) continue;
    (*on_path)[next] = true;
    interior->push_back(next);
    SimplePaths(rig, next, to, interior, on_path, out, cap);
    interior->pop_back();
    (*on_path)[next] = false;
  }
}

}  // namespace

Result<IndexAdvice> AdviseIndexes(
    const Rig& full_rig, const std::string& view_region,
    const std::vector<InclusionChain>& workload) {
  IndexAdvice advice;
  advice.names.insert(view_region);

  ChainOptimizer full_optimizer(&full_rig);
  std::vector<InclusionChain> optimized;
  for (const InclusionChain& chain : workload) {
    QOF_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                         full_optimizer.Optimize(chain));
    if (outcome.trivially_empty) {
      advice.notes.push_back("workload chain trivially empty, skipped: " +
                             chain.ToString());
      continue;
    }
    optimized.push_back(outcome.chain);
    advice.notes.push_back("optimized workload chain: " +
                           outcome.chain.ToString());
    // (i) names explicitly mentioned.
    for (const std::string& name : outcome.chain.names) {
      advice.names.insert(name);
    }
  }

  // (ii) for each remaining ⊃d link, block every alternate derivation by
  // indexing one interior per path (greedy cover across paths).
  for (const InclusionChain& chain : optimized) {
    for (size_t op = 0; op + 1 < chain.names.size(); ++op) {
      if (!chain.direct[op]) continue;
      auto [parent, child] = chain.Link(op);
      Rig::NodeId p = full_rig.FindNode(parent);
      Rig::NodeId c = full_rig.FindNode(child);
      if (p == Rig::kInvalidNode || c == Rig::kInvalidNode) continue;
      std::vector<std::vector<Rig::NodeId>> paths;
      std::vector<Rig::NodeId> interior;
      std::vector<bool> on_path(full_rig.num_nodes(), false);
      SimplePaths(full_rig, p, c, &interior, &on_path, &paths, 256);
      // Greedy: repeatedly pick the interior name covering the most
      // uncovered non-edge paths.
      auto covered = [&](const std::vector<Rig::NodeId>& path) {
        if (path.empty()) return true;  // the edge itself
        for (Rig::NodeId mid : path) {
          if (advice.names.count(full_rig.name(mid)) > 0) return true;
        }
        return false;
      };
      while (true) {
        std::map<Rig::NodeId, int> gain;
        for (const auto& path : paths) {
          if (covered(path)) continue;
          for (Rig::NodeId mid : path) ++gain[mid];
        }
        if (gain.empty()) break;
        Rig::NodeId best = gain.begin()->first;
        for (const auto& [node, count] : gain) {
          if (count > gain[best]) best = node;
        }
        advice.names.insert(full_rig.name(best));
        advice.notes.push_back("blocking interior for " + parent + " ⊃d " +
                               child + ": " + full_rig.name(best));
      }
    }
  }

  // Verification: every workload chain must now project exactly; add the
  // chain's full name set when the guideline was not sufficient.
  for (size_t i = 0; i < workload.size(); ++i) {
    QOF_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                         full_optimizer.Optimize(workload[i]));
    if (outcome.trivially_empty) continue;
    QOF_ASSIGN_OR_RETURN(ChainProjection projection,
                         ProjectChain(full_rig, advice.names, outcome.chain));
    if (!projection.exact) {
      for (const std::string& name : workload[i].names) {
        advice.names.insert(name);
      }
      advice.notes.push_back(
          "guideline insufficient; indexed all names of: " +
          workload[i].ToString());
    }
  }
  return advice;
}

namespace {

// Collects the chains of every path mentioned in a condition tree.
Status CollectChains(const Rig& full_rig, const std::string& view_region,
                     const Condition& cond,
                     std::vector<InclusionChain>* out) {
  auto add_path = [&](const PathExpr& path) -> Status {
    QOF_ASSIGN_OR_RETURN(
        MappedPath mapped,
        MapPathToChains(full_rig, view_region, path, std::nullopt));
    for (InclusionChain& chain : mapped.alternatives) {
      out->push_back(std::move(chain));
    }
    return Status::OK();
  };
  switch (cond.kind()) {
    case Condition::Kind::kEqualsLiteral:
    case Condition::Kind::kContainsWord:
    case Condition::Kind::kStartsWith:
      return add_path(cond.path());
    case Condition::Kind::kEqualsPath: {
      QOF_RETURN_IF_ERROR(add_path(cond.path()));
      return add_path(cond.rhs_path());
    }
    case Condition::Kind::kNot:
      return CollectChains(full_rig, view_region, *cond.child(), out);
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr: {
      QOF_RETURN_IF_ERROR(
          CollectChains(full_rig, view_region, *cond.left(), out));
      return CollectChains(full_rig, view_region, *cond.right(), out);
    }
  }
  return Status::Internal("unhandled condition kind");
}

}  // namespace

Result<IndexAdvice> AdviseIndexesForQueries(
    const Rig& full_rig, const std::string& view_region,
    const std::vector<SelectQuery>& queries) {
  std::vector<InclusionChain> workload;
  for (const SelectQuery& query : queries) {
    if (query.where != nullptr) {
      QOF_RETURN_IF_ERROR(CollectChains(full_rig, view_region,
                                        *query.where, &workload));
    }
    if (query.IsProjection()) {
      QOF_ASSIGN_OR_RETURN(
          MappedPath mapped,
          MapPathToChains(full_rig, view_region, query.target,
                          std::nullopt));
      for (InclusionChain& chain : mapped.alternatives) {
        workload.push_back(std::move(chain));
      }
    }
  }
  return AdviseIndexes(full_rig, view_region, workload);
}

}  // namespace qof
