#include "qof/compiler/path_mapper.h"

namespace qof {
namespace {

// Partial chain under construction.
struct Partial {
  std::vector<std::string> names;
  std::vector<bool> direct;
};

// Appends, to `out`, every interior-node sequence of length k such that
// from -> i1 -> ... -> ik -> to are RIG edges. Bounded by `cap`.
void EnumerateInteriors(const Rig& rig, Rig::NodeId from, Rig::NodeId to,
                        int k, std::vector<std::string>* current,
                        std::vector<std::vector<std::string>>* out,
                        size_t cap) {
  if (out->size() >= cap) return;
  if (k == 0) {
    if (rig.HasEdge(from, to)) out->push_back(*current);
    return;
  }
  for (Rig::NodeId mid : rig.out_edges(from)) {
    current->push_back(rig.name(mid));
    EnumerateInteriors(rig, mid, to, k - 1, current, out, cap);
    current->pop_back();
  }
}

}  // namespace

Result<MappedPath> MapPathToChains(
    const Rig& full_rig, const std::string& view_name, const PathExpr& path,
    std::optional<ChainSelection> selection,
    const PathMapOptions& options) {
  if (full_rig.FindNode(view_name) == Rig::kInvalidNode) {
    return Status::InvalidArgument("view is not a grammar non-terminal: " +
                                   view_name);
  }
  std::vector<Partial> partials = {{{view_name}, {}}};

  size_t i = 0;
  while (i < path.steps.size()) {
    const PathStep& step = path.steps[i];
    switch (step.kind) {
      case PathStep::Kind::kAttr: {
        Rig::NodeId attr = full_rig.FindNode(step.name);
        if (attr == Rig::kInvalidNode) {
          return Status::InvalidArgument(
              "attribute is not a grammar non-terminal: " + step.name);
        }
        std::vector<Partial> next;
        for (Partial& p : partials) {
          Rig::NodeId cur = full_rig.FindNode(p.names.back());
          if (!full_rig.HasEdge(cur, attr)) continue;
          Partial np = p;
          np.names.push_back(step.name);
          np.direct.push_back(true);
          next.push_back(std::move(np));
        }
        if (next.empty()) {
          return Status::InvalidArgument(
              "path step ." + step.name +
              " does not follow the schema (no RIG edge) in " +
              path.ToString());
        }
        partials = std::move(next);
        ++i;
        break;
      }
      case PathStep::Kind::kWildStar: {
        if (i + 1 >= path.steps.size() ||
            path.steps[i + 1].kind != PathStep::Kind::kAttr) {
          return Status::InvalidArgument(
              "wildcard *" + step.name +
              " must be followed by an attribute in " + path.ToString());
        }
        const std::string& attr_name = path.steps[i + 1].name;
        if (full_rig.FindNode(attr_name) == Rig::kInvalidNode) {
          return Status::InvalidArgument(
              "attribute is not a grammar non-terminal: " + attr_name);
        }
        // One plain-inclusion link; unreachable pairs are left for the
        // optimizer's triviality test.
        for (Partial& p : partials) {
          p.names.push_back(attr_name);
          p.direct.push_back(false);
        }
        i += 2;
        break;
      }
      case PathStep::Kind::kWildOne: {
        int k = 0;
        size_t j = i;
        while (j < path.steps.size() &&
               path.steps[j].kind == PathStep::Kind::kWildOne) {
          ++k;
          ++j;
        }
        if (j >= path.steps.size() ||
            path.steps[j].kind != PathStep::Kind::kAttr) {
          return Status::InvalidArgument(
              "wildcard ?" + step.name +
              " must be followed by an attribute in " + path.ToString());
        }
        const std::string& attr_name = path.steps[j].name;
        Rig::NodeId attr = full_rig.FindNode(attr_name);
        if (attr == Rig::kInvalidNode) {
          return Status::InvalidArgument(
              "attribute is not a grammar non-terminal: " + attr_name);
        }
        std::vector<Partial> next;
        for (Partial& p : partials) {
          Rig::NodeId cur = full_rig.FindNode(p.names.back());
          std::vector<std::vector<std::string>> interiors;
          std::vector<std::string> scratch;
          EnumerateInteriors(full_rig, cur, attr, k, &scratch, &interiors,
                             options.max_alternatives + 1);
          for (const auto& seq : interiors) {
            Partial np = p;
            for (const std::string& mid : seq) {
              np.names.push_back(mid);
              np.direct.push_back(true);
            }
            np.names.push_back(attr_name);
            np.direct.push_back(true);
            next.push_back(std::move(np));
            if (next.size() > options.max_alternatives) {
              return Status::InvalidArgument(
                  "wildcard expansion exceeds " +
                  std::to_string(options.max_alternatives) +
                  " alternatives in " + path.ToString());
            }
          }
        }
        if (next.empty()) {
          return Status::InvalidArgument(
              "no schema derivation of length " + std::to_string(k + 1) +
              " matches wildcard run before ." + attr_name + " in " +
              path.ToString());
        }
        partials = std::move(next);
        i = j + 1;
        break;
      }
    }
  }

  MappedPath mapped;
  for (Partial& p : partials) {
    InclusionChain chain;
    chain.orientation = InclusionChain::Orientation::kContains;
    chain.names = std::move(p.names);
    chain.direct = std::move(p.direct);
    chain.sels.resize(chain.names.size());
    if (selection.has_value()) {
      chain.sels.back() = selection;
    }
    mapped.alternatives.push_back(std::move(chain));
  }
  return mapped;
}

Result<std::vector<std::vector<NavStep>>> MapPathToNavSteps(
    const Rig& full_rig, const std::string& view_name, const PathExpr& path,
    const PathMapOptions& options) {
  // Reuse the chain mapping for validation and ?X expansion; then project
  // each alternative back onto navigation steps. *X links become AnyStar.
  QOF_ASSIGN_OR_RETURN(
      MappedPath mapped,
      MapPathToChains(full_rig, view_name, path, std::nullopt, options));
  std::vector<std::vector<NavStep>> out;
  for (const InclusionChain& chain : mapped.alternatives) {
    std::vector<NavStep> steps;
    for (size_t i = 1; i < chain.names.size(); ++i) {
      if (!chain.direct[i - 1]) steps.push_back(NavStep::AnyStar());
      steps.push_back(NavStep::Attr(chain.names[i]));
    }
    out.push_back(std::move(steps));
  }
  return out;
}

}  // namespace qof
