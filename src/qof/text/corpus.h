#ifndef QOF_TEXT_CORPUS_H_
#define QOF_TEXT_CORPUS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Identifies a document within a Corpus.
using DocId = uint32_t;

/// A byte offset into the corpus-wide virtual address space (all documents
/// concatenated in insertion order, separated by a single '\n' so that word
/// tokens never straddle documents).
using TextPos = uint64_t;

/// Corpus owns the raw text of every file handed to the system and exposes a
/// single flat address space over it. Region and word indices store offsets
/// into this space; TextOf() maps a span back to bytes.
///
/// This stands in for "the file system" in the paper: the engine's goal is to
/// touch as few of these bytes as possible when answering a query, and the
/// Corpus keeps a counter of bytes actually read so experiments can report
/// scanned-byte savings.
///
/// Mutation model (index maintenance, see src/qof/maintain/): the address
/// space is append-only. Replacing or removing a document *tombstones* its
/// span — the entry stays in the table (so the space stays laid out and
/// DocumentAt stays a binary search) but is no longer live; a replacement
/// appends the new text at the tail as a fresh entry under the same name.
/// Dead bytes linger until the maintainer compacts the corpus. Everything
/// that iterates documents must skip non-live entries.
class Corpus {
 public:
  Corpus() = default;

  // Corpus is the unique owner of the text; copies would silently duplicate
  // megabytes, so it is move-only.
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  // Hand-written moves: the scanned-byte counter is atomic (parallel
  // two-phase workers scan candidates concurrently), and atomics are not
  // movable by default.
  Corpus(Corpus&& other) noexcept
      : text_(std::move(other.text_)),
        docs_(std::move(other.docs_)),
        dead_docs_(other.dead_docs_),
        dead_bytes_(other.dead_bytes_),
        bytes_read_(other.bytes_read_.load(std::memory_order_relaxed)) {}
  Corpus& operator=(Corpus&& other) noexcept {
    text_ = std::move(other.text_);
    docs_ = std::move(other.docs_);
    dead_docs_ = other.dead_docs_;
    dead_bytes_ = other.dead_bytes_;
    bytes_read_.store(other.bytes_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  /// Explicit deep copy, for copy-on-write snapshot publication (see
  /// FileQuerySystem::AcquireSnapshot): a mutation arriving while a
  /// snapshot pins the current corpus clones it and mutates the clone,
  /// leaving the pinned original immutable. Deliberately not a copy
  /// constructor — accidental copies would silently duplicate megabytes.
  /// The clone's scanned-byte counter starts at zero.
  Corpus Clone() const {
    Corpus copy;
    copy.text_ = text_;
    copy.docs_ = docs_;
    copy.dead_docs_ = dead_docs_;
    copy.dead_bytes_ = dead_bytes_;
    return copy;
  }

  /// Appends a document; returns its id. Rejects names of *live*
  /// documents (a removed document's name may be reused).
  Result<DocId> AddDocument(std::string name, std::string_view text);

  /// Tombstones the live document `name` and appends `text` under the
  /// same name at the tail of the address space; returns the new id.
  /// NotFound when no live document has that name.
  Result<DocId> ReplaceDocument(std::string_view name,
                                std::string_view text);

  /// Tombstones the live document `name`. NotFound when absent.
  Result<DocId> RemoveDocument(std::string_view name);

  /// The live document named `name`, or NotFound.
  Result<DocId> FindDocument(std::string_view name) const;

  /// Entries in the table, dead ones included (iteration bound).
  size_t num_documents() const { return docs_.size(); }
  size_t num_live_documents() const { return docs_.size() - dead_docs_; }
  /// Tombstoned entries not yet compacted away.
  size_t num_dead_documents() const { return dead_docs_; }
  bool is_live(DocId id) const { return docs_[id].live; }
  /// True once any document was tombstoned: the address space has dead
  /// spans, full_text() is no longer equal to the live text, and whole-
  /// corpus shortcuts must fall back to per-document iteration.
  bool fragmented() const { return dead_docs_ > 0; }

  /// Total size of the virtual address space, separators included.
  TextPos size() const { return text_.size(); }
  /// Bytes belonging to tombstoned documents (compaction would reclaim
  /// them, separators excluded).
  uint64_t dead_bytes() const { return dead_bytes_; }

  const std::string& document_name(DocId id) const { return docs_[id].name; }
  /// [start, end) span of a document in the corpus address space.
  TextPos document_start(DocId id) const { return docs_[id].start; }
  TextPos document_end(DocId id) const { return docs_[id].end; }

  /// The document containing `pos` (live or tombstoned), or an error for
  /// separator/out-of-range positions.
  Result<DocId> DocumentAt(TextPos pos) const;

  /// Raw bytes of [start, end). Does not count towards bytes_read().
  std::string_view RawText(TextPos start, TextPos end) const {
    return std::string_view(text_).substr(start, end - start);
  }

  /// Bytes of [start, end), *accounted* as scanned: experiments use
  /// bytes_read() to compare how much text each query plan had to touch.
  /// When a ScanCounterScope is active on the calling thread, accounting
  /// goes to its counter instead of this corpus's — that is how
  /// concurrent snapshot queries sharing one corpus keep independent
  /// per-query byte totals (stats and byte budgets).
  std::string_view ScanText(TextPos start, TextPos end) const {
    std::atomic<uint64_t>* counter =
        tls_scan_counter_ != nullptr ? tls_scan_counter_ : &bytes_read_;
    counter->fetch_add(end - start, std::memory_order_relaxed);
    return RawText(start, end);
  }

  /// Charges `bytes` to the calling thread's active scan counter, if any
  /// (see ScanCounterScope). The disk-resident index tier accounts the
  /// *decompressed* bytes of the posting blocks it materializes this way,
  /// so a governed query's byte budget covers index I/O like it covers
  /// text scans. Outside a scope the charge is dropped — there is no
  /// corpus instance to attribute it to.
  static void ChargeScanBytes(uint64_t bytes) {
    if (tls_scan_counter_ != nullptr) {
      tls_scan_counter_->fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  /// The calling thread's active scan counter, or null outside any scope.
  /// Parallel executors capture this on the query thread and install it
  /// on their pool workers so morsel scans account like serial ones.
  static std::atomic<uint64_t>* CurrentThreadScanCounter() {
    return tls_scan_counter_;
  }

  /// RAII override routing this thread's ScanText accounting into
  /// `counter` (applies to every Corpus touched by the thread while the
  /// scope is active; a query only ever scans its own snapshot's corpus).
  /// Scopes nest; each restores the previous counter on destruction.
  class ScanCounterScope {
   public:
    explicit ScanCounterScope(std::atomic<uint64_t>* counter)
        : prev_(tls_scan_counter_) {
      tls_scan_counter_ = counter;
    }
    ~ScanCounterScope() { tls_scan_counter_ = prev_; }
    ScanCounterScope(const ScanCounterScope&) = delete;
    ScanCounterScope& operator=(const ScanCounterScope&) = delete;

   private:
    std::atomic<uint64_t>* prev_;
  };

  /// Full corpus view (used by index builders; indexing cost is reported
  /// separately from query-time scanning, so this is unaccounted). On a
  /// fragmented corpus this still includes dead spans — builders must
  /// iterate live documents instead.
  std::string_view full_text() const { return text_; }

  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  void ResetBytesRead() {
    bytes_read_.store(0, std::memory_order_relaxed);
  }
  /// The live counter itself, so a byte budget (ExecContext) can watch
  /// scanning progress without a dependency on this class.
  const std::atomic<uint64_t>& bytes_read_counter() const {
    return bytes_read_;
  }
  /// Writable view of the same counter, for a ScanCounterScope that
  /// routes a live (non-snapshot) execution's disk-tier charges here.
  /// Const: the counter is accounting state, not corpus content.
  std::atomic<uint64_t>& mutable_bytes_read_counter() const {
    return bytes_read_;
  }

 private:
  struct Doc {
    std::string name;
    TextPos start;
    TextPos end;
    bool live = true;
  };

  std::string text_;
  std::vector<Doc> docs_;
  size_t dead_docs_ = 0;
  uint64_t dead_bytes_ = 0;
  mutable std::atomic<uint64_t> bytes_read_{0};
  /// Per-thread scan-accounting override (see ScanCounterScope).
  static thread_local std::atomic<uint64_t>* tls_scan_counter_;
};

}  // namespace qof

#endif  // QOF_TEXT_CORPUS_H_
