#ifndef QOF_TEXT_WORD_INDEX_H_
#define QOF_TEXT_WORD_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qof/text/corpus.h"
#include "qof/text/posting_source.h"
#include "qof/text/tokenizer.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// Options controlling word-index construction.
struct WordIndexOptions {
  /// Fold tokens to lower case before indexing and lookup.
  bool fold_case = false;
  /// When set, only tokens for which the filter returns true are indexed
  /// (the paper's "selective indexing can also be done for words", §2/§7).
  /// Parallel builds call the filter from several worker threads at once,
  /// so it must be thread-safe (pure predicates are).
  std::function<bool(const WordToken&)> token_filter;
};

/// The word index of the paper's PAT-like engine: for every word in the
/// corpus, the sorted list of its occurrence start positions ("match
/// points"). All postings for a word share the word's byte length, so a
/// posting `p` denotes the corpus span [p, p + word.size()).
class WordIndex {
 public:
  /// Builds the index over the whole corpus. When `pool` is non-null and
  /// has more than one worker, documents are tokenized in parallel and
  /// the per-document postings merged in document order; the result is
  /// identical to the serial build (documents never share a token — the
  /// corpus separates them with '\n').
  static WordIndex Build(const Corpus& corpus, WordIndexOptions options = {},
                         ThreadPool* pool = nullptr);

  /// Sorted start positions of `word`'s occurrences (empty if absent).
  /// With a backing source attached (disk-resident mode) the first lookup
  /// of a word pages its postings in; an I/O failure answers empty here —
  /// fallible callers run EnsureLoaded() first to observe the error.
  const std::vector<TextPos>& Lookup(std::string_view word) const;

  // --- disk-resident backing (see src/qof/store/) -----------------------

  /// Attaches a backing source; posting lists materialize lazily from it
  /// on first Lookup. Words are never enumerated eagerly — presence is a
  /// dictionary probe against the source. Call on a freshly constructed
  /// index, before sharing it.
  void AttachSource(std::shared_ptr<const PostingSource> source) {
    source_ = std::move(source);
  }

  /// True while some posting list may still live only in the source.
  bool disk_resident() const {
    return source_ != nullptr &&
           !all_resident_.load(std::memory_order_acquire);
  }

  /// Pages `word`'s postings in (no-op when already resident or the word
  /// is absent) — the fallible face of Lookup().
  Status EnsureLoaded(std::string_view word) const;

  /// Materializes every stored posting list. Idempotent. Mutators and
  /// serialization (ForEachWord) require this first.
  Status EnsureResident() const;

  /// Merged, sorted start positions of every indexed word beginning with
  /// `prefix` — PAT's lexical/prefix search. Uses a lazily built sorted
  /// word directory; O(log W + hits). Safe to call from concurrent
  /// readers sharing an otherwise-immutable index (snapshot queries).
  std::vector<TextPos> LookupPrefix(std::string_view prefix) const;

  // Hand-written copy/move: the directory cache both embeds a mutex
  // (per-instance) and holds pointers into this instance's postings_
  // keys, so it must never travel with the data — it is dropped and
  // lazily rebuilt in the destination.
  WordIndex() = default;
  WordIndex(const WordIndex& other) {
    std::lock_guard<std::mutex> lock(other.lazy_mu_);
    postings_ = other.postings_;
    num_postings_ = other.num_postings_;
    options_ = other.options_;
    source_ = other.source_;
    absent_ = other.absent_;
    all_resident_.store(other.all_resident_.load(std::memory_order_acquire),
                        std::memory_order_release);
  }
  WordIndex& operator=(const WordIndex& other) {
    if (this == &other) return *this;
    std::lock_guard<std::mutex> lock(other.lazy_mu_);
    postings_ = other.postings_;
    num_postings_ = other.num_postings_;
    options_ = other.options_;
    source_ = other.source_;
    absent_ = other.absent_;
    all_resident_.store(other.all_resident_.load(std::memory_order_acquire),
                        std::memory_order_release);
    sorted_words_.clear();
    return *this;
  }
  WordIndex(WordIndex&& other) noexcept
      : postings_(std::move(other.postings_)),
        num_postings_(other.num_postings_),
        options_(std::move(other.options_)),
        source_(std::move(other.source_)),
        absent_(std::move(other.absent_)) {
    all_resident_.store(other.all_resident_.load(std::memory_order_acquire),
                        std::memory_order_release);
    other.sorted_words_.clear();  // its pointers moved away with the map
  }
  WordIndex& operator=(WordIndex&& other) noexcept {
    postings_ = std::move(other.postings_);
    num_postings_ = other.num_postings_;
    options_ = std::move(other.options_);
    source_ = std::move(other.source_);
    absent_ = std::move(other.absent_);
    all_resident_.store(other.all_resident_.load(std::memory_order_acquire),
                        std::memory_order_release);
    sorted_words_.clear();
    other.sorted_words_.clear();
    return *this;
  }

  /// True when the word occurs at least once.
  bool Contains(std::string_view word) const {
    return !Lookup(word).empty();
  }

  size_t num_distinct_words() const {
    // Disk-resident: the store's dictionary knows the count without any
    // list being materialized (loaded words are a subset of stored ones).
    if (disk_resident()) return source_->distinct_words();
    return postings_.size();
  }
  uint64_t num_postings() const {
    if (disk_resident()) return source_->total_postings();
    return num_postings_;
  }

  /// Approximate memory footprint in bytes (keys + postings), used by the
  /// index-size/efficiency tradeoff experiments.
  uint64_t ApproxBytes() const;

  const WordIndexOptions& options() const { return options_; }

  /// Iterates (word, postings) pairs in unspecified order — serialization
  /// support. Disk-resident indexes require EnsureResident() first (only
  /// materialized lists are visible here).
  template <typename Fn>
  void ForEachWord(Fn&& fn) const {
    for (const auto& [word, postings] : postings_) fn(word, postings);
  }

  /// Reassembles an index from serialized entries. Postings must be
  /// sorted; `fold_case` must match the original build options (a
  /// token_filter, being code, is not serializable and is dropped).
  static WordIndex FromEntries(
      std::vector<std::pair<std::string, std::vector<TextPos>>> entries,
      bool fold_case);

  // --- incremental maintenance (see src/qof/maintain/) ------------------
  //
  // Documents occupy disjoint spans of the corpus address space, so one
  // document's postings form a contiguous run inside each word's sorted
  // list: adding or removing a document is a per-word run insert/erase,
  // never a rebuild. A word whose last posting is erased loses its entry
  // entirely, so a maintained index stays indistinguishable from a fresh
  // build over the live documents.

  /// Tokenizes `doc_text` (with this index's options) and splices the
  /// postings in; `base` is the document's corpus offset.
  void AddDocPostings(std::string_view doc_text, TextPos base);

  /// Erases the postings of a document whose text is known: tokenizes
  /// `doc_text` to find the affected words, then range-erases each one's
  /// [begin, end) run. Exact (erases precisely the document's postings).
  void EraseDocPostings(std::string_view doc_text, TextPos begin,
                        TextPos end);

  /// Erases every posting in [begin, end) without knowing the document's
  /// text — walks all words. Same result as EraseDocPostings, used by
  /// journal replay when the tombstoned document's bytes are unknown.
  void EraseSpanPostings(TextPos begin, TextPos end);

  /// Compaction support: remaps every posting through `map` (documents
  /// shift as dead spans are squeezed out) and restores per-word sorted
  /// order. When `pool` has more than one worker, word lists are rebased
  /// in parallel.
  void RebasePostings(const std::function<TextPos(TextPos)>& map,
                      ThreadPool* pool = nullptr);

 private:
  /// Pages `key` (already case-folded) in from the source; returns the
  /// resident list, or null when the word is absent. Caller holds
  /// lazy_mu_.
  Result<const std::vector<TextPos>*> LoadLocked(const std::string& key) const;

  /// Mutable: Lookup materializes lazily under lazy_mu_ while a source is
  /// attached. Node-based, so references handed out survive later
  /// insertions.
  mutable std::unordered_map<std::string, std::vector<TextPos>> postings_;
  mutable uint64_t num_postings_ = 0;
  WordIndexOptions options_;
  /// Backing source; null for a fully in-memory index. Set once before
  /// the index is shared, never reassigned by const paths.
  std::shared_ptr<const PostingSource> source_;
  /// Serializes lazy materialization between concurrent readers. Taken by
  /// const paths only while a source is attached.
  mutable std::mutex lazy_mu_;
  /// Words probed and found absent in the source (negative cache, guarded
  /// by lazy_mu_).
  mutable std::unordered_set<std::string> absent_;
  /// Flipped (release) once every stored list is materialized; readers
  /// that observe it (acquire) may touch postings_ without the lock.
  mutable std::atomic<bool> all_resident_{false};
  // Lazily built sorted directory of the words in postings_, for prefix
  // lookups. The mutex serializes the build between concurrent readers of
  // a shared immutable index; maintenance mutators (which require
  // external exclusion anyway) clear the directory.
  mutable std::mutex sorted_words_mu_;
  mutable std::vector<const std::string*> sorted_words_;
};

}  // namespace qof

#endif  // QOF_TEXT_WORD_INDEX_H_
