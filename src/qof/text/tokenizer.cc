#include "qof/text/tokenizer.h"

namespace qof {

std::vector<WordToken> Tokenizer::Tokenize(std::string_view text,
                                           TextPos base) {
  std::vector<WordToken> out;
  ForEachToken(text, base, [&out](const WordToken& t) { out.push_back(t); });
  return out;
}

}  // namespace qof
