#include "qof/text/corpus.h"

#include <algorithm>

namespace qof {

Result<DocId> Corpus::AddDocument(std::string name, std::string_view text) {
  for (const Doc& d : docs_) {
    if (d.name == name) {
      return Status::AlreadyExists("document already in corpus: " + name);
    }
  }
  if (!text_.empty()) text_.push_back('\n');
  TextPos start = text_.size();
  text_.append(text);
  docs_.push_back(Doc{std::move(name), start, text_.size()});
  return static_cast<DocId>(docs_.size() - 1);
}

Result<DocId> Corpus::DocumentAt(TextPos pos) const {
  // Binary search over document start offsets.
  auto it = std::upper_bound(
      docs_.begin(), docs_.end(), pos,
      [](TextPos p, const Doc& d) { return p < d.start; });
  if (it == docs_.begin()) {
    return Status::OutOfRange("position before first document");
  }
  --it;
  if (pos >= it->end) {
    return Status::OutOfRange("position falls between documents");
  }
  return static_cast<DocId>(it - docs_.begin());
}

}  // namespace qof
