#include "qof/text/corpus.h"

#include <algorithm>

namespace qof {

thread_local std::atomic<uint64_t>* Corpus::tls_scan_counter_ = nullptr;

Result<DocId> Corpus::AddDocument(std::string name, std::string_view text) {
  for (const Doc& d : docs_) {
    if (d.live && d.name == name) {
      return Status::AlreadyExists("document already in corpus: " + name);
    }
  }
  if (!text_.empty()) text_.push_back('\n');
  TextPos start = text_.size();
  text_.append(text);
  docs_.push_back(Doc{std::move(name), start, text_.size(), /*live=*/true});
  return static_cast<DocId>(docs_.size() - 1);
}

Result<DocId> Corpus::FindDocument(std::string_view name) const {
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i].live && docs_[i].name == name) {
      return static_cast<DocId>(i);
    }
  }
  return Status::NotFound("no live document named '" + std::string(name) +
                          "'");
}

Result<DocId> Corpus::RemoveDocument(std::string_view name) {
  QOF_ASSIGN_OR_RETURN(DocId id, FindDocument(name));
  Doc& doc = docs_[id];
  doc.live = false;
  ++dead_docs_;
  dead_bytes_ += doc.end - doc.start;
  return id;
}

Result<DocId> Corpus::ReplaceDocument(std::string_view name,
                                      std::string_view text) {
  QOF_ASSIGN_OR_RETURN(DocId old_id, RemoveDocument(name));
  (void)old_id;
  return AddDocument(std::string(name), text);
}

Result<DocId> Corpus::DocumentAt(TextPos pos) const {
  // Binary search over document start offsets (tombstoned entries keep
  // their spans, so the table stays sorted by start).
  auto it = std::upper_bound(
      docs_.begin(), docs_.end(), pos,
      [](TextPos p, const Doc& d) { return p < d.start; });
  if (it == docs_.begin()) {
    return Status::OutOfRange("position before first document");
  }
  --it;
  if (pos >= it->end) {
    return Status::OutOfRange("position falls between documents");
  }
  return static_cast<DocId>(it - docs_.begin());
}

}  // namespace qof
