#include "qof/text/word_index.h"

#include <algorithm>
#include <cctype>

namespace qof {
namespace {

std::string FoldCase(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

WordIndex WordIndex::Build(const Corpus& corpus, WordIndexOptions options) {
  WordIndex index;
  index.options_ = options;
  Tokenizer::ForEachToken(
      corpus.full_text(), /*base=*/0, [&](const WordToken& t) {
        if (options.token_filter && !options.token_filter(t)) return;
        std::string key = options.fold_case ? FoldCase(t.text)
                                            : std::string(t.text);
        index.postings_[std::move(key)].push_back(t.start);
        ++index.num_postings_;
      });
  // Tokens are produced in text order, so postings are already sorted;
  // keep an assertion-friendly invariant anyway.
  for (auto& [word, list] : index.postings_) {
    (void)word;
    if (!std::is_sorted(list.begin(), list.end())) {
      std::sort(list.begin(), list.end());
    }
  }
  return index;
}

const std::vector<TextPos>& WordIndex::Lookup(std::string_view word) const {
  static const std::vector<TextPos> kEmpty;
  std::string key = options_.fold_case ? FoldCase(word) : std::string(word);
  auto it = postings_.find(key);
  return it == postings_.end() ? kEmpty : it->second;
}

std::vector<TextPos> WordIndex::LookupPrefix(
    std::string_view prefix) const {
  std::string key = options_.fold_case ? FoldCase(prefix)
                                       : std::string(prefix);
  if (sorted_words_.empty() && !postings_.empty()) {
    sorted_words_.reserve(postings_.size());
    for (const auto& [word, list] : postings_) {
      sorted_words_.push_back(&word);
    }
    std::sort(sorted_words_.begin(), sorted_words_.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
  }
  auto lo = std::lower_bound(
      sorted_words_.begin(), sorted_words_.end(), key,
      [](const std::string* w, const std::string& k) { return *w < k; });
  std::vector<TextPos> out;
  for (auto it = lo; it != sorted_words_.end(); ++it) {
    if ((*it)->compare(0, key.size(), key) != 0) break;
    const std::vector<TextPos>& list = postings_.at(**it);
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

WordIndex WordIndex::FromEntries(
    std::vector<std::pair<std::string, std::vector<TextPos>>> entries,
    bool fold_case) {
  WordIndex index;
  index.options_.fold_case = fold_case;
  for (auto& [word, postings] : entries) {
    index.num_postings_ += postings.size();
    index.postings_.emplace(std::move(word), std::move(postings));
  }
  return index;
}

uint64_t WordIndex::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const auto& [word, list] : postings_) {
    bytes += word.size() + sizeof(std::string) +
             list.size() * sizeof(TextPos) + sizeof(list);
  }
  return bytes;
}

}  // namespace qof
