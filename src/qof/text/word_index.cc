#include "qof/text/word_index.h"

#include <algorithm>
#include <cctype>

namespace qof {
namespace {

std::string FoldCase(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Per-document postings in first-occurrence key order, so that merging
/// shards in document order reproduces the serial build's insertion
/// sequence exactly.
struct DocPostings {
  std::unordered_map<std::string, std::vector<TextPos>> map;
  std::vector<const std::string*> order;  // keys in first-occurrence order
};

void TokenizeInto(std::string_view text, TextPos base,
                  const WordIndexOptions& options, DocPostings* out) {
  Tokenizer::ForEachToken(text, base, [&](const WordToken& t) {
    if (options.token_filter && !options.token_filter(t)) return;
    std::string key =
        options.fold_case ? FoldCase(t.text) : std::string(t.text);
    auto [it, inserted] = out->map.try_emplace(std::move(key));
    if (inserted) out->order.push_back(&it->first);
    it->second.push_back(t.start);
  });
}

}  // namespace

WordIndex WordIndex::Build(const Corpus& corpus, WordIndexOptions options,
                           ThreadPool* pool) {
  WordIndex index;
  index.options_ = options;
  if (pool == nullptr || pool->size() <= 1 || corpus.num_documents() < 2) {
    // Serial build: one pass over the whole corpus — unless tombstoned
    // spans fragment it, in which case only live documents are read
    // (identical output: the '\n' separators mean no token straddles a
    // document boundary).
    auto take = [&](const WordToken& t) {
      if (options.token_filter && !options.token_filter(t)) return;
      std::string key =
          options.fold_case ? FoldCase(t.text) : std::string(t.text);
      index.postings_[std::move(key)].push_back(t.start);
      ++index.num_postings_;
    };
    if (!corpus.fragmented()) {
      Tokenizer::ForEachToken(corpus.full_text(), /*base=*/0, take);
    } else {
      for (DocId doc = 0; doc < corpus.num_documents(); ++doc) {
        if (!corpus.is_live(doc)) continue;
        TextPos begin = corpus.document_start(doc);
        Tokenizer::ForEachToken(
            corpus.RawText(begin, corpus.document_end(doc)), begin, take);
      }
    }
  } else {
    // Parallel build: tokenize each document on the pool, then merge in
    // document order. Documents are contiguous ascending spans, so
    // appending a document's postings after its predecessors' keeps
    // every list sorted, and inserting keys in (document, first
    // occurrence) order matches the serial insertion sequence.
    std::vector<DocPostings> docs(corpus.num_documents());
    pool->ParallelFor(corpus.num_documents(), [&](int, size_t d) {
      DocId doc = static_cast<DocId>(d);
      if (!corpus.is_live(doc)) return;
      TextPos begin = corpus.document_start(doc);
      TokenizeInto(corpus.RawText(begin, corpus.document_end(doc)), begin,
                   options, &docs[d]);
    });
    for (DocPostings& doc : docs) {
      for (const std::string* key : doc.order) {
        std::vector<TextPos>& shard = doc.map.at(*key);
        index.num_postings_ += shard.size();
        std::vector<TextPos>& list = index.postings_[*key];
        if (list.empty()) {
          list = std::move(shard);
        } else {
          list.insert(list.end(), shard.begin(), shard.end());
        }
      }
    }
  }
  // Tokens are produced in text order, so postings are already sorted;
  // keep an assertion-friendly invariant anyway.
  for (auto& [word, list] : index.postings_) {
    (void)word;
    if (!std::is_sorted(list.begin(), list.end())) {
      std::sort(list.begin(), list.end());
    }
  }
  return index;
}

Result<const std::vector<TextPos>*> WordIndex::LoadLocked(
    const std::string& key) const {
  auto it = postings_.find(key);
  if (it != postings_.end()) return &it->second;
  if (all_resident_.load(std::memory_order_acquire) ||
      absent_.count(key) > 0) {
    return static_cast<const std::vector<TextPos>*>(nullptr);
  }
  QOF_ASSIGN_OR_RETURN(std::optional<std::vector<TextPos>> loaded,
                       source_->Load(key));
  if (!loaded.has_value()) {
    absent_.insert(key);
    return static_cast<const std::vector<TextPos>*>(nullptr);
  }
  num_postings_ += loaded->size();
  auto [pos, inserted] = postings_.emplace(key, std::move(*loaded));
  return &pos->second;
}

const std::vector<TextPos>& WordIndex::Lookup(std::string_view word) const {
  static const std::vector<TextPos> kEmpty;
  std::string key = options_.fold_case ? FoldCase(word) : std::string(word);
  if (source_ != nullptr &&
      !all_resident_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    auto loaded = LoadLocked(key);
    // An I/O error answers empty; EnsureLoaded() is the fallible face.
    if (!loaded.ok() || *loaded == nullptr) return kEmpty;
    return **loaded;
  }
  auto it = postings_.find(key);
  return it == postings_.end() ? kEmpty : it->second;
}

Status WordIndex::EnsureLoaded(std::string_view word) const {
  if (source_ == nullptr || all_resident_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  std::string key = options_.fold_case ? FoldCase(word) : std::string(word);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  return LoadLocked(key).status();
}

Status WordIndex::EnsureResident() const {
  if (source_ == nullptr || all_resident_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(lazy_mu_);
  QOF_ASSIGN_OR_RETURN(std::vector<PostingSource::Entry> entries,
                       source_->Entries());
  for (const auto& e : entries) {
    QOF_ASSIGN_OR_RETURN(const std::vector<TextPos>* list, LoadLocked(e.word));
    if (list == nullptr || list->size() != e.count) {
      return Status::Internal(
          "word '" + e.word + "' materialized " +
          std::to_string(list == nullptr ? 0 : list->size()) +
          " postings, store dictionary promised " + std::to_string(e.count));
    }
  }
  absent_.clear();
  all_resident_.store(true, std::memory_order_release);
  return Status::OK();
}

std::vector<TextPos> WordIndex::LookupPrefix(
    std::string_view prefix) const {
  std::string key = options_.fold_case ? FoldCase(prefix)
                                       : std::string(prefix);
  if (source_ != nullptr &&
      !all_resident_.load(std::memory_order_acquire)) {
    // Ask the source's sorted dictionary which words qualify, then page
    // each one in. Errors degrade to the empty answer (prefix search has
    // no fallible signature); governed queries surface the underlying
    // failure through their byte/deadline checks instead.
    std::vector<TextPos> out;
    auto words = source_->WordsWithPrefix(key);
    if (!words.ok()) return out;
    std::lock_guard<std::mutex> lock(lazy_mu_);
    for (const std::string& word : *words) {
      auto loaded = LoadLocked(word);
      if (!loaded.ok() || *loaded == nullptr) continue;
      out.insert(out.end(), (*loaded)->begin(), (*loaded)->end());
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  // Prefix search is cold; holding the lock across the whole walk keeps
  // the lazy directory build race-free under concurrent snapshot readers.
  std::lock_guard<std::mutex> lock(sorted_words_mu_);
  if (sorted_words_.empty() && !postings_.empty()) {
    sorted_words_.reserve(postings_.size());
    for (const auto& [word, list] : postings_) {
      sorted_words_.push_back(&word);
    }
    std::sort(sorted_words_.begin(), sorted_words_.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
  }
  auto lo = std::lower_bound(
      sorted_words_.begin(), sorted_words_.end(), key,
      [](const std::string* w, const std::string& k) { return *w < k; });
  std::vector<TextPos> out;
  for (auto it = lo; it != sorted_words_.end(); ++it) {
    if ((*it)->compare(0, key.size(), key) != 0) break;
    const std::vector<TextPos>& list = postings_.at(**it);
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

WordIndex WordIndex::FromEntries(
    std::vector<std::pair<std::string, std::vector<TextPos>>> entries,
    bool fold_case) {
  WordIndex index;
  index.options_.fold_case = fold_case;
  for (auto& [word, postings] : entries) {
    index.num_postings_ += postings.size();
    index.postings_.emplace(std::move(word), std::move(postings));
  }
  return index;
}

void WordIndex::AddDocPostings(std::string_view doc_text, TextPos base) {
  DocPostings doc;
  TokenizeInto(doc_text, base, options_, &doc);
  for (const std::string* key : doc.order) {
    std::vector<TextPos>& run = doc.map.at(*key);
    num_postings_ += run.size();
    std::vector<TextPos>& list = postings_[*key];
    if (list.empty() || list.back() < run.front()) {
      list.insert(list.end(), run.begin(), run.end());
    } else {
      // The document's span is disjoint from every other document's, so
      // the whole run lands at a single insertion point.
      auto at = std::lower_bound(list.begin(), list.end(), run.front());
      list.insert(at, run.begin(), run.end());
    }
  }
  sorted_words_.clear();
}

void WordIndex::EraseDocPostings(std::string_view doc_text, TextPos begin,
                                 TextPos end) {
  DocPostings doc;
  TokenizeInto(doc_text, begin, options_, &doc);
  for (const std::string* key : doc.order) {
    auto it = postings_.find(*key);
    if (it == postings_.end()) continue;
    std::vector<TextPos>& list = it->second;
    auto lo = std::lower_bound(list.begin(), list.end(), begin);
    auto hi = std::lower_bound(lo, list.end(), end);
    num_postings_ -= static_cast<uint64_t>(hi - lo);
    list.erase(lo, hi);
    if (list.empty()) postings_.erase(it);
  }
  sorted_words_.clear();
}

void WordIndex::EraseSpanPostings(TextPos begin, TextPos end) {
  for (auto it = postings_.begin(); it != postings_.end();) {
    std::vector<TextPos>& list = it->second;
    auto lo = std::lower_bound(list.begin(), list.end(), begin);
    auto hi = std::lower_bound(lo, list.end(), end);
    num_postings_ -= static_cast<uint64_t>(hi - lo);
    list.erase(lo, hi);
    it = list.empty() ? postings_.erase(it) : std::next(it);
  }
  sorted_words_.clear();
}

void WordIndex::RebasePostings(const std::function<TextPos(TextPos)>& map,
                               ThreadPool* pool) {
  std::vector<std::vector<TextPos>*> lists;
  lists.reserve(postings_.size());
  for (auto& [word, list] : postings_) lists.push_back(&list);
  auto rebase_one = [&map](std::vector<TextPos>* list) {
    for (TextPos& p : *list) p = map(p);
    // A document moved toward the front of the address space can land its
    // run below a physically earlier (but logically later) one.
    std::sort(list->begin(), list->end());
  };
  if (pool != nullptr && pool->size() > 1 && lists.size() > 1) {
    pool->ParallelFor(lists.size(),
                      [&](int, size_t i) { rebase_one(lists[i]); });
  } else {
    for (auto* list : lists) rebase_one(list);
  }
  sorted_words_.clear();
}

uint64_t WordIndex::ApproxBytes() const {
  if (source_ != nullptr &&
      !all_resident_.load(std::memory_order_acquire)) {
    // Disk-resident: report the store's encoded footprint plus whatever
    // has been materialized so far.
    std::lock_guard<std::mutex> lock(lazy_mu_);
    uint64_t bytes = source_->approx_bytes();
    for (const auto& [word, list] : postings_) {
      bytes += word.size() + sizeof(std::string) +
               list.size() * sizeof(TextPos) + sizeof(list);
    }
    return bytes;
  }
  uint64_t bytes = 0;
  for (const auto& [word, list] : postings_) {
    bytes += word.size() + sizeof(std::string) +
             list.size() * sizeof(TextPos) + sizeof(list);
  }
  return bytes;
}

}  // namespace qof
