#ifndef QOF_TEXT_TOKENIZER_H_
#define QOF_TEXT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "qof/text/corpus.h"

namespace qof {

/// A word occurrence in the corpus: [start, end) bytes of one token.
struct WordToken {
  TextPos start;
  TextPos end;
  std::string_view text;
};

/// Splits text into maximal runs of word characters (see IsWordChar), the
/// same tokenization a PAT-style word index applies when it is built.
/// Punctuation attached to a word is trimmed from both ends so that
/// "Chang\"," indexes as "Chang".
class Tokenizer {
 public:
  /// Tokenizes `text`, reporting offsets relative to `base` (pass the
  /// document/corpus start so offsets land in corpus space).
  static std::vector<WordToken> Tokenize(std::string_view text,
                                         TextPos base = 0);

  /// Invokes `fn(WordToken)` per token without materializing a vector.
  template <typename Fn>
  static void ForEachToken(std::string_view text, TextPos base, Fn&& fn);
};

template <typename Fn>
void Tokenizer::ForEachToken(std::string_view text, TextPos base, Fn&& fn) {
  size_t i = 0;
  const size_t n = text.size();
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '\'' || c == '-' ||
           c == '.';
  };
  auto is_core = [](char c) {
    // Token cores exclude the trimmable punctuation ('.', '-', '\'').
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  while (i < n) {
    while (i < n && !is_word(text[i])) ++i;
    size_t b = i;
    while (i < n && is_word(text[i])) ++i;
    if (b == i) continue;
    // Trim leading/trailing punctuation so "Penn." indexes as "Penn".
    size_t tb = b;
    size_t te = i;
    while (tb < te && !is_core(text[tb])) ++tb;
    while (te > tb && !is_core(text[te - 1])) --te;
    if (tb == te) continue;
    fn(WordToken{base + tb, base + te, text.substr(tb, te - tb)});
  }
}

}  // namespace qof

#endif  // QOF_TEXT_TOKENIZER_H_
