#ifndef QOF_TEXT_POSTING_SOURCE_H_
#define QOF_TEXT_POSTING_SOURCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// A backing tier a WordIndex can load posting lists from on demand (the
/// disk-resident paged store implements this; see qof/store/). Unlike
/// region names, words number in the hundreds of thousands, so the index
/// never enumerates them eagerly: presence is a dictionary probe, prefix
/// search asks the source's sorted dictionary, and Entries() exists only
/// for full materialization (serialization, mutations).
///
/// Implementations must be thread-safe.
class PostingSource {
 public:
  virtual ~PostingSource() = default;

  struct Entry {
    std::string word;
    uint64_t count = 0;  // postings for the word
  };

  virtual uint64_t distinct_words() const = 0;
  virtual uint64_t total_postings() const = 0;
  /// Encoded bytes of all posting lists (footprint reporting).
  virtual uint64_t approx_bytes() const = 0;

  /// The word's sorted postings, or nullopt when the word is not stored
  /// (absence is an answer, not an error).
  virtual Result<std::optional<std::vector<TextPos>>> Load(
      std::string_view word) const = 0;

  /// Stored words beginning with `prefix`, sorted.
  virtual Result<std::vector<std::string>> WordsWithPrefix(
      std::string_view prefix) const = 0;

  /// Every stored word with its cardinality, sorted — the full-
  /// materialization path only.
  virtual Result<std::vector<Entry>> Entries() const = 0;
};

}  // namespace qof

#endif  // QOF_TEXT_POSTING_SOURCE_H_
