#include "qof/util/status.h"

namespace qof {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kBudgetExhausted:
      return "Budget exhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace qof
