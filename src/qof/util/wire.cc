#include "qof/util/wire.h"

namespace qof {

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Result<uint64_t> WireReader::U64() {
  if (pos_ + 8 > data_.size()) return Truncated();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint32_t> WireReader::U32() {
  if (pos_ + 4 > data_.size()) return Truncated();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint8_t> WireReader::U8() {
  if (pos_ + 1 > data_.size()) return Truncated();
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<std::string> WireReader::String() {
  QOF_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > data_.size()) return Truncated();
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<uint64_t> WireReader::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return Truncated();
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7e) != 0) break;  // overflow past 64 bits
      return v;
    }
  }
  return Status::InvalidArgument("corrupt " + what_ + ": varint at offset " +
                                 std::to_string(pos_) +
                                 " exceeds 64 bits");
}

Status WireReader::CheckCount(uint64_t count, size_t min_bytes_each) {
  if (count > Remaining() / min_bytes_each) {
    return Status::InvalidArgument(
        "corrupt " + what_ + ": count " + std::to_string(count) +
        " at offset " + std::to_string(pos_) + " exceeds the " +
        std::to_string(Remaining()) + " bytes that follow");
  }
  return Status::OK();
}

Status WireReader::Truncated() const {
  return Status::InvalidArgument("truncated " + what_ + " at offset " +
                                 std::to_string(pos_));
}

}  // namespace qof
