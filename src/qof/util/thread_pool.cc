#include "qof/util/thread_pool.h"

namespace qof {

int EffectiveParallelism(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(EffectiveParallelism(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(size_t num_items,
                             const std::function<void(int, size_t)>& fn,
                             const std::atomic<bool>* stop) {
  if (num_items == 0) return;
  if (workers_.empty() || num_items == 1) {
    for (size_t i = 0; i < num_items; ++i) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      fn(0, i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_items_ = num_items;
    job_stop_ = stop;
    next_index_.store(0, std::memory_order_relaxed);
    workers_active_ = static_cast<int>(workers_.size());
    ++job_generation_;
  }
  job_cv_.notify_all();
  RunJob(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return workers_active_ == 0; });
  job_fn_ = nullptr;
  job_stop_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
    }
    RunJob(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunJob(int worker) {
  // job_fn_/job_items_ were published under mu_ before this worker woke
  // (or before the caller entered RunJob), and are not cleared until
  // every worker has decremented workers_active_.
  const std::function<void(int, size_t)>& fn = *job_fn_;
  const size_t n = job_items_;
  const std::atomic<bool>* stop = job_stop_;
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    fn(worker, i);
  }
}

TaskQueue::TaskQueue(int num_threads, size_t max_queued)
    : num_threads_(EffectiveParallelism(num_threads)),
      max_queued_(max_queued) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() { Shutdown(); }

bool TaskQueue::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    if (max_queued_ != 0 && queue_.size() >= max_queued_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void TaskQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t TaskQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int TaskQueue::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void TaskQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Accepted tasks run even during shutdown: TrySubmit's true means
      // "will execute", which the service layer relies on to always
      // deliver a completion.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
  }
}

}  // namespace qof
