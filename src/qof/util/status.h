#ifndef QOF_UTIL_STATUS_H_
#define QOF_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace qof {

/// Error categories used across the library. Mirrors the usual
/// database-systems convention (Arrow/RocksDB): functions that can fail
/// return a Status (or a Result<T>), never throw across the API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kNotImplemented,
  kInternal,
  // Resource-governance outcomes (see qof/exec/exec_context.h): execution
  // was interrupted by a limit the caller set, not by bad data.
  kDeadlineExceeded,
  kCancelled,
  kBudgetExhausted,
  // Admission control (see qof/server/): the service is at capacity and
  // rejected the request before doing any work; safe to retry.
  kUnavailable,
  // Durable data failed verification (page checksum mismatch, unreadable
  // sector, corrupt manifest): the bytes on disk do not match what was
  // written. Unlike kParseError this implicates the storage medium, not
  // the producer — scrub/repair (see qof/store/scrub.h) is the remedy.
  kDataLoss,
};

/// Returns a stable human-readable name for a status code ("Invalid argument",
/// "Parse error", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success (the common case, represented without any
/// allocation) or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsBudgetExhausted() const {
    return code() == StatusCode::kBudgetExhausted;
  }
  bool IsUnavailable() const {
    return code() == StatusCode::kUnavailable;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so Status is cheap to copy; error paths are cold.
  std::shared_ptr<const State> state_;
};

}  // namespace qof

#endif  // QOF_UTIL_STATUS_H_
