#ifndef QOF_UTIL_THREAD_POOL_H_
#define QOF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qof {

/// Resolves a parallelism request: n >= 1 is taken literally; 0 (or a
/// negative value) means "one worker per hardware thread". Always >= 1.
int EffectiveParallelism(int requested);

/// A fixed-size worker pool whose only operation is a blocking
/// parallel-for. Index construction and two-phase execution are
/// per-document / per-candidate independent loops, so this is the whole
/// concurrency surface the engine needs: no futures, no task graph.
///
/// The calling thread participates as worker 0, so a pool of size N uses
/// N-1 background threads and `ParallelFor` never deadlocks on a pool of
/// size 1 (it simply runs inline, preserving exact serial behavior).
///
/// ParallelFor is not reentrant and must not be called from two threads
/// at once; the engine serializes builds and queries per system, which
/// satisfies this by construction. `fn` must not throw — error handling
/// is done by writing a Status into a per-item slot and scanning the
/// slots in order afterwards, which also keeps "first error" reporting
/// deterministic.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread; it is resolved through
  /// EffectiveParallelism, so 0 means hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count, calling thread included.
  int size() const { return num_threads_; }

  /// Invokes `fn(worker, index)` for every index in [0, num_items),
  /// distributing indices dynamically across workers; blocks until every
  /// invocation returned. `worker` is in [0, size()) and is stable within
  /// one invocation of `fn`, so it can address per-worker scratch state.
  ///
  /// `stop` (optional) is polled before each index is claimed: once it
  /// reads true, workers stop claiming new indices and ParallelFor
  /// returns after in-flight invocations finish. Indices not claimed by
  /// then are simply never run — callers that care must track per-item
  /// completion themselves (the engine records a per-item done flag).
  /// A plain atomic rather than an ExecContext keeps qof_util free of
  /// upward dependencies.
  void ParallelFor(size_t num_items,
                   const std::function<void(int, size_t)>& fn,
                   const std::atomic<bool>* stop = nullptr);

 private:
  void WorkerLoop(int worker);
  void RunJob(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait for the next job
  std::condition_variable done_cv_;  // the caller waits for completion
  uint64_t job_generation_ = 0;
  int workers_active_ = 0;
  bool shutdown_ = false;
  const std::function<void(int, size_t)>* job_fn_ = nullptr;
  size_t job_items_ = 0;
  const std::atomic<bool>* job_stop_ = nullptr;
  std::atomic<size_t> next_index_{0};
};

/// A bounded task queue drained by dedicated worker threads — the
/// concurrency surface the query *service* needs (many independent
/// queries in flight), complementing ThreadPool's single blocking
/// parallel-for (one data-parallel loop at a time).
///
/// Unlike ThreadPool, the submitting thread never participates: a
/// TaskQueue of size N runs N background threads, so submission is
/// non-blocking and the caller keeps servicing its connection. The queue
/// bound is the admission-control surface: TrySubmit refuses (returns
/// false) instead of queueing unboundedly, and the caller maps that to a
/// retryable kUnavailable.
///
/// Tasks must not throw. Shutdown() (and the destructor) stop intake,
/// drain every already-accepted task, and join the workers.
class TaskQueue {
 public:
  /// `num_threads` is resolved through EffectiveParallelism (0 = one per
  /// hardware thread). `max_queued` bounds tasks accepted but not yet
  /// *started*; 0 means unbounded.
  explicit TaskQueue(int num_threads, size_t max_queued = 0);
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues `task` unless the queue is full or shut down. Returns true
  /// when the task was accepted (it will run, even if Shutdown() follows
  /// immediately).
  bool TrySubmit(std::function<void()> task);

  /// Stops intake, runs every accepted task to completion, joins the
  /// workers. Idempotent.
  void Shutdown();

  int size() const { return num_threads_; }
  /// Tasks accepted but not yet started (point-in-time).
  size_t queued() const;
  /// Tasks currently executing (point-in-time).
  int active() const;

 private:
  void WorkerLoop();

  const int num_threads_;
  const size_t max_queued_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace qof

#endif  // QOF_UTIL_THREAD_POOL_H_
