#ifndef QOF_UTIL_WIRE_H_
#define QOF_UTIL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "qof/util/result.h"
#include "qof/util/status.h"

namespace qof {

/// Little-endian wire primitives shared by every on-disk format in the
/// system (index blobs, the maintenance journal). Strings are encoded as
/// u32 length + raw bytes.

void PutU64(uint64_t v, std::string* out);
void PutU32(uint32_t v, std::string* out);
void PutU8(uint8_t v, std::string* out);
void PutString(std::string_view s, std::string* out);

/// LEB128 variable-length encoding: 7 value bits per byte, high bit set on
/// every byte but the last. Small values (delta-encoded postings, region
/// lengths) take 1–2 bytes instead of 8. Used by the paged store's
/// block-compressed posting format.
void PutVarint(uint64_t v, std::string* out);

/// FNV-1a over arbitrary bytes. Used as the corpus/document fingerprint in
/// index blobs and as the per-record checksum in the journal.
uint64_t Fnv1a(std::string_view bytes);

/// Sequential decoder over a byte buffer. Every accessor fails with
/// InvalidArgument (mentioning `what` and the offset) instead of reading
/// past the end.
class WireReader {
 public:
  /// `what` names the container in error messages ("index blob",
  /// "journal record", ...).
  explicit WireReader(std::string_view data, std::string what = "blob")
      : data_(data), what_(std::move(what)) {}

  Result<uint64_t> U64();
  Result<uint32_t> U32();
  Result<uint8_t> U8();
  Result<std::string> String();
  /// Decodes a PutVarint value. Rejects encodings longer than 10 bytes
  /// (the maximum for 64 bits) so corrupt continuation bits cannot loop.
  Result<uint64_t> Varint();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t Remaining() const { return data_.size() - pos_; }
  size_t Position() const { return pos_; }

  /// Rejects a claimed element count that the remaining bytes cannot
  /// possibly hold. Counts gate reserve() calls, so a corrupt count
  /// would otherwise turn into a multi-gigabyte allocation before the
  /// per-element reads ever notice the truncation.
  Status CheckCount(uint64_t count, size_t min_bytes_each);

 private:
  Status Truncated() const;

  std::string_view data_;
  std::string what_;
  size_t pos_ = 0;
};

}  // namespace qof

#endif  // QOF_UTIL_WIRE_H_
