#ifndef QOF_UTIL_STRING_UTIL_H_
#define QOF_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qof {

/// Returns `s` with leading/trailing ASCII whitespace removed.
inline std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Splits on a separator string; empty pieces are kept.
inline std::vector<std::string_view> SplitView(std::string_view s,
                                               std::string_view sep) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (true) {
    size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + sep.size();
  }
  return out;
}

/// Joins the pieces with a separator.
inline std::string Join(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

/// True when `c` belongs to a word token ([A-Za-z0-9_'.-]). The apostrophe,
/// period and hyphen keep abbreviated names ("G. F.", "O'Neil", "Smith-Lee")
/// as single words, matching what a PAT-style word index would record.
inline bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '\'' || c == '-' ||
         c == '.';
}

}  // namespace qof

#endif  // QOF_UTIL_STRING_UTIL_H_
