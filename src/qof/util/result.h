#ifndef QOF_UTIL_RESULT_H_
#define QOF_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "qof/util/status.h"

namespace qof {

/// Result<T> holds either a value of type T or a non-OK Status.
/// It is the library's analogue of arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK: an OK
  /// status carries no value, which would leave the Result unusable.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qof

// Propagates a non-OK Status from an expression evaluating to Status.
#define QOF_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::qof::Status _qof_status = (expr);             \
    if (!_qof_status.ok()) return _qof_status;      \
  } while (false)

#define QOF_CONCAT_IMPL(a, b) a##b
#define QOF_CONCAT(a, b) QOF_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define QOF_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  QOF_ASSIGN_OR_RETURN_IMPL(QOF_CONCAT(_qof_result_, __LINE__), \
                            lhs, rexpr)

#define QOF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // QOF_UTIL_RESULT_H_
