#include "qof/engine/system.h"

#include <algorithm>
#include <chrono>

#include "qof/engine/baseline.h"
#include "qof/engine/condition_eval.h"
#include "qof/engine/index_io.h"
#include "qof/engine/join.h"
#include "qof/engine/two_phase.h"

namespace qof {
namespace {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  uint64_t Micros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<std::string> QueryResult::RenderedValues() const {
  // Rendering projections needs no store: projected values are fully
  // materialized (object refs were resolved during navigation).
  ObjectStore empty;
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const Value& v : values) out.push_back(FlattenText(empty, v));
  std::sort(out.begin(), out.end());
  return out;
}

FileQuerySystem::FileQuerySystem(StructuringSchema schema)
    : schema_(std::move(schema)), full_rig_(DeriveFullRig(schema_)) {
  const std::string& view = schema_.view_name();
  view_aliases_.insert(view);
  view_aliases_.insert(view + "s");
  if (!view.empty() && view.back() == 'y') {
    view_aliases_.insert(view.substr(0, view.size() - 1) + "ies");
  }
}

Status FileQuerySystem::AddFile(std::string name, std::string_view text) {
  if (maintainer_ != nullptr) {
    return maintainer_
        ->AddDocument(std::move(name), text, EnsurePool(parallelism_))
        .status();
  }
  return corpus_.AddDocument(std::move(name), text).status();
}

Status FileQuerySystem::UpdateFile(std::string_view name,
                                   std::string_view text) {
  if (maintainer_ != nullptr) {
    return maintainer_->UpdateDocument(name, text, EnsurePool(parallelism_))
        .status();
  }
  return corpus_.ReplaceDocument(name, text).status();
}

Status FileQuerySystem::RemoveFile(std::string_view name) {
  if (maintainer_ != nullptr) {
    return maintainer_->RemoveDocument(name, EnsurePool(parallelism_));
  }
  return corpus_.RemoveDocument(name).status();
}

Status FileQuerySystem::CompactIndexes() {
  if (maintainer_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; nothing to compact");
  }
  return maintainer_->Compact(EnsurePool(parallelism_));
}

void FileQuerySystem::SetMaintainOptions(const MaintainOptions& options) {
  maintain_options_ = options;
  if (maintainer_ != nullptr) maintainer_->options() = options;
}

MaintainStats FileQuerySystem::maintain_stats() const {
  return maintainer_ != nullptr ? maintainer_->stats() : MaintainStats{};
}

void FileQuerySystem::ResetMaintainer(uint64_t generation) {
  maintainer_ = std::make_unique<IndexMaintainer>(
      &schema_, &corpus_, built_.get(), spec_, maintain_options_);
  maintainer_->set_generation(generation);
}

ThreadPool* FileQuerySystem::EnsurePool(int threads) {
  threads = EffectiveParallelism(threads);
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->size() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

Status FileQuerySystem::BuildIndexes(const IndexSpec& spec) {
  // spec.parallelism == 0 defers to the system-wide knob.
  ThreadPool* pool = EnsurePool(
      spec.parallelism != 0 ? spec.parallelism : parallelism_);
  QOF_ASSIGN_OR_RETURN(BuiltIndexes built,
                       qof::BuildIndexes(schema_, corpus_, spec, pool));
  built_ = std::make_unique<BuiltIndexes>(std::move(built));
  spec_ = spec;
  compiler_ = std::make_unique<QueryCompiler>(
      &full_rig_, spec.IndexedNames(schema_), schema_.view_name(),
      spec.within);
  ResetMaintainer(/*generation=*/0);
  return Status::OK();
}

void FileQuerySystem::AddViewAlias(std::string alias) {
  view_aliases_.insert(std::move(alias));
}

Status FileQuerySystem::CheckView(const std::string& view) const {
  if (view_aliases_.count(view) > 0) return Status::OK();
  return Status::InvalidArgument("unknown view '" + view +
                                 "' (expected " + schema_.view_name() +
                                 ")");
}

Result<QueryPlan> FileQuerySystem::Plan(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
  QOF_RETURN_IF_ERROR(CheckView(query.view));
  if (compiler_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; call BuildIndexes() first");
  }
  return compiler_->Compile(query);
}

Result<std::string> FileQuerySystem::Explain(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(QueryPlan plan, Plan(fql));
  std::string out = "query:     " + plan.query.ToString() + "\n";
  if (plan.trivially_empty) {
    out += "strategy:  empty (Prop. 3.3: no conforming file has results)\n";
    return out;
  }
  if (!plan.view_indexed) {
    out += "strategy:  baseline (view region not indexed)\n";
    return out;
  }
  const bool wants_projection = plan.query.IsProjection();
  std::string strategy;
  if (plan.exact && (!wants_projection || plan.projection != nullptr)) {
    strategy = "index-only (exact, no file access)";
  } else if (plan.index_join && !wants_projection) {
    strategy = "index-join (attribute text reads only)";
  } else {
    strategy = "two-phase (parse candidates, filter in database)";
  }
  out += "strategy:  " + strategy + "\n";

  CostEstimator estimator(&built_->regions, &built_->words);
  out += "candidates: " + plan.candidates->ToString() + "\n";
  auto est = estimator.Estimate(*plan.candidates);
  if (est.ok()) out += "            " + est->ToString() + "\n";
  if (plan.projection != nullptr) {
    out += "projection: " + plan.projection->ToString() + "\n";
  }
  if (plan.index_join) {
    out += "join lhs:   " + plan.join_lhs_attrs->ToString() + "\n";
    out += "join rhs:   " + plan.join_rhs_attrs->ToString() + "\n";
  }
  out += std::string("exact:      ") + (plan.exact ? "yes" : "no") + "\n";
  for (const std::string& note : plan.notes) {
    out += "note:       " + note + "\n";
  }
  return out;
}

Result<QueryResult> FileQuerySystem::Execute(std::string_view fql,
                                             ExecutionMode mode) {
  QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
  return ExecuteQuery(query, mode);
}

Result<QueryResult> FileQuerySystem::RunBaselinePlan(
    const SelectQuery& query) {
  Timer timer;
  corpus_.ResetBytesRead();
  QueryResult result;
  result.stats.corpus_bytes = corpus_.size();
  ObjectStore store;
  QOF_ASSIGN_OR_RETURN(
      BaselineResult baseline,
      RunBaseline(schema_, corpus_, query, full_rig_, &store));
  result.regions = std::move(baseline.regions);
  result.values = std::move(baseline.projected);
  result.stats.strategy = "baseline";
  result.stats.exact = true;
  result.stats.objects_built = baseline.objects_built;
  result.stats.results = result.regions.size();
  result.stats.bytes_scanned = corpus_.bytes_read();
  result.stats.micros = timer.Micros();
  return result;
}

Result<QueryResult> FileQuerySystem::ExecuteQuery(const SelectQuery& query,
                                                  ExecutionMode mode) {
  QOF_RETURN_IF_ERROR(CheckView(query.view));

  // The baseline needs no indices at all.
  if (mode == ExecutionMode::kBaseline) {
    return RunBaselinePlan(query);
  }

  Timer timer;
  corpus_.ResetBytesRead();
  QueryResult result;
  result.stats.corpus_bytes = corpus_.size();

  if (compiler_ == nullptr || built_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; call BuildIndexes() first (or use "
        "ExecutionMode::kBaseline)");
  }
  QOF_ASSIGN_OR_RETURN(QueryPlan plan, compiler_->Compile(query));
  result.stats.notes = plan.notes;
  if (maintainer_ != nullptr && maintainer_->generation() > 0) {
    MaintainStats ms = maintainer_->stats();
    result.stats.notes.push_back(
        "indexes maintained incrementally: generation " +
        std::to_string(ms.generation) + ", " +
        std::to_string(ms.tombstones) + " tombstone(s), " +
        std::to_string(ms.compactions) + " compaction(s)");
  }

  if (plan.trivially_empty) {
    result.stats.strategy = "empty";
    result.stats.exact = true;
    result.stats.micros = timer.Micros();
    return result;
  }

  if (!plan.view_indexed) {
    if (mode == ExecutionMode::kIndexOnly ||
        mode == ExecutionMode::kTwoPhase) {
      return Status::InvalidArgument(
          "view region is not indexed; only baseline execution can "
          "answer this query");
    }
    result.stats.notes.push_back("auto: baseline (view not indexed)");
    // The query is already parsed and view-checked; run the baseline
    // plan directly. The compiler's notes (ending in the fallback
    // decision) come before any notes the plan itself adds.
    QOF_ASSIGN_OR_RETURN(QueryResult fallback, RunBaselinePlan(query));
    fallback.stats.notes.insert(fallback.stats.notes.begin(),
                                result.stats.notes.begin(),
                                result.stats.notes.end());
    return fallback;
  }

  // Phase 1: evaluate the candidate expression on the indices.
  ExprEvaluator evaluator(&built_->regions, &built_->words, &corpus_);
  QOF_ASSIGN_OR_RETURN(
      RegionSet candidates,
      evaluator.Evaluate(*plan.candidates, &result.stats.algebra));
  result.stats.candidates = candidates.size();

  const bool wants_projection = query.IsProjection();
  const bool index_serves_projection =
      !wants_projection || plan.projection != nullptr;

  if (plan.exact && index_serves_projection &&
      mode != ExecutionMode::kTwoPhase) {
    // Full computation on the indexing engine (§5): no parsing at all.
    result.regions.assign(candidates.begin(), candidates.end());
    if (wants_projection) {
      QOF_ASSIGN_OR_RETURN(
          RegionSet attrs,
          evaluator.Evaluate(*plan.projection, &result.stats.algebra));
      RegionSet within = IncludedIn(attrs, candidates);
      result.regions.assign(candidates.begin(), candidates.end());
      std::vector<Value> values;
      for (const Region& r : within) {
        values.push_back(
            Value::Str(std::string(corpus_.ScanText(r.start, r.end))));
      }
      result.values = std::move(values);
      result.stats.notes.push_back(
          "projection served by region index (attribute text reads only)");
    }
    result.stats.strategy = "index-only";
    result.stats.exact = true;
    result.stats.results =
        wants_projection ? result.values.size() : result.regions.size();
    result.stats.bytes_scanned = corpus_.bytes_read();
    result.stats.micros = timer.Micros();
    return result;
  }

  if (mode == ExecutionMode::kIndexOnly) {
    return Status::InvalidArgument(
        "plan is not exact (" + std::string(plan.exact ? "projection" :
        "candidates") + " need the database); index-only mode cannot "
        "answer this query");
  }

  // §5.2 index-assisted join: compare attribute text without parsing.
  if (plan.index_join && !wants_projection &&
      mode != ExecutionMode::kTwoPhase) {
    QOF_ASSIGN_OR_RETURN(
        RegionSet lhs,
        evaluator.Evaluate(*plan.join_lhs_attrs, &result.stats.algebra));
    QOF_ASSIGN_OR_RETURN(
        RegionSet rhs,
        evaluator.Evaluate(*plan.join_rhs_attrs, &result.stats.algebra));
    QOF_ASSIGN_OR_RETURN(result.regions,
                         RunIndexJoin(corpus_, candidates, lhs, rhs));
    result.stats.strategy = "index-join";
    result.stats.exact = true;
    result.stats.results = result.regions.size();
    result.stats.bytes_scanned = corpus_.bytes_read();
    result.stats.micros = timer.Micros();
    return result;
  }

  // Phase 2 (§6.2): parse candidates, filter in the database.
  ObjectStore store;
  QOF_ASSIGN_OR_RETURN(
      TwoPhaseResult two_phase,
      RunTwoPhase(schema_, corpus_, plan, candidates, full_rig_, &store,
                  EnsurePool(parallelism_)));
  result.regions = std::move(two_phase.regions);
  result.values = std::move(two_phase.projected);
  result.stats.strategy = "two-phase";
  result.stats.exact = true;  // after filtering, the answer is exact
  result.stats.objects_built = two_phase.candidates_parsed;
  result.stats.results =
      wants_projection ? result.values.size() : result.regions.size();
  result.stats.bytes_scanned = corpus_.bytes_read();
  result.stats.micros = timer.Micros();
  return result;
}

uint64_t FileQuerySystem::IndexBytes() const {
  if (built_ == nullptr) return 0;
  return built_->regions.ApproxBytes() + built_->words.ApproxBytes();
}

Result<std::string> FileQuerySystem::ExportIndexes() {
  if (built_ == nullptr) {
    return Status::InvalidArgument("indexes not built; nothing to export");
  }
  if (corpus_.fragmented()) {
    // Blob offsets must describe a dense layout; folding the tombstones
    // away also makes the export canonical (byte-comparable to a fresh
    // build's).
    QOF_RETURN_IF_ERROR(CompactIndexes());
  }
  return SerializeIndexes(*built_, spec_, corpus_, index_generation());
}

Status FileQuerySystem::ImportIndexes(std::string_view blob) {
  QOF_ASSIGN_OR_RETURN(SerializedIndexes loaded,
                       DeserializeIndexes(blob, corpus_));
  built_ = std::make_unique<BuiltIndexes>(std::move(loaded.indexes));
  spec_ = loaded.spec;
  compiler_ = std::make_unique<QueryCompiler>(
      &full_rig_, spec_.IndexedNames(schema_), schema_.view_name(),
      spec_.within);
  ResetMaintainer(loaded.generation);
  return Status::OK();
}

}  // namespace qof
