#include "qof/engine/system.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "qof/engine/baseline.h"
#include "qof/engine/condition_eval.h"
#include "qof/engine/index_io.h"
#include "qof/engine/join.h"
#include "qof/engine/two_phase.h"
#include "qof/ir/ir.h"
#include "qof/store/paged_file.h"
#include "qof/store/store_index_source.h"
#include "qof/store/store_writer.h"

namespace qof {
namespace {

/// Process-wide engine override: QOF_FORCE_EXEC=tree|ir beats
/// QueryOptions::use_ir (mirrors QOF_FORCE_KERNEL for the set kernels).
/// Read once — queries are hot, getenv is not.
enum class ForcedEngine { kNone, kTree, kIr };

ForcedEngine ForcedExec() {
  static const ForcedEngine forced = [] {
    const char* v = std::getenv("QOF_FORCE_EXEC");
    if (v == nullptr) return ForcedEngine::kNone;
    if (std::strcmp(v, "tree") == 0) return ForcedEngine::kTree;
    if (std::strcmp(v, "ir") == 0) return ForcedEngine::kIr;
    return ForcedEngine::kNone;
  }();
  return forced;
}

/// Process-wide worker override: QOF_EXEC_WORKERS=<n> beats
/// QueryOptions::exec_workers (0 = one per hardware thread). Read once,
/// like QOF_FORCE_EXEC. Returns -1 when unset/invalid.
int ForcedExecWorkers() {
  static const int forced = [] {
    const char* v = std::getenv("QOF_EXEC_WORKERS");
    if (v == nullptr) return -1;
    char* end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 0 || n > 1024) return -1;
    return static_cast<int>(n);
  }();
  return forced;
}

/// Logical workers this query's IR execution should use: the env
/// override, else QueryOptions::exec_workers, resolved so 0 means one
/// worker per hardware thread. Always >= 1.
int ResolveExecWorkers(const QueryOptions& options) {
  const int forced = ForcedExecWorkers();
  return EffectiveParallelism(forced >= 0 ? forced : options.exec_workers);
}

bool UseIrEngine(const QueryOptions& options) {
  switch (ForcedExec()) {
    case ForcedEngine::kTree:
      return false;
    case ForcedEngine::kIr:
      return true;
    case ForcedEngine::kNone:
      break;
  }
  return options.use_ir;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  uint64_t Micros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Decorates a governance error with partial-progress stats so a caller
/// that hit a limit knows how far execution got. Other codes pass through.
Status WithProgress(const Status& status, const char* phase,
                    uint64_t bytes_scanned, const ExecContext* ctx) {
  if (!IsGovernanceError(status)) return status;
  std::string msg = status.message() + " [" + phase + ": " +
                    std::to_string(bytes_scanned) + " bytes scanned";
  if (ctx != nullptr && ctx->regions_charged() > 0) {
    msg += ", " + std::to_string(ctx->regions_charged()) +
           " index regions materialized";
  }
  msg += "]";
  return Status(status.code(), std::move(msg));
}

}  // namespace

std::vector<std::string> QueryResult::RenderedValues() const {
  // Rendering projections needs no store: projected values are fully
  // materialized (object refs were resolved during navigation).
  ObjectStore empty;
  std::vector<std::string> out;
  out.reserve(values.size());
  for (const Value& v : values) out.push_back(FlattenText(empty, v));
  std::sort(out.begin(), out.end());
  return out;
}

FileQuerySystem::FileQuerySystem(StructuringSchema schema)
    : schema_(std::move(schema)), full_rig_(DeriveFullRig(schema_)) {
  const std::string& view = schema_.view_name();
  view_aliases_.insert(view);
  view_aliases_.insert(view + "s");
  if (!view.empty() && view.back() == 'y') {
    view_aliases_.insert(view.substr(0, view.size() - 1) + "ies");
  }
}

Status FileQuerySystem::AddFile(std::string name, std::string_view text,
                                const QueryOptions& options) {
  ExecContext governed(options);
  const ExecContext* ctx = governed.active() ? &governed : nullptr;
  std::lock_guard<std::mutex> lock(state_mu_);
  CowIfPinnedLocked();
  if (maintainer_ != nullptr) {
    return maintainer_
        ->AddDocument(std::move(name), text, EnsurePool(parallelism_), ctx)
        .status();
  }
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  return corpus_->AddDocument(std::move(name), text).status();
}

Status FileQuerySystem::UpdateFile(std::string_view name,
                                   std::string_view text,
                                   const QueryOptions& options) {
  ExecContext governed(options);
  const ExecContext* ctx = governed.active() ? &governed : nullptr;
  std::lock_guard<std::mutex> lock(state_mu_);
  CowIfPinnedLocked();
  if (maintainer_ != nullptr) {
    return maintainer_
        ->UpdateDocument(name, text, EnsurePool(parallelism_), ctx)
        .status();
  }
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  return corpus_->ReplaceDocument(name, text).status();
}

Status FileQuerySystem::RemoveFile(std::string_view name,
                                   const QueryOptions& options) {
  ExecContext governed(options);
  const ExecContext* ctx = governed.active() ? &governed : nullptr;
  std::lock_guard<std::mutex> lock(state_mu_);
  CowIfPinnedLocked();
  if (maintainer_ != nullptr) {
    return maintainer_->RemoveDocument(name, EnsurePool(parallelism_), ctx);
  }
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  return corpus_->RemoveDocument(name).status();
}

Status FileQuerySystem::CompactIndexes() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (maintainer_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; nothing to compact");
  }
  // Compaction rebases every offset in place — readers pinned to the
  // pre-compaction layout must keep their own copy.
  CowIfPinnedLocked();
  return maintainer_->Compact(EnsurePool(parallelism_));
}

void FileQuerySystem::SetMaintainOptions(const MaintainOptions& options) {
  std::lock_guard<std::mutex> lock(state_mu_);
  maintain_options_ = options;
  if (maintainer_ != nullptr) maintainer_->options() = options;
}

MaintainStats FileQuerySystem::maintain_stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return maintainer_ != nullptr ? maintainer_->stats() : MaintainStats{};
}

void FileQuerySystem::ResetMaintainer(uint64_t generation) {
  maintainer_ = std::make_unique<IndexMaintainer>(
      &schema_, corpus_.get(), built_.get(), spec_, maintain_options_);
  maintainer_->set_generation(generation);
}

void FileQuerySystem::CowIfPinnedLocked() {
  // Snapshots are the only other holders of these shared_ptrs, and they
  // are only created under state_mu_ — so use_count == 1 means no reader
  // can observe the in-place mutation about to happen. (A snapshot
  // dropping concurrently can at worst make the count read high, causing
  // one spurious clone — safe.)
  bool corpus_pinned = corpus_.use_count() > 1;
  bool built_pinned = built_ != nullptr && built_.use_count() > 1;
  if (!corpus_pinned && !built_pinned) return;
  corpus_ = std::make_shared<Corpus>(corpus_->Clone());
  if (built_ != nullptr) built_ = std::make_shared<BuiltIndexes>(*built_);
  // The clone is the same logical state at a new address; the maintainer
  // keeps all its counters and just repoints.
  if (maintainer_ != nullptr) {
    maintainer_->Retarget(corpus_.get(), built_.get());
  }
}

ThreadPool* FileQuerySystem::EnsurePool(int threads) {
  threads = EffectiveParallelism(threads);
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->size() != threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

Status FileQuerySystem::BuildIndexes(const IndexSpec& spec) {
  std::lock_guard<std::mutex> lock(state_mu_);
  // spec.parallelism == 0 defers to the system-wide knob.
  ThreadPool* pool = EnsurePool(
      spec.parallelism != 0 ? spec.parallelism : parallelism_);
  QOF_ASSIGN_OR_RETURN(BuiltIndexes built,
                       qof::BuildIndexes(schema_, *corpus_, spec, pool));
  // Publish-by-swap: snapshots pinning the previous build keep it alive
  // through their shared_ptrs; the corpus itself was only read.
  built_ = std::make_shared<BuiltIndexes>(std::move(built));
  spec_ = spec;
  compiler_ = std::make_shared<const QueryCompiler>(
      &full_rig_, spec.IndexedNames(schema_), schema_.view_name(),
      spec.within);
  store_.reset();
  index_source_ = "built";
  index_format_version_ = 0;
  ++builds_;
  ResetMaintainer(/*generation=*/0);
  // A rebuild replaces the compiler: plan-cache entries (keyed by FQL
  // text alone) may describe plans for the old index spec — drop them
  // all. The eval cache only advances its epoch: the `build` component
  // makes the new epoch unique, and entries pinned by live snapshots of
  // the old build keep serving those snapshots.
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  if (eval_cache_ != nullptr) {
    eval_cache_->AdvanceEpoch(CurrentEpochUnlocked());
  }
  return Status::OK();
}

void FileQuerySystem::AddViewAlias(std::string alias) {
  view_aliases_.insert(std::move(alias));
}

Status FileQuerySystem::CheckView(const std::string& view) const {
  if (view_aliases_.count(view) > 0) return Status::OK();
  return Status::InvalidArgument("unknown view '" + view +
                                 "' (expected " + schema_.view_name() +
                                 ")");
}

Result<QueryPlan> FileQuerySystem::Plan(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
  QOF_RETURN_IF_ERROR(CheckView(query.view));
  if (compiler_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; call BuildIndexes() first");
  }
  return compiler_->Compile(query);
}

Result<std::string> FileQuerySystem::Explain(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(QueryPlan plan, Plan(fql));
  std::string out = "query:     " + plan.query.ToString() + "\n";
  if (plan.trivially_empty) {
    out += "strategy:  empty (Prop. 3.3: no conforming file has results)\n";
    return out;
  }
  if (!plan.view_indexed) {
    out += "strategy:  baseline (view region not indexed)\n";
    return out;
  }
  const bool wants_projection = plan.query.IsProjection();
  std::string strategy;
  if (plan.exact && (!wants_projection || plan.projection != nullptr)) {
    strategy = "index-only (exact, no file access)";
  } else if (plan.index_join && !wants_projection) {
    strategy = "index-join (attribute text reads only)";
  } else {
    strategy = "two-phase (parse candidates, filter in database)";
  }
  out += "strategy:  " + strategy + "\n";

  CostEstimator estimator(&built_->regions, &built_->words);
  out += "candidates: " + plan.candidates->ToString() + "\n";
  auto est = estimator.Estimate(*plan.candidates);
  if (est.ok()) out += "            " + est->ToString() + "\n";
  if (plan.projection != nullptr) {
    out += "projection: " + plan.projection->ToString() + "\n";
  }
  if (plan.index_join) {
    out += "join lhs:   " + plan.join_lhs_attrs->ToString() + "\n";
    out += "join rhs:   " + plan.join_rhs_attrs->ToString() + "\n";
  }
  out += std::string("exact:      ") + (plan.exact ? "yes" : "no") + "\n";
  for (const std::string& note : plan.notes) {
    out += "note:       " + note + "\n";
  }
  return out;
}

Result<std::string> FileQuerySystem::ExplainQuery(
    std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(std::string out, Explain(fql));
  QOF_ASSIGN_OR_RETURN(QueryPlan plan, Plan(fql));
  if (plan.trivially_empty || !plan.view_indexed) return out;
  IrProgram ir =
      LowerToIr(plan.candidates.get(), plan.projection.get(),
                plan.join_lhs_attrs.get(), plan.join_rhs_attrs.get());
  std::vector<PassTrace> trace;
  RunPasses(&ir, ir_options_, &built_->regions, &built_->words, &trace);
  out += "\nIR pipeline:\n";
  for (const PassTrace& step : trace) {
    out += "-- after " + step.name + " --\n" + step.dump;
  }
  return out;
}

Result<QueryResult> FileQuerySystem::Execute(std::string_view fql,
                                             ExecutionMode mode,
                                             const QueryOptions& options) {
  if (plan_cache_ != nullptr) {
    std::string key(fql);
    auto hit = plan_cache_->Lookup(key);
    if (hit != nullptr && hit->build == builds_) {
      // Parse and (when present) compile both skipped. Plans depend only
      // on the schema and the index spec, never on the indexed data, so
      // mutations need not invalidate them. The build stamp rejects the
      // one unsound case: an entry a snapshot query of a superseded
      // build published after the rebuild cleared the cache.
      return ExecuteQueryImpl(hit->query, mode, options, &key, hit->plan);
    }
    QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
    // Publish the parse right away (plan still null); the impl replaces
    // the entry with the compiled plan attached once it compiles — which
    // baseline-mode executions never do.
    auto entry = std::make_shared<PlanCache::Entry>();
    entry->query = query;
    entry->build = builds_;
    plan_cache_->Insert(key, std::move(entry));
    return ExecuteQueryImpl(query, mode, options, &key, nullptr);
  }
  QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
  return ExecuteQueryImpl(query, mode, options, nullptr, nullptr);
}

Result<QueryResult> FileQuerySystem::ExecuteQuery(
    const SelectQuery& query, ExecutionMode mode,
    const QueryOptions& options) {
  // Pre-parsed queries have no text to key the plan cache by.
  return ExecuteQueryImpl(query, mode, options, nullptr, nullptr);
}

Result<SnapshotRef> FileQuerySystem::AcquireSnapshot() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (built_ == nullptr || compiler_ == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; snapshots require BuildIndexes() first");
  }
  auto snapshot = std::make_unique<IndexSnapshot>();
  snapshot->corpus = corpus_;
  snapshot->built = built_;
  snapshot->compiler = compiler_;
  snapshot->epoch = CurrentEpochUnlocked();
  snapshot->maintain = maintainer_->stats();
  // Pin the epoch so eval-cache entries keyed under it survive later
  // mutations; the deleter unpins when the last reference drops. The
  // deleter captures the cache by shared_ptr: even if SetCacheOptions
  // swaps the system's cache meanwhile, the unpin reaches the instance
  // that was pinned.
  std::shared_ptr<EvalCache> cache = eval_cache_;
  if (cache != nullptr) cache->Pin(snapshot->epoch);
  return SnapshotRef(snapshot.release(),
                     [cache](const IndexSnapshot* s) {
                       if (cache != nullptr) cache->Unpin(s->epoch);
                       delete s;
                     });
}

Result<QueryResult> FileQuerySystem::ExecuteOnSnapshot(
    const IndexSnapshot& snapshot, std::string_view fql,
    ExecutionMode mode, const QueryOptions& options) {
  // The plan cache serves snapshot queries of the *current* build: the
  // build stamp on each entry keeps a snapshot that outlived a rebuild
  // from using plans compiled by the newer compiler (and vice versa).
  // PlanCache is internally locked, so concurrent snapshot queries can
  // share it.
  PlanCache* plans = plan_cache_.get();
  std::string key;
  std::shared_ptr<const PlanCache::Entry> hit;
  if (plans != nullptr) {
    key.assign(fql);
    hit = plans->Lookup(key);
    if (hit != nullptr && hit->build != snapshot.epoch.build) {
      hit = nullptr;
    }
  }
  SelectQuery query;
  std::shared_ptr<const QueryPlan> cached_plan;
  if (hit != nullptr) {
    query = hit->query;
    cached_plan = hit->plan;
  } else {
    QOF_ASSIGN_OR_RETURN(query, ParseFql(fql));
    if (plans != nullptr) {
      auto entry = std::make_shared<PlanCache::Entry>();
      entry->query = query;
      entry->build = snapshot.epoch.build;
      plans->Insert(key, entry);
    }
  }
  // Per-query byte accounting: the snapshot's corpus is shared with
  // other concurrent queries (and possibly the live state), so its
  // member counter can't be reset — route this thread's scanning into a
  // local counter instead. Parallel stages re-install this thread's
  // scope on every pool worker (IrExecutor and RunTwoPhase both capture
  // it before dispatch), so the override covers every scan of this query
  // even on an ephemeral worker pool.
  std::atomic<uint64_t> scanned{0};
  Corpus::ScanCounterScope scope(&scanned);
  ExecSurface surface;
  surface.corpus = snapshot.corpus.get();
  surface.built = snapshot.built.get();
  surface.compiler = snapshot.compiler.get();
  surface.epoch = snapshot.epoch;
  surface.maintain = snapshot.maintain;
  surface.maintained = true;
  // The cache outlives the snapshot only via the system; grab the
  // current instance — entries for the snapshot's pinned epoch are
  // retained as long as the snapshot lives.
  surface.eval_cache = eval_cache_.get();
  // Snapshot queries run concurrently, so they cannot share the system
  // pool (ParallelFor is not reentrant across callers); a query asking
  // for workers gets its own short-lived pool instead.
  const int exec_workers = ResolveExecWorkers(options);
  std::unique_ptr<ThreadPool> query_pool;
  if (exec_workers > 1) {
    query_pool = std::make_unique<ThreadPool>(exec_workers);
    surface.pool = query_pool.get();
  } else {
    surface.pool = nullptr;
  }
  surface.scan_counter = &scanned;
  return ExecuteWithSurface(surface, query, mode, options,
                            plans != nullptr ? &key : nullptr,
                            std::move(cached_plan));
}

void FileQuerySystem::SetCacheOptions(const CacheOptions& options) {
  cache_options_ = options;
  plan_cache_ = options.enable_plan_cache
                    ? std::make_unique<PlanCache>(options.max_plans)
                    : nullptr;
  eval_cache_ = options.enable_eval_cache
                    ? std::make_shared<EvalCache>(options.max_cached_regions,
                                                  options.inject_stale)
                    : nullptr;
}

CacheStats FileQuerySystem::cache_stats() const {
  CacheStats merged;
  if (plan_cache_ != nullptr) {
    CacheStats p = plan_cache_->stats();
    merged.plan_hits = p.plan_hits;
    merged.plan_misses = p.plan_misses;
    merged.plan_evictions = p.plan_evictions;
    merged.invalidations += p.invalidations;
  }
  if (eval_cache_ != nullptr) {
    CacheStats e = eval_cache_->stats();
    merged.eval_hits = e.eval_hits;
    merged.eval_misses = e.eval_misses;
    merged.eval_evictions = e.eval_evictions;
    merged.eval_regions_cached = e.eval_regions_cached;
    merged.invalidations += e.invalidations;
  }
  return merged;
}

Result<QueryResult> FileQuerySystem::RunBaselinePlan(
    const ExecSurface& surface, const SelectQuery& query,
    const ExecContext* ctx, bool soft_fail) {
  Timer timer;
  QueryResult result;
  result.stats.corpus_bytes = surface.corpus->size();
  ObjectStore store;
  QOF_ASSIGN_OR_RETURN(
      BaselineResult baseline,
      RunBaseline(schema_, *surface.corpus, query, full_rig_, &store, ctx,
                  soft_fail));
  result.regions = std::move(baseline.regions);
  result.values = std::move(baseline.projected);
  result.stats.strategy = "baseline";
  result.stats.exact = !baseline.truncated;
  result.stats.truncated = baseline.truncated;
  if (baseline.truncated) {
    result.stats.notes.push_back("result truncated: " +
                                 baseline.interrupted.message());
  }
  result.stats.objects_built = baseline.objects_built;
  result.stats.results = result.regions.size();
  result.stats.bytes_scanned = surface.BytesScanned();
  result.stats.micros = timer.Micros();
  return result;
}

Result<QueryResult> FileQuerySystem::ExecuteQueryImpl(
    const SelectQuery& query, ExecutionMode mode,
    const QueryOptions& options, const std::string* plan_key,
    std::shared_ptr<const QueryPlan> cached_plan) {
  ExecSurface surface;
  surface.corpus = corpus_.get();
  surface.built = built_.get();
  surface.compiler = compiler_.get();
  surface.epoch = CurrentEpochUnlocked();
  surface.maintain =
      maintainer_ != nullptr ? maintainer_->stats() : MaintainStats{};
  surface.maintained = maintainer_ != nullptr;
  surface.eval_cache = eval_cache_.get();
  // One pool serves both parallel surfaces: two-phase candidate
  // verification (sized by the system parallelism knob) and morsel-driven
  // IR execution (sized by the query's exec_workers request) — composed
  // by taking the larger of the two.
  surface.pool = EnsurePool(std::max(EffectiveParallelism(parallelism_),
                                     ResolveExecWorkers(options)));
  // The live path owns the corpus counter (no concurrent readers by
  // contract — see AcquireSnapshot's concurrency notes).
  corpus_->ResetBytesRead();
  return ExecuteWithSurface(surface, query, mode, options, plan_key,
                            std::move(cached_plan));
}

Result<QueryResult> FileQuerySystem::ExecuteWithSurface(
    const ExecSurface& surface, const SelectQuery& query,
    ExecutionMode mode, const QueryOptions& options,
    const std::string* plan_key,
    std::shared_ptr<const QueryPlan> cached_plan) {
  QOF_RETURN_IF_ERROR(CheckView(query.view));

  const Corpus& corpus = *surface.corpus;

  // Arm governance. With no limits set `ctx` stays null and every checked
  // path below takes its pre-governance fast path.
  ExecContext governed(options);
  const ExecContext* ctx = nullptr;
  if (governed.active()) {
    governed.set_scanned_bytes_counter(
        surface.scan_counter != nullptr ? surface.scan_counter
                                        : &corpus.bytes_read_counter());
    ctx = &governed;
  }
  // Layers without an explicit ExecContext* — the store's buffer pool on
  // a page miss — pick the context up thread-locally, so a governed
  // query's deadline and cancellation reach into the disk tier.
  ExecContext::ThreadScope thread_scope(ctx);
  // Arm this thread's scan accounting so the disk tier's decompressed
  // index bytes (Corpus::ChargeScanBytes) are counted. Snapshot queries
  // already route to their private counter — this resolves to the same
  // one; the live path resolves to the corpus's own counter, exactly
  // where its ScanText charges always landed.
  Corpus::ScanCounterScope scan_scope(
      surface.scan_counter != nullptr
          ? surface.scan_counter
          : &corpus.mutable_bytes_read_counter());

  // The baseline needs no indices at all.
  if (mode == ExecutionMode::kBaseline) {
    auto out = RunBaselinePlan(surface, query, ctx, options.soft_fail);
    if (!out.ok()) {
      return WithProgress(out.status(), "baseline", surface.BytesScanned(),
                          ctx);
    }
    return out;
  }

  Timer timer;
  QueryResult result;
  result.stats.corpus_bytes = corpus.size();

  if (surface.compiler == nullptr || surface.built == nullptr) {
    return Status::InvalidArgument(
        "indexes not built; call BuildIndexes() first (or use "
        "ExecutionMode::kBaseline)");
  }
  std::shared_ptr<const QueryPlan> plan_ptr = std::move(cached_plan);
  if (plan_ptr == nullptr) {
    QOF_ASSIGN_OR_RETURN(QueryPlan compiled,
                         surface.compiler->Compile(query));
    plan_ptr = std::make_shared<const QueryPlan>(std::move(compiled));
    if (plan_key != nullptr && plan_cache_ != nullptr) {
      auto entry = std::make_shared<PlanCache::Entry>();
      entry->query = query;
      entry->build = surface.epoch.build;
      entry->plan = plan_ptr;
      plan_cache_->Insert(*plan_key, std::move(entry));
    }
  }
  const QueryPlan& plan = *plan_ptr;
  result.stats.notes = plan.notes;
  if (surface.maintained && surface.maintain.generation > 0) {
    const MaintainStats& ms = surface.maintain;
    result.stats.notes.push_back(
        "indexes maintained incrementally: generation " +
        std::to_string(ms.generation) + ", " +
        std::to_string(ms.tombstones) + " tombstone(s), " +
        std::to_string(ms.compactions) + " compaction(s)");
  }

  if (plan.trivially_empty) {
    result.stats.strategy = "empty";
    result.stats.exact = true;
    result.stats.micros = timer.Micros();
    return result;
  }

  // Baseline fallback shared by the view-not-indexed case and the bottom
  // rung of the degradation ladder: the query is already parsed and
  // view-checked, and the accumulated notes (ending in the fallback
  // decision) come before any notes the plan itself adds.
  auto run_baseline_fallback = [&]() -> Result<QueryResult> {
    auto fallback = RunBaselinePlan(surface, query, ctx, options.soft_fail);
    if (!fallback.ok()) {
      return WithProgress(fallback.status(), "baseline",
                          surface.BytesScanned(), ctx);
    }
    fallback->stats.notes.insert(fallback->stats.notes.begin(),
                                 result.stats.notes.begin(),
                                 result.stats.notes.end());
    return fallback;
  };

  if (!plan.view_indexed) {
    if (mode == ExecutionMode::kIndexOnly ||
        mode == ExecutionMode::kTwoPhase) {
      return Status::InvalidArgument(
          "view region is not indexed; only baseline execution can "
          "answer this query");
    }
    result.stats.notes.push_back("auto: baseline (view not indexed)");
    return run_baseline_fallback();
  }

  const bool wants_projection = query.IsProjection();
  const bool index_serves_projection =
      !wants_projection || plan.projection != nullptr;

  // Graceful degradation (kAuto only): a corrupt or missing index
  // mid-plan (kInternal / kNotFound) or a region budget blown by
  // index-side materialization falls back one rung of the ladder
  //   index strategy -> two-phase -> baseline
  // with a note naming the trigger. Deadline, cancellation and the byte
  // budget never degrade: a cheaper strategy cannot refund wall-clock
  // time or bytes already scanned.
  auto degradable = [&](const Status& status) {
    if (mode != ExecutionMode::kAuto) return false;
    if (status.code() == StatusCode::kInternal ||
        status.code() == StatusCode::kNotFound) {
      return true;
    }
    return status.IsBudgetExhausted() && ctx != nullptr &&
           ctx->regions_exhausted();
  };
  auto degrade_to = [&](const char* rung, const Status& status) {
    result.stats.notes.push_back(std::string("degraded to ") + rung + ": " +
                                 status.message());
    governed.ResetForFallback();
  };

  // Pick the algebra engine. Both produce identical results (the fuzzer's
  // IR leg proves it); the IR path lowers the plan's expression legs into
  // one dataflow program, optimizes it, and evaluates nodes at most once
  // per query with shared slots across the candidate/projection/join
  // roots.
  const bool use_ir = UseIrEngine(options);
  result.stats.engine = use_ir ? "ir" : "tree";
  ExprEvaluator evaluator(&surface.built->regions, &surface.built->words,
                          surface.corpus, DirectAlgorithm::kFast, ctx,
                          surface.eval_cache, surface.epoch);
  std::optional<IrProgram> ir;
  std::optional<IrExecutor> ir_exec;
  if (use_ir) {
    ir.emplace(LowerToIr(plan.candidates.get(), plan.projection.get(),
                         plan.join_lhs_attrs.get(),
                         plan.join_rhs_attrs.get()));
    RunPasses(&*ir, ir_options_, &surface.built->regions,
              &surface.built->words);
    ir_exec.emplace(&*ir, &surface.built->regions, &surface.built->words,
                    surface.corpus, ctx, surface.eval_cache, surface.epoch);
    ir_exec->SetJoinFn([&corpus](const RegionSet& cands,
                                 const RegionSet& lhs,
                                 const RegionSet& rhs) {
      return RunIndexJoin(corpus, cands, lhs, rhs);
    });
    // Morsel-driven execution: ready IR nodes (and large node-internal
    // folds/scans) dispatch onto the surface's pool. Results are
    // byte-identical at every worker count — see DESIGN.md §5k.
    const int exec_workers = ResolveExecWorkers(options);
    if (surface.pool != nullptr && exec_workers > 1) {
      ir_exec->SetThreadPool(surface.pool, exec_workers);
      result.stats.exec_workers = exec_workers;
    }
    ir_exec->set_prefetch(options.prefetch);
    if (ir_options_.morsel_grain != 0) {
      ir_exec->set_morsel_grain(ir_options_.morsel_grain);
    }
    if (ir_options_.inject_racy_merge) {
      ir_exec->set_inject_racy_merge(true);
    }
  }
  auto record_timings = [&] {
    if (ir_exec) result.stats.op_timings = ir_exec->timings();
  };

  // Phase 1: evaluate the candidate expression on the indices. With the
  // eval cache on, every composite subexpression is first looked up by
  // its serialized normal form under the surface's index epoch.
  RegionSet candidates;
  {
    auto cand = use_ir
                    ? ir_exec->EvaluateRoot(ir->candidates,
                                            &result.stats.algebra)
                    : evaluator.Evaluate(*plan.candidates,
                                         &result.stats.algebra);
    if (!cand.ok()) {
      // No index-backed rung can run without candidates (two-phase needs
      // them too): kAuto degrades straight to the baseline.
      if (!degradable(cand.status())) {
        return WithProgress(cand.status(), "phase-1 candidates",
                            surface.BytesScanned(), ctx);
      }
      degrade_to("baseline", cand.status());
      return run_baseline_fallback();
    }
    candidates = std::move(*cand);
  }
  result.stats.candidates = candidates.size();

  bool index_rung_degraded = false;
  if (plan.exact && index_serves_projection &&
      mode != ExecutionMode::kTwoPhase) {
    // Full computation on the indexing engine (§5): no parsing at all.
    // Built into locals and committed only on success, so a degradation
    // leaves `result` clean for the next rung.
    Status rung = Status::OK();
    std::vector<Value> values;
    if (wants_projection) {
      // The IR program's kProject root is the same two steps — evaluate
      // the attribute expression, keep attributes within candidates —
      // with the candidate root served from its memoized slot.
      Result<RegionSet> within_r =
          use_ir
              ? ir_exec->EvaluateRoot(ir->project, &result.stats.algebra)
              : [&]() -> Result<RegionSet> {
                  QOF_ASSIGN_OR_RETURN(
                      RegionSet attrs,
                      evaluator.Evaluate(*plan.projection,
                                         &result.stats.algebra));
                  return IncludedIn(attrs, candidates);
                }();
      if (!within_r.ok()) {
        rung = within_r.status();
      } else {
        for (const Region& r : *within_r) {
          values.push_back(
              Value::Str(std::string(corpus.ScanText(r.start, r.end))));
        }
      }
    }
    if (rung.ok()) {
      result.regions.assign(candidates.begin(), candidates.end());
      if (wants_projection) {
        result.values = std::move(values);
        result.stats.notes.push_back(
            "projection served by region index (attribute text reads "
            "only)");
      }
      result.stats.strategy = "index-only";
      result.stats.exact = true;
      result.stats.results =
          wants_projection ? result.values.size() : result.regions.size();
      result.stats.bytes_scanned = surface.BytesScanned();
      record_timings();
      result.stats.micros = timer.Micros();
      return result;
    }
    if (!degradable(rung)) {
      return WithProgress(rung, "index-only", surface.BytesScanned(), ctx);
    }
    degrade_to("two-phase", rung);
    index_rung_degraded = true;
  }

  if (mode == ExecutionMode::kIndexOnly) {
    return Status::InvalidArgument(
        "plan is not exact (" + std::string(plan.exact ? "projection" :
        "candidates") + " need the database); index-only mode cannot "
        "answer this query");
  }

  // §5.2 index-assisted join: compare attribute text without parsing.
  // Skipped once an index rung already degraded — the join reads the same
  // indexes that just failed.
  if (!index_rung_degraded && plan.index_join && !wants_projection &&
      mode != ExecutionMode::kTwoPhase) {
    Status rung = Status::OK();
    std::vector<Region> joined;
    if (use_ir) {
      // The kJoin root evaluates both attribute legs (sharing any
      // subexpression the candidates already computed) and runs the join
      // through the injected callback.
      auto out = ir_exec->EvaluateRoot(ir->join, &result.stats.algebra);
      if (!out.ok()) {
        rung = out.status();
      } else {
        joined.assign(out->begin(), out->end());
      }
    } else {
      auto lhs =
          evaluator.Evaluate(*plan.join_lhs_attrs, &result.stats.algebra);
      if (!lhs.ok()) rung = lhs.status();
      if (rung.ok()) {
        auto rhs = evaluator.Evaluate(*plan.join_rhs_attrs,
                                      &result.stats.algebra);
        if (!rhs.ok()) {
          rung = rhs.status();
        } else {
          auto out = RunIndexJoin(corpus, candidates, *lhs, *rhs);
          if (!out.ok()) {
            rung = out.status();
          } else {
            joined = std::move(*out);
          }
        }
      }
    }
    if (rung.ok()) {
      result.regions = std::move(joined);
      result.stats.strategy = "index-join";
      result.stats.exact = true;
      result.stats.results = result.regions.size();
      result.stats.bytes_scanned = surface.BytesScanned();
      record_timings();
      result.stats.micros = timer.Micros();
      return result;
    }
    if (!degradable(rung)) {
      return WithProgress(rung, "index-join", surface.BytesScanned(), ctx);
    }
    degrade_to("two-phase", rung);
  }

  // Phase 2 (§6.2): parse candidates, filter in the database.
  ObjectStore store;
  auto two_phase =
      RunTwoPhase(schema_, corpus, plan, candidates, full_rig_, &store,
                  surface.pool, ctx, options.soft_fail);
  if (!two_phase.ok()) {
    if (!degradable(two_phase.status())) {
      return WithProgress(two_phase.status(), "two-phase",
                          surface.BytesScanned(), ctx);
    }
    degrade_to("baseline", two_phase.status());
    return run_baseline_fallback();
  }
  result.regions = std::move(two_phase->regions);
  result.values = std::move(two_phase->projected);
  result.stats.strategy = "two-phase";
  // After filtering the answer is exact — unless soft-fail truncated it
  // to the verified prefix.
  result.stats.exact = !two_phase->truncated;
  result.stats.truncated = two_phase->truncated;
  if (two_phase->truncated) {
    result.stats.notes.push_back("result truncated: " +
                                 two_phase->interrupted.message());
  }
  result.stats.objects_built = two_phase->candidates_parsed;
  result.stats.results =
      wants_projection ? result.values.size() : result.regions.size();
  result.stats.bytes_scanned = surface.BytesScanned();
  record_timings();
  result.stats.micros = timer.Micros();
  return result;
}

uint64_t FileQuerySystem::IndexBytes() const {
  if (built_ == nullptr) return 0;
  return built_->regions.ApproxBytes() + built_->words.ApproxBytes();
}

Result<std::string> FileQuerySystem::ExportIndexes() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (built_ == nullptr) {
    return Status::InvalidArgument("indexes not built; nothing to export");
  }
  if (corpus_->fragmented()) {
    // Blob offsets must describe a dense layout; folding the tombstones
    // away also makes the export canonical (byte-comparable to a fresh
    // build's). Same rules as CompactIndexes (whose lock we already
    // hold): readers pinned to the fragmented layout keep their copy.
    CowIfPinnedLocked();
    QOF_RETURN_IF_ERROR(maintainer_->Compact(EnsurePool(parallelism_)));
  }
  // Serialization walks every instance and posting list; a disk-backed
  // index must be fully paged in first (no-ops when already resident).
  QOF_RETURN_IF_ERROR(built_->regions.EnsureResident());
  QOF_RETURN_IF_ERROR(built_->words.EnsureResident());
  return SerializeIndexes(*built_, spec_, *corpus_,
                          maintainer_ != nullptr ? maintainer_->generation()
                                                 : 0);
}

Status FileQuerySystem::SaveStore(const std::string& path,
                                  uint32_t page_size) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (built_ == nullptr) {
    return Status::InvalidArgument("indexes not built; nothing to save");
  }
  if (spec_.word_options.token_filter) {
    return Status::InvalidArgument(
        "word-index token filters are code and cannot be serialized; "
        "rebuild instead of loading");
  }
  if (corpus_->fragmented()) {
    // Store offsets must describe a dense layout, same as ExportIndexes.
    CowIfPinnedLocked();
    QOF_RETURN_IF_ERROR(maintainer_->Compact(EnsurePool(parallelism_)));
  }
  // The writer walks every instance and posting list directly.
  QOF_RETURN_IF_ERROR(built_->regions.EnsureResident());
  QOF_RETURN_IF_ERROR(built_->words.EnsureResident());
  std::string spec_bytes;
  EncodeIndexSpec(spec_, &spec_bytes);
  QOF_ASSIGN_OR_RETURN(std::string doc_table, EncodeDocTable(*corpus_));
  StoreWriterInput input;
  input.regions = &built_->regions;
  input.words = &built_->words;
  input.spec_bytes = spec_bytes;
  input.doc_table_bytes = doc_table;
  input.generation =
      maintainer_ != nullptr ? maintainer_->generation() : 0;
  input.doc_count = built_->documents;
  QOF_ASSIGN_OR_RETURN(std::string image, BuildStoreImage(input, page_size));
  return WriteFileBytes(path, image);
}

Status FileQuerySystem::OpenStore(const std::string& path,
                                  PagedStoreOptions options) {
  std::lock_guard<std::mutex> lock(state_mu_);
  // Staged like ImportIndexes: a damaged or stale store must leave the
  // installed indexes fully intact and queryable.
  QOF_ASSIGN_OR_RETURN(std::shared_ptr<const PagedStore> store,
                       PagedStore::Open(path, options));
  QOF_ASSIGN_OR_RETURN(std::string spec_bytes,
                       store->ReadSection(StoreSection::kSpec));
  QOF_ASSIGN_OR_RETURN(IndexSpec spec, DecodeIndexSpec(spec_bytes));
  QOF_ASSIGN_OR_RETURN(std::string doc_bytes,
                       store->ReadSection(StoreSection::kDocTable));
  QOF_ASSIGN_OR_RETURN(std::vector<DocFingerprint> docs,
                       DecodeDocTableBytes(doc_bytes));
  if (corpus_->fragmented()) {
    return Status::InvalidArgument(
        "corpus has tombstoned spans; compact before opening a store");
  }
  std::vector<std::string> stale = DiagnoseStaleDocs(docs, *corpus_);
  if (!stale.empty()) {
    return Status::InvalidArgument("store does not match the corpus: " +
                                   FormatStaleDocs(stale));
  }
  auto built = std::make_shared<BuiltIndexes>();
  // Register names/counts from the dictionaries; instances and posting
  // lists stay on disk until a query touches them.
  QOF_RETURN_IF_ERROR(built->regions.AttachSource(
      std::make_shared<StoreRegionSource>(store)));
  built->words =
      WordIndex::FromEntries({}, spec.word_options.fold_case);
  built->words.AttachSource(std::make_shared<StorePostingSource>(store));
  built->documents = store->meta().doc_count;
  auto compiler = std::make_shared<const QueryCompiler>(
      &full_rig_, spec.IndexedNames(schema_), schema_.view_name(),
      spec.within);
  // Commit: nothing past this point can fail.
  spec_ = std::move(spec);
  built_ = std::move(built);
  compiler_ = std::move(compiler);
  store_ = store;
  index_source_ = "paged-store";
  index_format_version_ = 0;
  ++builds_;
  ResetMaintainer(store->meta().generation);
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  if (eval_cache_ != nullptr) {
    eval_cache_->AdvanceEpoch(CurrentEpochUnlocked());
  }
  return Status::OK();
}

FileQuerySystem::IndexStats FileQuerySystem::index_stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  IndexStats stats;
  stats.built = built_ != nullptr;
  stats.source = index_source_;
  stats.format_version = index_format_version_;
  stats.generation =
      maintainer_ != nullptr ? maintainer_->generation() : 0;
  stats.disk_resident =
      built_ != nullptr && (built_->regions.disk_resident() ||
                            built_->words.disk_resident());
  if (store_ != nullptr) stats.pool = store_->pool_stats();
  return stats;
}

Status FileQuerySystem::ImportIndexes(std::string_view blob) {
  std::lock_guard<std::mutex> lock(state_mu_);
  // Stage everything the import will install before touching any member:
  // a corrupt or stale blob (or an injected index_io fault) must leave
  // previously installed indexes, spec, compiler and maintainer exactly
  // as they were — still queryable.
  struct Staged {
    std::shared_ptr<BuiltIndexes> built;
    std::shared_ptr<const QueryCompiler> compiler;
    uint64_t generation = 0;
    int version = 0;
  } staged;
  {
    QOF_ASSIGN_OR_RETURN(BlobInfo info, ReadBlobInfo(blob));
    staged.version = info.version;
    QOF_ASSIGN_OR_RETURN(SerializedIndexes loaded,
                         DeserializeIndexes(blob, *corpus_));
    staged.built = std::make_shared<BuiltIndexes>(std::move(loaded.indexes));
    staged.compiler = std::make_shared<const QueryCompiler>(
        &full_rig_, loaded.spec.IndexedNames(schema_), schema_.view_name(),
        loaded.spec.within);
    staged.generation = loaded.generation;
    // Commit: nothing past this point can fail.
    spec_ = std::move(loaded.spec);
  }
  built_ = std::move(staged.built);
  compiler_ = std::move(staged.compiler);
  store_.reset();
  index_source_ = "blob-v" + std::to_string(staged.version);
  index_format_version_ = staged.version;
  ++builds_;
  ResetMaintainer(staged.generation);
  // Same reasoning as BuildIndexes: plans may describe the old spec —
  // clear the plan cache; the eval cache advances to the new build's
  // epoch, keeping only entries pinned by live snapshots.
  if (plan_cache_ != nullptr) plan_cache_->Clear();
  if (eval_cache_ != nullptr) {
    eval_cache_->AdvanceEpoch(CurrentEpochUnlocked());
  }
  return Status::OK();
}

}  // namespace qof
