#include "qof/engine/index_io.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "qof/exec/fault_injector.h"
#include "qof/util/wire.h"

namespace qof {
namespace {

constexpr char kMagicV1[] = "QOFIDX1\n";
constexpr char kMagicV2[] = "QOFIDX2\n";
constexpr char kMagicV3[] = "QOFIDX3\n";
constexpr size_t kMagicLen = 8;

// v3 header: magic | generation u64 | payload checksum u64. The checksum
// covers everything after the header (doc table + body) but not the
// generation, so blobs that differ only in maintenance history still
// byte-compare after StripGeneration-style zeroing of bytes [8, 16).
constexpr size_t kV3HeaderLen = kMagicLen + 16;

bool HasMagic(std::string_view blob, const char* magic) {
  return blob.size() >= kMagicLen &&
         std::memcmp(blob.data(), magic, kMagicLen) == 0;
}

// --- shared body (spec + regions + words + documents) ----------------------

Status DecodeSpecFields(WireReader* reader, IndexSpec* spec) {
  QOF_ASSIGN_OR_RETURN(uint8_t mode, reader->U8());
  spec->mode = mode == 0 ? IndexSpec::Mode::kFull : IndexSpec::Mode::kPartial;
  QOF_ASSIGN_OR_RETURN(uint8_t fold_case, reader->U8());
  spec->word_options.fold_case = fold_case != 0;
  QOF_ASSIGN_OR_RETURN(uint32_t num_spec_names, reader->U32());
  for (uint32_t i = 0; i < num_spec_names; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader->String());
    spec->names.insert(std::move(name));
  }
  QOF_ASSIGN_OR_RETURN(uint32_t num_within, reader->U32());
  for (uint32_t i = 0; i < num_within; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader->String());
    QOF_ASSIGN_OR_RETURN(std::string ancestor, reader->String());
    spec->within.emplace(std::move(name), std::move(ancestor));
  }
  return Status::OK();
}

Status AppendBody(const BuiltIndexes& built, const IndexSpec& spec,
                  std::string* out) {
  EncodeIndexSpec(spec, out);

  // Region instances.
  std::vector<std::string> names = built.regions.Names();
  PutU32(static_cast<uint32_t>(names.size()), out);
  for (const std::string& name : names) {
    PutString(name, out);
    auto set = built.regions.Get(name);
    if (!set.ok()) return set.status();
    PutU64((*set)->size(), out);
    for (const Region& r : **set) {
      PutU64(r.start, out);
      PutU64(r.end, out);
    }
  }

  // Word postings, in sorted word order: the posting map iterates in an
  // unspecified order, and a canonical blob lets byte comparison stand in
  // for index equality (the parallel-vs-serial determinism tests and the
  // incremental-vs-rebuild fuzz oracle rely on this).
  std::vector<std::pair<const std::string*, const std::vector<TextPos>*>>
      words;
  words.reserve(built.words.num_distinct_words());
  built.words.ForEachWord(
      [&words](const std::string& word, const std::vector<TextPos>& posts) {
        words.emplace_back(&word, &posts);
      });
  std::sort(words.begin(), words.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  PutU64(words.size(), out);
  for (const auto& [word, posts] : words) {
    PutString(*word, out);
    PutU64(posts->size(), out);
    for (TextPos p : *posts) PutU64(p, out);
  }

  PutU64(built.documents, out);
  return Status::OK();
}

Status DecodeBody(WireReader* reader, uint64_t corpus_size,
                  SerializedIndexes* out) {
  QOF_RETURN_IF_ERROR(DecodeSpecFields(reader, &out->spec));

  // Region instances.
  QOF_ASSIGN_OR_RETURN(uint32_t num_region_names, reader->U32());
  for (uint32_t i = 0; i < num_region_names; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader->String());
    QOF_ASSIGN_OR_RETURN(uint64_t count, reader->U64());
    QOF_RETURN_IF_ERROR(reader->CheckCount(count, 16));  // two u64 each
    std::vector<Region> regions;
    regions.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      QOF_ASSIGN_OR_RETURN(uint64_t start, reader->U64());
      QOF_ASSIGN_OR_RETURN(uint64_t end, reader->U64());
      if (end < start || end > corpus_size) {
        return Status::InvalidArgument("corrupt region span in blob");
      }
      regions.push_back({start, end});
    }
    out->indexes.regions.Add(std::move(name),
                             RegionSet::FromUnsorted(std::move(regions)));
  }

  // Word postings.
  QOF_ASSIGN_OR_RETURN(uint64_t num_words, reader->U64());
  // Smallest possible entry: empty word (4-byte length) + posting count.
  QOF_RETURN_IF_ERROR(reader->CheckCount(num_words, 12));
  std::vector<std::pair<std::string, std::vector<TextPos>>> entries;
  entries.reserve(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string word, reader->String());
    QOF_ASSIGN_OR_RETURN(uint64_t count, reader->U64());
    QOF_RETURN_IF_ERROR(reader->CheckCount(count, 8));
    std::vector<TextPos> postings;
    postings.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      QOF_ASSIGN_OR_RETURN(uint64_t p, reader->U64());
      postings.push_back(p);
    }
    entries.emplace_back(std::move(word), std::move(postings));
  }
  out->indexes.words = WordIndex::FromEntries(
      std::move(entries), out->spec.word_options.fold_case);

  QOF_ASSIGN_OR_RETURN(out->indexes.documents, reader->U64());
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes after index blob");
  }
  return Status::OK();
}

Status CheckSerializable(const IndexSpec& spec) {
  if (spec.word_options.token_filter) {
    return Status::InvalidArgument(
        "word-index token filters are code and cannot be serialized; "
        "rebuild instead of loading");
  }
  return Status::OK();
}

// --- v2 document table -----------------------------------------------------

Result<std::vector<DocFingerprint>> DecodeDocTable(WireReader* reader) {
  QOF_ASSIGN_OR_RETURN(uint32_t count, reader->U32());
  // Smallest entry: empty name (4) + size (8) + fingerprint (8).
  QOF_RETURN_IF_ERROR(reader->CheckCount(count, 20));
  std::vector<DocFingerprint> docs;
  docs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DocFingerprint doc;
    QOF_ASSIGN_OR_RETURN(doc.name, reader->String());
    QOF_ASSIGN_OR_RETURN(doc.size, reader->U64());
    QOF_ASSIGN_OR_RETURN(doc.fnv1a, reader->U64());
    docs.push_back(std::move(doc));
  }
  return docs;
}

/// Replays Corpus::AddDocument's layout rule over a document table: a
/// '\n' separator precedes every document except when the text so far is
/// empty. Returns each document's implied start plus the total size.
struct ImpliedLayout {
  std::vector<TextPos> starts;
  uint64_t total = 0;
};

ImpliedLayout LayoutOf(const std::vector<DocFingerprint>& docs) {
  ImpliedLayout layout;
  layout.starts.reserve(docs.size());
  uint64_t off = 0;
  for (const DocFingerprint& doc : docs) {
    TextPos start = off > 0 ? off + 1 : off;
    layout.starts.push_back(start);
    off = start + doc.size;
  }
  layout.total = off;
  return layout;
}

std::string JoinStale(const std::vector<std::string>& stale) {
  constexpr size_t kMaxNamed = 8;
  std::string out;
  for (size_t i = 0; i < stale.size() && i < kMaxNamed; ++i) {
    if (i > 0) out += ", ";
    out += stale[i];
  }
  if (stale.size() > kMaxNamed) {
    out += ", … (" + std::to_string(stale.size()) + " total)";
  }
  return out;
}

/// Reads the u64 checksum field of a v3 header and verifies it against
/// the payload. A mismatch means the blob was damaged after it was
/// written — a bit flip anywhere in the doc table or index body is
/// caught here, before any of it is decoded.
Status VerifyPayloadChecksum(std::string_view blob, WireReader* reader) {
  QOF_ASSIGN_OR_RETURN(uint64_t expected, reader->U64());
  if (blob.size() < kV3HeaderLen ||
      Fnv1a(blob.substr(kV3HeaderLen)) != expected) {
    return Status::InvalidArgument(
        "index blob corrupt (payload checksum mismatch); rebuild the "
        "indexes");
  }
  return Status::OK();
}

Result<SerializedIndexes> DeserializeV1(std::string_view blob,
                                        std::string_view corpus_text) {
  WireReader reader(blob.substr(kMagicLen), "index blob");
  QOF_ASSIGN_OR_RETURN(uint64_t size, reader.U64());
  QOF_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.U64());
  if (size != corpus_text.size() ||
      fingerprint != CorpusFingerprint(corpus_text)) {
    return Status::InvalidArgument(
        "index blob was built for a different corpus "
        "(fingerprint mismatch; v1 blobs cannot name the stale "
        "documents); rebuild the indexes");
  }
  SerializedIndexes out;
  QOF_RETURN_IF_ERROR(DecodeBody(&reader, corpus_text.size(), &out));
  return out;
}

}  // namespace

uint64_t CorpusFingerprint(std::string_view text) { return Fnv1a(text); }

Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     std::string_view corpus_text) {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexIoSerialize));
  QOF_RETURN_IF_ERROR(CheckSerializable(spec));
  std::string out;
  out.append(kMagicV1, kMagicLen);
  PutU64(corpus_text.size(), &out);
  PutU64(CorpusFingerprint(corpus_text), &out);
  QOF_RETURN_IF_ERROR(AppendBody(built, spec, &out));
  return out;
}

Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     const Corpus& corpus,
                                     uint64_t generation) {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexIoSerialize));
  QOF_RETURN_IF_ERROR(CheckSerializable(spec));
  if (corpus.fragmented()) {
    return Status::InvalidArgument(
        "corpus has tombstoned spans — compact before serializing "
        "(blob offsets must describe a dense layout)");
  }
  // Doc table + body are assembled first so the header can carry their
  // checksum.
  QOF_ASSIGN_OR_RETURN(std::string payload, EncodeDocTable(corpus));
  QOF_RETURN_IF_ERROR(AppendBody(built, spec, &payload));
  std::string out;
  out.reserve(kV3HeaderLen + payload.size());
  out.append(kMagicV3, kMagicLen);
  PutU64(generation, &out);
  PutU64(Fnv1a(payload), &out);
  out += payload;
  return out;
}

Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             std::string_view corpus_text) {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexIoDeserialize));
  if (HasMagic(blob, kMagicV1)) return DeserializeV1(blob, corpus_text);
  const bool v3 = HasMagic(blob, kMagicV3);
  if (!v3 && !HasMagic(blob, kMagicV2)) {
    return Status::InvalidArgument("not a qof index blob (bad magic)");
  }
  WireReader reader(blob.substr(kMagicLen), "index blob");
  SerializedIndexes out;
  QOF_ASSIGN_OR_RETURN(out.generation, reader.U64());
  if (v3) QOF_RETURN_IF_ERROR(VerifyPayloadChecksum(blob, &reader));
  QOF_ASSIGN_OR_RETURN(std::vector<DocFingerprint> docs,
                       DecodeDocTable(&reader));
  ImpliedLayout layout = LayoutOf(docs);
  if (layout.total != corpus_text.size()) {
    return Status::InvalidArgument(
        "index blob was built for a different corpus layout (" +
        std::to_string(layout.total) + " bytes indexed vs " +
        std::to_string(corpus_text.size()) + " present); rebuild the "
        "indexes");
  }
  std::vector<std::string> stale;
  for (size_t i = 0; i < docs.size(); ++i) {
    std::string_view text =
        corpus_text.substr(layout.starts[i], docs[i].size);
    if (Fnv1a(text) != docs[i].fnv1a) stale.push_back(docs[i].name);
  }
  if (!stale.empty()) {
    return Status::InvalidArgument(
        "index blob is stale: " + std::to_string(stale.size()) +
        " document(s) changed since indexing: " + JoinStale(stale) +
        "; rebuild the indexes");
  }
  QOF_RETURN_IF_ERROR(DecodeBody(&reader, layout.total, &out));
  return out;
}

Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             const Corpus& corpus,
                                             DeserializeOptions options) {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexIoDeserialize));
  if (corpus.fragmented()) {
    return Status::InvalidArgument(
        "corpus has tombstoned spans; compact before loading indexes");
  }
  if (HasMagic(blob, kMagicV1)) {
    return DeserializeV1(blob, corpus.full_text());
  }
  const bool v3 = HasMagic(blob, kMagicV3);
  if (!v3 && !HasMagic(blob, kMagicV2)) {
    return Status::InvalidArgument("not a qof index blob (bad magic)");
  }
  WireReader reader(blob.substr(kMagicLen), "index blob");
  SerializedIndexes out;
  QOF_ASSIGN_OR_RETURN(out.generation, reader.U64());
  if (v3) QOF_RETURN_IF_ERROR(VerifyPayloadChecksum(blob, &reader));
  QOF_ASSIGN_OR_RETURN(std::vector<DocFingerprint> docs,
                       DecodeDocTable(&reader));
  std::vector<std::string> stale = DiagnoseStaleDocs(docs, corpus);
  if (!stale.empty() && !options.allow_stale) {
    return Status::InvalidArgument(
        "index blob is stale: " + JoinStale(stale) +
        "; rebuild the indexes (or load with allow_stale)");
  }
  QOF_RETURN_IF_ERROR(DecodeBody(&reader, LayoutOf(docs).total, &out));
  out.stale_documents = std::move(stale);
  return out;
}

void EncodeIndexSpec(const IndexSpec& spec, std::string* out) {
  out->push_back(spec.mode == IndexSpec::Mode::kFull ? 0 : 1);
  out->push_back(spec.word_options.fold_case ? 1 : 0);
  PutU32(static_cast<uint32_t>(spec.names.size()), out);
  for (const std::string& name : spec.names) PutString(name, out);
  PutU32(static_cast<uint32_t>(spec.within.size()), out);
  for (const auto& [name, ancestor] : spec.within) {
    PutString(name, out);
    PutString(ancestor, out);
  }
}

Result<IndexSpec> DecodeIndexSpec(std::string_view bytes) {
  WireReader reader(bytes, "index spec");
  IndexSpec spec;
  QOF_RETURN_IF_ERROR(DecodeSpecFields(&reader, &spec));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after index spec");
  }
  return spec;
}

Result<std::string> EncodeDocTable(const Corpus& corpus) {
  if (corpus.fragmented()) {
    return Status::InvalidArgument(
        "corpus has tombstoned spans — compact before serializing "
        "(blob offsets must describe a dense layout)");
  }
  std::string out;
  PutU32(static_cast<uint32_t>(corpus.num_documents()), &out);
  for (DocId id = 0; id < corpus.num_documents(); ++id) {
    TextPos begin = corpus.document_start(id);
    std::string_view text = corpus.RawText(begin, corpus.document_end(id));
    PutString(corpus.document_name(id), &out);
    PutU64(text.size(), &out);
    PutU64(Fnv1a(text), &out);
  }
  return out;
}

Result<std::vector<DocFingerprint>> DecodeDocTableBytes(
    std::string_view bytes) {
  WireReader reader(bytes, "document table");
  QOF_ASSIGN_OR_RETURN(std::vector<DocFingerprint> docs,
                       DecodeDocTable(&reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after document table");
  }
  return docs;
}

std::vector<std::string> DiagnoseStaleDocs(
    const std::vector<DocFingerprint>& docs, const Corpus& corpus) {
  // Per-document staleness, by name: modified / missing / new, plus
  // "moved" when the contents all match but the physical order differs
  // (offsets are order-dependent).
  std::vector<DocFingerprint> live;
  live.reserve(corpus.num_documents());
  for (DocId id = 0; id < corpus.num_documents(); ++id) {
    TextPos begin = corpus.document_start(id);
    std::string_view text = corpus.RawText(begin, corpus.document_end(id));
    live.push_back({corpus.document_name(id), text.size(), Fnv1a(text)});
  }
  std::vector<std::string> stale;
  auto find_by_name = [](const std::vector<DocFingerprint>& table,
                         const std::string& name) -> const DocFingerprint* {
    for (const DocFingerprint& d : table) {
      if (d.name == name) return &d;
    }
    return nullptr;
  };
  for (const DocFingerprint& d : docs) {
    const DocFingerprint* present = find_by_name(live, d.name);
    if (present == nullptr) {
      stale.push_back("missing: " + d.name);
    } else if (present->size != d.size || present->fnv1a != d.fnv1a) {
      stale.push_back("modified: " + d.name);
    }
  }
  for (const DocFingerprint& d : live) {
    if (find_by_name(docs, d.name) == nullptr) {
      stale.push_back("new: " + d.name);
    }
  }
  if (stale.empty() && docs.size() == live.size()) {
    for (size_t i = 0; i < docs.size(); ++i) {
      if (docs[i].name != live[i].name) {
        stale.push_back("moved: " + docs[i].name);
      }
    }
  }
  return stale;
}

std::string FormatStaleDocs(const std::vector<std::string>& stale) {
  return JoinStale(stale);
}

Result<UncheckedIndexes> DeserializeIndexesUnchecked(std::string_view blob) {
  QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexIoDeserialize));
  if (HasMagic(blob, kMagicV1)) {
    return Status::InvalidArgument(
        "v1 index blobs carry no document table and cannot be converted; "
        "rebuild and re-export first");
  }
  const bool v3 = HasMagic(blob, kMagicV3);
  if (!v3 && !HasMagic(blob, kMagicV2)) {
    return Status::InvalidArgument("not a qof index blob (bad magic)");
  }
  WireReader reader(blob.substr(kMagicLen), "index blob");
  UncheckedIndexes out;
  out.version = v3 ? 3 : 2;
  QOF_ASSIGN_OR_RETURN(out.indexes.generation, reader.U64());
  if (v3) QOF_RETURN_IF_ERROR(VerifyPayloadChecksum(blob, &reader));
  QOF_ASSIGN_OR_RETURN(out.docs, DecodeDocTable(&reader));
  QOF_RETURN_IF_ERROR(
      DecodeBody(&reader, LayoutOf(out.docs).total, &out.indexes));
  return out;
}

Result<BlobInfo> ReadBlobInfo(std::string_view blob) {
  BlobInfo info;
  if (HasMagic(blob, kMagicV1)) {
    info.version = 1;
    return info;
  }
  const bool v3 = HasMagic(blob, kMagicV3);
  if (!v3 && !HasMagic(blob, kMagicV2)) {
    return Status::InvalidArgument("not a qof index blob (bad magic)");
  }
  info.version = v3 ? 3 : 2;
  WireReader reader(blob.substr(kMagicLen), "index blob");
  QOF_ASSIGN_OR_RETURN(info.generation, reader.U64());
  if (v3) QOF_RETURN_IF_ERROR(VerifyPayloadChecksum(blob, &reader));
  QOF_ASSIGN_OR_RETURN(info.docs, DecodeDocTable(&reader));
  return info;
}

}  // namespace qof
