#include "qof/engine/index_io.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace qof {
namespace {

constexpr char kMagic[] = "QOFIDX1\n";
constexpr size_t kMagicLen = 8;

// --- little-endian primitives ----------------------------------------------

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<uint32_t> U32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<std::string> String() {
    QOF_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos_ + len > data_.size()) return Truncated();
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

  size_t Remaining() const { return data_.size() - pos_; }

  /// Rejects a claimed element count that the remaining bytes cannot
  /// possibly hold. Counts gate reserve() calls, so a corrupt count
  /// would otherwise turn into a multi-gigabyte allocation before the
  /// per-element reads ever notice the truncation.
  Status CheckCount(uint64_t count, size_t min_bytes_each) {
    if (count > Remaining() / min_bytes_each) {
      return Status::InvalidArgument(
          "corrupt index blob: count " + std::to_string(count) +
          " at offset " + std::to_string(pos_) + " exceeds the " +
          std::to_string(Remaining()) + " bytes that follow");
    }
    return Status::OK();
  }

 private:
  Status Truncated() const {
    return Status::InvalidArgument("truncated index blob at offset " +
                                   std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t CorpusFingerprint(std::string_view text) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     std::string_view corpus_text) {
  if (spec.word_options.token_filter) {
    return Status::InvalidArgument(
        "word-index token filters are code and cannot be serialized; "
        "rebuild instead of loading");
  }
  std::string out;
  out.append(kMagic, kMagicLen);
  PutU64(corpus_text.size(), &out);
  PutU64(CorpusFingerprint(corpus_text), &out);

  // Spec.
  out.push_back(spec.mode == IndexSpec::Mode::kFull ? 0 : 1);
  out.push_back(spec.word_options.fold_case ? 1 : 0);
  PutU32(static_cast<uint32_t>(spec.names.size()), &out);
  for (const std::string& name : spec.names) PutString(name, &out);
  PutU32(static_cast<uint32_t>(spec.within.size()), &out);
  for (const auto& [name, ancestor] : spec.within) {
    PutString(name, &out);
    PutString(ancestor, &out);
  }

  // Region instances.
  std::vector<std::string> names = built.regions.Names();
  PutU32(static_cast<uint32_t>(names.size()), &out);
  for (const std::string& name : names) {
    PutString(name, &out);
    auto set = built.regions.Get(name);
    if (!set.ok()) return set.status();
    PutU64((*set)->size(), &out);
    for (const Region& r : **set) {
      PutU64(r.start, &out);
      PutU64(r.end, &out);
    }
  }

  // Word postings, in sorted word order: the posting map iterates in an
  // unspecified order, and a canonical blob lets byte comparison stand in
  // for index equality (the parallel-vs-serial determinism tests rely on
  // this).
  std::vector<std::pair<const std::string*, const std::vector<TextPos>*>>
      words;
  words.reserve(built.words.num_distinct_words());
  built.words.ForEachWord(
      [&words](const std::string& word, const std::vector<TextPos>& posts) {
        words.emplace_back(&word, &posts);
      });
  std::sort(words.begin(), words.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  PutU64(words.size(), &out);
  for (const auto& [word, posts] : words) {
    PutString(*word, &out);
    PutU64(posts->size(), &out);
    for (TextPos p : *posts) PutU64(p, &out);
  }

  PutU64(built.documents, &out);
  return out;
}

Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             std::string_view corpus_text) {
  if (blob.size() < kMagicLen ||
      std::memcmp(blob.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not a qof index blob (bad magic)");
  }
  Reader reader(blob.substr(kMagicLen));
  QOF_ASSIGN_OR_RETURN(uint64_t size, reader.U64());
  QOF_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.U64());
  if (size != corpus_text.size() ||
      fingerprint != CorpusFingerprint(corpus_text)) {
    return Status::InvalidArgument(
        "index blob was built for a different corpus "
        "(fingerprint mismatch); rebuild the indexes");
  }

  SerializedIndexes out;
  // Spec.
  QOF_ASSIGN_OR_RETURN(uint8_t mode, reader.U8());
  out.spec.mode = mode == 0 ? IndexSpec::Mode::kFull
                            : IndexSpec::Mode::kPartial;
  QOF_ASSIGN_OR_RETURN(uint8_t fold_case, reader.U8());
  out.spec.word_options.fold_case = fold_case != 0;
  QOF_ASSIGN_OR_RETURN(uint32_t num_spec_names, reader.U32());
  for (uint32_t i = 0; i < num_spec_names; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader.String());
    out.spec.names.insert(std::move(name));
  }
  QOF_ASSIGN_OR_RETURN(uint32_t num_within, reader.U32());
  for (uint32_t i = 0; i < num_within; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader.String());
    QOF_ASSIGN_OR_RETURN(std::string ancestor, reader.String());
    out.spec.within.emplace(std::move(name), std::move(ancestor));
  }

  // Region instances.
  QOF_ASSIGN_OR_RETURN(uint32_t num_region_names, reader.U32());
  for (uint32_t i = 0; i < num_region_names; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string name, reader.String());
    QOF_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
    QOF_RETURN_IF_ERROR(reader.CheckCount(count, 16));  // two u64 each
    std::vector<Region> regions;
    regions.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      QOF_ASSIGN_OR_RETURN(uint64_t start, reader.U64());
      QOF_ASSIGN_OR_RETURN(uint64_t end, reader.U64());
      if (end < start || end > corpus_text.size()) {
        return Status::InvalidArgument("corrupt region span in blob");
      }
      regions.push_back({start, end});
    }
    out.indexes.regions.Add(std::move(name),
                            RegionSet::FromUnsorted(std::move(regions)));
  }

  // Word postings.
  QOF_ASSIGN_OR_RETURN(uint64_t num_words, reader.U64());
  // Smallest possible entry: empty word (4-byte length) + posting count.
  QOF_RETURN_IF_ERROR(reader.CheckCount(num_words, 12));
  std::vector<std::pair<std::string, std::vector<TextPos>>> entries;
  entries.reserve(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    QOF_ASSIGN_OR_RETURN(std::string word, reader.String());
    QOF_ASSIGN_OR_RETURN(uint64_t count, reader.U64());
    QOF_RETURN_IF_ERROR(reader.CheckCount(count, 8));
    std::vector<TextPos> postings;
    postings.reserve(count);
    for (uint64_t j = 0; j < count; ++j) {
      QOF_ASSIGN_OR_RETURN(uint64_t p, reader.U64());
      postings.push_back(p);
    }
    entries.emplace_back(std::move(word), std::move(postings));
  }
  out.indexes.words = WordIndex::FromEntries(
      std::move(entries), out.spec.word_options.fold_case);

  QOF_ASSIGN_OR_RETURN(out.indexes.documents, reader.U64());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after index blob");
  }
  return out;
}

}  // namespace qof
