#include "qof/engine/condition_eval.h"

#include "qof/compiler/path_mapper.h"
#include "qof/text/tokenizer.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

void FlattenInto(const ObjectStore& store, const Value& value,
                 std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      return;
    case Value::Kind::kString:
      if (!out->empty()) *out += " ";
      *out += value.str();
      return;
    case Value::Kind::kInt:
      if (!out->empty()) *out += " ";
      *out += std::to_string(value.int_value());
      return;
    case Value::Kind::kRef: {
      auto obj = store.Get(value.ref_id());
      if (obj.ok()) FlattenInto(store, (*obj)->state, out);
      return;
    }
    case Value::Kind::kTuple:
      for (const auto& [attr, field] : value.fields()) {
        FlattenInto(store, field, out);
      }
      return;
    case Value::Kind::kSet:
    case Value::Kind::kList:
      for (const Value& e : value.elements()) FlattenInto(store, e, out);
      return;
  }
}

// Navigates every expanded alternative of `path` from `root`.
Result<std::vector<Value>> Navigate(const ObjectStore& store,
                                    const Value& root, const PathExpr& path,
                                    const Rig& full_rig,
                                    const std::string& view_region) {
  QOF_ASSIGN_OR_RETURN(
      std::vector<std::vector<NavStep>> alternatives,
      MapPathToNavSteps(full_rig, view_region, path));
  std::vector<Value> out;
  for (const std::vector<NavStep>& steps : alternatives) {
    std::vector<Value> hits = NavigatePath(store, root, steps);
    out.insert(out.end(), hits.begin(), hits.end());
  }
  return out;
}

// Maps each path once (discarding the expansion) so malformed paths are
// diagnosed before any data is consulted.
Status ValidateConditionPaths(const Condition& cond, const Rig& full_rig,
                              const std::string& view_region) {
  switch (cond.kind()) {
    case Condition::Kind::kEqualsLiteral:
    case Condition::Kind::kContainsWord:
    case Condition::Kind::kStartsWith:
      return MapPathToNavSteps(full_rig, view_region, cond.path()).status();
    case Condition::Kind::kEqualsPath:
      QOF_RETURN_IF_ERROR(
          MapPathToNavSteps(full_rig, view_region, cond.path()).status());
      return MapPathToNavSteps(full_rig, view_region, cond.rhs_path())
          .status();
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
      QOF_RETURN_IF_ERROR(
          ValidateConditionPaths(*cond.left(), full_rig, view_region));
      return ValidateConditionPaths(*cond.right(), full_rig, view_region);
    case Condition::Kind::kNot:
      return ValidateConditionPaths(*cond.child(), full_rig, view_region);
  }
  return Status::Internal("unhandled condition kind");
}

}  // namespace

Status ValidateQueryPaths(const SelectQuery& query, const Rig& full_rig,
                          const std::string& view_region) {
  if (query.where != nullptr) {
    QOF_RETURN_IF_ERROR(
        ValidateConditionPaths(*query.where, full_rig, view_region));
  }
  if (query.IsProjection()) {
    return MapPathToNavSteps(full_rig, view_region, query.target).status();
  }
  return Status::OK();
}

std::string FlattenText(const ObjectStore& store, const Value& value) {
  std::string out;
  FlattenInto(store, value, &out);
  return out;
}

bool ValueMatchesLiteral(const ObjectStore& store, const Value& value,
                         const std::string& literal) {
  return TrimView(FlattenText(store, value)) == TrimView(literal);
}

bool ValueContainsWord(const ObjectStore& store, const Value& value,
                       const std::string& word) {
  std::string text = FlattenText(store, value);
  std::string needle(TrimView(word));
  auto needle_tokens = Tokenizer::Tokenize(needle);
  if (needle_tokens.size() > 1) {
    // Multi-word containment: the literal occurs verbatim in the text.
    return text.find(needle) != std::string::npos;
  }
  bool found = false;
  Tokenizer::ForEachToken(text, 0, [&](const WordToken& t) {
    found = found || t.text == needle;
  });
  return found;
}

Result<bool> EvaluateCondition(const ObjectStore& store, const Value& root,
                               const Condition& cond, const Rig& full_rig,
                               const std::string& view_region) {
  switch (cond.kind()) {
    case Condition::Kind::kEqualsLiteral: {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          Navigate(store, root, cond.path(), full_rig, view_region));
      for (const Value& v : values) {
        if (ValueMatchesLiteral(store, v, cond.literal())) return true;
      }
      return false;
    }
    case Condition::Kind::kContainsWord: {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          Navigate(store, root, cond.path(), full_rig, view_region));
      for (const Value& v : values) {
        if (ValueContainsWord(store, v, cond.literal())) return true;
      }
      return false;
    }
    case Condition::Kind::kStartsWith: {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          Navigate(store, root, cond.path(), full_rig, view_region));
      std::string prefix(TrimView(cond.literal()));
      for (const Value& v : values) {
        std::string text(TrimView(FlattenText(store, v)));
        if (text.size() >= prefix.size() &&
            text.compare(0, prefix.size(), prefix) == 0) {
          return true;
        }
      }
      return false;
    }
    case Condition::Kind::kEqualsPath: {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> lhs,
          Navigate(store, root, cond.path(), full_rig, view_region));
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> rhs,
          Navigate(store, root, cond.rhs_path(), full_rig, view_region));
      for (const Value& a : lhs) {
        for (const Value& b : rhs) {
          if (a.Equals(b)) return true;
        }
      }
      return false;
    }
    case Condition::Kind::kAnd: {
      QOF_ASSIGN_OR_RETURN(
          bool l, EvaluateCondition(store, root, *cond.left(), full_rig,
                                    view_region));
      if (!l) return false;
      return EvaluateCondition(store, root, *cond.right(), full_rig,
                               view_region);
    }
    case Condition::Kind::kOr: {
      QOF_ASSIGN_OR_RETURN(
          bool l, EvaluateCondition(store, root, *cond.left(), full_rig,
                                    view_region));
      if (l) return true;
      return EvaluateCondition(store, root, *cond.right(), full_rig,
                               view_region);
    }
    case Condition::Kind::kNot: {
      QOF_ASSIGN_OR_RETURN(
          bool c, EvaluateCondition(store, root, *cond.child(), full_rig,
                                    view_region));
      return !c;
    }
  }
  return Status::Internal("unhandled condition kind");
}

Result<std::vector<Value>> EvaluateTarget(const ObjectStore& store,
                                          const Value& root,
                                          const PathExpr& target,
                                          const Rig& full_rig,
                                          const std::string& view_region) {
  if (target.steps.empty()) return std::vector<Value>{root};
  return Navigate(store, root, target, full_rig, view_region);
}

}  // namespace qof
