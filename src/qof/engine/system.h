#ifndef QOF_ENGINE_SYSTEM_H_
#define QOF_ENGINE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "qof/algebra/cost_model.h"
#include "qof/algebra/evaluator.h"
#include "qof/cache/cache.h"
#include "qof/compiler/query_compiler.h"
#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/engine/snapshot.h"
#include "qof/exec/exec_context.h"
#include "qof/ir/executor.h"
#include "qof/ir/passes.h"
#include "qof/maintain/maintainer.h"
#include "qof/query/parser.h"
#include "qof/schema/rig_derivation.h"
#include "qof/store/paged_store.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// How a query was (or must be) executed.
enum class ExecutionMode {
  kAuto,      // pick the cheapest sound strategy
  kIndexOnly, // require full computation on indices; error when unsound
  kTwoPhase,  // force candidates + parse + filter
  kBaseline,  // force the full-scan "standard database" plan
};

/// Per-query execution report; every experiment in EXPERIMENTS.md reads
/// these fields.
struct QueryStats {
  std::string strategy;  // "index-only" | "two-phase" | "index-join" |
                         // "baseline" | "empty"
  bool exact = false;
  uint64_t candidates = 0;       // phase-1 candidate count
  uint64_t results = 0;
  uint64_t bytes_scanned = 0;    // file bytes read during execution
  uint64_t corpus_bytes = 0;     // total corpus size, for comparison
  uint64_t objects_built = 0;    // database objects materialized
  EvalStats algebra;             // region-algebra operation counts
  uint64_t micros = 0;
  /// QueryOptions::soft_fail only: a governance limit tripped and the
  /// result is the verified prefix, not the full answer (`exact` is false
  /// and a note records the limit that tripped).
  bool truncated = false;
  /// Which algebra engine evaluated the index plan: "ir" (the dataflow
  /// IR executor) or "tree" (the recursive expression walker). Empty for
  /// strategies that evaluate no algebra (baseline, empty).
  std::string engine;
  /// IR engine only: wall time, node counts and cursor I/O per IR
  /// operator kind (exclusive of input evaluation).
  IrOpTimings op_timings;
  /// Logical workers the executor ran with (QueryOptions::exec_workers
  /// after the QOF_EXEC_WORKERS override and pool availability): 1 =
  /// serial.
  int exec_workers = 1;
  std::vector<std::string> notes;  // compiler + engine decisions
};

/// The answer to a query: matching view regions (SELECT r) or projected
/// values (SELECT r.path), plus the stats.
struct QueryResult {
  std::vector<Region> regions;
  std::vector<Value> values;  // projections only
  QueryStats stats;

  /// Projected values rendered as text (atoms verbatim, composites
  /// space-joined), sorted — convenient for assertions and display.
  std::vector<std::string> RenderedValues() const;
};

/// The user-facing facade: a database view over files (paper §1's
/// "uniform framework"). Register a structuring schema, add files, build
/// indices, run FQL.
///
///   auto schema = BibtexSchema();
///   FileQuerySystem system(*schema);
///   system.AddFile("refs.bib", text);
///   system.BuildIndexes(IndexSpec::Full());
///   auto result = system.Execute(
///       "SELECT r FROM References r "
///       "WHERE r.Authors.Name.Last_Name = \"Chang\"");
class FileQuerySystem {
 public:
  explicit FileQuerySystem(StructuringSchema schema);

  /// Adds a file's text. Before BuildIndexes this just registers the
  /// document; after, the indexes are maintained *incrementally* — only
  /// the new file is parsed and its contribution spliced in (see
  /// src/qof/maintain/). Queries keep working across mutations and note
  /// the maintenance generation in their stats.
  ///
  /// `options` (here and on Update/Remove) bounds the maintenance work
  /// the same way it bounds queries: a deadline, cancellation or budget
  /// trip aborts with the typed error *before* any state changes —
  /// corpus and indexes stay exactly as they were.
  Status AddFile(std::string name, std::string_view text,
                 const QueryOptions& options = {});

  /// Replaces a file's text. With built indexes, only this file is
  /// re-parsed; its old contribution is spliced out and the new one in.
  /// Without built indexes the corpus entry is replaced in place.
  Status UpdateFile(std::string_view name, std::string_view text,
                    const QueryOptions& options = {});

  /// Removes a file; with built indexes its contribution is spliced out
  /// (the region names stay registered, possibly with empty instances).
  Status RemoveFile(std::string_view name,
                    const QueryOptions& options = {});

  /// Folds tombstoned spans out of the corpus and rebases the indexes —
  /// no re-parsing. After compaction the indexes are byte-identical
  /// (under ExportIndexes) to a from-scratch build. Also runs
  /// automatically once the MaintainOptions thresholds trip.
  Status CompactIndexes();

  /// Maintenance knobs (thresholds, fault injection for tests). Applies
  /// to the current maintainer and to ones created by future builds.
  void SetMaintainOptions(const MaintainOptions& options);

  /// Maintenance counters; zeros before indexes are built.
  MaintainStats maintain_stats() const;

  /// Mutations applied since the indexes were built (0 = pristine).
  /// Thread-safe (reads under the state lock, like maintain_stats()).
  uint64_t index_generation() const { return maintain_stats().generation; }

  // --- snapshot isolation (multi-client service support) ----------------
  //
  // Concurrency contract: mutations (AddFile / UpdateFile / RemoveFile /
  // CompactIndexes / BuildIndexes / ImportIndexes) are serialized against
  // each other internally and may run concurrently with any number of
  // ExecuteOnSnapshot calls. The *live* Execute/ExecuteQuery paths are
  // NOT safe against concurrent mutations — multi-client callers (see
  // qof/server/) route every query through a snapshot.

  /// Pins the current corpus + indexes + compiler as an immutable
  /// generation-stamped view. Queries on the snapshot see exactly this
  /// state forever — mutations arriving later clone the state and mutate
  /// the clone (copy-on-write), never blocking on readers and never
  /// becoming visible to them. Dropping the last reference releases the
  /// pinned state (and its eval-cache entries). Requires built indexes.
  Result<SnapshotRef> AcquireSnapshot();

  /// Parses and runs `fql` against `snapshot` instead of the live state.
  /// Thread-safe: any number of snapshot executions may run concurrently
  /// with each other and with mutations. Execution is serial (no worker
  /// pool) — the multi-client service gets its parallelism across
  /// queries, not within one. Both caches serve it: the eval cache under
  /// the snapshot's pinned epoch, the plan cache guarded by
  /// PlanCache::Entry::build (plans depend on the compiler, which is
  /// replaced per build — entries from another build are ignored).
  Result<QueryResult> ExecuteOnSnapshot(const IndexSnapshot& snapshot,
                                        std::string_view fql,
                                        ExecutionMode mode =
                                            ExecutionMode::kAuto,
                                        const QueryOptions& options = {});

  /// (Re)parses all files and builds word + region indices per the spec.
  /// Documents are processed in parallel on the system's thread pool
  /// (see SetParallelism; `spec.parallelism` overrides per build); the
  /// result is identical at any worker count.
  Status BuildIndexes(const IndexSpec& spec = IndexSpec::Full());

  /// Sets the worker count shared by index builds and two-phase query
  /// execution: 0 (the default) means one worker per hardware thread,
  /// 1 forces the serial code paths, n > 1 uses n workers. Results are
  /// deterministic — identical indexes, regions, values and stats at any
  /// setting; only wall time changes.
  void SetParallelism(int threads) { parallelism_ = threads; }
  int parallelism() const { return parallelism_; }

  /// Parses and runs an FQL query. `mode` kAuto picks: empty plans
  /// short-circuit; exact plans (with index-served projection) run
  /// index-only; single join predicates with indexed attributes use the
  /// index-assisted join; everything else runs two-phase. kBaseline
  /// always works, indices or not.
  ///
  /// `options` governs the execution (see qof/exec/exec_context.h): a
  /// deadline, cooperative cancellation, and byte / region budgets,
  /// enforced at document, candidate and algebra-operator granularity on
  /// every strategy. A tripped limit returns the typed error
  /// (kDeadlineExceeded / kCancelled / kBudgetExhausted) whose message
  /// carries partial-progress stats — or, with `options.soft_fail`, the
  /// verified-so-far prefix with `stats.truncated` set.
  ///
  /// Under kAuto the engine also degrades gracefully: a corrupt or
  /// missing index mid-plan (kInternal / kNotFound) or a region budget
  /// blown by index-side materialization falls back one rung
  /// (index strategy -> two-phase -> baseline), appending an explanatory
  /// note. Deadline, cancellation and the byte budget never degrade — a
  /// cheaper strategy cannot refund time or bytes already spent.
  Result<QueryResult> Execute(std::string_view fql,
                              ExecutionMode mode = ExecutionMode::kAuto,
                              const QueryOptions& options = {});
  Result<QueryResult> ExecuteQuery(const SelectQuery& query,
                                   ExecutionMode mode,
                                   const QueryOptions& options = {});

  /// Installs (or disables, with a default-constructed CacheOptions) the
  /// two query caches. The plan cache maps FQL text to its parsed AST and
  /// compiled plan; the eval cache shares region-algebra subexpression
  /// results keyed by serialized normal form + index epoch. Enabling them
  /// never changes results — only cost. Both are invalidated here and on
  /// BuildIndexes / ImportIndexes; the eval cache additionally retires
  /// entries whenever the maintenance generation or compaction count
  /// moves — per epoch, so entries pinned by a live snapshot survive
  /// mutations and keep serving that snapshot's queries warm.
  void SetCacheOptions(const CacheOptions& options);
  const CacheOptions& cache_options() const { return cache_options_; }

  /// Combined counters of both caches (all zeros while disabled).
  CacheStats cache_stats() const;

  /// The compiled plan for a query (for inspection / tests / benches).
  Result<QueryPlan> Plan(std::string_view fql) const;

  /// Human-readable plan report: the strategy kAuto would pick, the
  /// candidate/projection/join expressions with cost estimates, exactness
  /// and the compiler's notes. Requires built indexes.
  Result<std::string> Explain(std::string_view fql) const;

  /// Explain() plus the IR optimizer pipeline: the lowered dataflow
  /// program and its dump after every pass (CSE, pushdown, ordering,
  /// fusion), each node annotated with cost estimates. Deterministic for
  /// a given system state — the qof_explain tool and the golden test
  /// print it verbatim.
  Result<std::string> ExplainQuery(std::string_view fql) const;

  /// Overrides the IR optimizer pass configuration for subsequent
  /// queries (per-pass toggles for ablation; inject_bad_cse plants the
  /// fuzzer's bad-cse bug).
  void SetIrOptions(const IrPlanOptions& options) { ir_options_ = options; }
  const IrPlanOptions& ir_options() const { return ir_options_; }

  /// Accepts "<View>" and "<View>s" ("Reference", "References") plus any
  /// alias registered here.
  void AddViewAlias(std::string alias);

  /// True when this system answers queries on `view` (it is the schema's
  /// view name or a registered alias). Used by Workspace routing.
  bool HandlesView(const std::string& view) const {
    return view_aliases_.count(view) > 0;
  }

  const StructuringSchema& schema() const { return schema_; }
  const Rig& full_rig() const { return full_rig_; }
  const Corpus& corpus() const { return *corpus_; }
  bool indexes_built() const { return built_ != nullptr; }
  const RegionIndex& region_index() const { return built_->regions; }
  const WordIndex& word_index() const { return built_->words; }
  const IndexSpec& index_spec() const { return spec_; }
  uint64_t index_build_micros() const {
    return built_ ? built_->build_micros : 0;
  }

  /// Approximate index footprint (regions + words), for the §6/§7
  /// space-vs-speed tradeoff experiments.
  uint64_t IndexBytes() const;

  /// Serializes the built indexes (plus their spec and maintenance
  /// generation) to a v2 blob with per-document fingerprints. Compacts
  /// first if mutations left tombstoned spans. Fails if indexes are not
  /// built or the spec has a non-serializable token filter.
  Result<std::string> ExportIndexes();

  /// Installs previously exported indexes (v1 or v2 blobs), skipping the
  /// parse/build step. Fails when the blob does not match the corpus —
  /// for v2 blobs the error names the stale documents. The import is
  /// all-or-nothing: the blob is decoded and validated into a staging
  /// area first, and the system's indexes, spec, compiler and maintainer
  /// are swapped only after every step succeeded — a corrupt blob leaves
  /// previously imported (or built) indexes fully intact and queryable.
  Status ImportIndexes(std::string_view blob);

  // --- disk-resident index tier (src/qof/store/) ------------------------

  /// Writes the built indexes as a paged "QOFSTOR1" store file: meta
  /// page, spec and document-table sections, fenced dictionaries, and
  /// block-compressed posting streams. Compacts first if mutations left
  /// tombstoned spans (same rule as ExportIndexes), and forces full
  /// residency when the current indexes are themselves disk-backed.
  /// Fails if indexes are not built, the spec has a non-serializable
  /// token filter, or `page_size` is not a multiple of 256.
  Status SaveStore(const std::string& path,
                   uint32_t page_size = kDefaultPageSize);

  /// Installs indexes backed by a paged store file *without* loading
  /// them: the dictionaries' fence keys are read at open, and region
  /// instances / posting lists page in lazily through the store's buffer
  /// pool as queries touch them. Query results are byte-identical to the
  /// in-memory indexes the store was saved from. Validates the store's
  /// document table against the corpus (the error names stale documents)
  /// and is all-or-nothing, like ImportIndexes. Subsequent mutations
  /// (AddFile etc.) force full residency first, after which the system
  /// behaves exactly as after an ImportIndexes.
  Status OpenStore(const std::string& path, PagedStoreOptions options = {});

  /// Provenance and health of the installed indexes.
  struct IndexStats {
    bool built = false;
    /// "none" | "built" | "blob-v1" | "blob-v2" | "blob-v3" |
    /// "paged-store"
    std::string source = "none";
    /// Blob format version for imports (1/2/3); 0 otherwise.
    int format_version = 0;
    uint64_t generation = 0;
    /// True while index data still pages in from a store file.
    bool disk_resident = false;
    /// Buffer-pool counters; zeros unless a store is open.
    BufferPoolStats pool;
  };
  IndexStats index_stats() const;

 private:
  /// Everything one query execution reads, bundled so the same body
  /// serves the live state (members) and a pinned snapshot. When
  /// `scan_counter` is set, byte accounting for the whole execution is
  /// routed there (thread-locally) instead of the corpus's shared
  /// counter — concurrent snapshot queries over one corpus each keep
  /// exact per-query totals.
  struct ExecSurface {
    const Corpus* corpus = nullptr;
    const BuiltIndexes* built = nullptr;        // null before BuildIndexes
    const QueryCompiler* compiler = nullptr;    // null before BuildIndexes
    CacheEpoch epoch;
    MaintainStats maintain;
    bool maintained = false;  // a maintainer exists (indexes built)
    EvalCache* eval_cache = nullptr;
    ThreadPool* pool = nullptr;                 // null -> serial paths
    std::atomic<uint64_t>* scan_counter = nullptr;

    uint64_t BytesScanned() const {
      return scan_counter != nullptr
                 ? scan_counter->load(std::memory_order_relaxed)
                 : corpus->bytes_read();
    }
  };

  Status CheckView(const std::string& view) const;

  /// (Re)creates the maintainer over the current built_ + corpus_,
  /// resuming from `generation` (non-zero after an import).
  void ResetMaintainer(uint64_t generation);

  /// Clones corpus + indexes before mutating when any live snapshot pins
  /// the current state (detected by shared_ptr use counts — snapshots are
  /// the only other holders). The maintainer is retargeted at the clone;
  /// the pinned originals stay immutable until their last snapshot drops.
  /// Caller must hold state_mu_.
  void CowIfPinnedLocked();

  /// The baseline plan body, shared by ExecuteQuery(kBaseline) and the
  /// auto-mode fallback (which has already parsed and view-checked the
  /// query, so it must not pay for either again). Does not reset the
  /// corpus byte counter: the caller owns it, so bytes accumulate across
  /// fallback rungs and stay monotone for the byte budget.
  Result<QueryResult> RunBaselinePlan(const ExecSurface& surface,
                                      const SelectQuery& query,
                                      const ExecContext* ctx,
                                      bool soft_fail);

  /// Live-state entry: builds the surface from members, resets the corpus
  /// byte counter, delegates to ExecuteWithSurface. `plan_key` (the FQL
  /// text, non-null only when the plan cache is on) lets the compiled
  /// plan be published back to the cache; `cached_plan` skips compilation
  /// when the lookup already produced one.
  Result<QueryResult> ExecuteQueryImpl(
      const SelectQuery& query, ExecutionMode mode,
      const QueryOptions& options, const std::string* plan_key,
      std::shared_ptr<const QueryPlan> cached_plan);

  /// The strategy ladder itself, parameterized by the surface it reads.
  Result<QueryResult> ExecuteWithSurface(
      const ExecSurface& surface, const SelectQuery& query,
      ExecutionMode mode, const QueryOptions& options,
      const std::string* plan_key,
      std::shared_ptr<const QueryPlan> cached_plan);

  /// The epoch eval-cache entries are keyed under right now. Reads
  /// maintainer state directly (no public accessors), so it is safe both
  /// with and without state_mu_ held.
  CacheEpoch CurrentEpochUnlocked() const {
    MaintainStats ms =
        maintainer_ != nullptr ? maintainer_->stats() : MaintainStats{};
    return CacheEpoch{ms.generation, ms.compactions, builds_};
  }

  /// The shared worker pool, lazily (re)built for `threads` workers;
  /// nullptr when `threads` <= 1 so serial paths take no pool detour.
  ThreadPool* EnsurePool(int threads);

  StructuringSchema schema_;
  Rig full_rig_;
  /// Serializes mutations and state publication (corpus_/built_/
  /// compiler_/maintainer_ swaps, snapshot pinning) — see the
  /// concurrency contract above AcquireSnapshot(). Mutable so const
  /// stats accessors can take it.
  mutable std::mutex state_mu_;
  /// Published state: snapshots copy these shared_ptrs; mutations either
  /// mutate in place (nothing pinned) or clone-and-swap (CowIfPinned).
  std::shared_ptr<Corpus> corpus_ = std::make_shared<Corpus>();
  IndexSpec spec_;
  int parallelism_ = 0;  // 0 = hardware concurrency
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<BuiltIndexes> built_;
  std::shared_ptr<const QueryCompiler> compiler_;
  /// Set by OpenStore; the indexes' backing sources co-own it. Cleared
  /// (here) by BuildIndexes/ImportIndexes — open cursors keep the old
  /// store alive through their own shared_ptrs.
  std::shared_ptr<const PagedStore> store_;
  /// index_stats() provenance: how built_ came to be.
  std::string index_source_ = "none";
  int index_format_version_ = 0;
  /// Counts BuildIndexes/ImportIndexes (the `build` epoch component:
  /// generations reset across rebuilds, epochs must not collide).
  uint64_t builds_ = 0;
  MaintainOptions maintain_options_;
  std::unique_ptr<IndexMaintainer> maintainer_;
  CacheOptions cache_options_;
  IrPlanOptions ir_options_;
  std::unique_ptr<PlanCache> plan_cache_;
  std::shared_ptr<EvalCache> eval_cache_;
  std::set<std::string> view_aliases_;
};

}  // namespace qof

#endif  // QOF_ENGINE_SYSTEM_H_
