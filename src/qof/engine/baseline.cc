#include "qof/engine/baseline.h"

#include "qof/engine/condition_eval.h"
#include "qof/parse/parser.h"
#include "qof/parse/value_builder.h"

namespace qof {
namespace {

void CollectViewNodes(const ParseNode& node, SymbolId view,
                      std::vector<const ParseNode*>* out) {
  if (node.symbol == view) out->push_back(&node);
  // Recurse even below a view node: recursive schemas (self-nested
  // sections) make every nesting level a view object of its own.
  for (const auto& child : node.children) {
    CollectViewNodes(*child, view, out);
  }
}

}  // namespace

Result<BaselineResult> RunBaseline(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const SelectQuery& query,
                                   const Rig& full_rig, ObjectStore* store,
                                   const ExecContext* ctx, bool soft_fail) {
  BaselineResult result;
  // Diagnose malformed paths before scanning: lazy AND/OR evaluation
  // could otherwise mask them on data where the sibling predicate
  // already decides, and plan kinds must agree on which queries error.
  QOF_RETURN_IF_ERROR(
      ValidateQueryPaths(query, full_rig, schema.view_name()));
  SchemaParser parser(&schema, ctx);
  for (DocId doc = 0; doc < corpus.num_documents(); ++doc) {
    if (!corpus.is_live(doc)) continue;
    if (ctx != nullptr) {
      Status limit = ctx->Check();
      if (!limit.ok()) {
        if (!soft_fail) return limit;
        // Soft fail: keep the documents fully verified so far.
        result.truncated = true;
        result.interrupted = limit;
        return result;
      }
    }
    TextPos begin = corpus.document_start(doc);
    TextPos end = corpus.document_end(doc);
    // The baseline scans the document text to parse it.
    std::string_view text = corpus.ScanText(begin, end);
    auto tree = parser.ParseDocument(text, begin);
    if (!tree.ok()) {
      // A governance interrupt mid-parse is not a document defect.
      if (IsGovernanceError(tree.status())) {
        if (!soft_fail) return tree.status();
        result.truncated = true;
        result.interrupted = tree.status();
        return result;
      }
      if (tree.status().code() != StatusCode::kParseError) {
        return tree.status();
      }
      return Status::ParseError("document '" + corpus.document_name(doc) +
                                "': " + tree.status().message());
    }
    std::vector<const ParseNode*> views;
    CollectViewNodes(**tree, schema.view(), &views);
    for (const ParseNode* node : views) {
      QOF_ASSIGN_OR_RETURN(ObjectId id,
                           BuildObject(schema, corpus, *node, store));
      ++result.objects_built;
      QOF_ASSIGN_OR_RETURN(const StoredObject* obj, store->Get(id));
      Value root = Value::Ref(id).WithType(obj->class_name);
      bool keep = true;
      if (query.where != nullptr) {
        QOF_ASSIGN_OR_RETURN(
            keep, EvaluateCondition(*store, root, *query.where, full_rig,
                                    schema.view_name()));
      }
      if (!keep) continue;
      result.regions.push_back(node->span);
      result.objects.push_back(id);
      if (query.IsProjection()) {
        QOF_ASSIGN_OR_RETURN(
            std::vector<Value> values,
            EvaluateTarget(*store, root, query.target, full_rig,
                           schema.view_name()));
        result.projected.insert(result.projected.end(), values.begin(),
                                values.end());
      }
    }
  }
  return result;
}

}  // namespace qof
