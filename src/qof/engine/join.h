#ifndef QOF_ENGINE_JOIN_H_
#define QOF_ENGINE_JOIN_H_

#include <vector>

#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// The §5.2 index-assisted join for `path = path` predicates: instead of
/// parsing whole candidate regions, the region index locates both
/// attribute-region sets; only *their* text is loaded (the "reduce the
/// amount of information loaded to the database" step), grouped per
/// candidate, and compared. Returns the candidates whose two groups share
/// a (whitespace-trimmed) string.
Result<std::vector<Region>> RunIndexJoin(const Corpus& corpus,
                                         const RegionSet& candidates,
                                         const RegionSet& lhs_attrs,
                                         const RegionSet& rhs_attrs);

}  // namespace qof

#endif  // QOF_ENGINE_JOIN_H_
