#ifndef QOF_ENGINE_JOIN_H_
#define QOF_ENGINE_JOIN_H_

#include <vector>

#include "qof/region/region_set.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// How RunIndexJoin matches the two attribute groups.
enum class JoinAlgorithm {
  /// Sort-merge above CostModel::kSortMergeJoinMinPairs total attribute
  /// regions, nested-loop below it (the sort is pure overhead on tiny
  /// inputs).
  kAuto,
  /// Per-candidate std::set comparison — the original quadratic-ish
  /// algorithm, kept as the differential oracle and the small-input path.
  kNestedLoop,
  /// Flatten both sides to (candidate, trimmed text) pairs, sort each
  /// side once, two-pointer intersect per candidate. No per-candidate
  /// allocations; the attribute texts stay string_views into the corpus.
  kSortMerge,
};

/// The §5.2 index-assisted join for `path = path` predicates: instead of
/// parsing whole candidate regions, the region index locates both
/// attribute-region sets; only *their* text is loaded (the "reduce the
/// amount of information loaded to the database" step), grouped per
/// candidate, and compared. Returns the candidates whose two groups share
/// a (whitespace-trimmed) string. Both algorithms scan exactly the same
/// attribute texts (right-side groups are skipped when the left group is
/// empty), so byte accounting is algorithm-independent.
Result<std::vector<Region>> RunIndexJoin(
    const Corpus& corpus, const RegionSet& candidates,
    const RegionSet& lhs_attrs, const RegionSet& rhs_attrs,
    JoinAlgorithm algorithm = JoinAlgorithm::kAuto);

}  // namespace qof

#endif  // QOF_ENGINE_JOIN_H_
