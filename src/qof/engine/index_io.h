#ifndef QOF_ENGINE_INDEX_IO_H_
#define QOF_ENGINE_INDEX_IO_H_

#include <string>
#include <string_view>

#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/util/result.h"

namespace qof {

/// Serialization of built indexes (the paper treats index construction as
/// a pre-processing service; persisting its output lets a session reuse
/// it without re-parsing the corpus).
///
/// Format: a little-endian binary blob —
///   magic "QOFIDX1\n", corpus size + FNV-1a fingerprint (so stale
///   indexes are rejected at load), the index spec (mode, names, within),
///   region instances (name, spans) and word postings (word, positions).
/// A WordIndexOptions::token_filter is code and cannot round-trip; specs
/// using one must rebuild instead of loading.
struct SerializedIndexes {
  BuiltIndexes indexes;
  IndexSpec spec;
};

/// Serializes `built` (+ the spec that produced it) for a corpus whose
/// full text is `corpus_text` (only its fingerprint is stored).
Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     std::string_view corpus_text);

/// Deserializes; fails with InvalidArgument on a corrupted/foreign blob
/// and with a clear message when the fingerprint does not match
/// `corpus_text` (the corpus changed since the indexes were built).
Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             std::string_view corpus_text);

/// The corpus fingerprint used by the format (FNV-1a over the text).
uint64_t CorpusFingerprint(std::string_view text);

}  // namespace qof

#endif  // QOF_ENGINE_INDEX_IO_H_
