#ifndef QOF_ENGINE_INDEX_IO_H_
#define QOF_ENGINE_INDEX_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// Serialization of built indexes (the paper treats index construction as
/// a pre-processing service; persisting its output lets a session reuse
/// it without re-parsing the corpus).
///
/// Three little-endian formats share the spec/region/word body encoding:
///
///   v1 "QOFIDX1\n" — corpus size + whole-corpus FNV-1a fingerprint.
///     Legacy; still read, no longer written by the system.
///   v2 "QOFIDX2\n" — maintenance generation + a per-document table of
///     (name, size, fingerprint). Staleness is diagnosed per document
///     ("which files changed"), and the table is what the maintenance
///     journal (src/qof/maintain/) replays against. Read-only.
///   v3 "QOFIDX3\n" — v2 plus a header FNV-1a checksum over the payload
///     (doc table + body), so a blob damaged at rest fails loudly at
///     load instead of deserializing flipped postings. The generation
///     stays outside the checksum: zeroing bytes [8, 16) still makes
///     blobs from different maintenance histories byte-comparable.
///
/// A WordIndexOptions::token_filter is code and cannot round-trip; specs
/// using one must rebuild instead of loading.

/// One document's identity in a v2 blob.
struct DocFingerprint {
  std::string name;
  uint64_t size = 0;
  uint64_t fnv1a = 0;

  friend bool operator==(const DocFingerprint& a, const DocFingerprint& b) {
    return a.name == b.name && a.size == b.size && a.fnv1a == b.fnv1a;
  }
};

struct SerializedIndexes {
  BuiltIndexes indexes;
  IndexSpec spec;
  /// Maintenance generation persisted in the blob (0 for v1 blobs).
  uint64_t generation = 0;
  /// With DeserializeOptions::allow_stale: human-readable entries naming
  /// each stale document ("modified: a.bib", "missing: b.bib",
  /// "new: c.bib", "moved: d.bib"). Empty when the blob matches.
  std::vector<std::string> stale_documents;
};

struct DeserializeOptions {
  /// Load a v2 blob even when its document table does not match the
  /// corpus, reporting the mismatches in `stale_documents` instead of
  /// failing. The loaded offsets describe the blob's layout, not the
  /// corpus's — callers must reconcile (see tools/qof_index).
  bool allow_stale = false;
};

/// Serializes `built` as a v1 blob for a corpus whose full text is
/// `corpus_text` (only its fingerprint is stored). Kept for format
/// regression tests; new code uses the v2 overload.
Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     std::string_view corpus_text);

/// Serializes `built` as a v2 blob with per-document fingerprints from
/// `corpus` and the given maintenance generation. Fails if the corpus has
/// tombstoned spans (offsets would not describe a dense layout): compact
/// first.
Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     const Corpus& corpus,
                                     uint64_t generation = 0);

/// Deserializes a v1 or v2 blob, validating against `corpus_text` (the
/// documents laid out exactly as a Corpus concatenates them). For v2
/// blobs a mismatch names the stale documents; for v1 it can only report
/// that the corpus changed.
Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             std::string_view corpus_text);

/// Deserializes a v1 or v2 blob against a live Corpus (which must not be
/// fragmented). v2 staleness is diagnosed per document by name; with
/// `options.allow_stale` mismatches load anyway and are reported in
/// `stale_documents`.
Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             const Corpus& corpus,
                                             DeserializeOptions options = {});

/// Peeks at a blob's header without decoding the indexes: format version,
/// generation, and (v2) the document table. Used by `qof_index inspect`
/// and by journal-replay state reconstruction.
struct BlobInfo {
  int version = 0;
  uint64_t generation = 0;
  std::vector<DocFingerprint> docs;  // empty for v1
};
Result<BlobInfo> ReadBlobInfo(std::string_view blob);

/// The corpus/document fingerprint used by both formats (FNV-1a).
uint64_t CorpusFingerprint(std::string_view text);

}  // namespace qof

#endif  // QOF_ENGINE_INDEX_IO_H_
