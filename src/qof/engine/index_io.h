#ifndef QOF_ENGINE_INDEX_IO_H_
#define QOF_ENGINE_INDEX_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qof/engine/index_spec.h"
#include "qof/engine/indexer.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// Serialization of built indexes (the paper treats index construction as
/// a pre-processing service; persisting its output lets a session reuse
/// it without re-parsing the corpus).
///
/// Three little-endian formats share the spec/region/word body encoding:
///
///   v1 "QOFIDX1\n" — corpus size + whole-corpus FNV-1a fingerprint.
///     Legacy; still read, no longer written by the system.
///   v2 "QOFIDX2\n" — maintenance generation + a per-document table of
///     (name, size, fingerprint). Staleness is diagnosed per document
///     ("which files changed"), and the table is what the maintenance
///     journal (src/qof/maintain/) replays against. Read-only.
///   v3 "QOFIDX3\n" — v2 plus a header FNV-1a checksum over the payload
///     (doc table + body), so a blob damaged at rest fails loudly at
///     load instead of deserializing flipped postings. The generation
///     stays outside the checksum: zeroing bytes [8, 16) still makes
///     blobs from different maintenance histories byte-comparable.
///
/// A WordIndexOptions::token_filter is code and cannot round-trip; specs
/// using one must rebuild instead of loading.

/// One document's identity in a v2 blob.
struct DocFingerprint {
  std::string name;
  uint64_t size = 0;
  uint64_t fnv1a = 0;

  friend bool operator==(const DocFingerprint& a, const DocFingerprint& b) {
    return a.name == b.name && a.size == b.size && a.fnv1a == b.fnv1a;
  }
};

struct SerializedIndexes {
  BuiltIndexes indexes;
  IndexSpec spec;
  /// Maintenance generation persisted in the blob (0 for v1 blobs).
  uint64_t generation = 0;
  /// With DeserializeOptions::allow_stale: human-readable entries naming
  /// each stale document ("modified: a.bib", "missing: b.bib",
  /// "new: c.bib", "moved: d.bib"). Empty when the blob matches.
  std::vector<std::string> stale_documents;
};

struct DeserializeOptions {
  /// Load a v2 blob even when its document table does not match the
  /// corpus, reporting the mismatches in `stale_documents` instead of
  /// failing. The loaded offsets describe the blob's layout, not the
  /// corpus's — callers must reconcile (see tools/qof_index).
  bool allow_stale = false;
};

/// Serializes `built` as a v1 blob for a corpus whose full text is
/// `corpus_text` (only its fingerprint is stored). Kept for format
/// regression tests; new code uses the v2 overload.
Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     std::string_view corpus_text);

/// Serializes `built` as a v2 blob with per-document fingerprints from
/// `corpus` and the given maintenance generation. Fails if the corpus has
/// tombstoned spans (offsets would not describe a dense layout): compact
/// first.
Result<std::string> SerializeIndexes(const BuiltIndexes& built,
                                     const IndexSpec& spec,
                                     const Corpus& corpus,
                                     uint64_t generation = 0);

/// Deserializes a v1 or v2 blob, validating against `corpus_text` (the
/// documents laid out exactly as a Corpus concatenates them). For v2
/// blobs a mismatch names the stale documents; for v1 it can only report
/// that the corpus changed.
Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             std::string_view corpus_text);

/// Deserializes a v1 or v2 blob against a live Corpus (which must not be
/// fragmented). v2 staleness is diagnosed per document by name; with
/// `options.allow_stale` mismatches load anyway and are reported in
/// `stale_documents`.
Result<SerializedIndexes> DeserializeIndexes(std::string_view blob,
                                             const Corpus& corpus,
                                             DeserializeOptions options = {});

/// Peeks at a blob's header without decoding the indexes: format version,
/// generation, and (v2) the document table. Used by `qof_index inspect`
/// and by journal-replay state reconstruction.
struct BlobInfo {
  int version = 0;
  uint64_t generation = 0;
  std::vector<DocFingerprint> docs;  // empty for v1
};
Result<BlobInfo> ReadBlobInfo(std::string_view blob);

/// The corpus/document fingerprint used by both formats (FNV-1a).
uint64_t CorpusFingerprint(std::string_view text);

// --- section codecs shared with the paged store (src/qof/store/) -----------
//
// The disk-resident store persists the spec and the document table as
// opaque, checksummed sections; these are their encodings — identical to
// the corresponding chunks of a v2/v3 blob, so a converted store and a
// blob describe the same indexes byte-for-byte.

/// Appends the spec encoding (mode, fold_case, names, within pairs).
void EncodeIndexSpec(const IndexSpec& spec, std::string* out);

/// Decodes a standalone spec section (must consume every byte).
Result<IndexSpec> DecodeIndexSpec(std::string_view bytes);

/// The v2 document table (u32 count, then name/size/fingerprint rows).
/// Fails on a fragmented corpus: compact first.
Result<std::string> EncodeDocTable(const Corpus& corpus);

/// Decodes a standalone document-table section.
Result<std::vector<DocFingerprint>> DecodeDocTableBytes(
    std::string_view bytes);

/// Names each document that differs between a persisted table and the
/// live corpus ("modified: a", "missing: b", "new: c", "moved: d");
/// empty when they match.
std::vector<std::string> DiagnoseStaleDocs(
    const std::vector<DocFingerprint>& docs, const Corpus& corpus);

/// Joins a staleness report into one human-readable line (first few
/// entries plus a total).
std::string FormatStaleDocs(const std::vector<std::string>& stale);

/// A v2/v3 blob decoded without a corpus to validate against — the
/// store-conversion path (`qof_store convert`). v1 blobs have no
/// document table and are rejected.
struct UncheckedIndexes {
  SerializedIndexes indexes;
  std::vector<DocFingerprint> docs;
  int version = 0;
};
Result<UncheckedIndexes> DeserializeIndexesUnchecked(std::string_view blob);

}  // namespace qof

#endif  // QOF_ENGINE_INDEX_IO_H_
