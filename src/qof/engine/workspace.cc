#include "qof/engine/workspace.h"

namespace qof {

Status Workspace::AddSchema(StructuringSchema schema) {
  for (const Entry& entry : systems_) {
    if (entry.name == schema.name()) {
      return Status::AlreadyExists("schema already registered: " +
                                   schema.name());
    }
    if (entry.system->HandlesView(schema.view_name())) {
      return Status::AlreadyExists(
          "view name '" + schema.view_name() +
          "' collides with schema '" + entry.name + "'");
    }
  }
  Entry entry;
  entry.name = schema.name();
  entry.system = std::make_unique<FileQuerySystem>(std::move(schema));
  systems_.push_back(std::move(entry));
  return Status::OK();
}

Status Workspace::AddFile(std::string_view schema_name,
                          std::string file_name, std::string_view text) {
  QOF_ASSIGN_OR_RETURN(FileQuerySystem * system, System(schema_name));
  return system->AddFile(std::move(file_name), text);
}

Status Workspace::BuildIndexes(std::string_view schema_name,
                               const IndexSpec& spec) {
  QOF_ASSIGN_OR_RETURN(FileQuerySystem * system, System(schema_name));
  return system->BuildIndexes(spec);
}

Status Workspace::BuildAllIndexes() {
  for (Entry& entry : systems_) {
    QOF_RETURN_IF_ERROR(entry.system->BuildIndexes());
  }
  return Status::OK();
}

Result<FileQuerySystem*> Workspace::System(std::string_view schema_name) {
  for (Entry& entry : systems_) {
    if (entry.name == schema_name) return entry.system.get();
  }
  return Status::NotFound("no schema named '" + std::string(schema_name) +
                          "' in workspace");
}

Result<FileQuerySystem*> Workspace::Route(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(SelectQuery query, ParseFql(fql));
  for (const Entry& entry : systems_) {
    if (entry.system->HandlesView(query.view)) {
      return entry.system.get();
    }
  }
  return Status::NotFound("no schema in the workspace answers view '" +
                          query.view + "'");
}

Result<QueryResult> Workspace::Execute(std::string_view fql,
                                       ExecutionMode mode) {
  QOF_ASSIGN_OR_RETURN(FileQuerySystem * system, Route(fql));
  return system->Execute(fql, mode);
}

Result<std::string> Workspace::Explain(std::string_view fql) const {
  QOF_ASSIGN_OR_RETURN(FileQuerySystem * system, Route(fql));
  return system->Explain(fql);
}

std::vector<std::string> Workspace::SchemaNames() const {
  std::vector<std::string> names;
  names.reserve(systems_.size());
  for (const Entry& entry : systems_) names.push_back(entry.name);
  return names;
}

}  // namespace qof
