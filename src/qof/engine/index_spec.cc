#include "qof/engine/index_spec.h"

namespace qof {

ExtractionFilter IndexSpec::ToFilter() const {
  ExtractionFilter filter;
  if (mode == Mode::kPartial) filter.include = names;
  filter.within = within;
  return filter;
}

std::set<std::string> IndexSpec::IndexedNames(
    const StructuringSchema& schema) const {
  if (mode == Mode::kPartial) return names;
  std::set<std::string> all;
  for (const std::string& name : schema.IndexableNames()) {
    all.insert(name);
  }
  return all;
}

std::string IndexSpec::ToString() const {
  if (mode == Mode::kFull) return "full";
  std::string out = "partial{";
  bool first = true;
  for (const std::string& name : names) {
    if (!first) out += ", ";
    out += name;
    auto it = within.find(name);
    if (it != within.end()) out += " within " + it->second;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace qof
