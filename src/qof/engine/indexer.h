#ifndef QOF_ENGINE_INDEXER_H_
#define QOF_ENGINE_INDEXER_H_

#include <cstdint>

#include "qof/engine/index_spec.h"
#include "qof/exec/exec_context.h"
#include "qof/region/region_index.h"
#include "qof/text/corpus.h"
#include "qof/text/word_index.h"
#include "qof/util/result.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// The pre-processing the paper delegates to the text-indexing system
/// (§1: "we assume that this is a service given by the underlying text
/// indexing system"): parse every document once, record region spans per
/// the spec, and build the word index.
struct BuiltIndexes {
  RegionIndex regions;
  WordIndex words;
  uint64_t build_micros = 0;
  uint64_t documents = 0;
};

/// When `pool` is non-null with more than one worker, documents are
/// parsed and tokenized in parallel; the merge is deterministic, so the
/// built indexes are identical to a serial build's. `ctx` (optional,
/// borrowed) makes the build interruptible: a tripped deadline or
/// cancellation aborts the whole build with a typed error — no partial
/// BuiltIndexes ever escapes.
Result<BuiltIndexes> BuildIndexes(const StructuringSchema& schema,
                                  const Corpus& corpus,
                                  const IndexSpec& spec,
                                  ThreadPool* pool = nullptr,
                                  const ExecContext* ctx = nullptr);

}  // namespace qof

#endif  // QOF_ENGINE_INDEXER_H_
