#ifndef QOF_ENGINE_CONDITION_EVAL_H_
#define QOF_ENGINE_CONDITION_EVAL_H_

#include <string>
#include <vector>

#include "qof/db/evaluator.h"
#include "qof/db/object_store.h"
#include "qof/query/ast.h"
#include "qof/rig/rig.h"
#include "qof/util/result.h"

namespace qof {

/// Database-side evaluation of WHERE conditions over a materialized view
/// object — the paper's "apply the query on the resulting database
/// objects" (§6.2). Used by the baseline plan (on every object) and by
/// two-phase plans (on candidates only). `full_rig` expands ?X wildcards
/// into concrete attribute sequences.
Result<bool> EvaluateCondition(const ObjectStore& store, const Value& root,
                               const Condition& cond, const Rig& full_rig,
                               const std::string& view_region);

/// Statically validates every path in the query (WHERE leaves and the
/// projection target) against the schema, exactly as the compiler's path
/// mapper would. The baseline plan runs this before scanning so that a
/// malformed path is diagnosed even when lazy AND/OR evaluation would
/// never reach it on the given data — all plan kinds must agree on which
/// queries are errors, independent of corpus content.
Status ValidateQueryPaths(const SelectQuery& query, const Rig& full_rig,
                          const std::string& view_region);

/// Values reached by the SELECT target path (projection); an empty path
/// yields {root}.
Result<std::vector<Value>> EvaluateTarget(const ObjectStore& store,
                                          const Value& root,
                                          const PathExpr& target,
                                          const Rig& full_rig,
                                          const std::string& view_region);

/// Renders a value the way its file text reads: atoms verbatim, composite
/// values as their atoms joined by single spaces ("Y. F. Chang" for a
/// Name tuple). This is the text form FQL equality compares against.
std::string FlattenText(const ObjectStore& store, const Value& value);

/// True when the value's flattened text equals `literal` (both trimmed).
bool ValueMatchesLiteral(const ObjectStore& store, const Value& value,
                         const std::string& literal);

/// True when any word token of the value's flattened text equals `word`.
bool ValueContainsWord(const ObjectStore& store, const Value& value,
                       const std::string& word);

}  // namespace qof

#endif  // QOF_ENGINE_CONDITION_EVAL_H_
