#include "qof/engine/two_phase.h"

#include "qof/engine/condition_eval.h"
#include "qof/parse/parser.h"
#include "qof/parse/value_builder.h"

namespace qof {

Result<TwoPhaseResult> RunTwoPhase(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const QueryPlan& plan,
                                   const RegionSet& candidates,
                                   const Rig& full_rig,
                                   ObjectStore* store) {
  TwoPhaseResult result;
  SchemaParser parser(&schema);
  const SelectQuery& query = plan.query;
  for (const Region& candidate : candidates) {
    // Parsing a candidate reads its text.
    std::string_view text =
        corpus.ScanText(candidate.start, candidate.end);
    auto tree = parser.Parse(text, candidate.start, schema.view());
    if (!tree.ok()) {
      return Status::ParseError("candidate region " + candidate.ToString() +
                                ": " + tree.status().message());
    }
    ++result.candidates_parsed;
    QOF_ASSIGN_OR_RETURN(ObjectId id,
                         BuildObject(schema, corpus, **tree, store));
    QOF_ASSIGN_OR_RETURN(const StoredObject* obj, store->Get(id));
    Value root = Value::Ref(id).WithType(obj->class_name);
    bool keep = true;
    if (query.where != nullptr) {
      QOF_ASSIGN_OR_RETURN(
          keep, EvaluateCondition(*store, root, *query.where, full_rig,
                                  schema.view_name()));
    }
    if (!keep) continue;
    result.regions.push_back(candidate);
    result.objects.push_back(id);
    if (query.IsProjection()) {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          EvaluateTarget(*store, root, query.target, full_rig,
                         schema.view_name()));
      result.projected.insert(result.projected.end(), values.begin(),
                              values.end());
    }
  }
  return result;
}

}  // namespace qof
