#include "qof/engine/two_phase.h"

#include "qof/engine/condition_eval.h"
#include "qof/exec/fault_injector.h"
#include "qof/parse/parser.h"
#include "qof/parse/value_builder.h"

namespace qof {
namespace {

/// Phase-2 outcome for one candidate, filled by whichever worker drew it.
/// Slots are indexed by candidate position, so assembling them in order
/// preserves the serial output order exactly.
struct CandidateOutcome {
  Status status = Status::OK();
  /// False only when an early stop left the slot unclaimed — such a slot
  /// must not be read as "candidate filtered out".
  bool done = false;
  bool keep = false;
  std::vector<Value> projected;
};

/// Decorates a candidate parse failure; governance interrupts and
/// injected faults keep their code untouched.
Status CandidateParseFailure(const Region& candidate, const Status& status) {
  if (status.code() != StatusCode::kParseError) return status;
  return Status::ParseError("candidate region " + candidate.ToString() +
                            ": " + status.message());
}

void ProcessCandidate(const StructuringSchema& schema, const Corpus& corpus,
                      const SelectQuery& query, const Rig& full_rig,
                      const SchemaParser& parser, const Region& candidate,
                      const ExecContext* ctx, ObjectStore* store,
                      CandidateOutcome* out) {
  out->done = true;
  if (ctx != nullptr) {
    out->status = ctx->Check();
    if (!out->status.ok()) return;
  }
  out->status = MaybeInjectFault(fault_site::kTwoPhaseCandidate);
  if (!out->status.ok()) return;
  // Parsing a candidate reads its text.
  std::string_view text = corpus.ScanText(candidate.start, candidate.end);
  auto tree = parser.Parse(text, candidate.start, schema.view());
  if (!tree.ok()) {
    out->status = CandidateParseFailure(candidate, tree.status());
    return;
  }
  auto id = BuildObject(schema, corpus, **tree, store);
  if (!id.ok()) {
    out->status = id.status();
    return;
  }
  auto obj = store->Get(*id);
  if (!obj.ok()) {
    out->status = obj.status();
    return;
  }
  Value root = Value::Ref(*id).WithType((*obj)->class_name);
  bool keep = true;
  if (query.where != nullptr) {
    auto kept = EvaluateCondition(*store, root, *query.where, full_rig,
                                  schema.view_name());
    if (!kept.ok()) {
      out->status = kept.status();
      return;
    }
    keep = *kept;
  }
  if (!keep) return;
  out->keep = true;
  if (query.IsProjection()) {
    auto values = EvaluateTarget(*store, root, query.target, full_rig,
                                 schema.view_name());
    if (!values.ok()) {
      out->status = values.status();
      return;
    }
    out->projected = std::move(*values);
  }
}

}  // namespace

Result<TwoPhaseResult> RunTwoPhase(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const QueryPlan& plan,
                                   const RegionSet& candidates,
                                   const Rig& full_rig, ObjectStore* store,
                                   ThreadPool* pool, const ExecContext* ctx,
                                   bool soft_fail) {
  TwoPhaseResult result;
  SchemaParser parser(&schema, ctx);
  const SelectQuery& query = plan.query;

  if (pool != nullptr && pool->size() > 1 && candidates.size() > 1) {
    // Parallel phase 2: each worker parses and filters candidates into
    // its own scratch store; per-candidate outcomes are assembled in
    // candidate order below, so results match the serial path.
    std::vector<ObjectStore> scratch(static_cast<size_t>(pool->size()));
    std::vector<CandidateOutcome> outcomes(candidates.size());
    // Carry the query thread's accounting/governance thread-locals onto
    // every worker: snapshot queries route scans into a per-query
    // counter, and the disk tier picks the ExecContext up thread-locally.
    std::atomic<uint64_t>* scan_counter = Corpus::CurrentThreadScanCounter();
    pool->ParallelFor(
        candidates.size(),
        [&](int worker, size_t i) {
          ExecContext::ThreadScope thread_scope(ctx);
          Corpus::ScanCounterScope scan_scope(scan_counter);
          ProcessCandidate(schema, corpus, query, full_rig, parser,
                           candidates[i], ctx, &scratch[worker],
                           &outcomes[i]);
        },
        ctx != nullptr ? ctx->stop_flag() : nullptr);
    size_t complete = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      // First failing candidate in order — the same error the serial
      // loop reports. A slot left unclaimed by an early stop re-derives
      // the governance error that tripped the stop flag.
      Status status = outcomes[i].status;
      if (status.ok() && !outcomes[i].done) {
        status = ctx != nullptr ? ctx->Check() : Status::OK();
        if (status.ok()) {
          status =
              Status::Internal("candidate skipped without a recorded cause");
        }
      }
      if (status.ok()) continue;
      if (soft_fail && IsGovernanceError(status)) {
        complete = i;
        result.truncated = true;
        result.interrupted = status;
        break;
      }
      return status;
    }
    result.candidates_parsed = complete;
    for (size_t i = 0; i < complete; ++i) {
      CandidateOutcome& outcome = outcomes[i];
      if (!outcome.keep) continue;
      result.regions.push_back(candidates[i]);
      result.projected.insert(
          result.projected.end(),
          std::make_move_iterator(outcome.projected.begin()),
          std::make_move_iterator(outcome.projected.end()));
    }
    return result;
  }

  for (const Region& candidate : candidates) {
    if (ctx != nullptr) {
      Status limit = ctx->Check();
      if (!limit.ok()) {
        if (!soft_fail) return limit;
        result.truncated = true;
        result.interrupted = limit;
        return result;
      }
    }
    QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kTwoPhaseCandidate));
    // Parsing a candidate reads its text.
    std::string_view text =
        corpus.ScanText(candidate.start, candidate.end);
    auto tree = parser.Parse(text, candidate.start, schema.view());
    if (!tree.ok()) {
      if (IsGovernanceError(tree.status())) {
        if (!soft_fail) return tree.status();
        result.truncated = true;
        result.interrupted = tree.status();
        return result;
      }
      return CandidateParseFailure(candidate, tree.status());
    }
    ++result.candidates_parsed;
    QOF_ASSIGN_OR_RETURN(ObjectId id,
                         BuildObject(schema, corpus, **tree, store));
    QOF_ASSIGN_OR_RETURN(const StoredObject* obj, store->Get(id));
    Value root = Value::Ref(id).WithType(obj->class_name);
    bool keep = true;
    if (query.where != nullptr) {
      QOF_ASSIGN_OR_RETURN(
          keep, EvaluateCondition(*store, root, *query.where, full_rig,
                                  schema.view_name()));
    }
    if (!keep) continue;
    result.regions.push_back(candidate);
    result.objects.push_back(id);
    if (query.IsProjection()) {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          EvaluateTarget(*store, root, query.target, full_rig,
                         schema.view_name()));
      result.projected.insert(result.projected.end(), values.begin(),
                              values.end());
    }
  }
  return result;
}

}  // namespace qof
