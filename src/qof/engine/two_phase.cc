#include "qof/engine/two_phase.h"

#include "qof/engine/condition_eval.h"
#include "qof/parse/parser.h"
#include "qof/parse/value_builder.h"

namespace qof {
namespace {

/// Phase-2 outcome for one candidate, filled by whichever worker drew it.
/// Slots are indexed by candidate position, so assembling them in order
/// preserves the serial output order exactly.
struct CandidateOutcome {
  Status status = Status::OK();
  bool keep = false;
  std::vector<Value> projected;
};

void ProcessCandidate(const StructuringSchema& schema, const Corpus& corpus,
                      const SelectQuery& query, const Rig& full_rig,
                      const SchemaParser& parser, const Region& candidate,
                      ObjectStore* store, CandidateOutcome* out) {
  // Parsing a candidate reads its text.
  std::string_view text = corpus.ScanText(candidate.start, candidate.end);
  auto tree = parser.Parse(text, candidate.start, schema.view());
  if (!tree.ok()) {
    out->status = Status::ParseError("candidate region " +
                                     candidate.ToString() + ": " +
                                     tree.status().message());
    return;
  }
  auto id = BuildObject(schema, corpus, **tree, store);
  if (!id.ok()) {
    out->status = id.status();
    return;
  }
  auto obj = store->Get(*id);
  if (!obj.ok()) {
    out->status = obj.status();
    return;
  }
  Value root = Value::Ref(*id).WithType((*obj)->class_name);
  bool keep = true;
  if (query.where != nullptr) {
    auto kept = EvaluateCondition(*store, root, *query.where, full_rig,
                                  schema.view_name());
    if (!kept.ok()) {
      out->status = kept.status();
      return;
    }
    keep = *kept;
  }
  if (!keep) return;
  out->keep = true;
  if (query.IsProjection()) {
    auto values = EvaluateTarget(*store, root, query.target, full_rig,
                                 schema.view_name());
    if (!values.ok()) {
      out->status = values.status();
      return;
    }
    out->projected = std::move(*values);
  }
}

}  // namespace

Result<TwoPhaseResult> RunTwoPhase(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const QueryPlan& plan,
                                   const RegionSet& candidates,
                                   const Rig& full_rig, ObjectStore* store,
                                   ThreadPool* pool) {
  TwoPhaseResult result;
  SchemaParser parser(&schema);
  const SelectQuery& query = plan.query;

  if (pool != nullptr && pool->size() > 1 && candidates.size() > 1) {
    // Parallel phase 2: each worker parses and filters candidates into
    // its own scratch store; per-candidate outcomes are assembled in
    // candidate order below, so results match the serial path.
    std::vector<ObjectStore> scratch(static_cast<size_t>(pool->size()));
    std::vector<CandidateOutcome> outcomes(candidates.size());
    pool->ParallelFor(candidates.size(), [&](int worker, size_t i) {
      ProcessCandidate(schema, corpus, query, full_rig, parser,
                       candidates[i], &scratch[worker], &outcomes[i]);
    });
    for (size_t i = 0; i < candidates.size(); ++i) {
      // First failing candidate in order — the same error the serial
      // loop reports.
      if (!outcomes[i].status.ok()) return outcomes[i].status;
    }
    result.candidates_parsed = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      CandidateOutcome& outcome = outcomes[i];
      if (!outcome.keep) continue;
      result.regions.push_back(candidates[i]);
      result.projected.insert(
          result.projected.end(),
          std::make_move_iterator(outcome.projected.begin()),
          std::make_move_iterator(outcome.projected.end()));
    }
    return result;
  }

  for (const Region& candidate : candidates) {
    // Parsing a candidate reads its text.
    std::string_view text =
        corpus.ScanText(candidate.start, candidate.end);
    auto tree = parser.Parse(text, candidate.start, schema.view());
    if (!tree.ok()) {
      return Status::ParseError("candidate region " + candidate.ToString() +
                                ": " + tree.status().message());
    }
    ++result.candidates_parsed;
    QOF_ASSIGN_OR_RETURN(ObjectId id,
                         BuildObject(schema, corpus, **tree, store));
    QOF_ASSIGN_OR_RETURN(const StoredObject* obj, store->Get(id));
    Value root = Value::Ref(id).WithType(obj->class_name);
    bool keep = true;
    if (query.where != nullptr) {
      QOF_ASSIGN_OR_RETURN(
          keep, EvaluateCondition(*store, root, *query.where, full_rig,
                                  schema.view_name()));
    }
    if (!keep) continue;
    result.regions.push_back(candidate);
    result.objects.push_back(id);
    if (query.IsProjection()) {
      QOF_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          EvaluateTarget(*store, root, query.target, full_rig,
                         schema.view_name()));
      result.projected.insert(result.projected.end(), values.begin(),
                              values.end());
    }
  }
  return result;
}

}  // namespace qof
