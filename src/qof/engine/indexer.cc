#include "qof/engine/indexer.h"

#include <chrono>

#include "qof/parse/parser.h"

namespace qof {

Result<BuiltIndexes> BuildIndexes(const StructuringSchema& schema,
                                  const Corpus& corpus,
                                  const IndexSpec& spec) {
  auto start = std::chrono::steady_clock::now();
  BuiltIndexes built;
  SchemaParser parser(&schema);
  ExtractionFilter filter = spec.ToFilter();
  for (DocId doc = 0; doc < corpus.num_documents(); ++doc) {
    TextPos begin = corpus.document_start(doc);
    TextPos end = corpus.document_end(doc);
    auto tree = parser.ParseDocument(corpus.RawText(begin, end), begin);
    if (!tree.ok()) {
      return Status::ParseError("document '" + corpus.document_name(doc) +
                                "': " + tree.status().message());
    }
    ExtractRegions(schema, **tree, filter, &built.regions);
    ++built.documents;
  }
  built.words = WordIndex::Build(corpus, spec.word_options);
  built.build_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return built;
}

}  // namespace qof
