#include "qof/engine/indexer.h"

#include <chrono>
#include <map>
#include <vector>

#include "qof/exec/fault_injector.h"
#include "qof/parse/parser.h"
#include "qof/parse/region_extractor.h"
#include "qof/util/thread_pool.h"

namespace qof {
namespace {

Status ParseFailure(const Corpus& corpus, DocId doc, const Status& status) {
  // Governance interrupts and injected faults keep their code; only real
  // parse failures get the per-document decoration.
  if (status.code() != StatusCode::kParseError) return status;
  return Status::ParseError("document '" + corpus.document_name(doc) +
                            "': " + status.message());
}

/// Parses every document on the pool and merges the per-document region
/// contributions in document order, producing the same canonical
/// RegionSets as the serial per-document Union path (both reduce to
/// sort + dedup over the identical span multiset).
Status ParallelRegionPass(const StructuringSchema& schema,
                          const Corpus& corpus,
                          const ExtractionFilter& filter, ThreadPool* pool,
                          const ExecContext* ctx, BuiltIndexes* built) {
  const size_t num_docs = corpus.num_documents();
  SchemaParser parser(&schema, ctx);
  std::vector<std::map<std::string, std::vector<Region>>> collected(
      num_docs);
  std::vector<Status> statuses(num_docs, Status::OK());
  pool->ParallelFor(
      num_docs,
      [&](int, size_t d) {
        DocId doc = static_cast<DocId>(d);
        if (!corpus.is_live(doc)) return;  // tombstoned — nothing to index
        Status fault = MaybeInjectFault(fault_site::kIndexerBuild);
        if (!fault.ok()) {
          statuses[d] = fault;
          return;
        }
        TextPos begin = corpus.document_start(doc);
        TextPos end = corpus.document_end(doc);
        auto tree = parser.ParseDocument(corpus.RawText(begin, end), begin);
        if (!tree.ok()) {
          statuses[d] = tree.status();
          return;
        }
        CollectRegions(schema, **tree, filter, &collected[d]);
      },
      ctx != nullptr ? ctx->stop_flag() : nullptr);
  // Scan in document order so the reported error is the same one the
  // serial build would have hit first.
  for (size_t d = 0; d < num_docs; ++d) {
    if (!statuses[d].ok()) {
      return ParseFailure(corpus, static_cast<DocId>(d), statuses[d]);
    }
  }
  // An early stop may have left documents unclaimed with no per-document
  // status recorded; re-derive the governance error rather than letting
  // a partially built index escape.
  if (ctx != nullptr && ctx->stopped()) {
    QOF_RETURN_IF_ERROR(ctx->Check());
    return Status::Internal("index build stopped without a recorded cause");
  }
  std::map<std::string, std::vector<Region>> merged;
  for (auto& doc : collected) {
    for (auto& [name, regions] : doc) {
      std::vector<Region>& all = merged[name];
      if (all.empty()) {
        all = std::move(regions);
      } else {
        all.insert(all.end(), regions.begin(), regions.end());
      }
    }
  }
  RegisterIndexedNames(schema, filter, &merged);
  for (auto& [name, regions] : merged) {
    built->regions.Add(name, RegionSet::FromUnsorted(std::move(regions)));
  }
  built->documents = corpus.num_live_documents();
  return Status::OK();
}

}  // namespace

Result<BuiltIndexes> BuildIndexes(const StructuringSchema& schema,
                                  const Corpus& corpus,
                                  const IndexSpec& spec, ThreadPool* pool,
                                  const ExecContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  BuiltIndexes built;
  ExtractionFilter filter = spec.ToFilter();
  if (pool != nullptr && pool->size() > 1 && corpus.num_documents() > 1) {
    QOF_RETURN_IF_ERROR(
        ParallelRegionPass(schema, corpus, filter, pool, ctx, &built));
  } else {
    SchemaParser parser(&schema, ctx);
    for (DocId doc = 0; doc < corpus.num_documents(); ++doc) {
      if (!corpus.is_live(doc)) continue;
      if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
      QOF_RETURN_IF_ERROR(MaybeInjectFault(fault_site::kIndexerBuild));
      TextPos begin = corpus.document_start(doc);
      TextPos end = corpus.document_end(doc);
      auto tree = parser.ParseDocument(corpus.RawText(begin, end), begin);
      if (!tree.ok()) {
        return ParseFailure(corpus, doc, tree.status());
      }
      ExtractRegions(schema, **tree, filter, &built.regions);
      ++built.documents;
    }
    // A zero-document corpus registers every indexed name anyway, so
    // lookups distinguish "indexed but absent" from "not indexed" — the
    // parallel path gets this from RegisterIndexedNames.
    std::map<std::string, std::vector<Region>> registered;
    RegisterIndexedNames(schema, filter, &registered);
    for (auto& [name, regions] : registered) {
      if (!built.regions.Has(name)) built.regions.Add(name, RegionSet());
    }
  }
  // Checkpoint between the two passes; the word pass itself is a
  // non-interruptible tail (it is the cheaper of the two).
  if (ctx != nullptr) QOF_RETURN_IF_ERROR(ctx->Check());
  built.words = WordIndex::Build(corpus, spec.word_options, pool);
  built.build_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return built;
}

}  // namespace qof
