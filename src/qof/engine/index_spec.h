#ifndef QOF_ENGINE_INDEX_SPEC_H_
#define QOF_ENGINE_INDEX_SPEC_H_

#include <map>
#include <set>
#include <string>

#include "qof/parse/region_extractor.h"
#include "qof/schema/structuring_schema.h"
#include "qof/text/word_index.h"

namespace qof {

/// What to index (paper §5 full indexing, §6 partial indexing, §7
/// selective indexing). The word index is always built — the paper
/// assumes word indexing throughout and trades off *region* indices.
struct IndexSpec {
  enum class Mode {
    kFull,     // every non-terminal except the root
    kPartial,  // exactly `names`
  };

  Mode mode = Mode::kFull;
  std::set<std::string> names;

  /// Contextual restrictions (§7): index name N only inside ancestor A.
  std::map<std::string, std::string> within;

  WordIndexOptions word_options;

  /// Worker threads for index construction: documents are parsed and
  /// tokenized in parallel and the per-document contributions merged in
  /// document order, so the built indexes are identical at any setting.
  /// 1 = serial (the exact pre-parallelism code path); 0 = inherit the
  /// system's parallelism (hardware concurrency by default). A build-time
  /// knob only — it is not serialized with the indexes.
  int parallelism = 0;

  static IndexSpec Full() { return {}; }
  static IndexSpec Partial(std::set<std::string> names) {
    IndexSpec spec;
    spec.mode = Mode::kPartial;
    spec.names = std::move(names);
    return spec;
  }

  /// The region-extraction filter this spec induces.
  ExtractionFilter ToFilter() const;

  /// The set of indexed region names under this spec.
  std::set<std::string> IndexedNames(const StructuringSchema& schema) const;

  std::string ToString() const;
};

}  // namespace qof

#endif  // QOF_ENGINE_INDEX_SPEC_H_
