#ifndef QOF_ENGINE_SNAPSHOT_H_
#define QOF_ENGINE_SNAPSHOT_H_

#include <memory>

#include "qof/cache/eval_cache.h"
#include "qof/compiler/query_compiler.h"
#include "qof/engine/indexer.h"
#include "qof/maintain/maintainer.h"
#include "qof/text/corpus.h"

namespace qof {

/// A generation-stamped immutable view of one index state, pinned by a
/// reader (see FileQuerySystem::AcquireSnapshot). While any snapshot
/// holds these shared_ptrs, a mutation arriving at the system clones
/// corpus + indexes and mutates the clone (copy-on-write), so snapshot
/// queries never block mutations and never observe them. Reclamation is
/// by refcount: when the last snapshot of a superseded state drops, the
/// old corpus and indexes free — no epochs to advance by hand, no reader
/// ever holding a dangling view.
///
/// The snapshot pins its CacheEpoch in the eval cache too (entries cached
/// under it survive later mutations, serving repeat snapshot queries
/// warm) and records the maintenance counters at pin time for stats
/// reporting. The owning FileQuerySystem must outlive every snapshot it
/// handed out — the compiler borrows the system's rig.
struct IndexSnapshot {
  std::shared_ptr<const Corpus> corpus;
  std::shared_ptr<const BuiltIndexes> built;
  std::shared_ptr<const QueryCompiler> compiler;
  /// Epoch at pin time — globally unique (build / generation /
  /// compactions), keys this snapshot's eval-cache entries.
  CacheEpoch epoch;
  /// Maintenance counters at pin time (generation notes in QueryStats).
  MaintainStats maintain;
};

/// How snapshots travel: the deleter of the outer shared_ptr unpins the
/// snapshot's epoch from the eval cache, so cache retention tracks
/// snapshot lifetime exactly.
using SnapshotRef = std::shared_ptr<const IndexSnapshot>;

}  // namespace qof

#endif  // QOF_ENGINE_SNAPSHOT_H_
