#ifndef QOF_ENGINE_WORKSPACE_H_
#define QOF_ENGINE_WORKSPACE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qof/engine/system.h"

namespace qof {

/// The paper's §1 promise is a *uniform* framework over heterogeneous
/// files. A Workspace holds one FileQuerySystem per structuring schema
/// (BibTeX next to mailboxes next to logs) and routes each FQL query to
/// the system whose view it names:
///
///   Workspace ws;
///   ws.AddSchema(*BibtexSchema());
///   ws.AddSchema(*MailSchema());
///   ws.AddFile("BibTeX", "refs.bib", bibtex_text);
///   ws.AddFile("Mail", "inbox.mail", mailbox_text);
///   ws.BuildAllIndexes();
///   ws.Execute("SELECT r FROM References r WHERE ...");   // → BibTeX
///   ws.Execute("SELECT m FROM Messages m WHERE ...");     // → Mail
///
/// Cross-schema joins are out of scope (as in the paper, which performs
/// joins inside one database view at a time).
class Workspace {
 public:
  Workspace() = default;

  // Systems own their corpora; a workspace is not copyable.
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Registers a schema (by its schema name). Rejects duplicates and
  /// view-name collisions with already-registered schemas.
  Status AddSchema(StructuringSchema schema);

  /// Adds a file to the named schema's corpus.
  Status AddFile(std::string_view schema_name, std::string file_name,
                 std::string_view text);

  /// Builds indexes for one schema.
  Status BuildIndexes(std::string_view schema_name,
                      const IndexSpec& spec = IndexSpec::Full());

  /// Builds full indexes for every schema.
  Status BuildAllIndexes();

  /// Routes the query to the system handling its FROM view.
  Result<QueryResult> Execute(std::string_view fql,
                              ExecutionMode mode = ExecutionMode::kAuto);

  /// Routes an EXPLAIN the same way.
  Result<std::string> Explain(std::string_view fql) const;

  /// Access to one schema's system (NotFound if missing).
  Result<FileQuerySystem*> System(std::string_view schema_name);

  size_t num_schemas() const { return systems_.size(); }
  std::vector<std::string> SchemaNames() const;

 private:
  Result<FileQuerySystem*> Route(std::string_view fql) const;

  struct Entry {
    std::string name;
    std::unique_ptr<FileQuerySystem> system;
  };
  std::vector<Entry> systems_;
};

}  // namespace qof

#endif  // QOF_ENGINE_WORKSPACE_H_
