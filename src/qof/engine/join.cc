#include "qof/engine/join.h"

#include <algorithm>
#include <set>
#include <string>

#include "qof/util/string_util.h"

namespace qof {
namespace {

// Texts of the members of `attrs` contained in `parent`.
std::set<std::string> GroupTexts(const Corpus& corpus, const Region& parent,
                                 const RegionSet& attrs) {
  std::set<std::string> out;
  const std::vector<Region>& v = attrs.regions();
  auto it = std::lower_bound(
      v.begin(), v.end(), parent.start,
      [](const Region& r, uint64_t start) { return r.start < start; });
  for (; it != v.end() && it->start < parent.end; ++it) {
    if (!parent.Contains(*it)) continue;
    out.insert(std::string(TrimView(corpus.ScanText(it->start, it->end))));
  }
  return out;
}

}  // namespace

Result<std::vector<Region>> RunIndexJoin(const Corpus& corpus,
                                         const RegionSet& candidates,
                                         const RegionSet& lhs_attrs,
                                         const RegionSet& rhs_attrs) {
  std::vector<Region> out;
  // Candidates are view regions (disjoint in natural schemas); a simple
  // per-candidate scan over the sorted attribute sets suffices. The
  // containment filter in GroupTexts makes this correct even for
  // overlapping inputs; the early break keeps it near-linear.
  for (const Region& candidate : candidates) {
    std::set<std::string> lhs = GroupTexts(corpus, candidate, lhs_attrs);
    if (lhs.empty()) continue;
    std::set<std::string> rhs = GroupTexts(corpus, candidate, rhs_attrs);
    bool match = false;
    for (const std::string& s : rhs) {
      if (lhs.count(s) > 0) {
        match = true;
        break;
      }
    }
    if (match) out.push_back(candidate);
  }
  return out;
}

}  // namespace qof
