#include "qof/engine/join.h"

#include <algorithm>
#include <set>
#include <string>
#include <string_view>

#include "qof/region/cost_model.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

// Texts of the members of `attrs` contained in `parent`.
std::set<std::string> GroupTexts(const Corpus& corpus, const Region& parent,
                                 const RegionSet& attrs) {
  std::set<std::string> out;
  const std::vector<Region>& v = attrs.regions();
  auto it = std::lower_bound(
      v.begin(), v.end(), parent.start,
      [](const Region& r, uint64_t start) { return r.start < start; });
  for (; it != v.end() && it->start < parent.end; ++it) {
    if (!parent.Contains(*it)) continue;
    out.insert(std::string(TrimView(corpus.ScanText(it->start, it->end))));
  }
  return out;
}

std::vector<Region> JoinNestedLoop(const Corpus& corpus,
                                   const RegionSet& candidates,
                                   const RegionSet& lhs_attrs,
                                   const RegionSet& rhs_attrs) {
  std::vector<Region> out;
  // Per-candidate set comparison over the sorted attribute sets. The
  // containment filter in GroupTexts makes this correct even for
  // overlapping inputs; the early break keeps the scan near-linear — but
  // every candidate pays two std::set constructions and a std::string
  // per attribute, which is what the sort-merge variant eliminates.
  for (const Region& candidate : candidates) {
    std::set<std::string> lhs = GroupTexts(corpus, candidate, lhs_attrs);
    if (lhs.empty()) continue;
    std::set<std::string> rhs = GroupTexts(corpus, candidate, rhs_attrs);
    bool match = false;
    for (const std::string& s : rhs) {
      if (lhs.count(s) > 0) {
        match = true;
        break;
      }
    }
    if (match) out.push_back(candidate);
  }
  return out;
}

/// Big-endian first-8-bytes of `s` (zero-padded). Ordering abbreviated
/// keys as integers is consistent with lexicographic order on the full
/// strings, so comparators may test the abbreviation first and only
/// touch the text on a tie.
uint64_t AbbrevKey(std::string_view s) {
  uint64_t key = 0;
  const size_t n = s.size() < 8 ? s.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    key |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
           << (56 - 8 * i);
  }
  return key;
}

/// One flattened (candidate, attribute-text) pair. The text is a trimmed
/// view into the corpus buffer — no per-pair allocation — and `abbrev`
/// carries its first bytes inline so sort and merge comparisons usually
/// resolve without dereferencing the view at all.
struct JoinEntry {
  size_t candidate;
  uint64_t abbrev;
  std::string_view text;
};

bool TextLess(const JoinEntry& a, const JoinEntry& b) {
  if (a.abbrev != b.abbrev) return a.abbrev < b.abbrev;
  return a.text < b.text;
}

std::vector<Region> JoinSortMerge(const Corpus& corpus,
                                  const RegionSet& candidates,
                                  const RegionSet& lhs_attrs,
                                  const RegionSet& rhs_attrs) {
  const std::vector<Region>& cands = candidates.regions();
  // Flatten one side to (candidate, text) pairs; `want` lets the right
  // side skip candidates with no left attributes, matching the
  // nested-loop's early-out byte accounting exactly.
  auto collect = [&](const RegionSet& attrs, auto&& want) {
    std::vector<JoinEntry> entries;
    const std::vector<Region>& v = attrs.regions();
    entries.reserve(v.size());
    for (size_t ci = 0; ci < cands.size(); ++ci) {
      if (!want(ci)) continue;
      const Region& parent = cands[ci];
      auto it = std::lower_bound(
          v.begin(), v.end(), parent.start,
          [](const Region& r, uint64_t start) { return r.start < start; });
      for (; it != v.end() && it->start < parent.end; ++it) {
        if (!parent.Contains(*it)) continue;
        std::string_view text =
            TrimView(corpus.ScanText(it->start, it->end));
        entries.push_back({ci, AbbrevKey(text), text});
      }
    }
    // Candidates were walked in ascending order, so entries are already
    // grouped and ordered by candidate; the "sort" of sort-merge only
    // has to order each candidate's run by text.
    for (size_t lo = 0; lo < entries.size();) {
      size_t hi = lo + 1;
      while (hi < entries.size() &&
             entries[hi].candidate == entries[lo].candidate) {
        ++hi;
      }
      std::sort(entries.begin() + lo, entries.begin() + hi, TextLess);
      lo = hi;
    }
    return entries;
  };

  std::vector<JoinEntry> lhs =
      collect(lhs_attrs, [](size_t) { return true; });
  std::vector<char> has_lhs(cands.size(), 0);
  for (const JoinEntry& e : lhs) has_lhs[e.candidate] = 1;
  std::vector<JoinEntry> rhs =
      collect(rhs_attrs, [&](size_t ci) { return has_lhs[ci] != 0; });

  // The "merge": both sides are sorted by (candidate, text); a candidate
  // matches when its two text ranges intersect.
  std::vector<Region> out;
  size_t i = 0;
  size_t j = 0;
  while (i < lhs.size() && j < rhs.size()) {
    if (lhs[i].candidate < rhs[j].candidate) {
      ++i;
      continue;
    }
    if (rhs[j].candidate < lhs[i].candidate) {
      ++j;
      continue;
    }
    const size_t ci = lhs[i].candidate;
    bool match = false;
    while (i < lhs.size() && j < rhs.size() && lhs[i].candidate == ci &&
           rhs[j].candidate == ci) {
      if (TextLess(lhs[i], rhs[j])) {
        ++i;
      } else if (TextLess(rhs[j], lhs[i])) {
        ++j;
      } else {
        match = true;
        break;
      }
    }
    if (match) out.push_back(cands[ci]);
    while (i < lhs.size() && lhs[i].candidate == ci) ++i;
    while (j < rhs.size() && rhs[j].candidate == ci) ++j;
  }
  return out;
}

}  // namespace

Result<std::vector<Region>> RunIndexJoin(const Corpus& corpus,
                                         const RegionSet& candidates,
                                         const RegionSet& lhs_attrs,
                                         const RegionSet& rhs_attrs,
                                         JoinAlgorithm algorithm) {
  if (algorithm == JoinAlgorithm::kAuto) {
    // Below the threshold the sort is pure overhead; the shared cost
    // table pins the crossover so tests and benches agree on it.
    algorithm = lhs_attrs.size() + rhs_attrs.size() <
                        CostModel::kSortMergeJoinMinPairs
                    ? JoinAlgorithm::kNestedLoop
                    : JoinAlgorithm::kSortMerge;
  }
  if (algorithm == JoinAlgorithm::kNestedLoop) {
    return JoinNestedLoop(corpus, candidates, lhs_attrs, rhs_attrs);
  }
  return JoinSortMerge(corpus, candidates, lhs_attrs, rhs_attrs);
}

}  // namespace qof
