#ifndef QOF_ENGINE_BASELINE_H_
#define QOF_ENGINE_BASELINE_H_

#include <vector>

#include "qof/db/object_store.h"
#include "qof/exec/exec_context.h"
#include "qof/query/ast.h"
#include "qof/region/region.h"
#include "qof/rig/rig.h"
#include "qof/schema/structuring_schema.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"

namespace qof {

/// Output of the full-scan plan.
struct BaselineResult {
  /// Spans and ids of matching view objects, aligned.
  std::vector<Region> regions;
  std::vector<ObjectId> objects;
  /// Projected values when the query has a target path.
  std::vector<Value> projected;
  uint64_t objects_built = 0;
  /// Soft-fail mode only: a governance limit tripped mid-scan and the
  /// result holds the documents verified before `interrupted`.
  bool truncated = false;
  Status interrupted;
};

/// The "standard database implementation" of §1/§4.1: scan and parse the
/// *whole* corpus, construct the database image of every view region, and
/// evaluate the query over the objects. This is the comparator the
/// paper's speedups are measured against; all its text reads go through
/// Corpus::ScanText and show up in bytes_read().
/// `ctx` (optional) is checked per document (and inside document parses);
/// a tripped limit returns the typed error — or, with `soft_fail`, the
/// per-document-complete prefix scanned so far with `truncated` set.
Result<BaselineResult> RunBaseline(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const SelectQuery& query,
                                   const Rig& full_rig, ObjectStore* store,
                                   const ExecContext* ctx = nullptr,
                                   bool soft_fail = false);

}  // namespace qof

#endif  // QOF_ENGINE_BASELINE_H_
