#ifndef QOF_ENGINE_TWO_PHASE_H_
#define QOF_ENGINE_TWO_PHASE_H_

#include <vector>

#include "qof/compiler/query_compiler.h"
#include "qof/db/object_store.h"
#include "qof/exec/exec_context.h"
#include "qof/region/region_set.h"
#include "qof/rig/rig.h"
#include "qof/schema/structuring_schema.h"
#include "qof/text/corpus.h"
#include "qof/util/result.h"
#include "qof/util/thread_pool.h"

namespace qof {

/// Output of phase 2 over candidate regions.
struct TwoPhaseResult {
  std::vector<Region> regions;   // candidates that survived the filter
  /// Ids of the surviving objects in the caller's store. Populated by the
  /// serial path only: parallel workers materialize candidates in
  /// per-worker scratch stores that are discarded on return.
  std::vector<ObjectId> objects;
  std::vector<Value> projected;  // fully materialized, store-independent
  uint64_t candidates_parsed = 0;
  /// Soft-fail mode only: a governance limit tripped mid-phase-2 and the
  /// result holds the candidate prefix verified before `interrupted`.
  bool truncated = false;
  Status interrupted;
};

/// Phase 2 of partial-index evaluation (§6.2): parse each *candidate*
/// region with the structuring schema (rooted at the view symbol),
/// construct its database image, and re-evaluate the WHERE clause on the
/// object to filter out false positives. Scanned bytes are exactly the
/// candidates' text — the saving the paper claims over whole-file scans.
///
/// When `pool` is non-null with more than one worker, candidates are
/// parsed and filtered in parallel (each worker building objects in its
/// own scratch store); output order, surviving regions, projected values
/// and the reported error are identical to the serial path.
/// `ctx` (optional) is checked per candidate and polled by ParallelFor
/// workers, so deadlines/cancellation/budgets interrupt phase 2 promptly;
/// with `soft_fail` a tripped limit returns the verified candidate prefix
/// with `truncated` set instead of the typed error.
Result<TwoPhaseResult> RunTwoPhase(const StructuringSchema& schema,
                                   const Corpus& corpus,
                                   const QueryPlan& plan,
                                   const RegionSet& candidates,
                                   const Rig& full_rig, ObjectStore* store,
                                   ThreadPool* pool = nullptr,
                                   const ExecContext* ctx = nullptr,
                                   bool soft_fail = false);

}  // namespace qof

#endif  // QOF_ENGINE_TWO_PHASE_H_
