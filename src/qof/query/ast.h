#ifndef QOF_QUERY_AST_H_
#define QOF_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace qof {

/// One step of an FQL path expression (the XSQL-style paths of §2/§5).
struct PathStep {
  enum class Kind {
    kAttr,      // named attribute: .Authors
    kWildStar,  // *X — any (possibly empty) attribute sequence (§5.3)
    kWildOne,   // ?X — exactly one attribute of any name (§5.3's X1..Xn)
  };
  Kind kind = Kind::kAttr;
  std::string name;  // attribute name, or the variable's name

  static PathStep Attr(std::string name) {
    return {Kind::kAttr, std::move(name)};
  }
  static PathStep WildStar(std::string var) {
    return {Kind::kWildStar, std::move(var)};
  }
  static PathStep WildOne(std::string var) {
    return {Kind::kWildOne, std::move(var)};
  }

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.kind == b.kind && a.name == b.name;
  }
};

/// `r.Authors.Name.Last_Name` — a tuple variable plus steps.
struct PathExpr {
  std::string var;
  std::vector<PathStep> steps;

  std::string ToString() const;

  friend bool operator==(const PathExpr& a, const PathExpr& b) {
    return a.var == b.var && a.steps == b.steps;
  }
};

class Condition;
using ConditionPtr = std::shared_ptr<const Condition>;

/// WHERE-clause tree. Leaves compare a path against a string literal
/// (kEqualsLiteral), test word containment (kContainsWord), or compare two
/// paths (kEqualsPath — the select–join shape of §5.2). Inner nodes are
/// AND / OR / NOT.
class Condition {
 public:
  enum class Kind {
    kEqualsLiteral,
    kContainsWord,
    kStartsWith,  // path STARTS "prefix" — PAT-style lexical search
    kEqualsPath,
    kAnd,
    kOr,
    kNot,
  };

  static ConditionPtr EqualsLiteral(PathExpr path, std::string literal);
  static ConditionPtr ContainsWord(PathExpr path, std::string word);
  static ConditionPtr StartsWith(PathExpr path, std::string prefix);
  static ConditionPtr EqualsPath(PathExpr lhs, PathExpr rhs);
  static ConditionPtr And(ConditionPtr l, ConditionPtr r);
  static ConditionPtr Or(ConditionPtr l, ConditionPtr r);
  static ConditionPtr Not(ConditionPtr child);

  Kind kind() const { return kind_; }
  const PathExpr& path() const { return path_; }       // leaf kinds
  const PathExpr& rhs_path() const { return rhs_path_; }  // kEqualsPath
  const std::string& literal() const { return literal_; }
  const ConditionPtr& left() const { return left_; }
  const ConditionPtr& right() const { return right_; }
  const ConditionPtr& child() const { return left_; }

  std::string ToString() const;

 private:
  Condition(Kind kind) : kind_(kind) {}

  Kind kind_;
  PathExpr path_;
  PathExpr rhs_path_;
  std::string literal_;
  ConditionPtr left_;
  ConditionPtr right_;
};

/// SELECT <target> FROM <view> <var> [WHERE <condition>].
struct SelectQuery {
  PathExpr target;   // bare variable or a projection path
  std::string view;  // class/view name, e.g. References
  std::string var;
  ConditionPtr where;  // may be null

  bool IsProjection() const { return !target.steps.empty(); }
  std::string ToString() const;
};

}  // namespace qof

#endif  // QOF_QUERY_AST_H_
