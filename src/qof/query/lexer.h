#ifndef QOF_QUERY_LEXER_H_
#define QOF_QUERY_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "qof/util/result.h"

namespace qof {

/// FQL token kinds. Keywords are case-insensitive; identifiers keep case.
enum class FqlTokenKind {
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kContains,
  kStarts,
  kIdent,
  kString,   // "..."
  kDot,
  kEquals,
  kLParen,
  kRParen,
  kStar,     // * (wildcard-path marker)
  kQuestion, // ? (single-step wildcard marker)
  kEnd,
};

struct FqlToken {
  FqlTokenKind kind;
  std::string text;   // ident / string contents
  size_t offset = 0;  // byte offset for error messages
};

/// Tokenizes an FQL query string.
Result<std::vector<FqlToken>> LexFql(std::string_view input);

}  // namespace qof

#endif  // QOF_QUERY_LEXER_H_
