#include "qof/query/parser.h"

#include <functional>

#include "qof/query/lexer.h"
#include "qof/text/tokenizer.h"
#include "qof/util/string_util.h"

namespace qof {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<FqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse() {
    QOF_RETURN_IF_ERROR(Expect(FqlTokenKind::kSelect, "SELECT"));
    SelectQuery query;
    QOF_ASSIGN_OR_RETURN(query.target, ParsePath());
    QOF_RETURN_IF_ERROR(Expect(FqlTokenKind::kFrom, "FROM"));
    QOF_ASSIGN_OR_RETURN(query.view, ExpectIdent("view name"));
    QOF_ASSIGN_OR_RETURN(query.var, ExpectIdent("tuple variable"));
    if (Peek().kind == FqlTokenKind::kWhere) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(query.where, ParseCondition());
    }
    if (Peek().kind != FqlTokenKind::kEnd) {
      return Error("trailing input after query");
    }
    if (query.target.var != query.var) {
      return Status::ParseError("SELECT target '" + query.target.var +
                                "' does not match FROM variable '" +
                                query.var + "'");
    }
    QOF_RETURN_IF_ERROR(ValidateVars(query));
    return query;
  }

 private:
  const FqlToken& Peek() const { return tokens_[pos_]; }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) +
                              " in FQL query");
  }

  Status Expect(FqlTokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + what);
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != FqlTokenKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return tokens_[pos_++].text;
  }

  Result<PathExpr> ParsePath() {
    PathExpr path;
    QOF_ASSIGN_OR_RETURN(path.var, ExpectIdent("path variable"));
    while (Peek().kind == FqlTokenKind::kDot) {
      ++pos_;
      if (Peek().kind == FqlTokenKind::kStar) {
        ++pos_;
        QOF_ASSIGN_OR_RETURN(std::string var,
                             ExpectIdent("wildcard variable"));
        path.steps.push_back(PathStep::WildStar(std::move(var)));
      } else if (Peek().kind == FqlTokenKind::kQuestion) {
        ++pos_;
        QOF_ASSIGN_OR_RETURN(std::string var,
                             ExpectIdent("wildcard variable"));
        path.steps.push_back(PathStep::WildOne(std::move(var)));
      } else {
        QOF_ASSIGN_OR_RETURN(std::string attr,
                             ExpectIdent("attribute name"));
        path.steps.push_back(PathStep::Attr(std::move(attr)));
      }
    }
    return path;
  }

  // condition ::= and_cond (OR and_cond)*
  Result<ConditionPtr> ParseCondition() {
    QOF_ASSIGN_OR_RETURN(ConditionPtr lhs, ParseAnd());
    while (Peek().kind == FqlTokenKind::kOr) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(ConditionPtr rhs, ParseAnd());
      lhs = Condition::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ConditionPtr> ParseAnd() {
    QOF_ASSIGN_OR_RETURN(ConditionPtr lhs, ParseUnary());
    while (Peek().kind == FqlTokenKind::kAnd) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(ConditionPtr rhs, ParseUnary());
      lhs = Condition::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ConditionPtr> ParseUnary() {
    // NOT and '(' both recurse without consuming a predicate, so a long
    // prefix of them is the one FQL shape whose recursion depth is not
    // bounded by the number of predicates — cap it before the C++ stack
    // caps it for us.
    if (++depth_ > kMaxConditionDepth) {
      --depth_;
      return Error("condition too deeply nested");
    }
    Result<ConditionPtr> out = ParseUnaryInner();
    --depth_;
    return out;
  }

  Result<ConditionPtr> ParseUnaryInner() {
    if (Peek().kind == FqlTokenKind::kNot) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(ConditionPtr child, ParseUnary());
      return Condition::Not(std::move(child));
    }
    if (Peek().kind == FqlTokenKind::kLParen) {
      ++pos_;
      QOF_ASSIGN_OR_RETURN(ConditionPtr inner, ParseCondition());
      QOF_RETURN_IF_ERROR(Expect(FqlTokenKind::kRParen, "')'"));
      return inner;
    }
    return ParsePredicate();
  }

  Result<ConditionPtr> ParsePredicate() {
    QOF_ASSIGN_OR_RETURN(PathExpr lhs, ParsePath());
    if (Peek().kind == FqlTokenKind::kEquals) {
      ++pos_;
      if (Peek().kind == FqlTokenKind::kString) {
        std::string literal = tokens_[pos_++].text;
        return Condition::EqualsLiteral(std::move(lhs),
                                        std::move(literal));
      }
      QOF_ASSIGN_OR_RETURN(PathExpr rhs, ParsePath());
      return Condition::EqualsPath(std::move(lhs), std::move(rhs));
    }
    if (Peek().kind == FqlTokenKind::kContains) {
      ++pos_;
      if (Peek().kind != FqlTokenKind::kString) {
        return Error("expected string literal after CONTAINS");
      }
      std::string word = tokens_[pos_++].text;
      // Validated here so every execution strategy — the baseline's
      // database filter included — rejects the same literals the
      // index compiler does.
      if (Tokenizer::Tokenize(TrimView(word)).empty()) {
        return Status::InvalidArgument(
            "CONTAINS needs an indexable word, got: \"" + word + "\"");
      }
      return Condition::ContainsWord(std::move(lhs), std::move(word));
    }
    if (Peek().kind == FqlTokenKind::kStarts) {
      ++pos_;
      if (Peek().kind != FqlTokenKind::kString) {
        return Error("expected string literal after STARTS");
      }
      std::string prefix = tokens_[pos_++].text;
      auto words = Tokenizer::Tokenize(TrimView(prefix));
      if (words.size() != 1 || words[0].start != 0) {
        return Status::InvalidArgument(
            "STARTS expects a single word prefix, got: \"" + prefix +
            "\"");
      }
      return Condition::StartsWith(std::move(lhs), std::move(prefix));
    }
    return Error("expected '=', CONTAINS or STARTS in predicate");
  }

  // Every path in the WHERE clause must start with the FROM variable.
  Status ValidateVars(const SelectQuery& query) const {
    Status ok;
    std::function<Status(const Condition&)> check =
        [&](const Condition& c) -> Status {
      switch (c.kind()) {
        case Condition::Kind::kEqualsLiteral:
        case Condition::Kind::kContainsWord:
        case Condition::Kind::kStartsWith:
          if (c.path().var != query.var) {
            return Status::ParseError("unknown tuple variable '" +
                                      c.path().var + "'");
          }
          return Status::OK();
        case Condition::Kind::kEqualsPath:
          if (c.path().var != query.var ||
              c.rhs_path().var != query.var) {
            return Status::ParseError(
                "join predicates must use the FROM variable");
          }
          return Status::OK();
        case Condition::Kind::kNot:
          return check(*c.child());
        case Condition::Kind::kAnd:
        case Condition::Kind::kOr: {
          QOF_RETURN_IF_ERROR(check(*c.left()));
          return check(*c.right());
        }
      }
      return Status::OK();
    };
    if (query.where) return check(*query.where);
    return Status::OK();
  }

  static constexpr int kMaxConditionDepth = 128;

  std::vector<FqlToken> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<SelectQuery> ParseFql(std::string_view input) {
  QOF_ASSIGN_OR_RETURN(std::vector<FqlToken> tokens, LexFql(input));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace qof
