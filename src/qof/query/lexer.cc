#include "qof/query/lexer.h"

#include <cctype>

namespace qof {
namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Result<std::vector<FqlToken>> LexFql(std::string_view input) {
  std::vector<FqlToken> out;
  size_t pos = 0;
  while (pos < input.size()) {
    char c = input[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    size_t start = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      ++pos;
      while (pos < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[pos])) ||
              input[pos] == '_')) {
        ++pos;
      }
      std::string word(input.substr(start, pos - start));
      std::string upper = ToUpper(word);
      FqlTokenKind kind = FqlTokenKind::kIdent;
      if (upper == "SELECT") kind = FqlTokenKind::kSelect;
      else if (upper == "FROM") kind = FqlTokenKind::kFrom;
      else if (upper == "WHERE") kind = FqlTokenKind::kWhere;
      else if (upper == "AND") kind = FqlTokenKind::kAnd;
      else if (upper == "OR") kind = FqlTokenKind::kOr;
      else if (upper == "NOT") kind = FqlTokenKind::kNot;
      else if (upper == "CONTAINS") kind = FqlTokenKind::kContains;
      else if (upper == "STARTS") kind = FqlTokenKind::kStarts;
      out.push_back({kind, std::move(word), start});
      continue;
    }
    if (c == '"') {
      ++pos;
      size_t b = pos;
      while (pos < input.size() && input[pos] != '"') ++pos;
      if (pos >= input.size()) {
        return Status::ParseError(
            "unterminated string literal at offset " +
            std::to_string(start));
      }
      out.push_back({FqlTokenKind::kString,
                     std::string(input.substr(b, pos - b)), start});
      ++pos;
      continue;
    }
    FqlTokenKind kind;
    switch (c) {
      case '.': kind = FqlTokenKind::kDot; break;
      case '=': kind = FqlTokenKind::kEquals; break;
      case '(': kind = FqlTokenKind::kLParen; break;
      case ')': kind = FqlTokenKind::kRParen; break;
      case '*': kind = FqlTokenKind::kStar; break;
      case '?': kind = FqlTokenKind::kQuestion; break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(pos));
    }
    out.push_back({kind, std::string(1, c), pos});
    ++pos;
  }
  out.push_back({FqlTokenKind::kEnd, "", input.size()});
  return out;
}

}  // namespace qof
