#include "qof/query/ast.h"

namespace qof {

std::string PathExpr::ToString() const {
  std::string out = var;
  for (const PathStep& s : steps) {
    out += ".";
    switch (s.kind) {
      case PathStep::Kind::kAttr:
        out += s.name;
        break;
      case PathStep::Kind::kWildStar:
        out += "*" + s.name;
        break;
      case PathStep::Kind::kWildOne:
        out += "?" + s.name;
        break;
    }
  }
  return out;
}

ConditionPtr Condition::EqualsLiteral(PathExpr path, std::string literal) {
  auto c = std::shared_ptr<Condition>(
      new Condition(Kind::kEqualsLiteral));
  c->path_ = std::move(path);
  c->literal_ = std::move(literal);
  return c;
}

ConditionPtr Condition::ContainsWord(PathExpr path, std::string word) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kContainsWord));
  c->path_ = std::move(path);
  c->literal_ = std::move(word);
  return c;
}

ConditionPtr Condition::StartsWith(PathExpr path, std::string prefix) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kStartsWith));
  c->path_ = std::move(path);
  c->literal_ = std::move(prefix);
  return c;
}

ConditionPtr Condition::EqualsPath(PathExpr lhs, PathExpr rhs) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kEqualsPath));
  c->path_ = std::move(lhs);
  c->rhs_path_ = std::move(rhs);
  return c;
}

ConditionPtr Condition::And(ConditionPtr l, ConditionPtr r) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kAnd));
  c->left_ = std::move(l);
  c->right_ = std::move(r);
  return c;
}

ConditionPtr Condition::Or(ConditionPtr l, ConditionPtr r) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kOr));
  c->left_ = std::move(l);
  c->right_ = std::move(r);
  return c;
}

ConditionPtr Condition::Not(ConditionPtr child) {
  auto c = std::shared_ptr<Condition>(new Condition(Kind::kNot));
  c->left_ = std::move(child);
  return c;
}

std::string Condition::ToString() const {
  switch (kind_) {
    case Kind::kEqualsLiteral:
      return path_.ToString() + " = \"" + literal_ + "\"";
    case Kind::kContainsWord:
      return path_.ToString() + " CONTAINS \"" + literal_ + "\"";
    case Kind::kStartsWith:
      return path_.ToString() + " STARTS \"" + literal_ + "\"";
    case Kind::kEqualsPath:
      return path_.ToString() + " = " + rhs_path_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + left_->ToString() + ")";
  }
  return "<invalid>";
}

std::string SelectQuery::ToString() const {
  std::string out = "SELECT " + target.ToString() + " FROM " + view + " " +
                    var;
  if (where) out += " WHERE " + where->ToString();
  return out;
}

}  // namespace qof
