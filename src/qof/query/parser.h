#ifndef QOF_QUERY_PARSER_H_
#define QOF_QUERY_PARSER_H_

#include <string_view>

#include "qof/query/ast.h"
#include "qof/util/result.h"

namespace qof {

/// Parses FQL, the library's XSQL-flavoured query language:
///
///   query     ::= SELECT path FROM IDENT IDENT [WHERE condition]
///   condition ::= and_cond (OR and_cond)*
///   and_cond  ::= unary (AND unary)*
///   unary     ::= NOT unary | '(' condition ')' | predicate
///   predicate ::= path '=' STRING        — attribute equality
///               | path '=' path          — join-style comparison (§5.2)
///               | path CONTAINS STRING   — word containment
///               | path STARTS STRING     — lexical prefix search
///   path      ::= IDENT ('.' step)*
///   step      ::= IDENT                  — attribute
///               | '*' IDENT              — any attribute sequence (§5.3)
///               | '?' IDENT              — exactly one attribute (§5.3)
///
/// Keywords are case-insensitive. Examples (paper §2, §5):
///   SELECT r FROM References r
///       WHERE r.Authors.Name.Last_Name = "Chang"
///   SELECT r.Authors.Name.Last_Name FROM References r
///   SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"
///   SELECT r FROM References r WHERE r.Editors.Name = r.Authors.Name
Result<SelectQuery> ParseFql(std::string_view input);

}  // namespace qof

#endif  // QOF_QUERY_PARSER_H_
