#ifndef QOF_FUZZ_REPRO_H_
#define QOF_FUZZ_REPRO_H_

#include <string>
#include <string_view>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"
#include "qof/util/result.h"

namespace qof {

/// A self-contained failure reproduction: the concrete case plus the
/// oracle configuration that exposed it.
struct ReproFile {
  ConcreteCase concrete_case;
  InjectedBug bug = InjectedBug::kNone;
  /// Fault-injection directive: when non-empty the replay runs the
  /// oracle's fault leg with this site/hit instead of the differential
  /// legs (serialized as an `inject-fault:` line).
  std::string fault_site;
  uint64_t fault_hit = 1;
  uint64_t seed = 0;
};

/// Serializes a repro in the `qof-fuzz-repro v1` line format:
///
///   qof-fuzz-repro v1
///   seed: 42
///   inject: none | relax-direct | exact-skip | drop-tombstone
///   inject-fault: journal.append 2      -- fault-leg cases only
///   expect-valid: 1
///   canned: bibtex 7 4                  -- canned cases only
///   subset: Obj Alpha                   -- one line per index subset
///   query: SELECT r FROM Objs r
///   schema <<END                        -- random cases only
///   ...schema text...
///   END
///   doc corpus-0.txt <<END
///   ...document text...
///   END
///   mutate add extra-0.txt <<END      -- maintenance-leg mutations,
///   ...document text...                  in application order
///   END
///   mutate remove doc0.txt
///
/// Heredoc bodies are the lines between the markers joined with '\n';
/// the writer always puts one '\n' between body and END, so a body with
/// its own trailing newline shows as an empty line before END and every
/// body round-trips byte-identically.
std::string WriteRepro(const ReproFile& repro);

Result<ReproFile> ParseRepro(std::string_view text);

/// Parses a repro and runs it through the oracle.
Result<OracleOutcome> ReplayRepro(std::string_view text, int workers);

std::string InjectedBugName(InjectedBug bug);
Result<InjectedBug> InjectedBugFromName(std::string_view name);

}  // namespace qof

#endif  // QOF_FUZZ_REPRO_H_
