#include "qof/fuzz/case.h"

namespace qof {

ConcreteCase Concretize(const FuzzCase& fuzz_case) {
  ConcreteCase out;
  out.canned = fuzz_case.canned;
  out.canned_seed = fuzz_case.canned_seed;
  out.canned_entries = fuzz_case.canned_entries;
  if (fuzz_case.canned.empty()) {
    out.schema_text = fuzz_case.schema.Render();
    out.docs = RenderDocs(fuzz_case.schema, fuzz_case.corpus);
  }
  out.fql = fuzz_case.raw_fql.empty() ? fuzz_case.query.Render()
                                      : fuzz_case.raw_fql;
  out.expect_valid = fuzz_case.expect_valid;
  out.subsets = fuzz_case.subsets;
  out.mutations = fuzz_case.mutations;
  return out;
}

}  // namespace qof
