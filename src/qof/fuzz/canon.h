#ifndef QOF_FUZZ_CANON_H_
#define QOF_FUZZ_CANON_H_

#include <algorithm>
#include <string>
#include <vector>

#include "qof/engine/system.h"
#include "qof/fuzz/case.h"
#include "qof/util/result.h"

namespace qof {

/// A query execution reduced to what the differential checks compare.
/// Shared by the oracle's in-process legs (oracle.cc) and the session
/// leg (session_leg.cc), which compares service answers against replays.
struct CanonExec {
  bool ok = false;
  std::string error;
  std::vector<Region> regions;       // sorted
  std::vector<std::string> values;   // RenderedValues (already sorted)
};

inline CanonExec Canon(const Result<QueryResult>& r) {
  CanonExec out;
  if (!r.ok()) {
    out.error = r.status().ToString();
    return out;
  }
  out.ok = true;
  out.regions = r->regions;
  std::sort(out.regions.begin(), out.regions.end(),
            [](const Region& a, const Region& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  out.values = r->RenderedValues();
  return out;
}

inline std::string Describe(const CanonExec& e) {
  if (!e.ok) return "error{" + e.error + "}";
  return "ok{regions=" + std::to_string(e.regions.size()) +
         ", values=" + std::to_string(e.values.size()) + "}";
}

/// Compares one plan's execution against the baseline; fills `failure`
/// and returns false on mismatch. Consistent errors (both sides reject
/// the query) count as agreement.
inline bool Agrees(const std::string& label, const CanonExec& baseline,
                   const CanonExec& got, const ConcreteCase& c,
                   std::string* failure) {
  auto fail = [&](const std::string& what) {
    *failure = "[" + label + "] " + what + "; baseline=" +
               Describe(baseline) + " got=" + Describe(got) +
               " (fql: " + c.fql + ")";
    return false;
  };
  if (baseline.ok != got.ok) return fail("ok/error status mismatch");
  if (!baseline.ok) return true;
  if (baseline.regions != got.regions) return fail("regions differ");
  if (baseline.values != got.values) return fail("rendered values differ");
  return true;
}

}  // namespace qof

#endif  // QOF_FUZZ_CANON_H_
