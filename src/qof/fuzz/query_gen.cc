#include "qof/fuzz/query_gen.h"

#include <algorithm>
#include <queue>

namespace qof {
namespace {

bool IsSink(const Rig& rig, Rig::NodeId n) {
  return rig.out_edges(n).empty();
}

/// Per-node distance to the nearest sink (BFS over reverse edges), or -1
/// when no sink is reachable. A random walk past its budget follows
/// decreasing distances, so it always terminates at a sink even on
/// cyclic RIGs.
std::vector<int> SinkDistances(const Rig& rig) {
  size_t n = rig.num_nodes();
  std::vector<std::vector<Rig::NodeId>> rev(n);
  for (size_t i = 0; i < n; ++i) {
    for (Rig::NodeId j : rig.out_edges(static_cast<Rig::NodeId>(i))) {
      rev[j].push_back(static_cast<Rig::NodeId>(i));
    }
  }
  std::vector<int> dist(n, -1);
  std::queue<Rig::NodeId> queue;
  for (size_t i = 0; i < n; ++i) {
    if (IsSink(rig, static_cast<Rig::NodeId>(i))) {
      dist[i] = 0;
      queue.push(static_cast<Rig::NodeId>(i));
    }
  }
  while (!queue.empty()) {
    Rig::NodeId cur = queue.front();
    queue.pop();
    for (Rig::NodeId p : rev[cur]) {
      if (dist[p] < 0) {
        dist[p] = dist[cur] + 1;
        queue.push(p);
      }
    }
  }
  return dist;
}

/// Random RIG walk from `from` ending at a sink; empty when no sink is
/// reachable.
std::vector<std::string> WalkToSink(FuzzRng& rng, const Rig& rig,
                                    Rig::NodeId from,
                                    const std::vector<int>& dist,
                                    int max_len) {
  if (dist[from] < 0) return {};
  std::vector<std::string> steps;
  Rig::NodeId cur = from;
  int budget = rng.Range(1, max_len);
  while (!IsSink(rig, cur)) {
    const std::vector<Rig::NodeId>& outs = rig.out_edges(cur);
    Rig::NodeId next;
    if (static_cast<int>(steps.size()) < budget) {
      next = outs[rng.Below(outs.size())];
      if (dist[next] < 0) {
        // A dead branch (sink-free cycle): fall through to the guided
        // choice below instead.
        next = Rig::kInvalidNode;
      }
    } else {
      next = Rig::kInvalidNode;
    }
    if (next == Rig::kInvalidNode) {
      for (Rig::NodeId candidate : outs) {
        if (dist[candidate] >= 0 && dist[candidate] < dist[cur]) {
          next = candidate;
          break;
        }
      }
      if (next == Rig::kInvalidNode) return {};  // shouldn't happen
    }
    steps.push_back(rig.name(next));
    cur = next;
  }
  return steps;
}

std::vector<PathStep> MakePath(FuzzRng& rng,
                               const std::vector<std::string>& names,
                               const QueryGenOptions& options) {
  std::vector<PathStep> steps;
  size_t start = 0;
  if (names.size() >= 2 && rng.Chance(options.wildcard_rate)) {
    // Replace a proper prefix with *X: the closure contains the original
    // path, so both engines must agree on the (larger) answer.
    start = 1 + rng.Below(names.size() - 1);
    steps.push_back(PathStep::WildStar("X"));
  } else if (!names.empty() && rng.Chance(options.wildcard_rate * 0.5)) {
    // Replace the first step with ?Y (exactly one attribute of any name).
    start = 1;
    steps.push_back(PathStep::WildOne("Y"));
  }
  for (size_t i = start; i < names.size(); ++i) {
    steps.push_back(PathStep::Attr(names[i]));
  }
  if (rng.Chance(options.bogus_rate)) {
    // Off-schema attribute: every plan kind must report the same
    // diagnostic (the path mapper is shared).
    steps.push_back(PathStep::Attr("Zog"));
  }
  return steps;
}

QueryAtom MakeAtom(FuzzRng& rng, const Rig& rig, Rig::NodeId view,
                   const std::vector<int>& dist,
                   const std::vector<std::string>& literals,
                   const QueryGenOptions& options) {
  QueryAtom atom;
  std::vector<std::string> walk =
      WalkToSink(rng, rig, view, dist, options.max_path_len);
  atom.lhs = MakePath(rng, walk, options);
  if (rng.Chance(options.join_rate)) {
    std::vector<std::string> rhs_walk =
        WalkToSink(rng, rig, view, dist, options.max_path_len);
    if (!rhs_walk.empty()) {
      atom.op = QueryAtom::Op::kEqPath;
      // Join paths stay wildcard-free: plain attribute chains are the
      // §5.2 index-join shape.
      atom.lhs.clear();
      for (const std::string& name : walk) {
        atom.lhs.push_back(PathStep::Attr(name));
      }
      atom.rhs.clear();
      for (const std::string& name : rhs_walk) {
        atom.rhs.push_back(PathStep::Attr(name));
      }
      return atom;
    }
  }
  uint64_t kind = rng.Below(3);
  if (kind == 0) {
    atom.op = QueryAtom::Op::kEqLiteral;
    atom.literal = rng.Pick(literals);
    if (rng.Chance(0.25)) atom.literal += " " + rng.Pick(literals);
  } else if (kind == 1) {
    atom.op = QueryAtom::Op::kContains;
    atom.literal = rng.Pick(literals);
  } else {
    atom.op = QueryAtom::Op::kStarts;
    std::string word = rng.Pick(literals);
    atom.literal = word.substr(0, std::min<size_t>(word.size(), 3));
  }
  return atom;
}

QueryNode MakeNode(FuzzRng& rng, const Rig& rig, Rig::NodeId view,
                   const std::vector<int>& dist,
                   const std::vector<std::string>& literals,
                   const QueryGenOptions& options, int depth) {
  QueryNode node;
  if (depth >= options.max_tree_depth || rng.Chance(0.55)) {
    node.kind = QueryNode::Kind::kAtom;
    node.atom = MakeAtom(rng, rig, view, dist, literals, options);
    return node;
  }
  uint64_t kind = rng.Below(3);
  if (kind == 2) {
    node.kind = QueryNode::Kind::kNot;
    node.kids.push_back(
        MakeNode(rng, rig, view, dist, literals, options, depth + 1));
  } else {
    node.kind = kind == 0 ? QueryNode::Kind::kAnd : QueryNode::Kind::kOr;
    node.kids.push_back(
        MakeNode(rng, rig, view, dist, literals, options, depth + 1));
    node.kids.push_back(
        MakeNode(rng, rig, view, dist, literals, options, depth + 1));
  }
  return node;
}

std::string RenderPath(const std::string& var,
                       const std::vector<PathStep>& steps) {
  std::string out = var;
  for (const PathStep& s : steps) {
    out += ".";
    if (s.kind == PathStep::Kind::kWildStar) out += "*";
    if (s.kind == PathStep::Kind::kWildOne) out += "?";
    out += s.name;
  }
  return out;
}

std::string RenderNode(const std::string& var, const QueryNode& node) {
  switch (node.kind) {
    case QueryNode::Kind::kAtom: {
      const QueryAtom& a = node.atom;
      std::string lhs = RenderPath(var, a.lhs);
      switch (a.op) {
        case QueryAtom::Op::kEqLiteral:
          return lhs + " = \"" + a.literal + "\"";
        case QueryAtom::Op::kContains:
          return lhs + " CONTAINS \"" + a.literal + "\"";
        case QueryAtom::Op::kStarts:
          return lhs + " STARTS \"" + a.literal + "\"";
        case QueryAtom::Op::kEqPath:
          return lhs + " = " + RenderPath(var, a.rhs);
      }
      return lhs;
    }
    case QueryNode::Kind::kAnd:
      return "(" + RenderNode(var, node.kids[0]) + " AND " +
             RenderNode(var, node.kids[1]) + ")";
    case QueryNode::Kind::kOr:
      return "(" + RenderNode(var, node.kids[0]) + " OR " +
             RenderNode(var, node.kids[1]) + ")";
    case QueryNode::Kind::kNot:
      return "NOT (" + RenderNode(var, node.kids[0]) + ")";
  }
  return "";
}

int CountAtoms(const QueryNode& node) {
  if (node.kind == QueryNode::Kind::kAtom) return 1;
  int n = 0;
  for (const QueryNode& kid : node.kids) n += CountAtoms(kid);
  return n;
}

/// Appends every tree obtained from `root` by replacing one composite
/// node with one of its children.
void NodeReductions(const QueryNode& root, const QueryNode& node,
                    const std::vector<size_t>& path,
                    std::vector<QueryNode>* out) {
  auto rebuild = [&](const QueryNode& replacement) {
    QueryNode copy = root;
    QueryNode* cur = &copy;
    for (size_t idx : path) cur = &cur->kids[idx];
    *cur = replacement;
    return copy;
  };
  for (size_t i = 0; i < node.kids.size(); ++i) {
    out->push_back(rebuild(node.kids[i]));
    std::vector<size_t> child_path = path;
    child_path.push_back(i);
    NodeReductions(root, node.kids[i], child_path, out);
  }
}

}  // namespace

std::string QueryModel::Render() const {
  std::string out = "SELECT " + RenderPath(var, target) + " FROM " + view +
                    " " + var;
  if (where.has_value()) out += " WHERE " + RenderNode(var, *where);
  return out;
}

int QueryModel::AtomCount() const {
  return where.has_value() ? CountAtoms(*where) : 0;
}

QueryModel GenerateQuery(FuzzRng& rng, const Rig& rig,
                         const std::string& view_node,
                         const std::string& view_name,
                         const std::vector<std::string>& literals,
                         const QueryGenOptions& options) {
  QueryModel model;
  model.view = view_name;
  Rig::NodeId view = rig.FindNode(view_node);
  std::vector<int> dist = SinkDistances(rig);

  if (view != Rig::kInvalidNode && rng.Chance(options.projection_rate)) {
    std::vector<std::string> walk =
        WalkToSink(rng, rig, view, dist, options.max_path_len);
    for (const std::string& name : walk) {
      model.target.push_back(PathStep::Attr(name));
    }
  }
  if (view != Rig::kInvalidNode && dist[view] >= 0 &&
      rng.Chance(options.where_rate)) {
    model.where = MakeNode(rng, rig, view, dist, literals, options, 0);
  }
  return model;
}

std::vector<QueryModel> QueryReductions(const QueryModel& model) {
  std::vector<QueryModel> out;
  if (model.where.has_value()) {
    QueryModel reduced = model;
    reduced.where.reset();
    out.push_back(std::move(reduced));
    std::vector<QueryNode> trees;
    NodeReductions(*model.where, *model.where, {}, &trees);
    for (QueryNode& tree : trees) {
      QueryModel variant = model;
      variant.where = std::move(tree);
      out.push_back(std::move(variant));
    }
  }
  if (!model.target.empty()) {
    QueryModel reduced = model;
    reduced.target.clear();
    out.push_back(std::move(reduced));
  }
  return out;
}

std::string MutateToInvalid(FuzzRng& rng, const std::string& fql) {
  std::string out = fql;
  int mutations = rng.Range(1, 2);
  for (int m = 0; m < mutations && !out.empty(); ++m) {
    switch (rng.Below(6)) {
      case 0:  // truncate
        out = out.substr(0, rng.Below(out.size()));
        break;
      case 1:  // delete one character
        out.erase(rng.Below(out.size()), 1);
        break;
      case 2: {  // insert a structural character
        static const char kChars[] = "().*?=.\"";
        out.insert(out.begin() + static_cast<long>(rng.Below(out.size())),
                   kChars[rng.Below(sizeof(kChars) - 1)]);
        break;
      }
      case 3:  // duplicate an operator keyword
        out.insert(rng.Below(out.size()), " AND ");
        break;
      case 4: {  // unbalance: drop a closing parenthesis or quote
        size_t pos = out.find_last_of(")\"");
        if (pos != std::string::npos) out.erase(pos, 1);
        break;
      }
      case 5:  // unknown view / garbage keyword
        out.insert(rng.Below(out.size()), " Zzz ");
        break;
    }
  }
  return out;
}

}  // namespace qof
