#ifndef QOF_FUZZ_DISK_LEG_H_
#define QOF_FUZZ_DISK_LEG_H_

#include <string>
#include <utility>
#include <vector>

#include "qof/fuzz/case.h"
#include "qof/fuzz/oracle.h"
#include "qof/schema/structuring_schema.h"
#include "qof/util/status.h"

namespace qof {

/// The disk-tier leg: saves the case's full indexes as a paged store
/// (256-byte pages, so posting streams span several pages even on small
/// corpora), reopens them in a fresh system that pages index data in
/// lazily through the buffer pool, and cross-checks against in-memory
/// execution:
///
///   1. every execution mode's answers are byte-identical to the
///      in-memory baseline (the store round trip changes nothing), and
///   2. a forced full materialization (ExportIndexes, which pages every
///      stream in) reproduces the original system's export blob
///      byte-for-byte.
///
/// This is the leg that catches kEvictPinned
/// (PagedStoreOptions::inject_evict_pinned), which lets the buffer pool
/// steal frames that are still pinned: it runs under a pool smaller
/// than the longest stream, so a multi-page read sees one of its pinned
/// pages overwritten mid-assembly and decodes another page's bytes —
/// surfacing as decode errors, count mismatches, or divergent answers,
/// all of which the cross-checks flag.
///
/// Same conventions as the oracle's other legs: a Status error means
/// the harness itself broke (e.g. the temp file could not be written);
/// a filled `failure` means the disk tier violated an invariant.
Status CheckDiskTier(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, uint64_t seed,
    std::string* failure);

}  // namespace qof

#endif  // QOF_FUZZ_DISK_LEG_H_
