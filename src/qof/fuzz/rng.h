#ifndef QOF_FUZZ_RNG_H_
#define QOF_FUZZ_RNG_H_

#include <cstdint>
#include <vector>

namespace qof {

/// Deterministic splitmix64 stream. The fuzzer guarantees that a seeded
/// run is byte-reproducible across platforms and standard libraries, which
/// rules out <random>: std::uniform_int_distribution's mapping is
/// implementation-defined. Every derived quantity below is fully
/// specified instead.
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Value in [0, n); n must be > 0. The modulo bias is irrelevant for
  /// fuzzing (n is always tiny relative to 2^64).
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Value in [lo, hi], inclusive.
  int Range(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability ~p.
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) *
               (1.0 / 9007199254740992.0) <
           p;
  }

  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace qof

#endif  // QOF_FUZZ_RNG_H_
