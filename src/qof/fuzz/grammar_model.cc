#include "qof/fuzz/grammar_model.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace qof {
namespace {

/// Cumulative integer weights for a rank-Zipf distribution over `n`
/// ranks: weight(r) ∝ 1/r^s, scaled to 64-bit fixed point so sampling
/// is a pure-integer upper_bound on FuzzRng output (the only floating
/// point is the one-time table build, whose rounding cannot flip a
/// sample across platforms at these magnitudes).
std::vector<uint64_t> ZipfCumulative(size_t n, double s) {
  std::vector<uint64_t> cum(n);
  uint64_t total = 0;
  for (size_t r = 0; r < n; ++r) {
    double w = std::pow(static_cast<double>(r + 1), -s);
    uint64_t scaled =
        std::max<uint64_t>(1, static_cast<uint64_t>(w * (1ull << 32)));
    total += scaled;
    cum[r] = total;
  }
  return cum;
}

size_t ZipfRank(const std::vector<uint64_t>& cum, FuzzRng& rng) {
  uint64_t u = rng.Next() % cum.back();
  return static_cast<size_t>(
      std::upper_bound(cum.begin(), cum.end(), u) - cum.begin());
}

const std::vector<std::string>& FieldNamePool() {
  static const std::vector<std::string> kPool = {
      "Alpha", "Beta", "Gamma", "Delta", "Epsi", "Zeta"};
  return kPool;
}

const std::vector<std::string>& SubNamePool() {
  static const std::vector<std::string> kPool = {"ItemA", "ItemB", "ItemC"};
  return kPool;
}

std::string FieldOpen(size_t index) {
  return "f" + std::to_string(index + 1) + "<";
}

/// The token rule body for a leaf, given the stop characters the leaf
/// runs up against in its grammatical context.
std::string LeafBody(LeafKind kind, const std::string& stops) {
  switch (kind) {
    case LeafKind::kWord:
      return "word";
    case LeafKind::kNumber:
      return "number => int";
    case LeafKind::kUntil:
      return "until(" + stops + ")";
  }
  return "word";
}

LeafKind PickLeaf(FuzzRng& rng, double number_rate) {
  if (rng.Chance(number_rate)) return LeafKind::kNumber;
  return rng.Chance(0.3) ? LeafKind::kWord : LeafKind::kUntil;
}

/// Word-selection state threaded through a render: the probe bias plus,
/// when the corpus asks for skew, the Zipf table over BenchVocab().
struct ContentCtx {
  double probe_rate = 0.3;
  std::vector<uint64_t> zipf;  // empty = uniform over FuzzVocab()

  explicit ContentCtx(const CorpusModel& corpus)
      : probe_rate(corpus.probe_rate) {
    if (corpus.zipf_s > 0.0) {
      zipf = ZipfCumulative(BenchVocab().size(), corpus.zipf_s);
    }
  }
};

/// Leaf content honoring the leaf kind's lexical constraints. `stops`
/// never appear: content words are alphanumeric and space-separated.
std::string LeafContent(LeafKind kind, FuzzRng& rng,
                        const ContentCtx& ctx) {
  if (kind == LeafKind::kNumber) return std::to_string(rng.Range(1, 40));
  auto word = [&]() -> std::string {
    if (rng.Chance(ctx.probe_rate)) return kFuzzProbeWord;
    if (!ctx.zipf.empty()) return BenchVocab()[ZipfRank(ctx.zipf, rng)];
    return rng.Pick(FuzzVocab());
  };
  if (kind == LeafKind::kWord) return word();
  std::string out = word();
  if (rng.Chance(0.4)) out += " " + word();
  return out;
}

void EmitObject(const SchemaModel& schema, const CorpusModel& corpus,
                const ContentCtx& ctx, FuzzRng& rng, int depth,
                std::string* out) {
  out->append("obj{");
  for (size_t i = 0; i < schema.fields.size(); ++i) {
    const FieldSpec& f = schema.fields[i];
    out->append(FieldOpen(i));
    switch (f.kind) {
      case FieldSpec::Kind::kLeaf:
        out->append(LeafContent(f.leaf, rng, ctx));
        break;
      case FieldSpec::Kind::kSet: {
        const SubSpec& sub = schema.subs[f.sub];
        // Never empty: an until-leaf key scans for its stop without
        // regard to the collection's closer, so "()" would desync the
        // parse. One item is always unambiguous.
        int count = rng.Range(1, std::max(1, corpus.max_items));
        out->push_back('(');
        for (int k = 0; k < count; ++k) {
          if (k > 0) out->push_back(';');
          if (sub.tuple) {
            out->append(LeafContent(sub.key_leaf, rng, ctx));
            out->push_back('=');
            out->append(LeafContent(sub.val_leaf, rng, ctx));
          } else {
            out->append(LeafContent(sub.leaf, rng, ctx));
          }
        }
        out->push_back(')');
        break;
      }
      case FieldSpec::Kind::kRecurse: {
        out->push_back('{');
        int count = depth < corpus.max_depth ? rng.Range(0, 2) : 0;
        for (int k = 0; k < count; ++k) {
          if (k > 0) out->push_back(' ');
          EmitObject(schema, corpus, ctx, rng, depth + 1, out);
        }
        out->push_back('}');
        break;
      }
    }
    out->push_back('>');
  }
  out->push_back('}');
}

}  // namespace

const std::vector<std::string>& FuzzVocab() {
  static const std::vector<std::string> kVocab = {
      "apple", "baker", "cedar",   "delta", "ember",
      "falcon", "grove", "harbor", "iris",  "juniper"};
  return kVocab;
}

std::string SchemaModel::Render() const {
  std::string out = "schema Fuzz root File view Obj;\n";
  out += "File ::= (Obj)* => collect set;\n";

  std::string body;
  std::string field_list;
  for (size_t i = 0; i < fields.size(); ++i) {
    body += "\"" + FieldOpen(i) + "\" " + fields[i].name + " \">\" ";
    if (i > 0) field_list += ", ";
    field_list += fields[i].name + ": $" + std::to_string(i + 1);
  }
  out += "Obj ::= \"obj{\" " + body + "\"}\" => object Obj(" + field_list +
         ");\n";

  for (const FieldSpec& f : fields) {
    switch (f.kind) {
      case FieldSpec::Kind::kLeaf:
        out += f.name + " ::= " + LeafBody(f.leaf, "\">\"") + ";\n";
        break;
      case FieldSpec::Kind::kSet:
        out += f.name + " ::= \"(\" (" + subs[f.sub].name + " / \";\")" +
               (f.min_count > 0 ? "+" : "*") + " \")\" => collect set;\n";
        break;
      case FieldSpec::Kind::kRecurse:
        out += f.name + " ::= \"{\" (Obj)* \"}\" => collect set;\n";
        break;
    }
  }

  for (int si : UsedSubs()) {
    const SubSpec& s = subs[si];
    if (s.tuple) {
      out += s.name + " ::= " + s.KeyName() + " \"=\" " + s.ValName() +
             " => tuple(" + s.KeyName() + ": $1, " + s.ValName() +
             ": $2);\n";
      out += s.KeyName() + " ::= " + LeafBody(s.key_leaf, "\"=\"") + ";\n";
      out += s.ValName() + " ::= " +
             LeafBody(s.val_leaf, "\";\", \")\"") + ";\n";
    } else {
      out += s.name + " ::= " + LeafBody(s.leaf, "\";\", \")\"") + ";\n";
    }
  }
  return out;
}

std::vector<int> SchemaModel::UsedSubs() const {
  std::set<int> used;
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kSet) used.insert(f.sub);
  }
  return std::vector<int>(used.begin(), used.end());
}

int SchemaModel::NumProductions() const {
  int n = 1 + static_cast<int>(fields.size());  // Obj + field rules
  for (int si : UsedSubs()) n += subs[si].tuple ? 3 : 1;
  return n;
}

std::vector<std::string> SchemaModel::SinkNames() const {
  std::vector<std::string> out;
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kLeaf) out.push_back(f.name);
  }
  for (int si : UsedSubs()) {
    const SubSpec& s = subs[si];
    if (s.tuple) {
      out.push_back(s.KeyName());
      out.push_back(s.ValName());
    } else {
      out.push_back(s.name);
    }
  }
  return out;
}

bool SchemaModel::HasRecursion() const {
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kRecurse) return true;
  }
  return false;
}

SchemaModel GenerateSchemaModel(FuzzRng& rng,
                                const SchemaGenOptions& options) {
  SchemaModel model;

  int num_subs = 1;
  if (options.max_subs > 1 && rng.Chance(0.35)) num_subs = 2;
  for (int i = 0; i < num_subs; ++i) {
    SubSpec sub;
    sub.name = SubNamePool()[i];
    sub.tuple = rng.Chance(options.tuple_rate);
    sub.leaf = PickLeaf(rng, options.number_rate);
    sub.key_leaf = rng.Chance(0.5) ? LeafKind::kWord : LeafKind::kUntil;
    sub.val_leaf = PickLeaf(rng, options.number_rate);
    model.subs.push_back(std::move(sub));
  }

  int num_fields = rng.Range(options.min_fields, options.max_fields);
  int shared_sub = -1;  // the sub collection fields gravitate toward
  for (int i = 0; i < num_fields; ++i) {
    FieldSpec field;
    field.name = FieldNamePool()[i];
    if (rng.Chance(options.set_rate)) {
      field.kind = FieldSpec::Kind::kSet;
      if (shared_sub >= 0 && rng.Chance(options.ambiguity_rate)) {
        field.sub = shared_sub;  // two paths to one name (§6.3 shape)
      } else {
        field.sub = static_cast<int>(rng.Below(model.subs.size()));
        shared_sub = field.sub;
      }
      field.min_count = rng.Chance(0.3) ? 1 : 0;
    } else {
      field.kind = FieldSpec::Kind::kLeaf;
      field.leaf = PickLeaf(rng, options.number_rate);
    }
    model.fields.push_back(std::move(field));
  }

  if (rng.Chance(options.recursion_rate)) {
    FieldSpec nest;
    nest.kind = FieldSpec::Kind::kRecurse;
    nest.name = "Nest";
    model.fields.push_back(std::move(nest));
  }
  return model;
}

std::vector<SchemaModel> SchemaReductions(const SchemaModel& model) {
  std::vector<SchemaModel> out;
  // Drop one field (a view object needs at least one attribute).
  if (model.fields.size() > 1) {
    for (size_t i = 0; i < model.fields.size(); ++i) {
      SchemaModel reduced = model;
      reduced.fields.erase(reduced.fields.begin() + i);
      out.push_back(std::move(reduced));
    }
  }
  // Collapse a collection or recursive field to a plain leaf.
  for (size_t i = 0; i < model.fields.size(); ++i) {
    if (model.fields[i].kind == FieldSpec::Kind::kLeaf) continue;
    SchemaModel reduced = model;
    reduced.fields[i].kind = FieldSpec::Kind::kLeaf;
    reduced.fields[i].leaf = LeafKind::kUntil;
    out.push_back(std::move(reduced));
  }
  // Collapse a tuple sub to a leaf sub.
  for (size_t i = 0; i < model.subs.size(); ++i) {
    if (!model.subs[i].tuple) continue;
    SchemaModel reduced = model;
    reduced.subs[i].tuple = false;
    out.push_back(std::move(reduced));
  }
  return out;
}

CorpusModel GenerateCorpusModel(FuzzRng& rng) {
  CorpusModel corpus;
  int docs = rng.Range(1, 2);
  for (int i = 0; i < docs; ++i) {
    corpus.doc_objects.push_back(rng.Range(0, 5));
  }
  corpus.max_depth = rng.Range(1, 2);
  corpus.max_items = rng.Range(1, 3);
  corpus.probe_rate = 0.35;
  return corpus;
}

std::vector<CorpusModel> CorpusReductions(const CorpusModel& model) {
  std::vector<CorpusModel> out;
  for (size_t i = 0; i < model.doc_objects.size(); ++i) {
    CorpusModel reduced = model;
    reduced.doc_objects.erase(reduced.doc_objects.begin() + i);
    out.push_back(std::move(reduced));
  }
  for (size_t i = 0; i < model.doc_objects.size(); ++i) {
    if (model.doc_objects[i] == 0) continue;
    CorpusModel reduced = model;
    reduced.doc_objects[i] /= 2;
    out.push_back(std::move(reduced));
  }
  if (model.max_depth > 1) {
    CorpusModel reduced = model;
    reduced.max_depth -= 1;
    out.push_back(std::move(reduced));
  }
  if (model.max_items > 1) {
    CorpusModel reduced = model;
    reduced.max_items = 1;
    out.push_back(std::move(reduced));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> RenderDocs(
    const SchemaModel& schema, const CorpusModel& corpus) {
  std::vector<std::pair<std::string, std::string>> out;
  const ContentCtx ctx(corpus);
  const int64_t scale = std::max(1, corpus.scale);
  for (size_t d = 0; d < corpus.doc_objects.size(); ++d) {
    FuzzRng rng(static_cast<uint64_t>(corpus.content_seed) * 0x9e3779b9ull +
                d * 0x85ebca6bull + 1);
    std::string text;
    const int64_t objects = corpus.doc_objects[d] * scale;
    for (int64_t o = 0; o < objects; ++o) {
      if (o > 0) text.push_back('\n');
      EmitObject(schema, corpus, ctx, rng, 0, &text);
    }
    out.emplace_back("doc" + std::to_string(d) + ".txt", std::move(text));
  }
  return out;
}

const std::vector<std::string>& BenchVocab() {
  static const std::vector<std::string> kVocab = [] {
    std::vector<std::string> v = FuzzVocab();
    // 240 generated tail words: rank-assigned by a Zipf draw they fill
    // the long tail of, each alphanumeric so no delimiter collides.
    for (int i = 0; i < 240; ++i) {
      v.push_back("w" + std::string(i < 10 ? "00" : i < 100 ? "0" : "") +
                  std::to_string(i));
    }
    return v;
  }();
  return kVocab;
}

BenchCorpus MakeBenchCorpus(const BenchCorpusSpec& spec) {
  // A fixed schema exercising every structural feature the query
  // kernels dispatch on: a word leaf (equality selections), an
  // until-leaf collection shared by queries over two fields, a tuple
  // collection (multi-level chains), and a recursive field (cyclic
  // RIG). Stable across seeds — only content varies.
  SchemaModel schema;
  SubSpec items;
  items.name = "ItemA";
  items.leaf = LeafKind::kUntil;
  schema.subs.push_back(items);
  SubSpec pairs;
  pairs.name = "ItemB";
  pairs.tuple = true;
  pairs.key_leaf = LeafKind::kWord;
  pairs.val_leaf = LeafKind::kUntil;
  schema.subs.push_back(pairs);

  FieldSpec alpha;
  alpha.kind = FieldSpec::Kind::kLeaf;
  alpha.name = "Alpha";
  alpha.leaf = LeafKind::kWord;
  schema.fields.push_back(alpha);
  FieldSpec beta;
  beta.kind = FieldSpec::Kind::kSet;
  beta.name = "Beta";
  beta.sub = 0;
  beta.min_count = 1;
  schema.fields.push_back(beta);
  FieldSpec gamma;
  gamma.kind = FieldSpec::Kind::kSet;
  gamma.name = "Gamma";
  gamma.sub = 1;
  gamma.min_count = 1;
  schema.fields.push_back(gamma);
  FieldSpec nest;
  nest.kind = FieldSpec::Kind::kRecurse;
  nest.name = "Nest";
  schema.fields.push_back(nest);

  CorpusModel corpus;
  corpus.content_seed = spec.seed;
  corpus.max_depth = 1;
  corpus.max_items = 4;
  corpus.probe_rate = 0.02;  // selective: the probe word stays rare
  corpus.zipf_s = spec.zipf_s;

  BenchCorpus out;
  out.schema_text = schema.Render();
  // One rendered document per model document; grow until the byte
  // target is met. Document d's content depends only on (seed, d), so
  // a larger target extends a smaller corpus rather than reshuffling
  // it.
  for (size_t d = 0; out.total_bytes < spec.target_bytes; ++d) {
    CorpusModel one = corpus;
    one.doc_objects = {std::max(1, spec.objects_per_doc)};
    one.content_seed =
        static_cast<uint32_t>(spec.seed + 0x9e3779b9u * (d + 1));
    auto docs = RenderDocs(schema, one);
    out.total_bytes += docs[0].second.size();
    out.docs.emplace_back("bench" + std::to_string(d) + ".txt",
                          std::move(docs[0].second));
  }
  return out;
}

}  // namespace qof
