#include "qof/fuzz/grammar_model.h"

#include <algorithm>
#include <set>

namespace qof {
namespace {

const std::vector<std::string>& FieldNamePool() {
  static const std::vector<std::string> kPool = {
      "Alpha", "Beta", "Gamma", "Delta", "Epsi", "Zeta"};
  return kPool;
}

const std::vector<std::string>& SubNamePool() {
  static const std::vector<std::string> kPool = {"ItemA", "ItemB", "ItemC"};
  return kPool;
}

std::string FieldOpen(size_t index) {
  return "f" + std::to_string(index + 1) + "<";
}

/// The token rule body for a leaf, given the stop characters the leaf
/// runs up against in its grammatical context.
std::string LeafBody(LeafKind kind, const std::string& stops) {
  switch (kind) {
    case LeafKind::kWord:
      return "word";
    case LeafKind::kNumber:
      return "number => int";
    case LeafKind::kUntil:
      return "until(" + stops + ")";
  }
  return "word";
}

LeafKind PickLeaf(FuzzRng& rng, double number_rate) {
  if (rng.Chance(number_rate)) return LeafKind::kNumber;
  return rng.Chance(0.3) ? LeafKind::kWord : LeafKind::kUntil;
}

/// Leaf content honoring the leaf kind's lexical constraints. `stops`
/// never appear: content words are alphanumeric and space-separated.
std::string LeafContent(LeafKind kind, FuzzRng& rng, double probe_rate) {
  if (kind == LeafKind::kNumber) return std::to_string(rng.Range(1, 40));
  auto word = [&]() -> std::string {
    if (rng.Chance(probe_rate)) return kFuzzProbeWord;
    return rng.Pick(FuzzVocab());
  };
  if (kind == LeafKind::kWord) return word();
  std::string out = word();
  if (rng.Chance(0.4)) out += " " + word();
  return out;
}

void EmitObject(const SchemaModel& schema, const CorpusModel& corpus,
                FuzzRng& rng, int depth, std::string* out) {
  out->append("obj{");
  for (size_t i = 0; i < schema.fields.size(); ++i) {
    const FieldSpec& f = schema.fields[i];
    out->append(FieldOpen(i));
    switch (f.kind) {
      case FieldSpec::Kind::kLeaf:
        out->append(LeafContent(f.leaf, rng, corpus.probe_rate));
        break;
      case FieldSpec::Kind::kSet: {
        const SubSpec& sub = schema.subs[f.sub];
        // Never empty: an until-leaf key scans for its stop without
        // regard to the collection's closer, so "()" would desync the
        // parse. One item is always unambiguous.
        int count = rng.Range(1, std::max(1, corpus.max_items));
        out->push_back('(');
        for (int k = 0; k < count; ++k) {
          if (k > 0) out->push_back(';');
          if (sub.tuple) {
            out->append(LeafContent(sub.key_leaf, rng, corpus.probe_rate));
            out->push_back('=');
            out->append(LeafContent(sub.val_leaf, rng, corpus.probe_rate));
          } else {
            out->append(LeafContent(sub.leaf, rng, corpus.probe_rate));
          }
        }
        out->push_back(')');
        break;
      }
      case FieldSpec::Kind::kRecurse: {
        out->push_back('{');
        int count = depth < corpus.max_depth ? rng.Range(0, 2) : 0;
        for (int k = 0; k < count; ++k) {
          if (k > 0) out->push_back(' ');
          EmitObject(schema, corpus, rng, depth + 1, out);
        }
        out->push_back('}');
        break;
      }
    }
    out->push_back('>');
  }
  out->push_back('}');
}

}  // namespace

const std::vector<std::string>& FuzzVocab() {
  static const std::vector<std::string> kVocab = {
      "apple", "baker", "cedar",   "delta", "ember",
      "falcon", "grove", "harbor", "iris",  "juniper"};
  return kVocab;
}

std::string SchemaModel::Render() const {
  std::string out = "schema Fuzz root File view Obj;\n";
  out += "File ::= (Obj)* => collect set;\n";

  std::string body;
  std::string field_list;
  for (size_t i = 0; i < fields.size(); ++i) {
    body += "\"" + FieldOpen(i) + "\" " + fields[i].name + " \">\" ";
    if (i > 0) field_list += ", ";
    field_list += fields[i].name + ": $" + std::to_string(i + 1);
  }
  out += "Obj ::= \"obj{\" " + body + "\"}\" => object Obj(" + field_list +
         ");\n";

  for (const FieldSpec& f : fields) {
    switch (f.kind) {
      case FieldSpec::Kind::kLeaf:
        out += f.name + " ::= " + LeafBody(f.leaf, "\">\"") + ";\n";
        break;
      case FieldSpec::Kind::kSet:
        out += f.name + " ::= \"(\" (" + subs[f.sub].name + " / \";\")" +
               (f.min_count > 0 ? "+" : "*") + " \")\" => collect set;\n";
        break;
      case FieldSpec::Kind::kRecurse:
        out += f.name + " ::= \"{\" (Obj)* \"}\" => collect set;\n";
        break;
    }
  }

  for (int si : UsedSubs()) {
    const SubSpec& s = subs[si];
    if (s.tuple) {
      out += s.name + " ::= " + s.KeyName() + " \"=\" " + s.ValName() +
             " => tuple(" + s.KeyName() + ": $1, " + s.ValName() +
             ": $2);\n";
      out += s.KeyName() + " ::= " + LeafBody(s.key_leaf, "\"=\"") + ";\n";
      out += s.ValName() + " ::= " +
             LeafBody(s.val_leaf, "\";\", \")\"") + ";\n";
    } else {
      out += s.name + " ::= " + LeafBody(s.leaf, "\";\", \")\"") + ";\n";
    }
  }
  return out;
}

std::vector<int> SchemaModel::UsedSubs() const {
  std::set<int> used;
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kSet) used.insert(f.sub);
  }
  return std::vector<int>(used.begin(), used.end());
}

int SchemaModel::NumProductions() const {
  int n = 1 + static_cast<int>(fields.size());  // Obj + field rules
  for (int si : UsedSubs()) n += subs[si].tuple ? 3 : 1;
  return n;
}

std::vector<std::string> SchemaModel::SinkNames() const {
  std::vector<std::string> out;
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kLeaf) out.push_back(f.name);
  }
  for (int si : UsedSubs()) {
    const SubSpec& s = subs[si];
    if (s.tuple) {
      out.push_back(s.KeyName());
      out.push_back(s.ValName());
    } else {
      out.push_back(s.name);
    }
  }
  return out;
}

bool SchemaModel::HasRecursion() const {
  for (const FieldSpec& f : fields) {
    if (f.kind == FieldSpec::Kind::kRecurse) return true;
  }
  return false;
}

SchemaModel GenerateSchemaModel(FuzzRng& rng,
                                const SchemaGenOptions& options) {
  SchemaModel model;

  int num_subs = 1;
  if (options.max_subs > 1 && rng.Chance(0.35)) num_subs = 2;
  for (int i = 0; i < num_subs; ++i) {
    SubSpec sub;
    sub.name = SubNamePool()[i];
    sub.tuple = rng.Chance(options.tuple_rate);
    sub.leaf = PickLeaf(rng, options.number_rate);
    sub.key_leaf = rng.Chance(0.5) ? LeafKind::kWord : LeafKind::kUntil;
    sub.val_leaf = PickLeaf(rng, options.number_rate);
    model.subs.push_back(std::move(sub));
  }

  int num_fields = rng.Range(options.min_fields, options.max_fields);
  int shared_sub = -1;  // the sub collection fields gravitate toward
  for (int i = 0; i < num_fields; ++i) {
    FieldSpec field;
    field.name = FieldNamePool()[i];
    if (rng.Chance(options.set_rate)) {
      field.kind = FieldSpec::Kind::kSet;
      if (shared_sub >= 0 && rng.Chance(options.ambiguity_rate)) {
        field.sub = shared_sub;  // two paths to one name (§6.3 shape)
      } else {
        field.sub = static_cast<int>(rng.Below(model.subs.size()));
        shared_sub = field.sub;
      }
      field.min_count = rng.Chance(0.3) ? 1 : 0;
    } else {
      field.kind = FieldSpec::Kind::kLeaf;
      field.leaf = PickLeaf(rng, options.number_rate);
    }
    model.fields.push_back(std::move(field));
  }

  if (rng.Chance(options.recursion_rate)) {
    FieldSpec nest;
    nest.kind = FieldSpec::Kind::kRecurse;
    nest.name = "Nest";
    model.fields.push_back(std::move(nest));
  }
  return model;
}

std::vector<SchemaModel> SchemaReductions(const SchemaModel& model) {
  std::vector<SchemaModel> out;
  // Drop one field (a view object needs at least one attribute).
  if (model.fields.size() > 1) {
    for (size_t i = 0; i < model.fields.size(); ++i) {
      SchemaModel reduced = model;
      reduced.fields.erase(reduced.fields.begin() + i);
      out.push_back(std::move(reduced));
    }
  }
  // Collapse a collection or recursive field to a plain leaf.
  for (size_t i = 0; i < model.fields.size(); ++i) {
    if (model.fields[i].kind == FieldSpec::Kind::kLeaf) continue;
    SchemaModel reduced = model;
    reduced.fields[i].kind = FieldSpec::Kind::kLeaf;
    reduced.fields[i].leaf = LeafKind::kUntil;
    out.push_back(std::move(reduced));
  }
  // Collapse a tuple sub to a leaf sub.
  for (size_t i = 0; i < model.subs.size(); ++i) {
    if (!model.subs[i].tuple) continue;
    SchemaModel reduced = model;
    reduced.subs[i].tuple = false;
    out.push_back(std::move(reduced));
  }
  return out;
}

CorpusModel GenerateCorpusModel(FuzzRng& rng) {
  CorpusModel corpus;
  int docs = rng.Range(1, 2);
  for (int i = 0; i < docs; ++i) {
    corpus.doc_objects.push_back(rng.Range(0, 5));
  }
  corpus.max_depth = rng.Range(1, 2);
  corpus.max_items = rng.Range(1, 3);
  corpus.probe_rate = 0.35;
  return corpus;
}

std::vector<CorpusModel> CorpusReductions(const CorpusModel& model) {
  std::vector<CorpusModel> out;
  for (size_t i = 0; i < model.doc_objects.size(); ++i) {
    CorpusModel reduced = model;
    reduced.doc_objects.erase(reduced.doc_objects.begin() + i);
    out.push_back(std::move(reduced));
  }
  for (size_t i = 0; i < model.doc_objects.size(); ++i) {
    if (model.doc_objects[i] == 0) continue;
    CorpusModel reduced = model;
    reduced.doc_objects[i] /= 2;
    out.push_back(std::move(reduced));
  }
  if (model.max_depth > 1) {
    CorpusModel reduced = model;
    reduced.max_depth -= 1;
    out.push_back(std::move(reduced));
  }
  if (model.max_items > 1) {
    CorpusModel reduced = model;
    reduced.max_items = 1;
    out.push_back(std::move(reduced));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> RenderDocs(
    const SchemaModel& schema, const CorpusModel& corpus) {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t d = 0; d < corpus.doc_objects.size(); ++d) {
    FuzzRng rng(static_cast<uint64_t>(corpus.content_seed) * 0x9e3779b9ull +
                d * 0x85ebca6bull + 1);
    std::string text;
    for (int o = 0; o < corpus.doc_objects[d]; ++o) {
      if (o > 0) text.push_back('\n');
      EmitObject(schema, corpus, rng, 0, &text);
    }
    out.emplace_back("doc" + std::to_string(d) + ".txt", std::move(text));
  }
  return out;
}

}  // namespace qof
