#include "qof/fuzz/oracle.h"

#include <algorithm>
#include <set>

#include "qof/datagen/bibtex_gen.h"
#include "qof/datagen/log_gen.h"
#include "qof/datagen/mail_gen.h"
#include "qof/datagen/outline_gen.h"
#include "qof/datagen/schemas.h"
#include "qof/engine/system.h"
#include "qof/fuzz/rng.h"
#include "qof/optimizer/optimizer.h"
#include "qof/schema/rig_derivation.h"
#include "qof/schema/schema_text.h"

namespace qof {
namespace {

Result<StructuringSchema> MaterializeSchema(const ConcreteCase& c) {
  if (c.canned.empty()) return ParseSchemaText(c.schema_text);
  if (c.canned == "bibtex") return BibtexSchema();
  if (c.canned == "mail") return MailSchema();
  if (c.canned == "log") return LogSchema();
  if (c.canned == "outline") return OutlineSchema();
  return Status::InvalidArgument("unknown canned corpus: " + c.canned);
}

Result<std::vector<std::pair<std::string, std::string>>> MaterializeDocs(
    const ConcreteCase& c) {
  if (c.canned.empty()) return c.docs;
  int entries = std::max(1, c.canned_entries);
  if (c.canned == "bibtex") {
    BibtexGenOptions o;
    o.num_references = entries;
    o.seed = c.canned_seed;
    o.probe_author_rate = 0.3;
    o.probe_editor_rate = 0.2;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.bib", GenerateBibtex(o)}};
  }
  if (c.canned == "mail") {
    MailGenOptions o;
    o.num_messages = entries;
    o.seed = c.canned_seed;
    o.probe_sender_rate = 0.3;
    o.probe_recipient_rate = 0.3;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.mbox", GenerateMailbox(o)}};
  }
  if (c.canned == "log") {
    LogGenOptions o;
    o.num_entries = entries * 4;
    o.seed = c.canned_seed;
    o.error_rate = 0.2;
    o.num_sessions = 4;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.log", GenerateLog(o)}};
  }
  if (c.canned == "outline") {
    OutlineGenOptions o;
    o.num_top_sections = entries;
    o.seed = c.canned_seed;
    o.max_depth = 3;
    o.probe_title_rate = 0.25;
    return std::vector<std::pair<std::string, std::string>>{
        {"corpus.outline", GenerateOutline(o)}};
  }
  return Status::InvalidArgument("unknown canned corpus: " + c.canned);
}

/// A query execution reduced to what the differential check compares.
struct CanonExec {
  bool ok = false;
  std::string error;
  std::vector<Region> regions;       // sorted
  std::vector<std::string> values;   // RenderedValues (already sorted)
};

CanonExec Canon(const Result<QueryResult>& r) {
  CanonExec out;
  if (!r.ok()) {
    out.error = r.status().ToString();
    return out;
  }
  out.ok = true;
  out.regions = r->regions;
  std::sort(out.regions.begin(), out.regions.end(),
            [](const Region& a, const Region& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  out.values = r->RenderedValues();
  return out;
}

std::string Describe(const CanonExec& e) {
  if (!e.ok) return "error{" + e.error + "}";
  return "ok{regions=" + std::to_string(e.regions.size()) +
         ", values=" + std::to_string(e.values.size()) + "}";
}

/// Compares one plan's execution against the baseline; fills `failure`
/// and returns false on mismatch. Consistent errors (both sides reject
/// the query) count as agreement.
bool Agrees(const std::string& label, const CanonExec& baseline,
            const CanonExec& got, const ConcreteCase& c,
            std::string* failure) {
  auto fail = [&](const std::string& what) {
    *failure = "[" + label + "] " + what + "; baseline=" +
               Describe(baseline) + " got=" + Describe(got) +
               " (fql: " + c.fql + ")";
    return false;
  };
  if (baseline.ok != got.ok) return fail("ok/error status mismatch");
  if (!baseline.ok) return true;
  if (baseline.regions != got.regions) return fail("regions differ");
  if (baseline.values != got.values) return fail("rendered values differ");
  return true;
}

/// Inclusion chains enumerated from the RIG: every edge as a ⊃d pair,
/// every length-2 path under all four direct-flag combinations, plus a
/// few seeded longer chains carrying selections. Deterministic given
/// (rig, seed).
std::vector<InclusionChain> EnumerateChains(const Rig& rig, uint64_t seed,
                                            size_t max_chains) {
  std::vector<InclusionChain> out;
  auto add = [&](std::vector<std::string> names, std::vector<bool> direct) {
    InclusionChain chain;
    chain.orientation = InclusionChain::Orientation::kContains;
    chain.names = std::move(names);
    chain.direct = std::move(direct);
    chain.sels.assign(chain.names.size(), std::nullopt);
    out.push_back(std::move(chain));
  };
  size_t n = rig.num_nodes();
  for (size_t i = 0; i < n && out.size() < max_chains; ++i) {
    Rig::NodeId a = static_cast<Rig::NodeId>(i);
    for (Rig::NodeId b : rig.out_edges(a)) {
      add({rig.name(a), rig.name(b)}, {true});
      for (Rig::NodeId c : rig.out_edges(b)) {
        for (bool d1 : {true, false}) {
          for (bool d2 : {true, false}) {
            add({rig.name(a), rig.name(b), rig.name(c)}, {d1, d2});
          }
        }
        if (out.size() >= max_chains) break;
      }
      if (out.size() >= max_chains) break;
    }
  }
  // Seeded chains: longer, random flags, a selection at the end —
  // exercises triviality (random names may be unreachable) and the
  // selection-preserving rewrites.
  FuzzRng rng(seed ^ 0x5eedc4a15ull);
  std::vector<std::string> names = rig.NodeNames();
  if (!names.empty()) {
    for (int k = 0; k < 4; ++k) {
      size_t len = 2 + rng.Below(3);
      std::vector<std::string> cn;
      std::vector<bool> cd;
      for (size_t j = 0; j < len; ++j) {
        cn.push_back(rng.Pick(names));
        if (j > 0) cd.push_back(rng.Chance(0.6));
      }
      InclusionChain chain;
      chain.orientation = InclusionChain::Orientation::kContains;
      chain.names = std::move(cn);
      chain.direct = std::move(cd);
      chain.sels.assign(chain.names.size(), std::nullopt);
      chain.sels.back() =
          ChainSelection{ExprKind::kSelectContains, kFuzzProbeWord, "", 0};
      out.push_back(std::move(chain));
    }
  }
  return out;
}

/// Zeroes the maintenance-generation field (bytes [8, 16) of a v2 blob)
/// so index blobs from different mutation histories compare byte-equal.
std::string StripGeneration(std::string blob) {
  if (blob.size() >= 16) {
    std::fill(blob.begin() + 8, blob.begin() + 16, '\0');
  }
  return blob;
}

/// The maintenance leg: replay the case's mutation sequence through the
/// incremental maintainer (serial and parallel) and cross-check against
/// a from-scratch rebuild of the mutated corpus. A Status error means
/// the harness broke its own preconditions (e.g. a shrink candidate
/// whose mutation targets a dropped document); a filled `failure` means
/// the maintainer violated an invariant — including compaction failures
/// and blob divergence, which is exactly how kDropTombstone surfaces.
Status CheckMaintenance(
    const StructuringSchema& schema,
    const std::vector<std::pair<std::string, std::string>>& docs,
    const ConcreteCase& c, const OracleOptions& options, bool is_projection,
    std::string* failure) {
  const bool injected = options.bug == InjectedBug::kDropTombstone;
  auto fail = [&](const std::string& what) {
    *failure = "[maintain] " + what + " (fql: " + c.fql + ")";
    return Status::OK();
  };

  // The expected post-mutation document list, mirroring the maintainer's
  // append-at-tail physical order: updates move the document to the
  // tail, exactly as the corpus re-appends replaced text.
  std::vector<std::pair<std::string, std::string>> live = docs;
  for (const MutationStep& m : c.mutations) {
    auto it = std::find_if(
        live.begin(), live.end(),
        [&](const auto& doc) { return doc.first == m.name; });
    if (m.op != MutationStep::Op::kAdd && it != live.end()) live.erase(it);
    if (m.op != MutationStep::Op::kRemove) live.emplace_back(m.name, m.text);
  }

  // From-scratch rebuild of the mutated corpus: the ground truth.
  FileQuerySystem fresh(schema);
  for (const auto& [name, text] : live) {
    QOF_RETURN_IF_ERROR(fresh.AddFile(name, text));
  }
  fresh.SetParallelism(1);
  QOF_RETURN_IF_ERROR(fresh.BuildIndexes(IndexSpec::Full()));
  CanonExec rebuilt =
      Canon(fresh.Execute(c.fql, ExecutionMode::kBaseline));
  if (!Agrees("maintain/rebuild-auto", rebuilt,
              Canon(fresh.Execute(c.fql, ExecutionMode::kAuto)), c,
              failure)) {
    return Status::OK();
  }
  auto fresh_blob = fresh.ExportIndexes();
  if (!fresh_blob.ok()) return fresh_blob.status();

  for (int parallelism : {1, options.workers}) {
    std::string plabel = " p=" + std::to_string(parallelism);
    FileQuerySystem maintained(schema);
    for (const auto& [name, text] : docs) {
      QOF_RETURN_IF_ERROR(maintained.AddFile(name, text));
    }
    maintained.SetParallelism(parallelism);
    if (injected) {
      MaintainOptions maintain_options;
      maintain_options.inject_drop_tombstone = true;
      maintained.SetMaintainOptions(maintain_options);
    }
    IndexSpec spec = IndexSpec::Full();
    spec.parallelism = parallelism;
    QOF_RETURN_IF_ERROR(maintained.BuildIndexes(spec));

    for (size_t mi = 0; mi < c.mutations.size(); ++mi) {
      const MutationStep& m = c.mutations[mi];
      Status applied = Status::OK();
      switch (m.op) {
        case MutationStep::Op::kAdd:
          applied = maintained.AddFile(m.name, m.text);
          break;
        case MutationStep::Op::kUpdate:
          applied = maintained.UpdateFile(m.name, m.text);
          break;
        case MutationStep::Op::kRemove:
          applied = maintained.RemoveFile(m.name);
          break;
      }
      if (!applied.ok()) {
        // With the injected tombstone drop, auto-compaction can trip over
        // the lost splice mid-sequence — that is a detection. Otherwise
        // the case itself is malformed (a shrink artifact), which must
        // not be adopted as a failure.
        if (injected) {
          return fail("mutation " + std::to_string(mi) + plabel +
                      " surfaced the dropped tombstone: " +
                      applied.ToString());
        }
        return Status::Internal("mutation " + std::to_string(mi) + " (" +
                                m.name + ") failed: " + applied.ToString());
      }
    }

    // All execution modes must agree on the maintained system; the
    // baseline scan re-parses the (tombstoned) corpus, so it is ground
    // truth even when the indexes were maintained wrongly.
    CanonExec m_base =
        Canon(maintained.Execute(c.fql, ExecutionMode::kBaseline));
    if (!Agrees("maintain/auto" + plabel, m_base,
                Canon(maintained.Execute(c.fql, ExecutionMode::kAuto)), c,
                failure)) {
      return Status::OK();
    }
    if (!Agrees("maintain/two-phase" + plabel, m_base,
                Canon(maintained.Execute(c.fql, ExecutionMode::kTwoPhase)),
                c, failure)) {
      return Status::OK();
    }
    auto plan = maintained.Plan(c.fql);
    if (plan.ok() && plan->exact &&
        (!is_projection || plan->projection != nullptr)) {
      if (!Agrees(
              "maintain/index-only" + plabel, m_base,
              Canon(maintained.Execute(c.fql, ExecutionMode::kIndexOnly)),
              c, failure)) {
        return Status::OK();
      }
    }

    // Values are offset-independent, so they must match the rebuild
    // exactly; region coordinates shift with fragmentation, so only the
    // count is comparable before compaction.
    if (m_base.ok != rebuilt.ok ||
        (m_base.ok && (m_base.values != rebuilt.values ||
                       m_base.regions.size() != rebuilt.regions.size()))) {
      return fail("maintained system" + plabel +
                  " diverges from a from-scratch rebuild; maintained=" +
                  Describe(m_base) + " rebuilt=" + Describe(rebuilt));
    }

    // Compaction must fold the tombstones into an index byte-identical
    // to the from-scratch build. A compaction/export error here is the
    // maintainer's own consistency check firing — a real defect (or the
    // injected one), never a harness problem.
    Status compacted = maintained.CompactIndexes();
    if (!compacted.ok()) {
      return fail("compaction" + plabel + " failed: " +
                  compacted.ToString());
    }
    auto blob = maintained.ExportIndexes();
    if (!blob.ok()) {
      return fail("export after compaction" + plabel + " failed: " +
                  blob.status().ToString());
    }
    if (StripGeneration(*blob) != StripGeneration(*fresh_blob)) {
      return fail("compacted index blob" + plabel +
                  " differs from the from-scratch build (" +
                  std::to_string(blob->size()) + " vs " +
                  std::to_string(fresh_blob->size()) + " bytes)");
    }
  }
  return Status::OK();
}

bool HasRewrite(const std::vector<ChainRewrite>& rewrites, size_t position) {
  for (const ChainRewrite& r : rewrites) {
    if (r.kind == ChainRewrite::Kind::kRelaxDirect &&
        r.position == position) {
      return true;
    }
  }
  return false;
}

/// Thm. 3.6 check: random-order rewrite walks (buggy or not) must land on
/// Optimize()'s normal form, and so must re-optimizing any intermediate.
Status CheckChainConvergence(const Rig& rig, const OracleOptions& options,
                             uint64_t seed, std::string* failure) {
  ChainOptimizer optimizer(&rig);
  FuzzRng rng(seed * 0x9e3779b97f4a7c15ull + 0xc4a5ull);
  for (const InclusionChain& chain :
       EnumerateChains(rig, seed, options.max_chains)) {
    auto outcome = optimizer.Optimize(chain);
    if (!outcome.ok()) return outcome.status();
    if (outcome->trivially_empty) continue;

    InclusionChain cur = chain;
    for (int step = 0; step < 64; ++step) {
      std::vector<ChainRewrite> rewrites = optimizer.ApplicableRewrites(cur);
      size_t legit = rewrites.size();
      if (options.bug == InjectedBug::kRelaxDirect) {
        // The injected bug: every ⊃d is treated as relaxable, guard or no
        // guard.
        for (size_t i = 0; i + 1 < cur.names.size(); ++i) {
          if (cur.direct[i] && !HasRewrite(rewrites, i)) {
            rewrites.push_back(
                {ChainRewrite::Kind::kRelaxDirect, i});
          }
        }
      }
      if (rewrites.empty()) break;
      size_t pick = rng.Below(rewrites.size());
      if (pick < legit) {
        cur = optimizer.ApplyRewrite(cur, rewrites[pick]);
      } else {
        cur.direct[rewrites[pick].position] = false;  // unguarded relax
      }
      auto re = optimizer.Optimize(cur);
      if (!re.ok()) return re.status();
      if (!re->trivially_empty && !(re->chain == outcome->chain)) {
        *failure = "[optimizer] Thm 3.6 normal form divergence: chain " +
                   chain.ToString() + " rewrote to " + cur.ToString() +
                   " which re-optimizes to " + re->chain.ToString() +
                   " instead of " + outcome->chain.ToString();
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<OracleOutcome> RunOracle(const ConcreteCase& c,
                                const OracleOptions& options,
                                uint64_t seed) {
  OracleOutcome outcome;
  auto fail = [&](std::string message) {
    outcome.failed = true;
    outcome.failure = std::move(message);
    return outcome;
  };

  QOF_ASSIGN_OR_RETURN(StructuringSchema schema, MaterializeSchema(c));
  QOF_ASSIGN_OR_RETURN(auto docs, MaterializeDocs(c));

  // Parse once up front: the invalid-query class ends here when the
  // parser (correctly) rejects with a diagnostic.
  auto parsed = ParseFql(c.fql);
  if (!parsed.ok()) {
    if (c.expect_valid) {
      return fail("[parse] generated query failed to parse: " +
                  parsed.status().ToString() + " (fql: " + c.fql + ")");
    }
    if (parsed.status().message().empty()) {
      return fail("[parse] rejection without a diagnostic (fql: " + c.fql +
                  ")");
    }
    return outcome;  // rejected with a diagnostic — exactly right
  }
  const bool is_projection = parsed->IsProjection();

  auto make_system = [&]() {
    FileQuerySystem system(schema);
    for (const auto& [name, text] : docs) {
      (void)system.AddFile(name, text);
    }
    return system;
  };

  // 1. Baseline scan: the ground truth.
  FileQuerySystem base_system = make_system();
  CanonExec baseline =
      Canon(base_system.Execute(c.fql, ExecutionMode::kBaseline));

  // 2. Full indexing, serial and parallel.
  FileQuerySystem full = make_system();
  full.SetParallelism(1);
  Status built = full.BuildIndexes(IndexSpec::Full());
  if (!built.ok()) {
    return fail("[index] full index build failed: " + built.ToString());
  }
  if (!Agrees("auto/full p=1", baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kAuto)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  if (!Agrees("two-phase/full p=1", baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  auto full_plan = full.Plan(c.fql);
  if (full_plan.ok() && full_plan->exact &&
      (!is_projection || full_plan->projection != nullptr)) {
    if (!Agrees("index-only/full", baseline,
                Canon(full.Execute(c.fql, ExecutionMode::kIndexOnly)), c,
                &outcome.failure)) {
      outcome.failed = true;
      return outcome;
    }
  }

  full.SetParallelism(options.workers);
  IndexSpec parallel_spec = IndexSpec::Full();
  parallel_spec.parallelism = options.workers;
  built = full.BuildIndexes(parallel_spec);
  if (!built.ok()) {
    return fail("[index] parallel index build failed: " + built.ToString());
  }
  if (!Agrees("auto/full p=" + std::to_string(options.workers), baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kAuto)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }
  if (!Agrees("two-phase/full p=" + std::to_string(options.workers),
              baseline,
              Canon(full.Execute(c.fql, ExecutionMode::kTwoPhase)), c,
              &outcome.failure)) {
    outcome.failed = true;
    return outcome;
  }

  // 3. Random index subsets (§6): exact or not, answers must match.
  for (size_t si = 0; si < c.subsets.size(); ++si) {
    std::set<std::string> names(c.subsets[si].begin(), c.subsets[si].end());
    FileQuerySystem partial = make_system();
    partial.SetParallelism(1);
    built = partial.BuildIndexes(IndexSpec::Partial(names));
    if (!built.ok()) {
      return fail("[index] partial build " + std::to_string(si) +
                  " failed: " + built.ToString());
    }
    std::string label = "subset " + std::to_string(si);
    if (!Agrees("auto/" + label, baseline,
                Canon(partial.Execute(c.fql, ExecutionMode::kAuto)), c,
                &outcome.failure)) {
      outcome.failed = true;
      return outcome;
    }
    auto plan = partial.Plan(c.fql);
    if (plan.ok() && plan->view_indexed && !plan->trivially_empty) {
      if (!Agrees("two-phase/" + label, baseline,
                  Canon(partial.Execute(c.fql, ExecutionMode::kTwoPhase)),
                  c, &outcome.failure)) {
        outcome.failed = true;
        return outcome;
      }
      if (options.bug == InjectedBug::kExactSkip && baseline.ok &&
          !is_projection && !plan->exact && plan->candidates != nullptr) {
        // The injected bug: trust phase-1 candidates as the final answer
        // even though the plan is inexact (§6.3 violated).
        ExprEvaluator evaluator(&partial.region_index(),
                                &partial.word_index(), &partial.corpus());
        auto candidates = evaluator.Evaluate(*plan->candidates);
        if (candidates.ok()) {
          std::vector<Region> got(candidates->begin(), candidates->end());
          std::sort(got.begin(), got.end(),
                    [](const Region& a, const Region& b) {
                      return a.start != b.start ? a.start < b.start
                                                : a.end < b.end;
                    });
          if (got != baseline.regions) {
            return fail(
                "[exact-skip/" + label +
                "] injected bug detected: unfiltered phase-1 candidates (" +
                std::to_string(got.size()) + ") differ from baseline (" +
                std::to_string(baseline.regions.size()) +
                ") on an inexact plan (fql: " + c.fql + ")");
          }
        }
      }
    }
  }

  // 4. Incremental maintenance: replay the mutation sequence through the
  // maintainer and cross-check against a from-scratch rebuild, down to
  // the post-compaction index blob bytes.
  if (!c.mutations.empty()) {
    QOF_RETURN_IF_ERROR(CheckMaintenance(schema, docs, c, options,
                                         is_projection, &outcome.failure));
    if (!outcome.failure.empty()) {
      outcome.failed = true;
      return outcome;
    }
  }

  // 5. Thm. 3.6: rewrite walks converge to the unique normal form.
  if (options.check_chains) {
    Rig rig = DeriveFullRig(schema);
    QOF_RETURN_IF_ERROR(
        CheckChainConvergence(rig, options, seed, &outcome.failure));
    if (!outcome.failure.empty()) {
      outcome.failed = true;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace qof
